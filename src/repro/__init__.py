"""repro — reproduction of "Scalable Parallel Graph Partitioning" (SC'13).

Public API highlights
---------------------
* :mod:`repro.graph` — CSR graph kernel, generators, the Table-1 suite.
* :mod:`repro.parallel` — SPMD virtual machine with an MPI-like API and
  a Hockney cost model (per-rank simulated clocks).
* :mod:`repro.core` — the ScalaPart partitioner (sequential reference and
  the distributed implementation on the virtual machine).
* :mod:`repro.baselines` — RCB, ParMetis-like and Pt-Scotch-like
  multilevel partitioners, spectral bisection.
* :mod:`repro.geometric` — Gilbert–Miller–Teng geometric mesh
  partitioning (G30 / G7 / G7-NL and the parallel SP-PG7-NL).
* :mod:`repro.embed` — force-directed embedding: sequential multilevel
  (Hu 2006) and the paper's fixed-lattice parallel scheme.
* :mod:`repro.bench` — cached regeneration of every paper table/figure.

Quick start::

    from repro.core import scalapart
    from repro.graph.generators import random_delaunay

    graph, _ = random_delaunay(4000, seed=42)
    result = scalapart(graph, seed=0)
    print(result.bisection.cut_size)
"""

__version__ = "0.1.0"

from . import errors, rng  # noqa: F401
from .results import PartitionResult  # noqa: F401

__all__ = ["errors", "rng", "PartitionResult", "__version__"]
