"""Common result record for all partitioners.

Every partitioner in the library — ScalaPart, the geometric variants,
RCB, the multilevel baselines — returns a :class:`PartitionResult`, so
the benchmark harness can sweep methods uniformly.  ``stage_seconds``
holds wall-clock stage timings for sequential runs and *simulated*
stage timings (from the virtual machine) for distributed runs; the
``simulated`` flag says which.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .graph.partition import Bisection

__all__ = ["PartitionResult"]


@dataclass
class PartitionResult:
    """Outcome of one partitioning run."""

    bisection: Bisection
    method: str
    seconds: float = 0.0
    simulated: bool = False
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def cut_size(self) -> int:
        return self.bisection.cut_size

    @property
    def cut_weight(self) -> float:
        return self.bisection.cut_weight

    @property
    def imbalance(self) -> float:
        return self.bisection.imbalance

    def validate(self, max_imbalance: Optional[float] = None) -> None:
        self.bisection.validate(max_imbalance)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "sim" if self.simulated else "wall"
        return (
            f"PartitionResult({self.method}: cut={self.cut_size}, "
            f"imbalance={self.imbalance:.3f}, {kind}={self.seconds:.4g}s)"
        )
