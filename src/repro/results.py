"""Common result record for all partitioners.

Every partitioner in the library — ScalaPart, the geometric variants,
RCB, the multilevel baselines, the direct k-way methods — returns a
:class:`PartitionResult`, so the benchmark harness can sweep methods
uniformly.  ``stage_seconds`` holds wall-clock stage timings for
sequential runs and *simulated* stage timings (from the virtual
machine) for distributed runs; the ``simulated`` flag says which.

Two-way results carry a :class:`Bisection`; k-way results carry a
:class:`KWayPartition` (a 2-way run through a k-way method sets both,
consistently).  The quality properties dispatch to whichever labelling
is present, preferring the k-way one — its balance is CostModel-aware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from .errors import PartitionError
from .graph.partition import Bisection, KWayPartition

__all__ = ["PartitionResult"]


@dataclass
class PartitionResult:
    """Outcome of one partitioning run."""

    bisection: Optional[Bisection] = None
    method: str = ""
    seconds: float = 0.0
    simulated: bool = False
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    extras: Dict[str, Any] = field(default_factory=dict)
    kway: Optional[KWayPartition] = None

    def __post_init__(self) -> None:
        if self.bisection is None and self.kway is None:
            raise PartitionError(
                "PartitionResult needs a bisection or a k-way partition"
            )

    @property
    def k(self) -> int:
        """Number of parts in the labelling."""
        return self.kway.k if self.kway is not None else 2

    @property
    def parts(self) -> np.ndarray:
        """Unified per-vertex labels in ``[0, k)`` (int64)."""
        if self.kway is not None:
            return self.kway.parts
        return self.bisection.side.astype(np.int64)

    @property
    def cut_size(self) -> int:
        if self.kway is not None:
            return self.kway.cut_size
        return self.bisection.cut_size

    @property
    def cut_weight(self) -> float:
        if self.kway is not None:
            return self.kway.cut_weight
        return self.bisection.cut_weight

    @property
    def imbalance(self) -> float:
        if self.kway is not None:
            return self.kway.imbalance
        return self.bisection.imbalance

    def validate(self, max_imbalance: Optional[float] = None) -> None:
        if self.kway is not None:
            self.kway.validate(max_imbalance)
        else:
            self.bisection.validate(max_imbalance)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "sim" if self.simulated else "wall"
        return (
            f"PartitionResult({self.method}: k={self.k}, "
            f"cut={self.cut_size}, imbalance={self.imbalance:.3f}, "
            f"{kind}={self.seconds:.4g}s)"
        )
