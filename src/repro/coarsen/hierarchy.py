"""Multilevel coarsening hierarchies.

ParMetis-style coarsening halves the vertex count per matching step.
ScalaPart applies "one minor adaptation": it *retains every other
graph*, producing a sequence whose sizes decrease roughly by a factor
of four per level — matching the quartering of the processor count
(``P^i ≈ P^{i-1}/4``) in the multilevel embedding.

:class:`Hierarchy` stores the retained graphs plus the *composed*
fine→coarse maps between consecutive retained levels, and offers
projection helpers used by both the embedding (coordinates flow down)
and the multilevel partitioners (partition sides flow down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..errors import GraphError
from ..graph.csr import CSRGraph
from ..rng import SeedLike, derive_seed
from .contract import contract, project_labels
from .matching import heavy_edge_matching

__all__ = ["Hierarchy", "build_hierarchy"]

#: Coarsening stalls when one matching step shrinks less than this.
_STALL_RATIO = 0.95


@dataclass
class Hierarchy:
    """A multilevel coarsening hierarchy.

    ``graphs[0]`` is the original graph and ``graphs[-1]`` the coarsest;
    ``cmaps[i]`` maps vertex ids of ``graphs[i]`` to ids of
    ``graphs[i+1]`` (already composed across skipped levels when the
    hierarchy was built with ``keep_every_other=True``).
    """

    graphs: List[CSRGraph]
    cmaps: List[np.ndarray]

    def __post_init__(self) -> None:
        if len(self.graphs) != len(self.cmaps) + 1:
            raise GraphError("hierarchy needs one cmap per consecutive pair")

    @property
    def num_levels(self) -> int:
        """Number of graphs in the hierarchy (>= 1)."""
        return len(self.graphs)

    @property
    def coarsest(self) -> CSRGraph:
        return self.graphs[-1]

    @property
    def finest(self) -> CSRGraph:
        return self.graphs[0]

    def project_to_finest(self, labels: np.ndarray, level: int) -> np.ndarray:
        """Project per-vertex values at ``level`` all the way to level 0."""
        if not (0 <= level < self.num_levels):
            raise GraphError(f"level {level} out of range")
        out = np.asarray(labels)
        for i in range(level - 1, -1, -1):
            out = project_labels(out, self.cmaps[i])
        return out

    def project_one_level(self, labels: np.ndarray, level: int) -> np.ndarray:
        """Project values from ``level`` to the next finer ``level-1``."""
        if level <= 0:
            raise GraphError("level 0 has no finer level")
        return project_labels(labels, self.cmaps[level - 1])

    def sizes(self) -> List[int]:
        return [g.num_vertices for g in self.graphs]


def build_hierarchy(
    graph: CSRGraph,
    coarsest_size: int = 200,
    max_levels: int = 50,
    keep_every_other: bool = True,
    seed: SeedLike = None,
    matcher: Callable = heavy_edge_matching,
) -> Hierarchy:
    """Coarsen ``graph`` down to roughly ``coarsest_size`` vertices.

    With ``keep_every_other=True`` (the ScalaPart adaptation) two
    matching/contraction steps are fused per retained level, so retained
    sizes drop ~4× per level; with ``False`` every contraction is
    retained (classic METIS ~2× per level, used by the ParMetis- and
    Scotch-like baselines).

    Coarsening stops at ``coarsest_size`` vertices, after ``max_levels``
    retained levels, or when a matching step shrinks the graph by less
    than 5% (dense/degenerate graphs stop matching productively).
    """
    if coarsest_size < 1:
        raise GraphError("coarsest_size must be >= 1")
    graphs = [graph]
    cmaps: List[np.ndarray] = []
    steps_per_level = 2 if keep_every_other else 1
    current = graph
    for level in range(max_levels):
        if current.num_vertices <= coarsest_size:
            break
        composed: Optional[np.ndarray] = None
        nxt = current
        stalled = False
        for s in range(steps_per_level):
            if nxt.num_vertices <= coarsest_size and composed is not None:
                break
            match = matcher(nxt, seed=derive_seed(seed, level, s))
            coarse, cmap = contract(nxt, match)
            if coarse.num_vertices > _STALL_RATIO * nxt.num_vertices:
                stalled = True
                # keep the (tiny) progress if any, then stop entirely
                if coarse.num_vertices == nxt.num_vertices:
                    break
            nxt = coarse
            composed = cmap if composed is None else cmap[composed]
        if composed is None or nxt.num_vertices == current.num_vertices:
            break
        graphs.append(nxt)
        cmaps.append(composed)
        current = nxt
        if stalled:
            break
    return Hierarchy(graphs, cmaps)
