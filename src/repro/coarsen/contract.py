"""Graph contraction under a matching.

Matched pairs collapse into super-vertices whose weight is the sum of
the pair's weights; parallel coarse edges merge with accumulated weight
and internal (contracted) edges vanish.  These are exactly the METIS
contraction semantics the paper inherits, and they preserve the key
multilevel invariant: *any* bisection of the coarse graph, projected to
the fine graph, has identical cut weight and part weights.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import GraphError
from ..graph.csr import CSRGraph

__all__ = ["contract", "coarse_map", "project_labels"]


def coarse_map(match: np.ndarray) -> np.ndarray:
    """Coarse vertex id for every fine vertex.

    Coarse ids are assigned in order of the smaller endpoint of each
    matched pair (unmatched vertices map alone), so the numbering is
    deterministic for a given matching.
    """
    match = np.asarray(match, dtype=np.int64)
    n = match.shape[0]
    rep = np.minimum(np.arange(n), match)  # pair representative
    is_rep = rep == np.arange(n)
    cmap = np.full(n, -1, dtype=np.int64)
    cmap[is_rep] = np.cumsum(is_rep)[is_rep] - 1
    cmap[~is_rep] = cmap[rep[~is_rep]]
    return cmap


def contract(graph: CSRGraph, match: np.ndarray) -> Tuple[CSRGraph, np.ndarray]:
    """Contract ``graph`` under ``match``.

    Returns ``(coarse, cmap)`` with ``cmap[v]`` the coarse id of fine
    vertex ``v``.

    Works directly on the directed CSR adjacency — no ``(m, 2)`` edge
    array materialisation or ``from_edges`` validation round trip.  One
    stable sort over the relabelled undirected slots merges parallel
    coarse edges (weights accumulated per group); the result is then
    symmetrised and bucketed by source exactly the way
    :meth:`CSRGraph.from_edges` does, so the coarse graph is
    *byte-identical* to the historical edge-list path (downstream
    tie-breaking — FM gains, greedy growing — depends on slot order).
    """
    n = graph.num_vertices
    match = np.asarray(match, dtype=np.int64)
    if match.shape != (n,):
        raise GraphError("match must have one entry per vertex")
    cmap = coarse_map(match)
    nc = int(cmap.max()) + 1 if n else 0
    cvwgt = np.bincount(cmap, weights=graph.vwgt, minlength=nc)
    # each undirected fine edge once (src < dst slots, CSR order)
    fsrc = graph.edge_sources()
    und = fsrc < graph.indices
    cu = cmap[fsrc[und]]
    cv = cmap[graph.indices[und]]
    w = graph.ewgt[und]
    ext = cu != cv  # edges internal to a contracted pair vanish
    cu, cv, w = cu[ext], cv[ext], w[ext]
    lo = np.minimum(cu, cv)
    hi = np.maximum(cu, cv)
    if lo.shape[0]:
        key = lo * np.int64(nc) + hi
        order = np.argsort(key, kind="stable")
        key, lo, hi, w = key[order], lo[order], hi[order], w[order]
        first = np.ones(key.shape[0], dtype=bool)
        first[1:] = key[1:] != key[:-1]
        group = np.cumsum(first) - 1
        w = np.bincount(group, weights=w)
        lo, hi = lo[first], hi[first]
    # symmetrise: emit both directions then bucket by source
    csrc = np.concatenate([lo, hi])
    cdst = np.concatenate([hi, lo])
    cw = np.concatenate([w, w])
    indptr = np.zeros(nc + 1, dtype=np.int64)
    np.cumsum(np.bincount(csrc, minlength=nc), out=indptr[1:])
    order = np.argsort(csrc, kind="stable")
    coarse = CSRGraph(indptr, cdst[order], cw[order], cvwgt, validate=False)
    return coarse, cmap


def project_labels(labels: np.ndarray, cmap: np.ndarray) -> np.ndarray:
    """Pull per-coarse-vertex values back to the fine graph.

    ``labels`` is indexed by coarse id; the result assigns each fine
    vertex its super-vertex's value (works for partition sides,
    coordinates — any leading-axis-indexed array).
    """
    return np.asarray(labels)[np.asarray(cmap, dtype=np.int64)]
