"""Distributed multilevel coarsening (rank programs for the VM).

ScalaPart coarsens "in the same manner as in ParMetis" with the graph
distributed over P ranks.  The distributed matching here is the
*mutual-proposal* (locally dominant edge) algorithm used by parallel
matchers: each round every rank computes, for its owned unmatched
vertices, the heaviest unmatched neighbour; proposals are exchanged and
an edge whose endpoints propose each other becomes matched.  Two to
three rounds capture most of the matching weight; remaining vertices
stay unmatched for this level (standard in ParMetis).

Folding: with ``keep_every_other=True`` two matchings fuse per retained
level and the active rank set shrinks to a quarter (``P^i ≈ P^{i-1}/4``,
paper §3), so per-rank work stays ~``m/P`` at every level.  Ranks that
fold out wait at the final hierarchy broadcast.

Simulator notes (see :mod:`repro.graph.distributed`): graph objects are
immutable and travel by :class:`Shared` reference; the contraction is
executed functionally at the subtree root and *charged* as the
distributed edge-relabel + redistribution a real implementation
performs (each rank charges its owned adjacency, and the broadcast
carries the coarse graph's redistribution volume).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import GraphError
from ..graph.csr import CSRGraph
from ..graph.distributed import block_adjacency_slots, block_of, block_starts
from ..parallel.engine import Comm
from ..parallel.patterns import allgather_concat, share_from_root
from .hierarchy import _STALL_RATIO
from .contract import contract

__all__ = ["dist_matching_round", "dist_match", "dist_build_hierarchy"]

#: mutual-proposal rounds per matching sweep.
_ROUNDS = 3


def _local_proposals(
    graph: CSRGraph, lo: int, hi: int, matched: np.ndarray, salt: int = 0
) -> np.ndarray:
    """Heaviest-unmatched-neighbour proposal for owned vertices
    [lo, hi); -1 where no proposal is possible.  Vectorised."""
    prop = np.full(hi - lo, -1, dtype=np.int64)
    if hi <= lo:
        return prop
    src_pos, src, dst, w = block_adjacency_slots(graph, lo, hi)
    valid = ~matched[dst] & ~matched[src]
    if not valid.any():
        return prop
    sp, d, ww = src_pos[valid], dst[valid], w[valid]
    # Symmetric pseudo-random tie-break: without it, unweighted regular
    # graphs make every vertex propose in the same direction and almost
    # no proposal is mutual.  The perturbation (< 0.5) never reorders
    # integer-valued weights, and being a pure function of the endpoint
    # pair it is identical on both owners of an edge.
    s = src[valid]
    elo = np.minimum(s, d).astype(np.uint64)
    ehi = np.maximum(s, d).astype(np.uint64)
    h = (
        elo * np.uint64(2654435761)
        + ehi * np.uint64(40503)
        + np.uint64((salt + 1) * 2246822519)
    ) & np.uint64(0xFFFFFFFF)
    ww = ww + h.astype(np.float64) / float(2**32) * 0.5
    order = np.lexsort((ww, sp))  # ascending weight within each source
    sp_s, d_s = sp[order], d[order]
    last = np.ones(sp_s.shape[0], dtype=bool)
    last[:-1] = sp_s[1:] != sp_s[:-1]
    prop[sp_s[last]] = d_s[last]  # heaviest (last) proposal per source
    return prop


def dist_matching_round(comm: Comm, graph: CSRGraph, matched: np.ndarray,
                        match: np.ndarray, salt: int = 0):
    """One mutual-proposal round; updates ``matched``/``match`` in place
    (identical on every rank after the round's exchanges)."""
    n = graph.num_vertices
    comm.set_phase("coarsen/match")
    starts = block_starts(n, comm.size)
    lo, hi = block_of(starts, comm.rank)
    local_prop = _local_proposals(graph, lo, hi, matched, salt)
    # charge the sweep: every owned adjacency slot is examined once
    comm.charge(float(graph.indptr[hi] - graph.indptr[lo]) + (hi - lo))
    prop = yield from allgather_concat(comm, local_prop)
    # Mutual proposals become matches.  Matching is a pure function of
    # the proposal array (match v↔u iff prop[v]==u and prop[u]==v), so
    # after the single proposal exchange every rank derives the round's
    # matches locally — no second communication step is needed.
    ids = np.arange(n, dtype=np.int64)
    ok = prop >= 0
    mutual = ok.copy()
    mutual[ok] = prop[prop[ok]] == ids[ok]
    match[mutual] = prop[mutual]
    matched[:] = match != ids
    comm.charge(float(n) / comm.size)


def dist_match(comm: Comm, graph: CSRGraph, rounds: int = _ROUNDS,
               salt: int = 0):
    """Distributed heavy-edge matching (mutual proposals, few rounds).

    ``salt`` perturbs the tie-break hash: passing the processor count
    (as the hierarchy driver does) makes the matching — and hence the
    final cut — vary with P, which is how the paper's per-method
    cut-size *ranges* across processor counts arise.
    """
    n = graph.num_vertices
    matched = np.zeros(n, dtype=bool)
    match = np.arange(n, dtype=np.int64)
    for _ in range(max(1, rounds)):
        yield from dist_matching_round(comm, graph, matched, match, salt)
    return match


def _dist_contract(comm: Comm, graph: CSRGraph, match: np.ndarray):
    """Contract under a (globally known) matching.

    Functional work at rank 0 (simulator memory idiom); every rank
    charges its owned adjacency for the edge relabelling, and the
    result broadcast carries the coarse graph's redistribution volume.
    """
    n = graph.num_vertices
    comm.set_phase("coarsen/contract")
    starts = block_starts(n, comm.size)
    lo, hi = block_of(starts, comm.rank)
    comm.charge(float(graph.indptr[hi] - graph.indptr[lo]) + (hi - lo))
    result = None
    if comm.rank == 0:
        result = contract(graph, match)
    # Redistribution volume: the coarse graph's ~3 words per adjacency
    # slot (endpoints + weight) move through every rank's port *in
    # parallel*, so the per-port serialised volume is 3m/p; the
    # broadcast tree contributes the log-p latency factor.
    volume_guess = 3.0 * graph.indices.shape[0] / (2.0 * comm.size)
    coarse, cmap = (yield from share_from_root(comm, result, words=volume_guess))
    return coarse, cmap


def dist_build_hierarchy(
    comm: Comm,
    graph: CSRGraph,
    *,
    coarsest_size: int = 160,
    keep_every_other: bool = True,
    max_levels: int = 50,
    fold: bool = True,
    rounds: int = _ROUNDS,
):
    """Distributed analogue of :func:`repro.coarsen.build_hierarchy`.

    Returns ``(graphs, cmaps)`` — identical lists on every rank of
    ``comm``.  With ``fold=True`` the active rank set quarters (halves
    for ``keep_every_other=False``) per retained level, mirroring
    ``P^i ≈ P^{i-1}/4``; folded-out ranks idle until the final
    broadcast, exactly like processes outside ``G^i(P^i)`` in the paper.
    """
    if coarsest_size < 1:
        raise GraphError("coarsest_size must be >= 1")
    graphs: List[CSRGraph] = [graph]
    cmaps: List[np.ndarray] = []
    active: Optional[Comm] = comm
    steps = 2 if keep_every_other else 1
    shrink = 4 if keep_every_other else 2

    for _level in range(max_levels):
        if active is None:
            break
        current = graphs[-1]
        if current.num_vertices <= coarsest_size:
            break
        composed: Optional[np.ndarray] = None
        nxt = current
        stalled = False
        # Mutual-proposal matching leaves more vertices unmatched than
        # sequential HEM, especially on small/contracted graphs; keep
        # matching (up to 2·steps sweeps) until this level reaches its
        # ~1/4 (or ~1/2) size target so level counts stay close to the
        # paper's quartering schedule.
        target = max(coarsest_size, int(current.num_vertices / (3.2 if keep_every_other else 1.7)))
        for _s in range(2 * steps):
            if composed is not None and nxt.num_vertices <= target:
                break
            match = yield from dist_match(active, nxt, rounds=rounds,
                                          salt=comm.size + 31 * _level + _s)
            coarse, cmap = yield from _dist_contract(active, nxt, match)
            if coarse.num_vertices > _STALL_RATIO * nxt.num_vertices:
                stalled = True
                if coarse.num_vertices == nxt.num_vertices:
                    break
            nxt = coarse
            composed = cmap if composed is None else cmap[composed]
        if composed is None or nxt.num_vertices == current.num_vertices:
            break
        graphs.append(nxt)
        cmaps.append(composed)
        if stalled:
            break
        if fold and active.size >= 2 * shrink:
            keep = max(1, active.size // shrink)
            sub = yield from active.split(0 if active.rank < keep else None)
            active = sub  # None for folded-out ranks: they exit the loop
    # synchronise the hierarchy across the full communicator (folded-out
    # ranks have a stale prefix); rank 0 is active at every level
    comm.set_phase("coarsen/share")
    payload = (graphs, cmaps) if comm.rank == 0 else None
    full = yield from share_from_root(comm, payload, words=float(len(graphs) * 4))
    return full
