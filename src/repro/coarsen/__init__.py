"""Multilevel coarsening: matchings, contraction, hierarchies."""

from .contract import coarse_map, contract, project_labels
from .hierarchy import Hierarchy, build_hierarchy
from .matching import (
    MATCHERS,
    get_matcher,
    heavy_edge_matching,
    heavy_edge_matching_vec,
    matching_work,
    random_matching,
    validate_matching,
)

__all__ = [
    "coarse_map",
    "contract",
    "project_labels",
    "Hierarchy",
    "build_hierarchy",
    "heavy_edge_matching",
    "heavy_edge_matching_vec",
    "matching_work",
    "random_matching",
    "validate_matching",
    "MATCHERS",
    "get_matcher",
]
