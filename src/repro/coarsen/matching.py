"""Vertex matchings for multilevel coarsening.

ScalaPart "coarsens graphs in the same manner as in ParMetis", i.e.
*heavy-edge matching* (HEM): vertices are visited in random order and
each unmatched vertex is matched with the unmatched neighbour connected
by the heaviest edge.  HEM maximises the weight of contracted edges so
that the coarse graph exposes as little cut weight as possible — the
property that makes multilevel partitioners work.

Two implementations are provided:

* :func:`heavy_edge_matching` — the sequential greedy rule (one vertex
  at a time in a random permutation), the literal ParMetis semantics;
* :func:`heavy_edge_matching_vec` — a round-based *locally dominant
  edge* formulation: every round each unmatched vertex points at its
  heaviest free neighbour (one segmented ``np.maximum.reduceat`` over
  the CSR adjacency), mutual proposals lock in, and rounds repeat until
  no proposal lands.  Identical in spirit to the distributed matcher in
  :mod:`repro.coarsen.parallel`, but engine-free and ~an order of
  magnitude faster than the greedy loop on 100k+ vertex graphs.

A matching is encoded as an array ``match`` with ``match[v]`` the mate
of ``v`` (or ``v`` itself for unmatched vertices); it is an involution
(``match[match[v]] == v``) and every matched pair is an edge.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..errors import ConfigError, GraphError
from ..graph.csr import CSRGraph
from ..rng import SeedLike, as_generator

__all__ = [
    "heavy_edge_matching",
    "heavy_edge_matching_vec",
    "random_matching",
    "validate_matching",
    "matching_work",
    "MATCHERS",
    "get_matcher",
]


def heavy_edge_matching(graph: CSRGraph, seed: SeedLike = None) -> np.ndarray:
    """Heavy-edge matching (the ParMetis/METIS coarsening rule).

    Visits vertices in a random permutation; an unmatched vertex grabs
    its unmatched neighbour of maximum edge weight (first such neighbour
    on ties, which is arbitrary but deterministic given the seed).
    """
    n = graph.num_vertices
    rng = as_generator(seed)
    match = np.arange(n, dtype=np.int64)
    matched = np.zeros(n, dtype=bool)
    indptr, indices, ewgt = graph.indptr, graph.indices, graph.ewgt
    order = rng.permutation(n)
    for v in order:
        if matched[v]:
            continue
        beg, end = indptr[v], indptr[v + 1]
        nbrs = indices[beg:end]
        if nbrs.shape[0] == 0:
            continue
        free = ~matched[nbrs]
        if not free.any():
            continue
        w = np.where(free, ewgt[beg:end], -np.inf)
        u = int(nbrs[int(np.argmax(w))])
        match[v], match[u] = u, v
        matched[v] = matched[u] = True
    return match


def _edge_tiebreak(
    src: np.ndarray, dst: np.ndarray, salt: np.uint64
) -> np.ndarray:
    """Symmetric pseudo-random perturbation in ``[0, 0.5)`` per edge.

    A pure function of the (unordered) endpoint pair and ``salt``, so
    both stored directions of an undirected edge perturb identically —
    the property that makes ties resolve *mutually* in proposal rounds.
    Being strictly below 0.5 it never reorders integer-valued weights.
    """
    elo = np.minimum(src, dst).astype(np.uint64)
    ehi = np.maximum(src, dst).astype(np.uint64)
    h = (
        elo * np.uint64(2654435761)
        + ehi * np.uint64(40503)
        + (salt + np.uint64(1)) * np.uint64(2246822519)
    ) & np.uint64(0xFFFFFFFF)
    return h.astype(np.float64) / float(2**32) * 0.5


def heavy_edge_matching_vec(
    graph: CSRGraph, seed: SeedLike = None, max_stall_rounds: int = 4
) -> np.ndarray:
    """Round-based vectorised heavy-edge matching (locally dominant edges).

    Each round every unmatched vertex proposes to its heaviest free
    neighbour, found with two segmented reductions over the CSR arrays
    (``np.maximum.reduceat`` for the best weight, ``np.minimum.reduceat``
    for its slot); proposals that are mutual become matched pairs.
    Rounds repeat until no vertex can propose, so on termination the
    matching is maximal (every remaining unmatched vertex has only
    matched neighbours) except in the astronomically unlikely event of
    ``max_stall_rounds`` consecutive tie-break collisions.

    The globally heaviest free edge is always mutual (both endpoints see
    it as their best), so every round matches at least one pair and the
    loop terminates.  Ties are broken by a seed-salted symmetric hash of
    the endpoint pair, making the result deterministic given ``seed``
    and — like the greedy rule's random visit order — varying across
    seeds.
    """
    n = graph.num_vertices
    match = np.arange(n, dtype=np.int64)
    if n == 0:
        return match
    rng = as_generator(seed)
    base_salt = int(rng.integers(0, 2**31))
    indptr, indices, ewgt = graph.indptr, graph.indices, graph.ewgt
    deg = np.diff(indptr)
    nz = np.flatnonzero(deg > 0)
    if nz.size == 0:
        return match
    # slot → proposing vertex, for the whole adjacency (built once)
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    # segment starts of the degree>0 vertices tile [0, 2m) exactly,
    # which is what reduceat needs (empty segments would misbehave)
    starts = indptr[nz]
    # position of each slot's owner within ``nz``
    seg_pos = np.repeat(np.arange(nz.size, dtype=np.int64), deg[nz])
    ids = np.arange(n, dtype=np.int64)
    nslots = indices.shape[0]
    stalled = 0
    round_no = 0
    while True:
        free = match == ids
        valid = free[src] & free[indices]
        if not valid.any():
            break
        w_eff = np.where(
            valid,
            ewgt + _edge_tiebreak(src, indices,
                                  np.uint64(base_salt + round_no)),
            -np.inf,
        )
        seg_best = np.maximum.reduceat(w_eff, starts)
        # slot of the best proposal: smallest slot index attaining the max
        hit = w_eff == seg_best[seg_pos]
        slot_ids = np.where(hit, np.arange(nslots), nslots)
        best_slot = np.minimum.reduceat(slot_ids, starts)
        has = seg_best > -np.inf
        prop = np.full(n, -1, dtype=np.int64)
        prop[nz[has]] = indices[best_slot[has]]
        ok = prop >= 0
        mutual = ok.copy()
        mutual[ok] = prop[prop[ok]] == ids[ok]
        if not mutual.any():
            # only possible on a tie-break hash collision cycle; re-salt
            stalled += 1
            if stalled >= max_stall_rounds:
                break
        else:
            stalled = 0
            match[mutual] = prop[mutual]
        round_no += 1
    return match


def random_matching(graph: CSRGraph, seed: SeedLike = None) -> np.ndarray:
    """Random maximal matching (ablation baseline for HEM)."""
    n = graph.num_vertices
    rng = as_generator(seed)
    match = np.arange(n, dtype=np.int64)
    matched = np.zeros(n, dtype=bool)
    indptr, indices = graph.indptr, graph.indices
    for v in rng.permutation(n):
        if matched[v]:
            continue
        nbrs = indices[indptr[v] : indptr[v + 1]]
        free = nbrs[~matched[nbrs]]
        if free.shape[0] == 0:
            continue
        u = int(free[rng.integers(free.shape[0])])
        match[v], match[u] = u, v
        matched[v] = matched[u] = True
    return match


def validate_matching(graph: CSRGraph, match: np.ndarray) -> None:
    """Raise :class:`GraphError` unless ``match`` is a valid matching."""
    n = graph.num_vertices
    match = np.asarray(match)
    if match.shape != (n,):
        raise GraphError("matching must have one entry per vertex")
    ids = np.arange(n)
    if not np.array_equal(match[match], ids):
        raise GraphError("matching is not an involution")
    # CSR membership test: a slot (u → w) witnesses u's matched edge iff
    # w == match[u]; every matched vertex needs such a witness
    if n:
        src = graph.edge_sources()
        witnessed = np.zeros(n, dtype=bool)
        witnessed[src[match[src] == graph.indices]] = True
        bad = np.flatnonzero((match != ids) & ~witnessed)
        if bad.size:
            v = int(bad[0])
            raise GraphError(f"matched pair ({v}, {match[v]}) is not an edge")


#: Matcher registry keyed by the :class:`~repro.core.config.ScalaPartConfig`
#: ``matching`` knob.
MATCHERS: Dict[str, Callable[..., np.ndarray]] = {
    "hem": heavy_edge_matching,
    "hem-vec": heavy_edge_matching_vec,
    "random": random_matching,
}


def get_matcher(name: str) -> Callable[..., np.ndarray]:
    """Resolve a matcher by config name (raises :class:`ConfigError`)."""
    try:
        return MATCHERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown matching {name!r}; expected one of {sorted(MATCHERS)}"
        ) from None


def matching_work(graph: CSRGraph) -> float:
    """Work units charged for one matching sweep (edges touched)."""
    return float(graph.indices.shape[0] + graph.num_vertices)
