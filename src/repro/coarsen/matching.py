"""Vertex matchings for multilevel coarsening.

ScalaPart "coarsens graphs in the same manner as in ParMetis", i.e.
*heavy-edge matching* (HEM): vertices are visited in random order and
each unmatched vertex is matched with the unmatched neighbour connected
by the heaviest edge.  HEM maximises the weight of contracted edges so
that the coarse graph exposes as little cut weight as possible — the
property that makes multilevel partitioners work.

A matching is encoded as an array ``match`` with ``match[v]`` the mate
of ``v`` (or ``v`` itself for unmatched vertices); it is an involution
(``match[match[v]] == v``) and every matched pair is an edge.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import GraphError
from ..graph.csr import CSRGraph
from ..rng import SeedLike, as_generator

__all__ = ["heavy_edge_matching", "random_matching", "validate_matching", "matching_work"]


def heavy_edge_matching(graph: CSRGraph, seed: SeedLike = None) -> np.ndarray:
    """Heavy-edge matching (the ParMetis/METIS coarsening rule).

    Visits vertices in a random permutation; an unmatched vertex grabs
    its unmatched neighbour of maximum edge weight (first such neighbour
    on ties, which is arbitrary but deterministic given the seed).
    """
    n = graph.num_vertices
    rng = as_generator(seed)
    match = np.arange(n, dtype=np.int64)
    matched = np.zeros(n, dtype=bool)
    indptr, indices, ewgt = graph.indptr, graph.indices, graph.ewgt
    order = rng.permutation(n)
    for v in order:
        if matched[v]:
            continue
        beg, end = indptr[v], indptr[v + 1]
        nbrs = indices[beg:end]
        if nbrs.shape[0] == 0:
            continue
        free = ~matched[nbrs]
        if not free.any():
            continue
        w = np.where(free, ewgt[beg:end], -np.inf)
        u = int(nbrs[int(np.argmax(w))])
        match[v], match[u] = u, v
        matched[v] = matched[u] = True
    return match


def random_matching(graph: CSRGraph, seed: SeedLike = None) -> np.ndarray:
    """Random maximal matching (ablation baseline for HEM)."""
    n = graph.num_vertices
    rng = as_generator(seed)
    match = np.arange(n, dtype=np.int64)
    matched = np.zeros(n, dtype=bool)
    indptr, indices = graph.indptr, graph.indices
    for v in rng.permutation(n):
        if matched[v]:
            continue
        nbrs = indices[indptr[v] : indptr[v + 1]]
        free = nbrs[~matched[nbrs]]
        if free.shape[0] == 0:
            continue
        u = int(free[rng.integers(free.shape[0])])
        match[v], match[u] = u, v
        matched[v] = matched[u] = True
    return match


def validate_matching(graph: CSRGraph, match: np.ndarray) -> None:
    """Raise :class:`GraphError` unless ``match`` is a valid matching."""
    n = graph.num_vertices
    match = np.asarray(match)
    if match.shape != (n,):
        raise GraphError("matching must have one entry per vertex")
    if not np.array_equal(match[match], np.arange(n)):
        raise GraphError("matching is not an involution")
    pairs = np.flatnonzero(match > np.arange(n))
    for v in pairs:
        if not graph.has_edge(int(v), int(match[v])):
            raise GraphError(f"matched pair ({v}, {match[v]}) is not an edge")


def matching_work(graph: CSRGraph) -> float:
    """Work units charged for one matching sweep (edges touched)."""
    return float(graph.indices.shape[0] + graph.num_vertices)
