"""Force-directed graph embedding (sequential and fixed-lattice)."""

from .box import Box, cell_ids, cell_indices
from .fdl import LayoutResult, force_directed_layout, random_positions
from .forces import (
    DEFAULT_C,
    AttractiveWorkspace,
    attractive_forces,
    repulsive_forces_exact,
    spring_energy,
)
from .lattice import (
    LatticeStats,
    LatticeWorkspace,
    beta_force_field,
    lattice_stats,
    repulsive_forces_lattice,
)
from .multilevel import (
    EmbeddingResult,
    hu_layout,
    lattice_side_for,
    multilevel_embedding,
)
from .quadtree import BHWorkspace, repulsive_forces_bh
from .quality import (
    EdgeLengthStats,
    crossing_proxy,
    edge_length_stats,
    neighborhood_preservation,
    normalized_stress,
)
from .ssde import bfs_hops, ssde_embedding

__all__ = [
    "Box",
    "cell_ids",
    "cell_indices",
    "LayoutResult",
    "force_directed_layout",
    "random_positions",
    "DEFAULT_C",
    "AttractiveWorkspace",
    "attractive_forces",
    "repulsive_forces_exact",
    "spring_energy",
    "LatticeStats",
    "LatticeWorkspace",
    "beta_force_field",
    "lattice_stats",
    "repulsive_forces_lattice",
    "EmbeddingResult",
    "hu_layout",
    "lattice_side_for",
    "multilevel_embedding",
    "BHWorkspace",
    "repulsive_forces_bh",
    "EdgeLengthStats",
    "crossing_proxy",
    "edge_length_stats",
    "neighborhood_preservation",
    "normalized_stress",
    "bfs_hops",
    "ssde_embedding",
]
