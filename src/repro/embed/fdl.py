"""Adaptive force-directed layout (Hu 2006).

One smoothing engine drives every embedding in the library: the
coarsest-graph embedding, the per-level smoothing of the multilevel
scheme, and (through the ``repulsion`` hook) both the Barnes–Hut and
the paper's fixed-lattice approximations.

Per iteration each vertex moves a fixed *step length* in the direction
of its net force; the step adapts with Hu's schedule — shrink by ``t``
when the system's energy (Σ‖F‖², the standard cheap proxy) fails to
decrease, grow by ``1/t`` after five consecutive decreases.  The layout
converges when the step falls below ``tol · K``.

``fixed`` freezes a vertex subset: the parallel lattice scheme keeps
ghost vertices stationary during an iteration block (paper §3), and the
tests use it to pin anchors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from ..errors import EmbeddingError
from ..graph.csr import CSRGraph
from ..rng import SeedLike, as_generator
from .forces import (
    DEFAULT_C,
    AttractiveWorkspace,
    attractive_forces,
    repulsive_forces_exact,
)
from .quadtree import repulsive_forces_bh

__all__ = ["LayoutResult", "force_directed_layout", "random_positions"]

RepulsionLike = Union[str, Callable[[np.ndarray, np.ndarray], np.ndarray]]

#: Hu's step-shrink factor.
_T = 0.9
#: consecutive energy decreases before the step grows again.
_PROGRESS_LIMIT = 5
#: graphs up to this size use the exact repulsion under ``repulsion="auto"``.
_AUTO_EXACT_CUTOFF = 600


@dataclass(frozen=True)
class LayoutResult:
    """Final positions plus convergence diagnostics."""

    pos: np.ndarray
    iterations: int
    converged: bool
    final_step: float
    final_energy: float


def random_positions(n: int, seed: SeedLike = None, span: Optional[float] = None) -> np.ndarray:
    """Random initial coordinates in a square of side ``span``
    (default ``√n``, giving unit expected point density as the force
    laws with K=1 assume)."""
    rng = as_generator(seed)
    if span is None:
        span = max(1.0, float(np.sqrt(max(n, 1))))
    return rng.random((n, 2)) * span


def _resolve_repulsion(repulsion: RepulsionLike, n: int):
    if callable(repulsion):
        return repulsion
    if repulsion == "exact":
        return lambda pos, m, c, k: repulsive_forces_exact(pos, m, c, k)
    if repulsion == "bh":
        return lambda pos, m, c, k: repulsive_forces_bh(pos, m, c, k)
    if repulsion == "auto":
        if n <= _AUTO_EXACT_CUTOFF:
            return lambda pos, m, c, k: repulsive_forces_exact(pos, m, c, k)
        return lambda pos, m, c, k: repulsive_forces_bh(pos, m, c, k)
    raise EmbeddingError(f"unknown repulsion scheme {repulsion!r}")


def force_directed_layout(
    graph: CSRGraph,
    pos0: np.ndarray,
    *,
    masses: Optional[np.ndarray] = None,
    c: float = DEFAULT_C,
    k: float = 1.0,
    max_iters: int = 100,
    tol: float = 1e-3,
    step0: Optional[float] = None,
    repulsion: RepulsionLike = "auto",
    fixed: Optional[np.ndarray] = None,
) -> LayoutResult:
    """Run Hu's adaptive FDL from ``pos0``.

    ``repulsion`` is ``"exact"``, ``"bh"``, ``"auto"`` or a callable
    ``f(pos, masses, c, k) -> (n,2) forces`` (the lattice scheme plugs
    in here).  Returns new positions; ``pos0`` is not mutated.
    """
    n = graph.num_vertices
    pos = np.array(pos0, dtype=np.float64, copy=True)
    if pos.shape != (n, 2):
        raise EmbeddingError(f"pos0 must be ({n}, 2), got {pos.shape}")
    if max_iters < 0:
        raise EmbeddingError("max_iters must be nonnegative")
    if masses is None:
        masses = graph.vwgt
    masses = np.asarray(masses, dtype=np.float64)
    if fixed is not None:
        fixed = np.asarray(fixed, dtype=bool)
        if fixed.shape != (n,):
            raise EmbeddingError("fixed mask must have one entry per vertex")
        if fixed.all():
            return LayoutResult(pos, 0, True, 0.0, 0.0)
    rep = _resolve_repulsion(repulsion, n)

    # Preallocated step workspace: at steady state one smoothing
    # iteration performs no array allocations beyond the two bincount
    # outputs inside attractive_forces (DESIGN §11).
    att_ws = AttractiveWorkspace()
    f = np.empty((n, 2))
    norms = np.empty(n)
    sq = np.empty(n)
    move = np.empty((n, 2))
    fixed_rows = fixed[:, None] if fixed is not None else None

    step = float(step0) if step0 is not None else k
    energy_prev = np.inf
    progress = 0
    converged = False
    it = 0
    energy = 0.0
    for it in range(1, max_iters + 1):
        att = attractive_forces(graph, pos, k, workspace=att_ws)
        np.add(att, rep(pos, masses, c, k), out=f)
        if fixed is not None:
            np.copyto(f, 0.0, where=fixed_rows)
        # norms = ||f|| row-wise; fx² + fy² matches (f*f).sum(axis=1)
        np.multiply(f[:, 0], f[:, 0], out=norms)
        np.multiply(f[:, 1], f[:, 1], out=sq)
        np.add(norms, sq, out=norms)
        np.sqrt(norms, out=norms)
        np.multiply(norms, norms, out=sq)
        energy = float(sq.sum())
        move.fill(0.0)
        active = norms > 1e-300
        np.divide(f, norms[:, None], out=move, where=active[:, None])
        np.multiply(move, step, out=move)
        pos += move
        # Hu's adaptive schedule
        if energy < energy_prev:
            progress += 1
            if progress >= _PROGRESS_LIMIT:
                progress = 0
                step /= _T
        else:
            progress = 0
            step *= _T
        energy_prev = energy
        if step < tol * k:
            converged = True
            break
    return LayoutResult(pos, it, converged, step, energy)


def _force_directed_layout_reference(
    graph: CSRGraph,
    pos0: np.ndarray,
    *,
    masses: Optional[np.ndarray] = None,
    c: float = DEFAULT_C,
    k: float = 1.0,
    max_iters: int = 100,
    tol: float = 1e-3,
    step0: Optional[float] = None,
    repulsion: RepulsionLike = "auto",
    fixed: Optional[np.ndarray] = None,
) -> LayoutResult:
    """Pre-optimisation layout loop (fresh temporaries every iteration,
    ``np.add.at`` attraction), kept temporarily so the test suite can
    assert the workspace-backed loop is bit-identical."""
    from .forces import _attractive_forces_reference

    n = graph.num_vertices
    pos = np.array(pos0, dtype=np.float64, copy=True)
    if pos.shape != (n, 2):
        raise EmbeddingError(f"pos0 must be ({n}, 2), got {pos.shape}")
    if max_iters < 0:
        raise EmbeddingError("max_iters must be nonnegative")
    if masses is None:
        masses = graph.vwgt
    masses = np.asarray(masses, dtype=np.float64)
    if fixed is not None:
        fixed = np.asarray(fixed, dtype=bool)
        if fixed.shape != (n,):
            raise EmbeddingError("fixed mask must have one entry per vertex")
        if fixed.all():
            return LayoutResult(pos, 0, True, 0.0, 0.0)
    rep = _resolve_repulsion(repulsion, n)

    step = float(step0) if step0 is not None else k
    energy_prev = np.inf
    progress = 0
    converged = False
    it = 0
    energy = 0.0
    for it in range(1, max_iters + 1):
        f = _attractive_forces_reference(graph, pos, k) + rep(pos, masses, c, k)
        if fixed is not None:
            f[fixed] = 0.0
        norms = np.sqrt((f * f).sum(axis=1))
        energy = float((norms * norms).sum())
        move = np.zeros_like(pos)
        active = norms > 1e-300
        move[active] = f[active] / norms[active, None] * step
        pos += move
        if energy < energy_prev:
            progress += 1
            if progress >= _PROGRESS_LIMIT:
                progress = 0
                step /= _T
        else:
            progress = 0
            step *= _T
        energy_prev = energy
        if step < tol * k:
            converged = True
            break
    return LayoutResult(pos, it, converged, step, energy)
