"""Sampled spectral distance embedding (SSDE, Çivril et al. 2007).

The paper's conclusions propose this exact extension: "Embedding times
may also potentially decrease if sampled spectral distance embedding
schemes can be combined with our current approach."  SSDE embeds a
graph by (1) sampling a small set of *landmark* vertices, (2) computing
BFS (hop) distances from each landmark, (3) positioning the landmarks
by classical multidimensional scaling of their mutual distances, and
(4) placing every other vertex by least-squares triangulation against
the landmark frame.

Here it serves two roles: a fast alternative initialiser for the
multilevel smoother (``scalapart`` with ``embedder="ssde"`` hybrids the
future-work idea), and an ablation subject
(``benchmarks/bench_ablation_ssde.py``) quantifying the paper's
conjecture on our suite.
"""

from __future__ import annotations


import numpy as np

from ..errors import EmbeddingError
from ..graph.csr import CSRGraph
from ..rng import SeedLike, as_generator

__all__ = ["bfs_hops", "ssde_embedding"]


def bfs_hops(graph: CSRGraph, source: int) -> np.ndarray:
    """Hop distance from ``source`` to every vertex (-1 if unreachable).

    Level-synchronous BFS over the CSR arrays; each frontier expansion
    is vectorised.
    """
    n = graph.num_vertices
    if not (0 <= source < n):
        raise EmbeddingError(f"BFS source {source} out of range")
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    indptr, indices = graph.indptr, graph.indices
    while frontier.size:
        level += 1
        # gather all neighbours of the frontier
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        base = np.repeat(indptr[frontier], counts)
        offs = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        nbrs = indices[base + offs]
        fresh = np.unique(nbrs[dist[nbrs] < 0])
        dist[fresh] = level
        frontier = fresh
    return dist


def ssde_embedding(
    graph: CSRGraph,
    landmarks: int = 12,
    seed: SeedLike = None,
    dim: int = 2,
) -> np.ndarray:
    """SSDE coordinates for every vertex (``(n, dim)``).

    Landmarks are sampled with a max-min (farthest-point) strategy so
    they spread over the graph; disconnected vertices fall back to
    random positions near the centroid.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros((0, dim))
    rng = as_generator(seed)
    k = int(min(max(dim + 1, landmarks), n))

    # farthest-point landmark selection
    first = int(rng.integers(n))
    lm = [first]
    dists = [bfs_hops(graph, first)]
    while len(lm) < k:
        stack = np.stack([np.where(d < 0, 0, d) for d in dists])
        far = int(np.argmax(stack.min(axis=0)))
        if far in lm:
            far = int(rng.integers(n))
        lm.append(far)
        dists.append(bfs_hops(graph, far))
    d = np.stack(dists, axis=1).astype(np.float64)  # (n, k)
    unreachable = d < 0
    if unreachable.any():
        d[unreachable] = d[~unreachable].max() + 1 if (~unreachable).any() else 1.0

    # classical MDS on the landmark-landmark distances
    dl = d[lm, :]  # (k, k)
    d2 = dl**2
    j = np.eye(k) - np.ones((k, k)) / k
    b = -0.5 * j @ d2 @ j
    w, v = np.linalg.eigh(b)
    order = np.argsort(w)[::-1][:dim]
    lam = np.maximum(w[order], 1e-12)
    lpos = v[:, order] * np.sqrt(lam)  # (k, dim)

    # triangulate everyone else: least squares against landmark frame
    # ||x - l_i||^2 = d_i^2  =>  2(l_1 - l_i)x = d_i^2 - d_1^2 + |l_1|^2...
    # standard linearisation against the first landmark
    a = 2.0 * (lpos[1:] - lpos[0])  # (k-1, dim)
    l2 = (lpos**2).sum(axis=1)
    rhs = (d[:, :1] ** 2 - d[:, 1:] ** 2).T + (l2[1:] - l2[0])[:, None]  # (k-1, n)
    sol, *_ = np.linalg.lstsq(a, rhs, rcond=None)
    pos = sol.T  # (n, dim)
    # pin the landmarks to their MDS positions exactly
    pos[lm] = lpos
    # degenerate graphs (no edges): scatter randomly
    bad = ~np.isfinite(pos).all(axis=1)
    if bad.any():
        centre = pos[~bad].mean(axis=0) if (~bad).any() else np.zeros(dim)
        pos[bad] = centre + rng.normal(scale=1.0, size=(int(bad.sum()), dim))
    return pos
