"""Barnes–Hut repulsion via hierarchical grids (vectorised).

The background force-directed scheme (paper §2) approximates the
``O(n²)`` repulsive sum with Barnes–Hut in ``O(n log n)``.  A classic
pointer-based quadtree traversal is hopeless in pure Python, so this
module implements the equivalent *hierarchical-grid* (FMM-style)
formulation, which vectorises completely:

* level ``l`` covers the bounding square with a ``2^l × 2^l`` grid whose
  per-cell masses and centres of mass come from ``bincount``;
* a point interacts at level ``l`` with the cells that are children of
  its parent cell's 3×3 neighbourhood but *not* within its own cell's
  3×3 neighbourhood (the FMM "interaction list", ≤27 cells, fixed
  offsets → pure array arithmetic);
* at the finest level the remaining 3×3 neighbourhood is evaluated
  exactly, pair by pair, using a segment-expansion trick over the
  cell-sorted point order.

Every cell pair is accounted exactly once — at the first level where
the pair becomes well separated — which is the Barnes–Hut opening rule
with θ ≈ 1.  Accuracy is validated against
:func:`repro.embed.forces.repulsive_forces_exact` in the test suite.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import EmbeddingError
from .forces import DEFAULT_C, _EPS2, repulsive_forces_exact

__all__ = ["repulsive_forces_bh"]

#: Below this size the exact sum is both faster and exact.
_EXACT_CUTOFF = 128


def repulsive_forces_bh(
    pos: np.ndarray,
    masses: Optional[np.ndarray] = None,
    c: float = DEFAULT_C,
    k: float = 1.0,
    leaf_target: float = 2.0,
    max_level: int = 12,
) -> np.ndarray:
    """Approximate all-pairs repulsion in ``O(n log n)``.

    ``leaf_target`` is the average number of points per finest-level
    cell (smaller = more exact near-field work, higher accuracy).
    """
    pos = np.asarray(pos, dtype=np.float64)
    n = pos.shape[0]
    if pos.ndim != 2 or (n and pos.shape[1] != 2):
        raise EmbeddingError(f"pos must be (n, 2), got {pos.shape}")
    if masses is None:
        masses = np.ones(n)
    masses = np.asarray(masses, dtype=np.float64)
    if n <= _EXACT_CUTOFF:
        return repulsive_forces_exact(pos, masses, c, k)

    # square bounding box (equal cell aspect keeps the opening rule honest)
    lo = pos.min(axis=0)
    span = float(max((pos.max(axis=0) - lo).max(), 1e-12)) * (1 + 1e-9)
    ck2 = c * k * k

    finest = min(max_level, max(2, math.ceil(math.log(n / leaf_target, 4))))
    out = np.zeros((n, 2))

    # integer cell coordinates at the finest level; coarser levels shift
    cell = np.clip(((pos - lo) / span * (1 << finest)).astype(np.int64),
                   0, (1 << finest) - 1)

    for level in range(2, finest + 1):
        s = 1 << level
        cx = cell[:, 0] >> (finest - level)
        cy = cell[:, 1] >> (finest - level)
        cid = cy * s + cx
        mass = np.bincount(cid, weights=masses, minlength=s * s)
        comx = np.bincount(cid, weights=masses * pos[:, 0], minlength=s * s)
        comy = np.bincount(cid, weights=masses * pos[:, 1], minlength=s * s)
        nz = mass > 0
        comx[nz] /= mass[nz]
        comy[nz] /= mass[nz]
        px, py = cx >> 1, cy >> 1
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                for b in (0, 1):
                    for a in (0, 1):
                        tx = ((px + dx) << 1) + a
                        ty = ((py + dy) << 1) + b
                        valid = (
                            (tx >= 0) & (tx < s) & (ty >= 0) & (ty < s)
                            & (np.maximum(np.abs(tx - cx), np.abs(ty - cy)) > 1)
                        )
                        if not valid.any():
                            continue
                        tid = np.where(valid, ty * s + tx, 0)
                        m = np.where(valid, mass[tid], 0.0)
                        ddx = pos[:, 0] - comx[tid]
                        ddy = pos[:, 1] - comy[tid]
                        r2 = ddx * ddx + ddy * ddy + _EPS2
                        scale = ck2 * masses * m / r2
                        out[:, 0] += scale * ddx
                        out[:, 1] += scale * ddy

    # exact near field over the finest-level 3x3 neighbourhood
    s = 1 << finest
    cx, cy = cell[:, 0], cell[:, 1]
    cid = cy * s + cx
    order = np.argsort(cid, kind="stable")
    counts = np.bincount(cid, minlength=s * s)
    starts = np.concatenate([[0], np.cumsum(counts)])
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            tx, ty = cx + dx, cy + dy
            valid = (tx >= 0) & (tx < s) & (ty >= 0) & (ty < s)
            tid = np.where(valid, ty * s + tx, 0)
            seg_cnt = np.where(valid, counts[tid], 0)
            total = int(seg_cnt.sum())
            if total == 0:
                continue
            i_idx = np.repeat(np.arange(n), seg_cnt)
            base = np.cumsum(seg_cnt) - seg_cnt
            within = np.arange(total) - np.repeat(base, seg_cnt)
            j_idx = order[np.repeat(starts[tid], seg_cnt) + within]
            keep = i_idx != j_idx
            i_idx, j_idx = i_idx[keep], j_idx[keep]
            d = pos[i_idx] - pos[j_idx]
            r2 = (d * d).sum(axis=1) + _EPS2
            scale = ck2 * masses[i_idx] * masses[j_idx] / r2
            out[:, 0] += np.bincount(i_idx, weights=scale * d[:, 0], minlength=n)
            out[:, 1] += np.bincount(i_idx, weights=scale * d[:, 1], minlength=n)
    return out
