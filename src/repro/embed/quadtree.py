"""Barnes–Hut repulsion via hierarchical grids (vectorised).

The background force-directed scheme (paper §2) approximates the
``O(n²)`` repulsive sum with Barnes–Hut in ``O(n log n)``.  A classic
pointer-based quadtree traversal is hopeless in pure Python, so this
module implements the equivalent *hierarchical-grid* (FMM-style)
formulation, which vectorises completely:

* level ``l`` covers the bounding square with a ``2^l × 2^l`` grid whose
  per-cell masses and centres of mass come from ``bincount``;
* a point interacts at level ``l`` with the cells that are children of
  its parent cell's 3×3 neighbourhood but *not* within its own cell's
  3×3 neighbourhood (the FMM "interaction list", ≤27 cells, fixed
  offsets → pure array arithmetic);
* at the finest level the remaining 3×3 neighbourhood is evaluated
  exactly, pair by pair, using a segment-expansion trick over the
  cell-sorted point order.

Every cell pair is accounted exactly once — at the first level where
the pair becomes well separated — which is the Barnes–Hut opening rule
with θ ≈ 1.  Accuracy is validated against
:func:`repro.embed.forces.repulsive_forces_exact` in the test suite.

Performance notes (DESIGN §11): the 36 interaction-list passes per
level share one set of per-vertex scratch buffers (a
:class:`BHWorkspace`, reusable across calls) instead of allocating
fresh ``where``/gather temporaries in each, and the pass offsets
``tx = 2·(px+dx)+a = 2·px + (2·dx+a)`` are folded into a precomputed
offset table applied to a per-level ``2·px`` base.  Accumulation order
is unchanged, so forces are bit-identical to the allocating kernel.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import EmbeddingError
from .forces import DEFAULT_C, _EPS2, repulsive_forces_exact

__all__ = ["BHWorkspace", "repulsive_forces_bh"]

#: Below this size the exact sum is both faster and exact.
_EXACT_CUTOFF = 128

#: Interaction-list pass offsets (ox, oy) with ox = 2·dx + a, oy = 2·dy + b,
#: in the exact nesting order of the original four loops (dy, dx, b, a) —
#: the accumulation order is part of the kernel's bit-level contract.
_PASS_OFFSETS = tuple(
    ((dx << 1) + a, (dy << 1) + b)
    for dy in (-1, 0, 1)
    for dx in (-1, 0, 1)
    for b in (0, 1)
    for a in (0, 1)
)


class BHWorkspace:
    """Reusable per-vertex scratch for :func:`repulsive_forces_bh`.

    One workspace serves any point count: buffers grow on demand and
    persist across calls, so repeated Barnes–Hut evaluations (the
    ``"bh"`` smoothing loop) stop paying allocation and first-touch
    page-fault cost for ~10 temporaries per pass.
    """

    __slots__ = ("_cap", "_i64", "_f64", "_bool", "_out")

    #: int64 rows: cell-x, cell-y, 2·px, 2·py, tx, ty, tid, |t-c| scratch
    _N_I64 = 8
    #: float rows: m, ddx, ddy, r2, scale, gather scratch
    _N_F64 = 6

    def __init__(self) -> None:
        self._cap = 0
        self._i64 = None
        self._f64 = None
        self._bool = None
        self._out = None

    def bind(self, n: int):
        if n > self._cap:
            self._i64 = np.empty((self._N_I64, n), dtype=np.int64)
            self._f64 = np.empty((self._N_F64, n))
            self._bool = np.empty((2, n), dtype=bool)
            self._out = np.empty((n, 2))
            self._cap = n
        return (
            tuple(self._i64[i, :n] for i in range(self._N_I64)),
            tuple(self._f64[i, :n] for i in range(self._N_F64)),
            (self._bool[0, :n], self._bool[1, :n]),
            self._out[:n],
        )


def repulsive_forces_bh(
    pos: np.ndarray,
    masses: Optional[np.ndarray] = None,
    c: float = DEFAULT_C,
    k: float = 1.0,
    leaf_target: float = 2.0,
    max_level: int = 12,
    *,
    workspace: Optional[BHWorkspace] = None,
) -> np.ndarray:
    """Approximate all-pairs repulsion in ``O(n log n)``.

    ``leaf_target`` is the average number of points per finest-level
    cell (smaller = more exact near-field work, higher accuracy).
    With a ``workspace`` the far-field passes are allocation-free; the
    returned array lives in the workspace and is overwritten by the
    next call.
    """
    pos = np.asarray(pos, dtype=np.float64)
    n = pos.shape[0]
    if pos.ndim != 2 or (n and pos.shape[1] != 2):
        raise EmbeddingError(f"pos must be (n, 2), got {pos.shape}")
    if masses is None:
        masses = np.ones(n)
    masses = np.asarray(masses, dtype=np.float64)
    if n <= _EXACT_CUTOFF:
        return repulsive_forces_exact(pos, masses, c, k)

    # square bounding box (equal cell aspect keeps the opening rule honest)
    lo = pos.min(axis=0)
    span = float(max((pos.max(axis=0) - lo).max(), 1e-12)) * (1 + 1e-9)
    ck2 = c * k * k

    finest = min(max_level, max(2, math.ceil(math.log(n / leaf_target, 4))))

    ws = workspace if workspace is not None else BHWorkspace()
    ints, flts, bools, out = ws.bind(n)
    cellx, celly, pxs, pys, tx, ty, tid, habs = ints
    m, ddx, ddy, r2, scale, gat = flts
    valid, nvalid = bools
    posx = np.ascontiguousarray(pos[:, 0])
    posy = np.ascontiguousarray(pos[:, 1])
    cmass = ck2 * masses  # reference folds (ck2 * masses) first
    outx = np.zeros(n)
    outy = np.zeros(n)

    # integer cell coordinates at the finest level; coarser levels shift
    cell = np.clip(((pos - lo) / span * (1 << finest)).astype(np.int64),
                   0, (1 << finest) - 1)

    for level in range(2, finest + 1):
        s = 1 << level
        shift = finest - level
        np.right_shift(cell[:, 0], shift, out=cellx)
        np.right_shift(cell[:, 1], shift, out=celly)
        cid = celly * s + cellx
        mass = np.bincount(cid, weights=masses, minlength=s * s)
        comx = np.bincount(cid, weights=masses * posx, minlength=s * s)
        comy = np.bincount(cid, weights=masses * posy, minlength=s * s)
        nz = mass > 0
        comx[nz] /= mass[nz]
        comy[nz] /= mass[nz]
        # 2·px = 2·(cx >> 1): the per-level base the pass offsets add to
        np.right_shift(cellx, 1, out=pxs)
        np.left_shift(pxs, 1, out=pxs)
        np.right_shift(celly, 1, out=pys)
        np.left_shift(pys, 1, out=pys)
        for ox, oy in _PASS_OFFSETS:
            np.add(pxs, ox, out=tx)
            np.add(pys, oy, out=ty)
            # valid: target inside the grid and outside the own 3×3 ring
            np.logical_and(tx >= 0, tx < s, out=valid)
            np.logical_and(valid, ty >= 0, out=valid)
            np.logical_and(valid, ty < s, out=valid)
            np.subtract(tx, cellx, out=tid)
            np.abs(tid, out=tid)
            np.subtract(ty, celly, out=habs)
            np.abs(habs, out=habs)
            np.maximum(tid, habs, out=habs)
            np.logical_and(valid, habs > 1, out=valid)
            if not valid.any():
                continue
            np.logical_not(valid, out=nvalid)
            np.multiply(ty, s, out=tid)
            np.add(tid, tx, out=tid)
            np.copyto(tid, 0, where=nvalid)
            np.take(mass, tid, out=m)
            np.copyto(m, 0.0, where=nvalid)
            np.take(comx, tid, out=gat)
            np.subtract(posx, gat, out=ddx)
            np.take(comy, tid, out=gat)
            np.subtract(posy, gat, out=ddy)
            np.multiply(ddx, ddx, out=r2)
            np.multiply(ddy, ddy, out=scale)
            np.add(r2, scale, out=r2)
            np.add(r2, _EPS2, out=r2)
            np.multiply(cmass, m, out=scale)
            np.divide(scale, r2, out=scale)
            np.multiply(scale, ddx, out=gat)
            np.add(outx, gat, out=outx)
            np.multiply(scale, ddy, out=gat)
            np.add(outy, gat, out=outy)

    # exact near field over the finest-level 3x3 neighbourhood
    s = 1 << finest
    cx, cy = cell[:, 0], cell[:, 1]
    cid = cy * s + cx
    order = np.argsort(cid, kind="stable")
    counts = np.bincount(cid, minlength=s * s)
    starts = np.concatenate([[0], np.cumsum(counts)])
    arange_n = np.arange(n)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            np.add(cx, dx, out=tx)
            np.add(cy, dy, out=ty)
            np.logical_and(tx >= 0, tx < s, out=valid)
            np.logical_and(valid, ty >= 0, out=valid)
            np.logical_and(valid, ty < s, out=valid)
            np.logical_not(valid, out=nvalid)
            np.multiply(ty, s, out=tid)
            np.add(tid, tx, out=tid)
            np.copyto(tid, 0, where=nvalid)
            np.take(counts, tid, out=habs)
            np.copyto(habs, 0, where=nvalid)
            seg_cnt = habs
            total = int(seg_cnt.sum())
            if total == 0:
                continue
            i_idx = np.repeat(arange_n, seg_cnt)
            base = np.cumsum(seg_cnt) - seg_cnt
            within = np.arange(total) - np.repeat(base, seg_cnt)
            j_idx = order[np.repeat(starts[tid], seg_cnt) + within]
            keep = i_idx != j_idx
            i_idx, j_idx = i_idx[keep], j_idx[keep]
            d = pos[i_idx] - pos[j_idx]
            r2n = (d * d).sum(axis=1) + _EPS2
            sc = ck2 * masses[i_idx] * masses[j_idx] / r2n
            outx += np.bincount(i_idx, weights=sc * d[:, 0], minlength=n)
            outy += np.bincount(i_idx, weights=sc * d[:, 1], minlength=n)
    out[:, 0] = outx
    out[:, 1] = outy
    return out


def _repulsive_forces_bh_reference(
    pos: np.ndarray,
    masses: Optional[np.ndarray] = None,
    c: float = DEFAULT_C,
    k: float = 1.0,
    leaf_target: float = 2.0,
    max_level: int = 12,
) -> np.ndarray:
    """Pre-optimisation Barnes–Hut kernel (fresh ``where``/``repeat``
    temporaries in each of the 36 passes), kept temporarily for the
    bit-exactness tests."""
    pos = np.asarray(pos, dtype=np.float64)
    n = pos.shape[0]
    if pos.ndim != 2 or (n and pos.shape[1] != 2):
        raise EmbeddingError(f"pos must be (n, 2), got {pos.shape}")
    if masses is None:
        masses = np.ones(n)
    masses = np.asarray(masses, dtype=np.float64)
    if n <= _EXACT_CUTOFF:
        return repulsive_forces_exact(pos, masses, c, k)

    lo = pos.min(axis=0)
    span = float(max((pos.max(axis=0) - lo).max(), 1e-12)) * (1 + 1e-9)
    ck2 = c * k * k

    finest = min(max_level, max(2, math.ceil(math.log(n / leaf_target, 4))))
    out = np.zeros((n, 2))

    cell = np.clip(((pos - lo) / span * (1 << finest)).astype(np.int64),
                   0, (1 << finest) - 1)

    for level in range(2, finest + 1):
        s = 1 << level
        cx = cell[:, 0] >> (finest - level)
        cy = cell[:, 1] >> (finest - level)
        cid = cy * s + cx
        mass = np.bincount(cid, weights=masses, minlength=s * s)
        comx = np.bincount(cid, weights=masses * pos[:, 0], minlength=s * s)
        comy = np.bincount(cid, weights=masses * pos[:, 1], minlength=s * s)
        nz = mass > 0
        comx[nz] /= mass[nz]
        comy[nz] /= mass[nz]
        px, py = cx >> 1, cy >> 1
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                for b in (0, 1):
                    for a in (0, 1):
                        tx = ((px + dx) << 1) + a
                        ty = ((py + dy) << 1) + b
                        valid = (
                            (tx >= 0) & (tx < s) & (ty >= 0) & (ty < s)
                            & (np.maximum(np.abs(tx - cx), np.abs(ty - cy)) > 1)
                        )
                        if not valid.any():
                            continue
                        tid = np.where(valid, ty * s + tx, 0)
                        m = np.where(valid, mass[tid], 0.0)
                        ddx = pos[:, 0] - comx[tid]
                        ddy = pos[:, 1] - comy[tid]
                        r2 = ddx * ddx + ddy * ddy + _EPS2
                        scale = ck2 * masses * m / r2
                        out[:, 0] += scale * ddx
                        out[:, 1] += scale * ddy

    s = 1 << finest
    cx, cy = cell[:, 0], cell[:, 1]
    cid = cy * s + cx
    order = np.argsort(cid, kind="stable")
    counts = np.bincount(cid, minlength=s * s)
    starts = np.concatenate([[0], np.cumsum(counts)])
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            tx, ty = cx + dx, cy + dy
            valid = (tx >= 0) & (tx < s) & (ty >= 0) & (ty < s)
            tid = np.where(valid, ty * s + tx, 0)
            seg_cnt = np.where(valid, counts[tid], 0)
            total = int(seg_cnt.sum())
            if total == 0:
                continue
            i_idx = np.repeat(np.arange(n), seg_cnt)
            base = np.cumsum(seg_cnt) - seg_cnt
            within = np.arange(total) - np.repeat(base, seg_cnt)
            j_idx = order[np.repeat(starts[tid], seg_cnt) + within]
            keep = i_idx != j_idx
            i_idx, j_idx = i_idx[keep], j_idx[keep]
            d = pos[i_idx] - pos[j_idx]
            r2 = (d * d).sum(axis=1) + _EPS2
            scale = ck2 * masses[i_idx] * masses[j_idx] / r2
            out[:, 0] += np.bincount(i_idx, weights=scale * d[:, 0], minlength=n)
            out[:, 1] += np.bincount(i_idx, weights=scale * d[:, 1], minlength=n)
    return out
