"""The paper's fixed-lattice repulsion approximation (Eq. 1–2).

This is the heart of ScalaPart's embedding: the bounding box is viewed
as an ``s × s`` lattice (``s = √P`` in the distributed setting); every
cell ``B_{i,j}`` carries a *special vertex* ``β_{i,j}`` of mass
``μ_{i,j}`` (total mass of the cell's vertices) located at the cell's
centre of mass ``φ_{i,j}``.  Long-range repulsion is then:

* cell–cell (paper Eq. 1): each β is repelled by every other β, with the
  product of cell masses;
* vertices inherit their cell's β force (per unit of their own mass) and
  are additionally repelled by their *own* cell's remaining mass at its
  centre of mass (paper Eq. 2).

Normalisation note: Eq. 1–2 are written with unnormalised products
``μ_{i,j}·μ_{q,r}``; "all vertices in V_{i,j} inherit the repulsive
force on β" is implemented here in the mass-consistent form — the
per-unit-mass *field* at φ is inherited and multiplied by the vertex's
own mass, and the own-cell term uses the cell mass minus the vertex's
mass (a vertex does not repel itself).  With this normalisation the
lattice force converges to the exact sum as ``s → ∞``, which the test
suite verifies.

Unlike Barnes–Hut there is no adaptivity: the lattice is *fixed*, which
is what makes the distributed version communication-friendly — one
(s², 3)-word reduction per iteration block instead of a tree walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import EmbeddingError
from .box import Box, cell_ids
from .forces import DEFAULT_C, _EPS2

__all__ = ["LatticeStats", "lattice_stats", "beta_force_field", "repulsive_forces_lattice"]


@dataclass(frozen=True)
class LatticeStats:
    """Aggregated β data of an ``s × s`` lattice.

    ``mass[cid]`` is μ of cell ``cid`` (row-major) and ``com[cid]`` its
    centre of mass φ (zero for empty cells, which have zero mass and
    thus exert no force).  In the distributed algorithm this is exactly
    the payload of the per-block allreduce.
    """

    s: int
    mass: np.ndarray
    com: np.ndarray

    def __post_init__(self) -> None:
        if self.mass.shape != (self.s * self.s,) or self.com.shape != (self.s * self.s, 2):
            raise EmbeddingError("inconsistent lattice statistics shapes")


def lattice_stats(
    pos: np.ndarray,
    masses: np.ndarray,
    box: Box,
    s: int,
) -> LatticeStats:
    """Per-cell mass and centre of mass (the β vertices)."""
    pos = np.asarray(pos, dtype=np.float64)
    masses = np.asarray(masses, dtype=np.float64)
    cid = cell_ids(pos, box, s)
    mass = np.bincount(cid, weights=masses, minlength=s * s)
    comx = np.bincount(cid, weights=masses * pos[:, 0], minlength=s * s)
    comy = np.bincount(cid, weights=masses * pos[:, 1], minlength=s * s)
    com = np.zeros((s * s, 2))
    nz = mass > 0
    com[nz, 0] = comx[nz] / mass[nz]
    com[nz, 1] = comy[nz] / mass[nz]
    return LatticeStats(s, mass, com)


def beta_force_field(
    stats: LatticeStats, c: float = DEFAULT_C, k: float = 1.0
) -> np.ndarray:
    """Per-unit-mass repulsive field at every β (vectorised Eq. 1).

    ``field[cid]`` is  Σ_{other cells} C K² μ_other (φ_cid − φ_other) /
    ‖φ_cid − φ_other‖²; multiply by a mass to get a force.
    """
    com, mass = stats.com, stats.mass
    d = com[:, None, :] - com[None, :, :]
    r2 = (d * d).sum(axis=2) + _EPS2
    np.fill_diagonal(r2, np.inf)
    w = c * k * k * mass[None, :] / r2
    # empty cells produce garbage positions; zero both their row and effect
    field = (d * w[:, :, None]).sum(axis=1)
    field[mass == 0] = 0.0
    return field


def repulsive_forces_lattice(
    pos: np.ndarray,
    masses: Optional[np.ndarray] = None,
    c: float = DEFAULT_C,
    k: float = 1.0,
    *,
    box: Optional[Box] = None,
    s: int = 16,
    stats: Optional[LatticeStats] = None,
) -> np.ndarray:
    """Fixed-lattice approximation of the repulsive forces (Eq. 1–2).

    Signature-compatible with the other repulsion kernels so it can be
    handed to :func:`repro.embed.fdl.force_directed_layout` via
    ``functools.partial``.  ``stats`` may be supplied externally — the
    distributed algorithm computes it once per iteration *block* and
    reuses it (acting on stale β data exactly as the paper describes).
    """
    pos = np.asarray(pos, dtype=np.float64)
    n = pos.shape[0]
    if masses is None:
        masses = np.ones(n)
    masses = np.asarray(masses, dtype=np.float64)
    if box is None:
        box = Box.of_points(pos)
    if stats is None:
        stats = lattice_stats(pos, masses, box, s)
    elif stats.s != s:
        raise EmbeddingError(f"stats built for s={stats.s}, requested s={s}")

    field = beta_force_field(stats, c, k)
    cid = cell_ids(pos, box, s)
    out = field[cid] * masses[:, None]

    # own-cell term: repulsion from the cell's *other* mass at its φ
    d = pos - stats.com[cid]
    r2 = (d * d).sum(axis=1) + _EPS2
    m_other = np.maximum(stats.mass[cid] - masses, 0.0)
    out += d * (c * k * k * masses * m_other / r2)[:, None]
    return out
