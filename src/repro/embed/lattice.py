"""The paper's fixed-lattice repulsion approximation (Eq. 1–2).

This is the heart of ScalaPart's embedding: the bounding box is viewed
as an ``s × s`` lattice (``s = √P`` in the distributed setting); every
cell ``B_{i,j}`` carries a *special vertex* ``β_{i,j}`` of mass
``μ_{i,j}`` (total mass of the cell's vertices) located at the cell's
centre of mass ``φ_{i,j}``.  Long-range repulsion is then:

* cell–cell (paper Eq. 1): each β is repelled by every other β, with the
  product of cell masses;
* vertices inherit their cell's β force (per unit of their own mass) and
  are additionally repelled by their *own* cell's remaining mass at its
  centre of mass (paper Eq. 2).

Normalisation note: Eq. 1–2 are written with unnormalised products
``μ_{i,j}·μ_{q,r}``; "all vertices in V_{i,j} inherit the repulsive
force on β" is implemented here in the mass-consistent form — the
per-unit-mass *field* at φ is inherited and multiplied by the vertex's
own mass, and the own-cell term uses the cell mass minus the vertex's
mass (a vertex does not repel itself).  With this normalisation the
lattice force converges to the exact sum as ``s → ∞``, which the test
suite verifies.

Unlike Barnes–Hut there is no adaptivity: the lattice is *fixed*, which
is what makes the distributed version communication-friendly — one
(s², 3)-word reduction per iteration block instead of a tree walk.

Performance notes (DESIGN §11): the β pairwise field is evaluated on a
*transposed* cell-pair matrix — summed-over cell ``j`` on axis 0 — so
the reduction runs sequentially over ``j`` with contiguous inner
vectors, which reproduces NumPy's strided ``(B, B, 2).sum(axis=1)``
summation order bit for bit while being ~6x faster; all cell-pair and
per-vertex temporaries live in a reusable :class:`LatticeWorkspace`,
making a steady-state smoothing call allocation-free; and ``cell_ids``
is computed once per call and shared between the β statistics and the
per-vertex inheritance (the pre-refactor kernel computed it twice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import EmbeddingError
from .box import Box, cell_ids
from .forces import DEFAULT_C, _EPS2

__all__ = [
    "LatticeStats",
    "LatticeWorkspace",
    "lattice_stats",
    "beta_force_field",
    "repulsive_forces_lattice",
]


@dataclass(frozen=True)
class LatticeStats:
    """Aggregated β data of an ``s × s`` lattice.

    ``mass[cid]`` is μ of cell ``cid`` (row-major) and ``com[cid]`` its
    centre of mass φ (zero for empty cells, which have zero mass and
    thus exert no force).  In the distributed algorithm this is exactly
    the payload of the per-block allreduce.
    """

    s: int
    mass: np.ndarray
    com: np.ndarray

    def __post_init__(self) -> None:
        if self.mass.shape != (self.s * self.s,) or self.com.shape != (self.s * self.s, 2):
            raise EmbeddingError("inconsistent lattice statistics shapes")


class LatticeWorkspace:
    """Reusable scratch buffers for :func:`repulsive_forces_lattice`.

    Holds the ``(B, B)`` cell-pair matrices of the β field (``B = s²``)
    and the per-vertex force scratch.  Buffers grow on demand and are
    kept when the request shrinks (uncoarsening walks levels from small
    to large, so one workspace serves the whole walk); views of the
    right size are sliced out per call.  Reusing warm buffers is most
    of the win over the allocating kernel — fresh multi-MB temporaries
    page-fault on first touch every iteration.
    """

    __slots__ = ("_pair_cap", "_n_cap", "_pair", "_vert", "_field", "_out", "_cm")

    def __init__(self) -> None:
        self._pair_cap = 0
        self._n_cap = 0
        self._pair = None
        self._vert = None
        self._field = None
        self._out = None
        self._cm = None

    #: cell-pair matrices: tx, ty, r2, w (one extra slot doubles as scratch)
    _N_PAIR = 4
    #: per-vertex float scratch rows: dx, dy, r2, t
    _N_VERT = 4

    def pair_buffers(self, b: int):
        """``_N_PAIR`` matrices of shape ``(b, b)``."""
        if b > self._pair_cap:
            self._pair = np.empty((self._N_PAIR, b, b))
            self._field = np.empty((b, 2))
            self._cm = np.empty(b)
            self._pair_cap = b
        return tuple(self._pair[i, :b, :b] for i in range(self._N_PAIR))

    def field_buffer(self, b: int) -> np.ndarray:
        self.pair_buffers(b)
        return self._field[:b]

    def cm_buffer(self, b: int) -> np.ndarray:
        self.pair_buffers(b)
        return self._cm[:b]

    def vertex_buffers(self, n: int):
        """``_N_VERT`` float rows of length ``n`` plus the ``(n, 2)`` output."""
        if n > self._n_cap:
            self._vert = np.empty((self._N_VERT, n))
            self._out = np.empty((n, 2))
            self._n_cap = n
        return tuple(self._vert[i, :n] for i in range(self._N_VERT)), self._out[:n]


def lattice_stats(
    pos: np.ndarray,
    masses: np.ndarray,
    box: Box,
    s: int,
    *,
    cid: Optional[np.ndarray] = None,
) -> LatticeStats:
    """Per-cell mass and centre of mass (the β vertices).

    ``cid`` may carry precomputed cell ids of ``pos`` (the smoothing
    kernel computes them once and shares them with the per-vertex
    inheritance pass).
    """
    pos = np.asarray(pos, dtype=np.float64)
    masses = np.asarray(masses, dtype=np.float64)
    if cid is None:
        cid = cell_ids(pos, box, s)
    mass = np.bincount(cid, weights=masses, minlength=s * s)
    comx = np.bincount(cid, weights=masses * pos[:, 0], minlength=s * s)
    comy = np.bincount(cid, weights=masses * pos[:, 1], minlength=s * s)
    com = np.zeros((s * s, 2))
    nz = mass > 0
    com[nz, 0] = comx[nz] / mass[nz]
    com[nz, 1] = comy[nz] / mass[nz]
    return LatticeStats(s, mass, com)


def beta_force_field(
    stats: LatticeStats,
    c: float = DEFAULT_C,
    k: float = 1.0,
    *,
    workspace: Optional[LatticeWorkspace] = None,
) -> np.ndarray:
    """Per-unit-mass repulsive field at every β (vectorised Eq. 1).

    ``field[cid]`` is  Σ_{other cells} C K² μ_other (φ_cid − φ_other) /
    ‖φ_cid − φ_other‖²; multiply by a mass to get a force.

    The pair matrices are laid out transposed — the summed-over cell on
    axis 0 — so the final reduction is a sequential axis-0 sum with
    contiguous inner vectors: the exact summation order of the original
    ``(B, B, 2).sum(axis=1)`` (NumPy reduces a non-innermost axis
    sequentially), hence bit-identical results, at a fraction of the
    memory traffic.
    """
    com, mass = stats.com, stats.mass
    b = mass.shape[0]
    ws = workspace if workspace is not None else LatticeWorkspace()
    tx, ty, r2, w = ws.pair_buffers(b)
    field = ws.field_buffer(b)
    cm = ws.cm_buffer(b)
    comx = np.ascontiguousarray(com[:, 0])
    comy = np.ascontiguousarray(com[:, 1])
    # tx[j, i] = φx_i − φx_j  (axis 0 indexes the summed-over cell j)
    np.subtract(comx[None, :], comx[:, None], out=tx)
    np.subtract(comy[None, :], comy[:, None], out=ty)
    np.multiply(tx, tx, out=r2)
    np.multiply(ty, ty, out=w)
    np.add(r2, w, out=r2)
    np.add(r2, _EPS2, out=r2)
    np.fill_diagonal(r2, np.inf)
    # w[j, i] = C K² μ_j / r2 — same scalar folding as the reference
    np.multiply(c * k * k, mass, out=cm)
    np.divide(cm[:, None], r2, out=w)
    np.multiply(tx, w, out=tx)
    tx.sum(axis=0, out=field[:, 0])
    np.multiply(ty, w, out=ty)
    ty.sum(axis=0, out=field[:, 1])
    # empty cells produce garbage positions; zero both their row and effect
    field[mass == 0] = 0.0
    return field


def _beta_force_field_reference(
    stats: LatticeStats, c: float = DEFAULT_C, k: float = 1.0
) -> np.ndarray:
    """Pre-optimisation field kernel (full ``(B, B, 2)`` temporaries),
    kept temporarily for the bit-exactness tests."""
    com, mass = stats.com, stats.mass
    d = com[:, None, :] - com[None, :, :]
    r2 = (d * d).sum(axis=2) + _EPS2
    np.fill_diagonal(r2, np.inf)
    w = c * k * k * mass[None, :] / r2
    field = (d * w[:, :, None]).sum(axis=1)
    field[mass == 0] = 0.0
    return field


def repulsive_forces_lattice(
    pos: np.ndarray,
    masses: Optional[np.ndarray] = None,
    c: float = DEFAULT_C,
    k: float = 1.0,
    *,
    box: Optional[Box] = None,
    s: int = 16,
    stats: Optional[LatticeStats] = None,
    workspace: Optional[LatticeWorkspace] = None,
) -> np.ndarray:
    """Fixed-lattice approximation of the repulsive forces (Eq. 1–2).

    Signature-compatible with the other repulsion kernels so it can be
    handed to :func:`repro.embed.fdl.force_directed_layout` via
    ``functools.partial``.  ``stats`` may be supplied externally — the
    distributed algorithm computes it once per iteration *block* and
    reuses it (acting on stale β data exactly as the paper describes).
    ``workspace`` threads reusable scratch through repeated calls (the
    smoothing loop passes one per level); the returned array lives in
    the workspace and is overwritten by the next call.
    """
    pos = np.asarray(pos, dtype=np.float64)
    n = pos.shape[0]
    if masses is None:
        masses = np.ones(n)
    masses = np.asarray(masses, dtype=np.float64)
    if box is None:
        box = Box.of_points(pos)
    ws = workspace if workspace is not None else LatticeWorkspace()
    cid = cell_ids(pos, box, s)
    if stats is None:
        stats = lattice_stats(pos, masses, box, s, cid=cid)
    elif stats.s != s:
        raise EmbeddingError(f"stats built for s={stats.s}, requested s={s}")

    field = beta_force_field(stats, c, k, workspace=ws)
    (dx, dy, r2, t), out = ws.vertex_buffers(n)
    # inherited β force: field[cid] * mass, column-wise gathers
    np.multiply(field[:, 0][cid], masses, out=out[:, 0])
    np.multiply(field[:, 1][cid], masses, out=out[:, 1])

    # own-cell term, fused into the same pass over the vertex arrays:
    # repulsion from the cell's *other* mass at its φ
    comx = np.ascontiguousarray(stats.com[:, 0])
    comy = np.ascontiguousarray(stats.com[:, 1])
    np.subtract(pos[:, 0], comx[cid], out=dx)
    np.subtract(pos[:, 1], comy[cid], out=dy)
    np.multiply(dx, dx, out=r2)
    np.multiply(dy, dy, out=t)
    np.add(r2, t, out=r2)
    np.add(r2, _EPS2, out=r2)
    # coefficient (C K² μ_i (μ_cell − μ_i)) / r2, reference fold order
    np.multiply(c * k * k, masses, out=t)
    m_other = np.maximum(stats.mass[cid] - masses, 0.0)
    np.multiply(t, m_other, out=t)
    np.divide(t, r2, out=t)
    np.multiply(dx, t, out=dx)
    np.multiply(dy, t, out=dy)
    np.add(out[:, 0], dx, out=out[:, 0])
    np.add(out[:, 1], dy, out=out[:, 1])
    return out


def _repulsive_forces_lattice_reference(
    pos: np.ndarray,
    masses: Optional[np.ndarray] = None,
    c: float = DEFAULT_C,
    k: float = 1.0,
    *,
    box: Optional[Box] = None,
    s: int = 16,
    stats: Optional[LatticeStats] = None,
) -> np.ndarray:
    """Pre-optimisation lattice kernel (double ``cell_ids``, ~10 fresh
    temporaries per call), kept temporarily for the bit-exactness
    tests."""
    pos = np.asarray(pos, dtype=np.float64)
    n = pos.shape[0]
    if masses is None:
        masses = np.ones(n)
    masses = np.asarray(masses, dtype=np.float64)
    if box is None:
        box = Box.of_points(pos)
    if stats is None:
        stats = lattice_stats(pos, masses, box, s)
    elif stats.s != s:
        raise EmbeddingError(f"stats built for s={stats.s}, requested s={s}")

    field = _beta_force_field_reference(stats, c, k)
    cid = cell_ids(pos, box, s)
    out = field[cid] * masses[:, None]

    d = pos - stats.com[cid]
    r2 = (d * d).sum(axis=1) + _EPS2
    m_other = np.maximum(stats.mass[cid] - masses, 0.0)
    out += d * (c * k * k * masses * m_other / r2)[:, None]
    return out
