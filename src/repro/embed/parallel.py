"""Distributed multilevel fixed-lattice embedding (paper §3, core).

Rank program implementing ScalaPart's embedding on the SPMD virtual
machine, stage for stage:

* the hierarchy comes from :func:`repro.coarsen.parallel.dist_build_hierarchy`
  (sizes ÷4 per level, active ranks ÷4 per level);
* the coarsest graph (a few hundred vertices) is embedded with the
  exact force scheme on the small coarsest rank group;
* per level, vertices are assigned to the active ranks by an RCB-style
  mapping of their initial coordinates onto the process grid ("we apply
  a recursive coordinate bisection scheme such as the one in Zoltan to
  map vertices ... to some p×q processor grid"); each rank's RCB box is
  its lattice sub-domain ``B_{i,j}`` with special vertex β;
* per smoothing iteration, each rank exchanges only its *boundary*
  vertex coordinates with grid-neighbour ranks (one halo exchange) and
  moves only its owned vertices — ghosts stay fixed;
* β statistics and the coordinates of *far* ghosts (edges spanning
  non-neighbour ranks) refresh only once per block of ``block_size``
  iterations, so intermediate iterations act on stale data exactly as
  §3 describes;
* the step length follows a fixed geometric cooling schedule — Hu's
  adaptive rule would need a global energy reduction *every* iteration,
  which the block structure exists to avoid.

Per-rank state is O(n/P): owned ids/coordinates, ghost buffers, and the
per-neighbour send/receive index lists, all precomputed at level setup.
Level-setup data (initial coordinates, ownership) is assembled once at
the subtree root and shared by reference (see
:mod:`repro.graph.distributed` for the simulator memory idiom); every
iteration's *data* then flows exclusively through the exchanges above.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..baselines.rcb import rcb_grid_map
from ..coarsen.parallel import dist_build_hierarchy
from ..errors import EmbeddingError
from ..graph.csr import CSRGraph
from ..graph.distributed import adjacency_slots
from ..parallel.engine import Comm
from ..parallel.patterns import share_from_root
from ..parallel.topology import ProcessGrid, grid_dims
from ..rng import derive_seed
from .fdl import force_directed_layout, random_positions
from .forces import DEFAULT_C, _EPS2

__all__ = ["dist_multilevel_embedding"]

#: geometric cooling factor per smoothing iteration.
_T = 0.9


@dataclass
class _LevelSetup:
    """Per-rank precomputed structure for one level's smoothing."""

    own: np.ndarray            # global ids owned by this rank (sorted)
    pos_own: np.ndarray        # (n_own, 2) current coordinates
    mass_own: np.ndarray
    src_pos: np.ndarray        # local row per adjacency slot
    w: np.ndarray              # slot weights
    dst_slot: np.ndarray       # slot -> index into concat(pos_own, pos_ghost)
    ghost_ids: np.ndarray      # sorted global ids of ghosts
    near_send: Dict[int, np.ndarray]   # nbr rank -> local indices to send
    near_recv: Dict[int, np.ndarray]   # nbr rank -> ghost slots to fill
    far_slots: np.ndarray      # ghost slots refreshed per block
    far_ids: np.ndarray        # their global ids
    pos_ghost: np.ndarray      # (n_ghost, 2)


def _setup_level(
    comm: Comm,
    graph: CSRGraph,
    pos_full: np.ndarray,
    owner: np.ndarray,
    grid: ProcessGrid,
) -> _LevelSetup:
    """Build the rank-local working set from the (shared, read-only)
    level-initial coordinates and ownership map."""
    r = comm.rank
    own = np.flatnonzero(owner == r).astype(np.int64)
    src_pos, src, dst, w = adjacency_slots(graph, own)
    ghost_mask = owner[dst] != r
    ghost_ids = np.unique(dst[ghost_mask])
    # slot -> position index in concat(own, ghosts)
    dst_slot = np.empty(dst.shape[0], dtype=np.int64)
    own_sorted = own  # flatnonzero is sorted
    local = ~ghost_mask
    dst_slot[local] = np.searchsorted(own_sorted, dst[local])
    dst_slot[~local] = own.shape[0] + np.searchsorted(ghost_ids, dst[ghost_mask])

    nbrs = set(grid.neighbors8(r))
    near_send: Dict[int, np.ndarray] = {}
    near_recv: Dict[int, np.ndarray] = {}
    ghost_owner = owner[ghost_ids]
    for b in sorted(nbrs):
        # what b needs from us: our owned vertices adjacent to b's vertices
        mine_to_b = np.unique(src[owner[dst] == b])
        if mine_to_b.size:
            near_send[b] = np.searchsorted(own_sorted, mine_to_b)
        # what we get from b: our ghosts owned by b (same set from b's view)
        from_b = np.flatnonzero(ghost_owner == b)
        if from_b.size:
            near_recv[b] = from_b
    far = ~np.isin(ghost_owner, sorted(nbrs))
    far_slots = np.flatnonzero(far)
    comm.charge(float(dst.shape[0]) + own.shape[0])
    return _LevelSetup(
        own=own,
        pos_own=pos_full[own].copy(),
        mass_own=graph.vwgt[own].copy(),
        src_pos=src_pos,
        w=w,
        dst_slot=dst_slot,
        ghost_ids=ghost_ids,
        near_send=near_send,
        near_recv=near_recv,
        far_slots=far_slots,
        far_ids=ghost_ids[far_slots],
        pos_ghost=pos_full[ghost_ids].copy(),
    )


def _beta_force(stats: np.ndarray, cell: int, c: float, k: float) -> np.ndarray:
    """Per-unit-mass repulsive field at cell ``cell`` from all β
    (the distributed Eq. 1: every rank evaluates only its own row)."""
    mass = stats[:, 0]
    com = stats[:, 1:]
    d = com[cell] - com
    r2 = (d * d).sum(axis=1) + _EPS2
    wgt = c * k * k * mass / r2
    wgt[cell] = 0.0
    if mass[cell] == 0:
        return np.zeros(2)
    return (d * wgt[:, None]).sum(axis=0)


def _gather_full_pos(comm: Comm, setup: _LevelSetup, n: int,
                     words_out: Optional[float] = None):
    """Assemble the level's full coordinate array (shared reference).

    Functionally a gather of owned slices + shared broadcast.  By
    default charged as an allgather of all owned coordinates (the
    end-of-level exchange); block refreshes pass ``words_out`` = the
    rank's *far-edge* coordinate volume — the paper's ñ, "typically
    much smaller" than the boundary — because a real implementation
    only ships the endpoints of edges that span non-neighbour blocks.
    """
    if words_out is None:
        words_out = 2.0 * setup.own.shape[0]
    pairs = yield from comm.gather(
        (setup.own, setup.pos_own), root=0, words=words_out
    )
    full = None
    if comm.rank == 0:
        full = np.empty((n, 2))
        for ids, pos in pairs:
            full[ids] = pos
    p = comm.size
    lg = max(1.0, math.log2(p)) if p > 1 else 1.0
    full = yield from share_from_root(
        comm, full, words=words_out * max(0, p - 1) / lg
    )
    return full


def _smooth_level(
    comm: Comm,
    graph: CSRGraph,
    pos_full: np.ndarray,
    owner: np.ndarray,
    grid: ProcessGrid,
    *,
    iters: int,
    block_size: int,
    c: float,
    k: float = 1.0,
    step0: float = 1.0,
):
    """Fixed-lattice smoothing of one level; returns the level's final
    full coordinate array (shared, identical on all ranks)."""
    n = graph.num_vertices
    comm.set_phase("embed/smooth")
    setup = _setup_level(comm, graph, pos_full, owner, grid)
    p = comm.size

    # initial β statistics: allreduce of the (p, 3) cell table
    def local_stats() -> np.ndarray:
        table = np.zeros((p, 3))
        m = setup.mass_own.sum()
        table[comm.rank, 0] = m
        if m > 0:
            table[comm.rank, 1:] = (
                setup.mass_own[:, None] * setup.pos_own
            ).sum(axis=0) / m
        return table

    comm.set_phase("embed/refresh")
    # private writable copy of the delivered table: off-block iterations
    # overwrite this rank's own row in place (tiny (p,3) copy; the engine
    # delivers collective payloads as read-only views)
    stats = np.array(
        (yield from comm.allreduce(local_stats(), words=3.0 * p))
    )
    comm.set_phase("embed/smooth")
    # Fixed geometric cooling instead of Hu's adaptive schedule: the
    # adaptive rule needs the *global* force energy every iteration — a
    # reduction the paper's block structure explicitly avoids (global
    # collectives happen once per block; iterations use only
    # nearest-neighbour communication).
    step = step0

    for it in range(iters):
        # ---- halo exchange: boundary coordinates to grid neighbours ----
        comm.set_phase("embed/halo")
        if setup.near_send or setup.near_recv:
            out = {
                b: setup.pos_own[idx] for b, idx in setup.near_send.items()
            }
            inbox = yield from comm.exchange(out)
            for b, payload in inbox.items():
                slots = setup.near_recv.get(b)
                if slots is None or payload.shape[0] != slots.shape[0]:
                    raise EmbeddingError(
                        f"halo mismatch: rank {comm.rank} got {payload.shape[0]} "
                        f"coords from {b}, expected "
                        f"{0 if slots is None else slots.shape[0]}"
                    )
                setup.pos_ghost[slots] = payload
        elif p > 1:
            yield from comm.exchange({})
        comm.set_phase("embed/smooth")

        # ---- per-block refresh: far ghosts + β table -------------------
        if it % block_size == 0:
            comm.set_phase("embed/refresh")
            if setup.far_slots.size or p > 1:
                full = yield from _gather_full_pos(
                    comm, setup, n, words_out=2.0 * max(1, setup.far_slots.size)
                )
                if setup.far_slots.size:
                    setup.pos_ghost[setup.far_slots] = full[setup.far_ids]
            stats = np.array(
                (yield from comm.allreduce(local_stats(), words=3.0 * p))
            )
            comm.set_phase("embed/smooth")
        else:
            # own row stays current locally (paper: each processor
            # independently calculates its φ and μ every iteration)
            stats[comm.rank] = local_stats()[comm.rank]

        # ---- forces on owned vertices ----------------------------------
        pos_all = np.vstack([setup.pos_own, setup.pos_ghost])
        d = pos_all[setup.dst_slot] - setup.pos_own[setup.src_pos]
        dist = np.sqrt((d * d).sum(axis=1))
        mag = dist / k * setup.w
        fa = d * mag[:, None]
        n_own = setup.pos_own.shape[0]
        # per-source segment sum via bincount: bit-identical to the
        # np.add.at scatter it replaces, ~6x faster at scale
        f = np.empty_like(setup.pos_own)
        f[:, 0] = np.bincount(setup.src_pos, weights=fa[:, 0], minlength=n_own)
        f[:, 1] = np.bincount(setup.src_pos, weights=fa[:, 1], minlength=n_own)
        field = _beta_force(stats, comm.rank, c, k)
        f += field[None, :] * setup.mass_own[:, None]
        # own-cell term: repulsion from the cell's other mass at its φ
        m_cell, com = stats[comm.rank, 0], stats[comm.rank, 1:]
        dd = setup.pos_own - com
        r2 = (dd * dd).sum(axis=1) + _EPS2
        m_other = np.maximum(m_cell - setup.mass_own, 0.0)
        f += dd * (c * k * k * setup.mass_own * m_other / r2)[:, None]
        comm.charge(float(setup.w.shape[0] * 4 + setup.own.shape[0] * 6 + p))

        # ---- move owned vertices (communication-free cooling) ----------
        norms = np.sqrt((f * f).sum(axis=1))
        active = norms > 1e-300
        setup.pos_own[active] += f[active] / norms[active, None] * step
        step *= _T

    comm.set_phase("embed/gather")
    full = yield from _gather_full_pos(comm, setup, n)
    return full


def dist_multilevel_embedding(
    comm: Comm,
    graph: CSRGraph,
    *,
    coarsest_size: int = 160,
    coarsest_iters: int = 150,
    smooth_iters: int = 16,
    block_size: int = 4,
    c: float = DEFAULT_C,
    jitter: float = 0.25,
    seed=None,
    hierarchy=None,
):
    """Distributed ScalaPart embedding; rank program for the VM.

    Returns ``(pos, info)`` where ``pos`` is the full ``(n, 2)``
    coordinate array (a shared reference, identical on every rank) and
    ``info`` carries the hierarchy sizes for diagnostics.
    """
    comm.set_phase("coarsen")
    if hierarchy is None:
        graphs, cmaps = yield from dist_build_hierarchy(
            comm, graph, coarsest_size=coarsest_size, keep_every_other=True
        )
    else:
        graphs, cmaps = hierarchy

    comm.set_phase("embed")
    nlevels = len(graphs)
    p_total = comm.size
    n0 = max(1, graphs[0].num_vertices)
    # active ranks per level sized so n_i / P_i stays ~ n_0 / P — the
    # paper's invariant (both quarter per level in the ideal hierarchy)
    p_at = [
        max(1, min(p_total, (p_total * g.num_vertices) // n0)) for g in graphs
    ]

    # ---- coarsest embedding (small rank group) -------------------------
    comm.set_phase("embed/coarsest")
    coarsest = graphs[-1]
    nk = coarsest.num_vertices
    pk = p_at[-1]
    payload = None
    if comm.rank == 0:
        res = force_directed_layout(
            coarsest,
            random_positions(nk, seed=derive_seed(seed, 0xC0A4)),
            masses=coarsest.vwgt,
            c=c,
            max_iters=coarsest_iters,
            repulsion="auto",
        )
        payload = (res.pos, res.iterations)
    pos, used_iters = (yield from share_from_root(comm, payload, words=2.0 * nk))
    # Cost accounting: the paper embeds the coarsest graph *with the
    # fixed-lattice scheme itself* on the P^k ranks, so one iteration
    # costs O(n_k + m_k + lattice) per group — not the all-pairs n_k²
    # of the functional kernel above (which we run for robustness at
    # these tiny sizes).  Charged for the iterations actually executed
    # (the adaptive layout usually converges well before the cap).
    # Communication per iteration: one neighbour exchange; per block:
    # an allreduce of the β table.
    m = comm.machine
    comm.charge(used_iters * (10.0 * nk + coarsest.indices.shape[0] + 16.0) / pk)
    if pk > 1:
        comm.charge_comm_seconds(
            used_iters * m.exchange_cost(min(4, pk - 1), 2.0 * nk / pk, 2.0 * nk / pk)
            + (used_iters / max(1, block_size))
            * m.collective_cost("allreduce", pk, 3.0 * pk)
        )

    # ---- uncoarsen: project + smooth -----------------------------------
    total_smooth_iters = 0
    for level in range(nlevels - 2, -1, -1):
        comm.set_phase("embed/project")
        g = graphs[level]
        n = g.num_vertices
        p_lvl = min(p_at[level], n) or 1
        rows, cols = grid_dims(p_lvl)
        grid = ProcessGrid(rows, cols)
        # projection at the subtree root (functional), shared by reference;
        # charged as the paper's nearest-neighbour projection traffic
        proj = None
        owner = None
        if comm.rank == 0:
            rng = np.random.default_rng(derive_seed(seed, 0x9E0, level))
            proj = 2.0 * pos[cmaps[level]] + rng.normal(scale=jitter, size=(n, 2))
            row, col = rcb_grid_map(proj, g.vwgt, rows, cols)
            owner = (row * cols + col).astype(np.int32)
        comm.charge(3.0 * n / p_lvl)
        proj = yield from share_from_root(comm, proj, words=2.0 * n / p_lvl)
        owner = yield from share_from_root(comm, owner, words=1.0 * n / p_lvl)

        sub = yield from comm.split(0 if comm.rank < p_lvl else None)
        # §4: "relatively fewer iterations are required at high processor
        # counts for smoothing" — the finer lattice (more β cells) makes
        # each iteration more accurate, so the schedule tapers with P
        level_iters = max(6, smooth_iters - int(math.log2(max(1, p_lvl))))
        total_smooth_iters += level_iters
        if sub is not None:
            pos = yield from _smooth_level(
                sub, g, proj, owner, grid,
                iters=level_iters, block_size=block_size, c=c,
            )
        # deliver the level result to the idle ranks as well
        comm.set_phase("embed/gather")
        pos = yield from share_from_root(comm, pos if comm.rank == 0 else None,
                                         words=1.0)
    comm.set_phase("embed")
    info = {
        "levels": nlevels,
        "sizes": [g.num_vertices for g in graphs],
        "smooth_iterations": total_smooth_iters,
    }
    return pos, info
