"""Multilevel graph embedding: projection + fixed-lattice smoothing.

Sequential form of the paper's embedding pipeline (§3, "Multilevel
Fixed Lattice Parallel Graph Embedding" and "Multilevel Projection and
Smoothing"):

1. coarsen with heavy-edge matching, retaining every other graph so
   sizes drop ~4× per level;
2. embed the coarsest graph (a few hundred vertices) with the exact
   force-directed scheme from random initial coordinates;
3. walking back up, every fine vertex inherits its super-vertex's
   coordinates *scaled by 2 per axis* (the bounding box quadruples in
   area as the vertex count quadruples) plus a small random translation,
   and the level is smoothed with a few fixed-lattice FDL iterations.

The same function doubles as our stand-in for Hu's Mathematica layout
code (which the paper uses to give coordinates to RCB and the
sequential geometric partitioners): :func:`hu_layout` simply runs it
with Barnes–Hut smoothing for a few extra iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional

import numpy as np

from ..coarsen import Hierarchy, build_hierarchy, heavy_edge_matching
from ..errors import EmbeddingError
from ..graph.csr import CSRGraph
from ..rng import SeedLike, as_generator, derive_seed
from .box import Box
from .fdl import LayoutResult, force_directed_layout, random_positions
from .forces import DEFAULT_C
from .lattice import LatticeWorkspace, repulsive_forces_lattice
from .quadtree import BHWorkspace, repulsive_forces_bh

__all__ = ["EmbeddingResult", "multilevel_embedding", "hu_layout", "lattice_side_for"]


@dataclass(frozen=True)
class EmbeddingResult:
    """Coordinates for the input graph plus per-level diagnostics."""

    pos: np.ndarray
    hierarchy: Hierarchy
    level_iterations: List[int]
    coarsest_result: LayoutResult

    @property
    def num_levels(self) -> int:
        return self.hierarchy.num_levels


def lattice_side_for(n: int, per_cell: float = 32.0, s_max: int = 64) -> int:
    """Lattice side so cells hold ~``per_cell`` vertices on average.

    The distributed algorithm fixes ``s = √P``; the sequential smoother
    picks the side from the level size instead (finer graphs get finer
    lattices, mirroring how P grows as levels refine).
    """
    if n < 1:
        return 1
    s = int(np.sqrt(n / per_cell)) or 1
    return int(min(s_max, max(2, s)))


def multilevel_embedding(
    graph: CSRGraph,
    *,
    seed: SeedLike = None,
    c: float = DEFAULT_C,
    coarsest_size: int = 160,
    coarsest_iters: int = 300,
    smooth_iters: int = 16,
    jitter: float = 0.25,
    repulsion: str = "lattice",
    lattice_per_cell: float = 32.0,
    hierarchy: Optional[Hierarchy] = None,
    matcher=heavy_edge_matching,
) -> EmbeddingResult:
    """Embed an arbitrary graph in the plane.

    ``repulsion`` selects the smoothing kernel for the refined levels:
    ``"lattice"`` (the paper's scheme) or ``"bh"`` (Barnes–Hut, the
    higher-fidelity reference used for the ablation benchmarks).
    ``matcher`` is the matching kernel handed to
    :func:`~repro.coarsen.build_hierarchy` (the pipeline resolves it
    from ``ScalaPartConfig.matching``; ignored when ``hierarchy`` is
    supplied).
    """
    if repulsion not in ("lattice", "bh"):
        raise EmbeddingError(f"unknown repulsion {repulsion!r}")
    if graph.num_vertices == 0:
        empty = np.zeros((0, 2))
        return EmbeddingResult(
            empty, Hierarchy([graph], []), [],
            LayoutResult(empty, 0, True, 0.0, 0.0),
        )
    rng = as_generator(derive_seed(seed, 0xE3BED))
    h = hierarchy if hierarchy is not None else build_hierarchy(
        graph, coarsest_size=coarsest_size, keep_every_other=True, seed=seed,
        matcher=matcher,
    )

    # -- coarsest level: exact forces from random coordinates ----------
    coarsest = h.coarsest
    pos = random_positions(coarsest.num_vertices, rng)
    coarse_res = force_directed_layout(
        coarsest,
        pos,
        masses=coarsest.vwgt,
        c=c,
        max_iters=coarsest_iters,
        repulsion="auto",
    )
    pos = coarse_res.pos
    level_iters = [coarse_res.iterations]

    # -- uncoarsen: inherit (scaled), jitter, smooth --------------------
    # One repulsion workspace shared across all levels: buffers grow to
    # the finest level's size once and are reused (DESIGN §11).
    rep_ws = LatticeWorkspace() if repulsion == "lattice" else BHWorkspace()
    for level in range(h.num_levels - 2, -1, -1):
        g = h.graphs[level]
        cmap = h.cmaps[level]
        pos = 2.0 * pos[cmap]  # box scales by 2 per axis (paper §3)
        pos = pos + rng.normal(scale=jitter, size=pos.shape)
        if repulsion == "lattice":
            s = lattice_side_for(g.num_vertices, lattice_per_cell)
            box = Box.of_points(pos).expanded(1.05)
            kernel = partial(_lattice_kernel, box=box, s=s, ws=rep_ws)
        else:
            kernel = partial(_bh_kernel, ws=rep_ws)
        res = force_directed_layout(
            g,
            pos,
            masses=g.vwgt,
            c=c,
            max_iters=smooth_iters,
            step0=1.0,
            repulsion=kernel,
        )
        pos = res.pos
        level_iters.append(res.iterations)

    return EmbeddingResult(pos, h, level_iters, coarse_res)


def _lattice_kernel(pos, masses, c, k, box, s, ws=None):
    return repulsive_forces_lattice(pos, masses, c, k, box=box, s=s, workspace=ws)


def _bh_kernel(pos, masses, c, k, ws=None):
    return repulsive_forces_bh(pos, masses, c, k, workspace=ws)


def hu_layout(graph: CSRGraph, seed: SeedLike = None, smooth_iters: int = 30) -> np.ndarray:
    """High-quality multilevel force-directed coordinates.

    Stand-in for the Mathematica/Hu layout the paper uses to provide
    coordinates to RCB, G30, G7 and G7-NL (§4: "We provide such
    coordinates using the force-based graph drawing code ... developed
    by Hu").  Uses Barnes–Hut smoothing, which is closer to Hu's
    original algorithm than the fixed lattice.
    """
    return multilevel_embedding(
        graph, seed=seed, repulsion="bh", smooth_iters=smooth_iters
    ).pos
