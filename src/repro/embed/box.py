"""Axis-aligned bounding boxes and lattice-cell arithmetic.

The fixed-lattice embedding views the bounding box ``B`` of the current
embedding as a ``√P × √P`` lattice of sub-domains ``B_{i,j}`` (paper
§3).  This module centralises the box geometry: construction from point
sets, the ×2-per-axis scaling used by multilevel projection, and the
mapping of points to lattice cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import EmbeddingError

__all__ = ["Box", "cell_indices", "cell_ids"]


@dataclass(frozen=True)
class Box:
    """A 2-D axis-aligned box ``[lo, hi]``."""

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64).reshape(2)
        hi = np.asarray(self.hi, dtype=np.float64).reshape(2)
        if not np.all(hi >= lo):
            raise EmbeddingError(f"degenerate box: lo={lo}, hi={hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @classmethod
    def of_points(cls, points: np.ndarray, pad: float = 1e-9) -> "Box":
        """Smallest box containing ``points`` (slightly padded so the
        maximal point still maps to the last lattice cell)."""
        points = np.asarray(points, dtype=np.float64)
        if points.size == 0:
            return cls(np.zeros(2), np.ones(2))
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        span = np.maximum(hi - lo, 1e-12)
        return cls(lo - pad * span, hi + pad * span)

    @classmethod
    def unit(cls) -> "Box":
        return cls(np.zeros(2), np.ones(2))

    @property
    def size(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def center(self) -> np.ndarray:
        return (self.hi + self.lo) / 2.0

    def scaled(self, factor: float) -> "Box":
        """Scale about the origin (the paper scales boxes *and*
        coordinates by 2 per level, which is scaling about 0)."""
        return Box(self.lo * factor, self.hi * factor)

    def expanded(self, factor: float) -> "Box":
        """Grow symmetrically about the centre by ``factor``."""
        c, half = self.center, self.size / 2.0
        return Box(c - half * factor, c + half * factor)

    def contains(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return np.all((points >= self.lo) & (points <= self.hi), axis=1)

    def clip(self, points: np.ndarray) -> np.ndarray:
        return np.clip(points, self.lo, self.hi)

    def cell_box(self, i: int, j: int, s: int) -> "Box":
        """Sub-box of lattice cell (row i, col j) on an s×s lattice."""
        if not (0 <= i < s and 0 <= j < s):
            raise EmbeddingError(f"cell ({i},{j}) outside {s}x{s} lattice")
        step = self.size / s
        # rows index y, columns index x
        lo = self.lo + np.array([j * step[0], i * step[1]])
        return Box(lo, lo + step)


def cell_indices(points: np.ndarray, box: Box, s: int) -> Tuple[np.ndarray, np.ndarray]:
    """Lattice (row, col) of every point on an ``s × s`` lattice over ``box``.

    Rows index the y axis, columns the x axis; points outside the box
    are clamped to the border cells (the embedding moves vertices, and
    clamping matches the paper's treatment of ghost coordinates).
    """
    if s < 1:
        raise EmbeddingError(f"lattice side must be >= 1, got {s}")
    points = np.asarray(points, dtype=np.float64)
    rel = (points - box.lo) / np.maximum(box.size, 1e-300)
    col = np.clip((rel[:, 0] * s).astype(np.int64), 0, s - 1)
    row = np.clip((rel[:, 1] * s).astype(np.int64), 0, s - 1)
    return row, col


def cell_ids(points: np.ndarray, box: Box, s: int) -> np.ndarray:
    """Flattened row-major cell id (``row * s + col``) of every point."""
    row, col = cell_indices(points, box, s)
    return row * s + col
