"""Embedding-quality metrics.

The paper closes by promising to "study in greater detail ... the
relationship between embedding time, quality and partition quality".
These metrics make that relationship measurable:

* :func:`edge_length_stats` — mean/std/CV of embedded edge lengths (a
  force-directed layout at equilibrium has near-uniform springs);
* :func:`neighborhood_preservation` — fraction of each vertex's graph
  neighbours found among its nearest spatial neighbours (what the
  geometric partitioner actually needs: graph locality ⇒ spatial
  locality);
* :func:`normalized_stress` — the classic MDS stress between hop
  distances and Euclidean distances on sampled pairs;
* :func:`crossing_proxy` — mean edge length relative to the layout
  diameter (long edges are the ones geometric cuts pay for).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import EmbeddingError
from ..graph.csr import CSRGraph
from ..rng import SeedLike, as_generator
from .ssde import bfs_hops

__all__ = [
    "EdgeLengthStats",
    "edge_length_stats",
    "neighborhood_preservation",
    "normalized_stress",
    "crossing_proxy",
]


@dataclass(frozen=True)
class EdgeLengthStats:
    mean: float
    std: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (0 = perfectly uniform springs)."""
        return self.std / self.mean if self.mean > 0 else 0.0


def _check(graph: CSRGraph, pos: np.ndarray) -> np.ndarray:
    pos = np.asarray(pos, dtype=np.float64)
    if pos.shape != (graph.num_vertices, 2):
        raise EmbeddingError(
            f"pos must be ({graph.num_vertices}, 2), got {pos.shape}"
        )
    return pos


def edge_length_stats(graph: CSRGraph, pos: np.ndarray) -> EdgeLengthStats:
    """Mean and standard deviation of embedded edge lengths."""
    pos = _check(graph, pos)
    edges, _ = graph.edge_list()
    if edges.shape[0] == 0:
        return EdgeLengthStats(0.0, 0.0)
    d = np.linalg.norm(pos[edges[:, 0]] - pos[edges[:, 1]], axis=1)
    return EdgeLengthStats(float(d.mean()), float(d.std()))


def neighborhood_preservation(
    graph: CSRGraph,
    pos: np.ndarray,
    sample: int = 500,
    seed: SeedLike = None,
) -> float:
    """Mean fraction of graph neighbours among the ``deg(v)`` nearest
    spatial neighbours, over a vertex sample.  1.0 = the embedding
    perfectly respects adjacency."""
    pos = _check(graph, pos)
    from scipy.spatial import cKDTree

    n = graph.num_vertices
    if n < 3:
        return 1.0
    rng = as_generator(seed)
    verts = (
        rng.choice(n, size=min(sample, n), replace=False)
        if n > sample
        else np.arange(n)
    )
    tree = cKDTree(pos)
    scores = []
    for v in verts:
        nbrs = graph.neighbors(int(v))
        deg = nbrs.shape[0]
        if deg == 0:
            continue
        _, idx = tree.query(pos[v], k=deg + 1)
        near = set(np.atleast_1d(idx).tolist()) - {int(v)}
        scores.append(len(near & set(nbrs.tolist())) / deg)
    return float(np.mean(scores)) if scores else 1.0


def normalized_stress(
    graph: CSRGraph,
    pos: np.ndarray,
    landmarks: int = 6,
    seed: SeedLike = None,
) -> float:
    """Stress between hop distances and Euclidean distances.

    Uses BFS distances from a few landmarks (all-pairs is O(n²));
    scale-invariant: the optimal uniform scaling is applied first.
    Lower is better; 0 = perfect metric embedding.
    """
    pos = _check(graph, pos)
    n = graph.num_vertices
    if n < 3:
        return 0.0
    rng = as_generator(seed)
    lm = rng.choice(n, size=min(landmarks, n), replace=False)
    hop_list, euc_list = [], []
    for s in lm:
        h = bfs_hops(graph, int(s))
        ok = h > 0
        hop_list.append(h[ok].astype(np.float64))
        euc_list.append(np.linalg.norm(pos[ok] - pos[int(s)], axis=1))
    hop = np.concatenate(hop_list)
    euc = np.concatenate(euc_list)
    if hop.size == 0:
        return 0.0
    # optimal scale alpha minimising sum (alpha*euc - hop)^2
    denom = float((euc * euc).sum())
    alpha = float((euc * hop).sum()) / denom if denom > 0 else 1.0
    resid = alpha * euc - hop
    return float((resid * resid).sum() / (hop * hop).sum())


def crossing_proxy(graph: CSRGraph, pos: np.ndarray) -> float:
    """Mean edge length / layout diameter (lower = tighter locality)."""
    pos = _check(graph, pos)
    stats = edge_length_stats(graph, pos)
    span = pos.max(axis=0) - pos.min(axis=0) if pos.size else np.zeros(2)
    diam = float(np.linalg.norm(span))
    return stats.mean / diam if diam > 0 else 0.0
