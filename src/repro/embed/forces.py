"""Force laws of the embedding (Hu 2006, as adapted by the paper).

The paper (§2) uses attractive forces between neighbours and repulsive
forces between all pairs:

.. math::

    F_a(i) = \\sum_{(i,j) \\in E} \\frac{\\lVert c_i - c_j \\rVert^2}{K},
    \\qquad
    F_r(i) = -\\sum_{j \\ne i} \\frac{C K^2}{\\lVert c_i - c_j \\rVert}

with "twiddle factors" C and K.  These are force *magnitudes*; in
vector form the attractive force on ``i`` from neighbour ``j`` is
``(c_j − c_i) · ‖c_j − c_i‖ / K`` and the repulsive force is
``(c_i − c_j) · C K² μ_i μ_j / ‖c_i − c_j‖²`` (masses enter in the
multilevel/aggregated setting where a vertex stands for μ original
vertices; μ ≡ 1 recovers the formulas above).

This module provides the exact (all-pairs) implementations used as
ground truth for the approximations in :mod:`repro.embed.quadtree`
(Barnes–Hut) and :mod:`repro.embed.lattice` (the paper's fixed lattice).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import EmbeddingError
from ..graph.csr import CSRGraph

__all__ = [
    "DEFAULT_C",
    "AttractiveWorkspace",
    "attractive_forces",
    "repulsive_forces_exact",
    "spring_energy",
]

#: Hu's default repulsion strength.
DEFAULT_C = 0.2

#: Softening added to squared distances so coincident points do not blow up.
_EPS2 = 1e-12


class AttractiveWorkspace:
    """Reusable scratch for :func:`attractive_forces`.

    Caches the per-slot source-vertex array (``edge_sources`` is a
    ``repeat`` the layout loop would otherwise rebuild every iteration)
    and the per-slot float scratch, keyed by the graph's adjacency
    identity.  One workspace serves one graph at a time; handing it a
    different graph re-sizes the buffers.
    """

    __slots__ = ("_indices_id", "src", "dx", "dy", "mag", "t", "out")

    def __init__(self) -> None:
        self._indices_id = None
        self.src = None

    def bind(self, graph: CSRGraph) -> None:
        if self._indices_id == id(graph.indices) and self.src is not None:
            return
        nslots = graph.indices.shape[0]
        self.src = graph.edge_sources()
        self.dx = np.empty(nslots)
        self.dy = np.empty(nslots)
        self.mag = np.empty(nslots)
        self.t = np.empty(nslots)
        self.out = np.empty((graph.num_vertices, 2))
        self._indices_id = id(graph.indices)


def attractive_forces(
    graph: CSRGraph,
    pos: np.ndarray,
    k: float = 1.0,
    *,
    workspace: Optional[AttractiveWorkspace] = None,
) -> np.ndarray:
    """Spring attraction along edges: ``(c_j − c_i)·‖d‖/K`` summed over
    incident edges, weighted by edge weight (coarse graphs carry
    accumulated weights).

    The per-source scatter is a ``bincount`` segment sum (bit-identical
    to the ``np.add.at`` it replaces — both accumulate in slot order —
    and ~6x faster: ``add.at`` is a buffered per-row scatter).  With a
    ``workspace`` the kernel reuses the slot scratch and the cached
    ``edge_sources`` array, making it allocation-free apart from the
    two ``bincount`` outputs.
    """
    pos = np.asarray(pos, dtype=np.float64)
    n = graph.num_vertices
    if pos.shape != (n, 2):
        raise EmbeddingError(f"pos must be ({n}, 2), got {pos.shape}")
    if k <= 0:
        raise EmbeddingError("K must be positive")
    ws = workspace if workspace is not None else AttractiveWorkspace()
    ws.bind(graph)
    src, dst = ws.src, graph.indices
    px, py = pos[:, 0], pos[:, 1]
    # d = pos[dst] - pos[src], column-wise into reusable buffers
    np.subtract(px[dst], px[src], out=ws.dx)
    np.subtract(py[dst], py[src], out=ws.dy)
    # dist = ||d||; dx² + dy² matches (d*d).sum(axis=1) bit for bit
    np.multiply(ws.dx, ws.dx, out=ws.mag)
    mag = ws.mag
    np.multiply(ws.dy, ws.dy, out=ws.t)
    np.add(mag, ws.t, out=mag)
    np.sqrt(mag, out=mag)
    # |F| = ||d||^2/K; the unit vector contributes another /||d||
    np.divide(mag, k, out=mag)
    np.multiply(mag, graph.ewgt, out=mag)
    np.multiply(ws.dx, mag, out=ws.dx)
    np.multiply(ws.dy, mag, out=ws.dy)
    out = ws.out
    out[:, 0] = np.bincount(src, weights=ws.dx, minlength=n)
    out[:, 1] = np.bincount(src, weights=ws.dy, minlength=n)
    return out


def _attractive_forces_reference(
    graph: CSRGraph, pos: np.ndarray, k: float = 1.0
) -> np.ndarray:
    """Pre-optimisation implementation (``np.add.at`` scatter), kept
    temporarily so the test suite can assert the rewritten kernel is
    bit-identical on every graph family."""
    pos = np.asarray(pos, dtype=np.float64)
    n = graph.num_vertices
    if pos.shape != (n, 2):
        raise EmbeddingError(f"pos must be ({n}, 2), got {pos.shape}")
    if k <= 0:
        raise EmbeddingError("K must be positive")
    src = graph.edge_sources()
    dst = graph.indices
    d = pos[dst] - pos[src]
    dist = np.sqrt((d * d).sum(axis=1))
    mag = dist / k * graph.ewgt
    f = d * mag[:, None]
    out = np.zeros((n, 2))
    np.add.at(out, src, f)
    return out


def repulsive_forces_exact(
    pos: np.ndarray,
    masses: Optional[np.ndarray] = None,
    c: float = DEFAULT_C,
    k: float = 1.0,
) -> np.ndarray:
    """All-pairs repulsion (O(n²), vectorised): ground truth for the
    Barnes–Hut and fixed-lattice approximations, and the scheme actually
    used on the (small) coarsest graph."""
    pos = np.asarray(pos, dtype=np.float64)
    n = pos.shape[0]
    if masses is None:
        masses = np.ones(n)
    masses = np.asarray(masses, dtype=np.float64)
    if n == 0:
        return np.zeros((0, 2))
    d = pos[:, None, :] - pos[None, :, :]  # d[i,j] = ci - cj
    r2 = (d * d).sum(axis=2) + _EPS2
    np.fill_diagonal(r2, np.inf)
    scale = c * k * k * (masses[:, None] * masses[None, :]) / r2
    return (d * scale[:, :, None]).sum(axis=1)


def spring_energy(
    graph: CSRGraph,
    pos: np.ndarray,
    masses: Optional[np.ndarray] = None,
    c: float = DEFAULT_C,
    k: float = 1.0,
) -> float:
    """Total system energy (attractive + repulsive potential).

    Used by Hu's adaptive step-length control: the step shrinks when a
    move fails to decrease energy.  O(n²); only called on small graphs
    and in tests.
    """
    pos = np.asarray(pos, dtype=np.float64)
    n = pos.shape[0]
    if masses is None:
        masses = np.ones(n)
    src = graph.edge_sources()
    d = pos[graph.indices] - pos[src]
    dist = np.sqrt((d * d).sum(axis=1))
    # attractive potential: integral of d^2/K is d^3/(3K); each edge twice
    e_att = float((graph.ewgt * dist**3).sum()) / (6.0 * k)
    if n > 1:
        dd = pos[:, None, :] - pos[None, :, :]
        r = np.sqrt((dd * dd).sum(axis=2) + _EPS2)
        np.fill_diagonal(r, 1.0)  # log(1) = 0: no self-potential
        # repulsive potential: integral of CK^2/d is CK^2 ln d
        e_rep = -float(
            (c * k * k * masses[:, None] * masses[None, :] * np.log(r)).sum()
        ) / 2.0
    else:
        e_rep = 0.0
    return e_att + e_rep
