"""Deterministic random-number utilities.

All stochastic components of the library (random matchings, initial
embeddings, great-circle sampling, synthetic graph generators, the SPMD
simulator's per-rank streams) draw from :class:`numpy.random.Generator`
instances created here, so that every experiment in the benchmark harness
is exactly reproducible from a single integer seed.

Per-rank streams are derived with ``SeedSequence.spawn`` which guarantees
statistical independence between ranks, mirroring how a well-written MPI
code would seed ``rank``-local generators.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]

#: Default seed used across the benchmark harness.
DEFAULT_SEED = 20131117  # SC'13 started November 17 2013.


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an ``int``, a ``SeedSequence`` or an
    existing ``Generator`` (returned unchanged so callers can thread one
    generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_streams(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Create ``n`` independent generators from one seed.

    Used to give each virtual rank of the SPMD machine its own stream.
    When ``seed`` is already a Generator, its internal bit generator's
    seed sequence is spawned, keeping determinism.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} streams")
    if isinstance(seed, np.random.Generator):
        ss = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def derive_seed(seed: SeedLike, *salt: int) -> int:
    """Derive a stable 63-bit integer sub-seed from ``seed`` and ``salt``.

    Different components of a pipeline (coarsening, embedding, circle
    sampling) call this with distinct salts so that changing the number of
    random draws in one component does not perturb the others.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        base = int(seed.generate_state(1, dtype=np.uint64)[0] & 0x7FFFFFFFFFFFFFFF)
    elif seed is None:
        base = DEFAULT_SEED
    else:
        base = int(seed)
    mix = np.random.SeedSequence([base, *[int(s) for s in salt]])
    return int(mix.generate_state(1, dtype=np.uint64)[0] & 0x7FFFFFFFFFFFFFFF)


def permutation(seed: SeedLike, n: int) -> np.ndarray:
    """Deterministic random permutation of ``range(n)``."""
    return as_generator(seed).permutation(n)
