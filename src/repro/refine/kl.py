"""Kernighan–Lin pairwise-swap refinement.

KL [21] predates FM; it swaps *pairs* of vertices (one per side) so
every step preserves balance exactly (for unit vertex weights).  The
paper cites it alongside FM as the classical refinement family; we keep
it as a reference implementation and an ablation baseline — FM
dominates it in practice, which the benchmark ablations confirm.

The pair selection is the standard heuristic: take the highest-gain
candidates of each side and evaluate the ``g_a + g_b − 2·w(a,b)`` swap
gain over the top-``k`` candidates of each side (exact KL examines all
pairs; top-``k`` keeps the step near ``O(k² + deg)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.partition import Bisection

__all__ = ["KLResult", "kl_refine"]


@dataclass(frozen=True)
class KLResult:
    bisection: Bisection
    initial_cut: float
    final_cut: float
    passes: int
    swaps: int


def kl_refine(
    bisection: Bisection,
    max_passes: int = 4,
    top_k: int = 16,
    max_swaps_per_pass: int = 0,
) -> KLResult:
    """Refine with KL swap passes.

    ``max_swaps_per_pass=0`` means up to ``min(n0, n1)`` swaps per pass
    (the classical full pass with rollback to the best prefix).
    """
    g = bisection.graph
    side = bisection.side.astype(np.int8).copy()
    initial = bisection.cut_weight
    total_swaps = 0
    passes = 0
    for _ in range(max_passes):
        passes += 1
        gain, nswaps = _kl_pass(g, side, top_k, max_swaps_per_pass)
        total_swaps += nswaps
        if gain <= 1e-12:
            break
    result = Bisection(g, side)
    return KLResult(result, initial, result.cut_weight, passes, total_swaps)


def _edge_weight_between(g, a: int, b: int) -> float:
    beg, end = g.indptr[a], g.indptr[a + 1]
    nbrs = g.indices[beg:end]
    hit = np.flatnonzero(nbrs == b)
    return float(g.ewgt[beg + hit[0]]) if hit.size else 0.0


def _kl_pass(g, side, top_k: int, max_swaps: int):
    from .fm import _gains

    n = g.num_vertices
    gain = _gains(g, side)
    locked = np.zeros(n, dtype=bool)
    limit = max_swaps or n // 2
    swaps = []
    cum = 0.0
    best = 0.0
    best_idx = 0

    for _ in range(limit):
        cand0 = np.flatnonzero((side == 0) & ~locked)
        cand1 = np.flatnonzero((side == 1) & ~locked)
        if cand0.size == 0 or cand1.size == 0:
            break
        top0 = cand0[np.argsort(gain[cand0])[::-1][:top_k]]
        top1 = cand1[np.argsort(gain[cand1])[::-1][:top_k]]
        best_pair = None
        best_gain = -np.inf
        for a in top0:
            for b in top1:
                sg = gain[a] + gain[b] - 2.0 * _edge_weight_between(g, int(a), int(b))
                if sg > best_gain:
                    best_gain = sg
                    best_pair = (int(a), int(b))
        if best_pair is None:
            break
        a, b = best_pair
        locked[a] = locked[b] = True
        # update gains of unlocked neighbours for both moved vertices
        for v in (a, b):
            old = side[v]
            side[v] = 1 - old
            beg, end = g.indptr[v], g.indptr[v + 1]
            for idx in range(beg, end):
                u = g.indices[idx]
                if locked[u]:
                    continue
                w = g.ewgt[idx]
                gain[u] += 2.0 * w if side[u] == old else -2.0 * w
        cum += best_gain
        swaps.append((a, b))
        if cum > best + 1e-12:
            best = cum
            best_idx = len(swaps)
        if len(swaps) - best_idx > 32:  # stalled
            break

    for a, b in swaps[best_idx:]:
        side[a] = 1 - side[a]
        side[b] = 1 - side[b]
    return best, best_idx
