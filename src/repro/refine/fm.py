"""Fiduccia–Mattheyses bisection refinement.

The paper applies FM [7] in two places: the strip refinement of
ScalaPart ("such refinement is known to reduce the size of the edge
separator", §3) and inside the multilevel baselines (ParMetis/Pt-Scotch
refine every uncoarsening level with FM-family passes).

This implementation is *boundary FM* with balance constraints:

* the gain of moving ``v`` to the other side is ``ED(v) − ID(v)``
  (external minus internal incident edge weight);
* candidates start at the cut boundary and grow as moves create new
  boundary vertices — interior vertices are never examined, keeping a
  pass near ``O(cut · log n)`` instead of ``O(n log n)``;
* a pass tentatively moves vertices in best-gain-first order (each
  vertex at most once per pass), tracking the best prefix that satisfies
  the balance constraint, then rolls back to it;
* gains live in a lazy max-heap (stale entries are skipped on pop),
  which supports the float edge weights produced by contraction without
  the integer-bucket restriction of the original FM.

``movable`` restricts moves to a vertex subset — exactly what the strip
refinement needs (only strip vertices may move; the rest of the graph
is frozen but still contributes to gains through its edges).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CSRGraph
from ..graph.partition import Bisection

__all__ = ["FMResult", "fm_refine"]


@dataclass(frozen=True)
class FMResult:
    """Outcome of :func:`fm_refine`."""

    bisection: Bisection
    initial_cut: float
    final_cut: float
    passes: int
    moves: int

    @property
    def improvement(self) -> float:
        return self.initial_cut - self.final_cut


def fm_refine(
    bisection: Bisection,
    max_imbalance: float = 0.05,
    max_passes: int = 8,
    movable: Optional[np.ndarray] = None,
    stall_limit: Optional[int] = None,
) -> FMResult:
    """Refine a bisection with FM passes.

    Parameters
    ----------
    max_imbalance:
        allowed ``imbalance`` of the result (see
        :func:`repro.graph.partition.imbalance`).  If the input is
        *more* unbalanced than this, moves that reduce imbalance are
        preferred until the constraint is met.
    max_passes:
        passes run until one yields no improvement (at most this many).
    movable:
        boolean mask of vertices allowed to move (default: all).
    stall_limit:
        abandon a pass after this many consecutive non-improving moves
        (default ``max(64, n // 50)``); bounds pass cost on large graphs.
    """
    g = bisection.graph
    n = g.num_vertices
    if movable is not None:
        movable = np.asarray(movable, dtype=bool)
        if movable.shape != (n,):
            raise PartitionError("movable mask must have one entry per vertex")
    if max_imbalance < 0:
        raise PartitionError("max_imbalance must be nonnegative")
    if stall_limit is None:
        stall_limit = max(64, n // 50)

    side = bisection.side.astype(np.int8).copy()
    indptr, indices, ewgt, vwgt = g.indptr, g.indices, g.ewgt, g.vwgt
    total_w = g.total_vertex_weight
    w_limit = (1.0 + max_imbalance) * total_w / 2.0

    cut = bisection.cut_weight
    initial_cut = cut
    total_moves = 0
    passes = 0

    for _ in range(max_passes):
        passes += 1
        improved = _fm_pass(
            g, side, indptr, indices, ewgt, vwgt, total_w, w_limit,
            movable, stall_limit,
        )
        total_moves += improved[1]
        if improved[0] <= 1e-12:
            break

    result = Bisection(g, side)
    return FMResult(
        bisection=result,
        initial_cut=initial_cut,
        final_cut=result.cut_weight,
        passes=passes,
        moves=total_moves,
    )


def _gains(g: CSRGraph, side: np.ndarray) -> np.ndarray:
    """ED − ID for every vertex (vectorised)."""
    src = g.edge_sources()
    ext = side[src] != side[g.indices]
    signed = np.where(ext, g.ewgt, -g.ewgt)
    return np.bincount(src, weights=signed, minlength=g.num_vertices)


def _fm_pass(
    g, side, indptr, indices, ewgt, vwgt, total_w, w_limit, movable, stall_limit
):
    """One FM pass; mutates ``side`` in place.

    Returns ``(improvement, accepted_moves)``.
    """
    n = g.num_vertices
    gain = _gains(g, side)
    w1 = float(vwgt[side == 1].sum())
    w0 = total_w - w1

    # candidate heap entries: (-gain, v); stale entries skipped via stamp
    stamp = np.zeros(n, dtype=np.int64)
    locked = np.zeros(n, dtype=bool)
    heap: list = []

    def push(v: int) -> None:
        if movable is not None and not movable[v]:
            return
        heapq.heappush(heap, (-gain[v], v, int(stamp[v])))

    # seed with current boundary vertices
    src = g.edge_sources()
    boundary = np.unique(src[side[src] != side[indices]])
    for v in boundary:
        push(int(v))

    moves: list = []
    cum = 0.0
    best = 0.0
    best_idx = 0
    since_best = 0
    # when the input violates the balance constraint, the pass may also
    # accept a prefix purely because it improves balance (rebalancing)
    init_maxw = max(w0, w1)
    best_feasible = init_maxw <= w_limit
    best_maxw = init_maxw

    while heap and since_best < stall_limit:
        ng, v, st = heapq.heappop(heap)
        if locked[v] or st != stamp[v]:
            continue
        gv = -ng
        # balance feasibility of moving v off its side
        if side[v] == 0:
            nw0, nw1 = w0 - vwgt[v], w1 + vwgt[v]
        else:
            nw0, nw1 = w0 + vwgt[v], w1 - vwgt[v]
        if max(nw0, nw1) > w_limit and max(nw0, nw1) >= max(w0, w1):
            # move would worsen an already-tight balance; skip permanently
            # for this pass (vertex may reappear via gain updates)
            locked[v] = True
            continue
        # apply tentative move
        locked[v] = True
        old = side[v]
        side[v] = 1 - old
        w0, w1 = nw0, nw1
        cum += gv
        moves.append(v)
        # update neighbour gains
        beg, end = indptr[v], indptr[v + 1]
        for idx in range(beg, end):
            u = indices[idx]
            if locked[u]:
                continue
            w = ewgt[idx]
            if side[u] == old:
                gain[u] += 2.0 * w
            else:
                gain[u] -= 2.0 * w
            stamp[u] += 1
            push(int(u))
        feasible = max(w0, w1) <= w_limit
        record = False
        if feasible:
            if not best_feasible or cum > best + 1e-12:
                record = True
        elif not best_feasible and max(w0, w1) < best_maxw - 1e-12:
            # both prefixes infeasible: prefer the better-balanced one
            record = True
        if record:
            best = cum
            best_idx = len(moves)
            best_feasible = feasible
            best_maxw = max(w0, w1)
            since_best = 0
        else:
            since_best += 1

    # roll back to the best prefix
    for v in moves[best_idx:]:
        side[v] = 1 - side[v]
    improvement = max(best, init_maxw - best_maxw)
    return improvement, best_idx
