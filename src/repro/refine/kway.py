"""Greedy boundary k-way refinement.

The k-way analogue of the strip/FM refinement: after a direct or
recursive k-way partition, vertices on part boundaries are greedily
moved to the neighbouring part they are most connected to.  The gain of
moving ``v`` from part ``a`` to part ``b`` is the cut delta

    gain(v, a -> b) = w(v, b) − w(v, a)

where ``w(v, p)`` is the weight of edges from ``v`` into part ``p``
(so positive gain strictly reduces the weighted cut).  Moves respect a
CostModel-weighted balance constraint: a target part may not exceed
``(1 + max_imbalance) · total_cost / k``.

When the *input* violates the constraint (e.g. a geometric assignment
that did not fully converge), the pass runs in rebalancing mode for
overloaded parts: the best move out of an overloaded part is accepted
even at negative gain, provided it strictly shrinks the heavier side of
the exchange — a potential argument that rules out ping-pong cycles, so
passes always terminate.

Each pass examines the current boundary in best-gain-first order
(deterministic: ties break on vertex id), moves each vertex at most
once, and recomputes gains against the live labelling so earlier moves
in the pass are accounted for.  Passes repeat until one accepts no
move.

The greedy sweep only accepts positive-gain single moves, so it stalls
in shallow local minima (it cannot straighten a jagged boundary where
every single move is neutral or negative).  A *pairwise FM* phase
escapes those: for every adjacent part pair, the pair's induced
subgraph is refined with the hill-climbing 2-way FM
(:func:`repro.refine.fm.fm_refine`) under the global per-part cost
limit mapped onto the pair.  A pair's result is accepted only if the
*global* cut strictly drops — FM on the pair subgraph cannot see edges
leaving the pair, so its local improvement is checked against the true
cut delta before committing.  Accepted labellings are monotone in the
global cut, which keeps the phase deterministic and terminating.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PartitionError
from ..graph.partition import KWayPartition, kway_cut_weight

__all__ = ["KWayRefineResult", "kway_refine"]


@dataclass(frozen=True)
class KWayRefineResult:
    """Outcome of :func:`kway_refine`."""

    partition: KWayPartition
    initial_cut: float
    final_cut: float
    passes: int
    moves: int

    @property
    def improvement(self) -> float:
        return self.initial_cut - self.final_cut


def kway_refine(
    partition: KWayPartition,
    max_imbalance: float = 0.05,
    max_passes: int = 8,
    pairwise_rounds: int = 3,
) -> KWayRefineResult:
    """Refine a k-way partition with greedy boundary passes.

    Parameters
    ----------
    max_imbalance:
        allowed cost imbalance of the result (measured against the
        partition's cost array — ``graph.vwgt`` unless a CostModel
        array was attached).  If the input exceeds it, rebalancing
        moves are preferred until the constraint is met or no boundary
        move can improve it.
    max_passes:
        greedy passes run until one accepts no move (at most this many).
    pairwise_rounds:
        rounds of pairwise FM over adjacent part pairs after the greedy
        sweeps (0 disables the phase); each round stops early when no
        pair improves the global cut.
    """
    if max_imbalance < 0:
        raise PartitionError(f"max_imbalance must be >= 0, got {max_imbalance}")
    if max_passes < 0:
        raise PartitionError(f"max_passes must be >= 0, got {max_passes}")
    if pairwise_rounds < 0:
        raise PartitionError(
            f"pairwise_rounds must be >= 0, got {pairwise_rounds}"
        )
    g = partition.graph
    k = partition.k
    costs = partition.balance_costs
    parts = partition.parts.astype(np.int64)  # writable working copy
    initial_cut = kway_cut_weight(g, parts)

    total = float(costs.sum())
    limit = (1.0 + max_imbalance) * total / k if total > 0 else 0.0
    part_cost = np.bincount(parts, weights=costs, minlength=k)

    def greedy_sweeps() -> int:
        nonlocal passes, moves
        accepted_total = 0
        for _ in range(max_passes):
            if k < 2 or g.num_edges == 0:
                break
            accepted = _kway_pass(g, parts, costs, part_cost, k, limit)
            passes += 1
            moves += accepted
            accepted_total += accepted
            if accepted == 0:
                break
        return accepted_total

    passes = 0
    moves = 0
    greedy_sweeps()
    if pairwise_rounds > 0 and k >= 2 and g.num_edges > 0:
        pair_moves = _pairwise_fm(g, parts, costs, part_cost, k, limit,
                                  pairwise_rounds)
        if pair_moves:
            moves += pair_moves
            greedy_sweeps()

    refined = partition.with_parts(parts)
    return KWayRefineResult(
        partition=refined,
        initial_cut=initial_cut,
        final_cut=kway_cut_weight(g, parts),
        passes=passes,
        moves=moves,
    )


def _kway_pass(g, parts, costs, part_cost, k, limit) -> int:
    """One boundary sweep; mutates ``parts``/``part_cost`` in place."""
    indptr, indices, ewgt = g.indptr, g.indices, g.ewgt
    src = g.edge_sources()
    crossing = parts[src] != parts[indices]
    boundary = np.unique(src[crossing])
    if boundary.size == 0:
        return 0

    # initial connectivity of the boundary, used only to order the sweep
    pos = np.full(g.num_vertices, -1, dtype=np.int64)
    pos[boundary] = np.arange(boundary.size)
    mask = pos[src] >= 0
    conn = np.zeros((boundary.size, k))
    np.add.at(conn, (pos[src[mask]], parts[indices[mask]]), ewgt[mask])
    own = parts[boundary]
    rows = np.arange(boundary.size)
    own_conn = conn[rows, own].copy()
    conn[rows, own] = -np.inf
    best_gain = conn.max(axis=1) - own_conn
    order = np.lexsort((boundary, -best_gain))  # gain desc, id asc

    accepted = 0
    for i in order:
        v = int(boundary[i])
        a = int(parts[v])
        cv = float(costs[v])
        nbrs = indices[indptr[v]:indptr[v + 1]]
        if nbrs.size == 0:
            continue
        # live connectivity row (earlier moves in this pass count)
        row = np.bincount(parts[nbrs], weights=ewgt[indptr[v]:indptr[v + 1]],
                         minlength=k)
        gains = row - row[a]
        over = part_cost[a] > limit
        feasible = part_cost + cv <= limit
        if over:
            # rebalancing: also allow targets that strictly shrink the
            # heavier side of the exchange (monotone, so no ping-pong)
            feasible |= part_cost + cv < part_cost[a]
        feasible[a] = False
        if not feasible.any():
            continue
        cand_gain = np.where(feasible, gains, -np.inf)
        best = cand_gain.max()
        if not (best > 1e-12 or over):
            continue
        # deterministic target: best gain, then lightest part, then id
        tied = np.flatnonzero(cand_gain >= best - 1e-12)
        b = int(tied[np.lexsort((tied, part_cost[tied]))[0]])
        parts[v] = b
        part_cost[a] -= cv
        part_cost[b] += cv
        accepted += 1
    return accepted


def _pairwise_fm(g, parts, costs, part_cost, k, limit, rounds,
                 fm_passes: int = 4) -> int:
    """Pairwise FM rounds; mutates ``parts``/``part_cost`` in place.

    Pairs are visited heaviest-shared-boundary first (deterministic:
    ties break on the pair indices).  A pair's refined labelling is
    committed only when the *global* cut delta — evaluated over the
    directed edges touching the moved vertices — is strictly negative.
    """
    from ..graph.csr import CSRGraph
    from ..graph.partition import Bisection
    from .fm import fm_refine

    src = g.edge_sources()
    dst = g.indices
    ewgt = g.ewgt
    touch = np.zeros(g.num_vertices, dtype=bool)
    moves = 0
    for _ in range(rounds):
        pa, pb = parts[src], parts[dst]
        crossing = pa != pb
        shared = np.zeros((k, k))
        np.add.at(shared, (pa[crossing], pb[crossing]), ewgt[crossing])
        shared = shared + shared.T
        pairs = [(a, b) for a in range(k) for b in range(a + 1, k)
                 if shared[a, b] > 0]
        pairs.sort(key=lambda ab: (-shared[ab[0], ab[1]], ab))
        improved = False
        for a, b in pairs:
            ids = np.flatnonzero((parts == a) | (parts == b))
            if ids.size < 2:
                continue
            sub, sub_ids = g.subgraph(ids)
            pair_costs = np.ascontiguousarray(costs[sub_ids])
            pair_total = float(pair_costs.sum())
            if pair_total <= 0:
                continue
            # balance the pair under the *global* per-part limit: each
            # side of the pair bisection is one of the k parts
            eps = max(0.0, 2.0 * limit / pair_total - 1.0)
            side = (parts[sub_ids] == b).astype(np.int8)
            cost_sub = CSRGraph(sub.indptr, sub.indices, sub.ewgt,
                                pair_costs, validate=False)
            fr = fm_refine(Bisection(cost_sub, side), max_imbalance=eps,
                           max_passes=fm_passes)
            new_side = fr.bisection.side
            changed = sub_ids[new_side != side]
            if changed.size == 0:
                continue
            # true cut delta: only directed edges touching a moved
            # vertex can change crossing status
            touch[changed] = True
            esel = np.flatnonzero(touch[src] | touch[dst])
            touch[changed] = False
            w = ewgt[esel]
            old_cut = float(w[parts[src[esel]] != parts[dst[esel]]].sum())
            saved = parts[sub_ids]  # fancy indexing copies
            parts[sub_ids] = np.where(new_side == 1, b, a)
            new_cut = float(w[parts[src[esel]] != parts[dst[esel]]].sum())
            if new_cut < old_cut - 1e-12:
                part_cost[a] = float(pair_costs[new_side == 0].sum())
                part_cost[b] = float(pair_costs[new_side == 1].sum())
                moves += int(changed.size)
                improved = True
            else:
                parts[sub_ids] = saved
        if not improved:
            break
    return moves
