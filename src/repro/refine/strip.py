"""Coordinate-strip extraction and strip-restricted FM refinement.

ScalaPart's refinement (paper §3, Figure 2): after the geometric
partitioner picks its best separating circle, "we select circles
neighboring the separating circle to identify a strip" — the set of
vertices whose (signed) distance to the separator is small — and apply
Fiduccia–Mattheyses restricted to that strip.  The paper notes the strip
"contains a small multiple of the number of vertices in the edge
separator" (5.6× in Figure 2), so the refinement cost is negligible.

This differs from Pt-Scotch's band graph only in how the band is
selected: by *coordinate distance* to the separator instead of by hop
count from cut edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PartitionError
from ..graph.partition import Bisection
from .fm import FMResult, fm_refine

__all__ = ["StripResult", "strip_mask", "strip_refine"]


@dataclass(frozen=True)
class StripResult:
    """Outcome of :func:`strip_refine`."""

    bisection: Bisection
    strip_size: int
    separator_vertices: int
    initial_cut: float
    final_cut: float

    @property
    def strip_factor(self) -> float:
        """Strip size as a multiple of the separator vertex count
        (Figure 2 reports 5.6 for delaunay_n16)."""
        if self.separator_vertices == 0:
            return 0.0
        return self.strip_size / self.separator_vertices


def strip_mask(
    signed_distance: np.ndarray,
    bisection: Bisection,
    factor: float = 6.0,
    min_size: int = 32,
) -> np.ndarray:
    """Boolean mask of the strip around the separator.

    Takes the vertices closest to the separating surface (smallest
    ``|signed_distance|``) until the strip holds ``factor`` times the
    number of separator vertices (at least ``min_size``); all boundary
    vertices are always included so FM can move every cut endpoint.
    """
    sdist = np.asarray(signed_distance, dtype=np.float64)
    n = bisection.graph.num_vertices
    if sdist.shape != (n,):
        raise PartitionError("signed_distance must have one entry per vertex")
    if factor <= 0:
        raise PartitionError("strip factor must be positive")
    boundary = bisection.boundary_vertices()
    target = int(min(n, max(min_size, factor * boundary.shape[0])))
    mask = np.zeros(n, dtype=bool)
    if target > 0:
        nearest = np.argpartition(np.abs(sdist), min(target, n) - 1)[:target]
        mask[nearest] = True
    mask[boundary] = True
    return mask


def strip_refine(
    bisection: Bisection,
    signed_distance: np.ndarray,
    factor: float = 6.0,
    max_imbalance: float = 0.05,
    max_passes: int = 6,
) -> StripResult:
    """FM refinement restricted to the coordinate strip.

    Vertices outside the strip are frozen: they contribute to gains
    through their edges but never move, so the refinement cost scales
    with the separator size, not the graph size.
    """
    mask = strip_mask(signed_distance, bisection, factor=factor)
    sep = bisection.boundary_vertices().shape[0]
    fm: FMResult = fm_refine(
        bisection,
        max_imbalance=max_imbalance,
        max_passes=max_passes,
        movable=mask,
    )
    return StripResult(
        bisection=fm.bisection,
        strip_size=int(mask.sum()),
        separator_vertices=sep,
        initial_cut=fm.initial_cut,
        final_cut=fm.final_cut,
    )
