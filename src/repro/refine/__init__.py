"""Partition refinement: Fiduccia–Mattheyses, Kernighan–Lin, strips,
greedy boundary k-way."""

from .fm import FMResult, fm_refine
from .kl import KLResult, kl_refine
from .kway import KWayRefineResult, kway_refine
from .strip import StripResult, strip_mask, strip_refine

__all__ = [
    "FMResult",
    "fm_refine",
    "KLResult",
    "kl_refine",
    "KWayRefineResult",
    "kway_refine",
    "StripResult",
    "strip_mask",
    "strip_refine",
]
