"""Partition refinement: Fiduccia–Mattheyses, Kernighan–Lin, strips."""

from .fm import FMResult, fm_refine
from .kl import KLResult, kl_refine
from .strip import StripResult, strip_mask, strip_refine

__all__ = [
    "FMResult",
    "fm_refine",
    "KLResult",
    "kl_refine",
    "StripResult",
    "strip_mask",
    "strip_refine",
]
