"""Comparator partitioners: RCB, multilevel analogues, spectral."""

from .multilevel import (
    band_mask,
    greedy_graph_growing,
    multilevel_bisection,
    parmetis_like,
    scotch_like,
)
from .rcb import rcb_bisect, rcb_grid_map, rcb_labels
from .spectral import fiedler_vector, spectral_bisect

__all__ = [
    "band_mask",
    "greedy_graph_growing",
    "multilevel_bisection",
    "parmetis_like",
    "scotch_like",
    "rcb_bisect",
    "rcb_grid_map",
    "rcb_labels",
    "fiedler_vector",
    "spectral_bisect",
]
