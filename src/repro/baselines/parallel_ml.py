"""Distributed multilevel partitioners (ParMetis-like / Pt-Scotch-like)
and distributed RCB — the comparison set of the paper's Figures 3–6/9.

ParMetis-like
    Fully parallel pipeline: distributed matching/contraction at every
    level (classic ~2× halving, rank folding), greedy graph-growing +
    FM initial partition on the (tiny) coarsest graph at the subtree
    root, then per level a few rounds of *parallel greedy boundary
    refinement*: alternating one-directional passes in which every rank
    flips its owned positive-gain boundary vertices within a balance
    budget, followed by an exchange of the flips.  One-directional
    passes are ParMetis's own device against flip conflicts.  Quality
    is below sequential FM — the price of parallel refinement the paper
    highlights for ParMetis.

Pt-Scotch-like
    Same skeleton, but refinement is *multi-sequential band FM* — the
    signature Pt-Scotch technique: the band around the cut is gathered
    to one rank, refined with full sequential FM there, and the result
    is broadcast.  Cuts are the best of the parallel methods, but each
    level carries an irreducible serial component, which is exactly why
    its scaling collapses at high processor counts (Fig 3).

RCB
    Coordinate median via a histogram allreduce: two collectives and a
    local scan — the fastest method end to end (Fig 3), quality last
    (Table 3).
"""

from __future__ import annotations


import numpy as np

from ..coarsen.parallel import dist_build_hierarchy
from ..graph.csr import CSRGraph
from ..graph.distributed import adjacency_slots, block_of, block_starts
from ..graph.partition import Bisection
from ..parallel.engine import Comm
from ..parallel.patterns import allgather_concat, share_from_root
from ..refine import fm_refine
from ..rng import SeedLike, derive_seed
from .multilevel import band_mask, greedy_graph_growing

__all__ = ["dist_multilevel_bisection", "dist_parmetis_like",
           "dist_scotch_like", "dist_rcb_bisect"]

_HIST_BINS = 128


# ----------------------------------------------------------------------
# parallel greedy boundary refinement (ParMetis style)
# ----------------------------------------------------------------------

def _refine_round(comm: Comm, graph: CSRGraph, side: np.ndarray,
                  direction: int, max_imbalance: float):
    """One one-directional parallel refinement pass.

    Every rank flips owned boundary vertices on side ``direction`` with
    positive gain, subject to its share of the global balance budget;
    flips are then exchanged so all ranks converge on the same labels.
    ``side`` (a rank-local full-length array) is updated in place.
    """
    n = graph.num_vertices
    p = comm.size
    starts = block_starts(n, p)
    lo, hi = block_of(starts, comm.rank)
    owned = np.arange(lo, hi, dtype=np.int64)
    src_pos, src, dst, w = adjacency_slots(graph, owned)

    # balance budget: how much weight may leave `direction` globally.
    # Every rank applied the same flip stream, so the part weights are
    # derivable locally — real implementations likewise track weights
    # incrementally from the flip updates instead of re-reducing.
    w1 = float(graph.vwgt[side == 1].sum())
    comm.charge(float(graph.num_vertices) / p)
    total = graph.total_vertex_weight
    w_from = w1 if direction == 1 else total - w1
    w_to = total - w_from
    limit = (1.0 + max_imbalance) * total / 2.0
    global_budget = max(0.0, limit - w_to)
    budget = global_budget / p
    # when the global budget is positive but the per-rank share rounds
    # below one vertex, one rotating rank gets the leftover so progress
    # never stalls — without letting P ranks each overshoot by a vertex
    if global_budget > 0 and comm.rank == direction % p:
        budget += graph.vwgt.max()

    # gains of owned vertices on the moving side (vectorised)
    ext = side[dst] != side[src]
    signed = np.where(ext, w, -w)
    gain = np.bincount(src_pos, weights=signed, minlength=hi - lo)
    movable = (side[lo:hi] == direction) & (gain > 1e-12)
    comm.charge(float(dst.shape[0]) + (hi - lo))
    cand = np.flatnonzero(movable)
    flips = np.zeros(0, dtype=np.int64)
    if cand.size:
        order = cand[np.argsort(gain[cand])[::-1]]
        weights = graph.vwgt[lo:hi][order]
        take = np.cumsum(weights) <= budget
        flips = owned[order[take]]
    all_flips = yield from allgather_concat(comm, flips)
    side[all_flips] = 1 - direction
    comm.charge(float(all_flips.shape[0]))
    # ghost consistency: under a block distribution of an arbitrarily
    # ordered graph, the owners of a boundary vertex's neighbours are
    # scattered, so every pass ends with an irregular many-peer update
    # of ghost labels plus a move-count reduction (termination test)
    b = float(max(1, all_flips.shape[0])) / p
    comm.charge_comm_seconds(
        comm.machine.exchange_cost(min(p - 1, 16), b, b)
    )
    return int(all_flips.shape[0])


def dist_multilevel_bisection(
    comm: Comm,
    graph: CSRGraph,
    *,
    seed: SeedLike = None,
    coarsest_size: int = 64,
    max_imbalance: float = 0.05,
    rounds_per_level: int = 2,
    band_refine: bool = False,
    band_hops: int = 3,
    band_fm_passes: int = 8,
    initial_trials: int = 4,
    name: str = "dist-multilevel",
):
    """Rank program: distributed multilevel bisection.

    Returns ``(side, info)``; ``side`` is a full-length label array
    (identical content on every rank).
    """
    comm.set_phase("coarsen")
    graphs, cmaps = yield from dist_build_hierarchy(
        comm, graph, coarsest_size=coarsest_size, keep_every_other=False
    )

    comm.set_phase("initial")
    coarsest = graphs[-1]
    result = None
    if comm.rank == 0:
        bis = greedy_graph_growing(
            coarsest, seed=derive_seed(seed, 0x161), trials=initial_trials
        )
        bis = fm_refine(bis, max_imbalance=max_imbalance, max_passes=6).bisection
        result = bis.side
    nk = coarsest.num_vertices
    comm.charge(float(initial_trials * coarsest.indices.shape[0] + 6 * nk) / comm.size)
    side_coarse = yield from share_from_root(comm, result, words=float(nk) / 8)

    comm.set_phase("uncoarsen")
    side = np.asarray(side_coarse, dtype=np.int8).copy()
    for level in range(len(graphs) - 1, 0, -1):
        g = graphs[level - 1]
        side = side[cmaps[level - 1]].copy()
        comm.charge(float(g.num_vertices) / comm.size)
        if band_refine:
            # Pt-Scotch multi-sequential band FM: gather the band to the
            # root, refine sequentially, broadcast the result
            res = None
            if comm.rank == 0:
                bis = Bisection(g, side)
                mask = band_mask(bis, band_hops)
                refined = fm_refine(
                    bis, max_imbalance=max_imbalance,
                    max_passes=band_fm_passes, movable=mask,
                    stall_limit=max(64, 4 * g.num_vertices // 50),
                )
                # serial bottleneck: each FM pass re-walks the band's
                # adjacency (gain updates + heap traffic); charged
                # undivided at the root — the multi-sequential step that
                # caps Pt-Scotch's scaling
                band_ids = np.flatnonzero(mask)
                band_slots = float(
                    (g.indptr[band_ids + 1] - g.indptr[band_ids]).sum()
                )
                comm.charge(band_fm_passes * 4.0 * (band_slots + mask.sum()))
                res = (refined.bisection.side, int(mask.sum()))
            # the multi-sequential scheme synchronises the duplicated
            # band computations once per FM pass, not once per level
            for _ in range(band_fm_passes - 1):
                yield from comm.barrier()
            guess_band = max(64.0, float(g.num_vertices) * 0.1)
            side_new, _band_n = (yield from share_from_root(
                comm, res, words=guess_band
            ))
            side = np.asarray(side_new, dtype=np.int8).copy()
        else:
            for rnd in range(rounds_per_level):
                yield from _refine_round(
                    comm, g, side, direction=rnd % 2,
                    max_imbalance=max_imbalance,
                )
    info = {"levels": len(graphs), "method": name}
    return side, info


def dist_parmetis_like(comm: Comm, graph: CSRGraph, seed: SeedLike = None,
                       max_imbalance: float = 0.05):
    """Distributed ParMetis analogue (parallel greedy refinement)."""
    # 2 refinement iterations of 2 one-directional passes each, as in
    # ParMetis' greedy refinement
    return (yield from dist_multilevel_bisection(
        comm, graph, seed=seed, max_imbalance=max_imbalance,
        rounds_per_level=4, band_refine=False, initial_trials=2,
        name="ParMetis-like",
    ))


def dist_scotch_like(comm: Comm, graph: CSRGraph, seed: SeedLike = None,
                     max_imbalance: float = 0.05):
    """Distributed Pt-Scotch analogue (multi-sequential band FM)."""
    return (yield from dist_multilevel_bisection(
        comm, graph, seed=seed, max_imbalance=max_imbalance,
        band_refine=True, band_hops=3, band_fm_passes=8, initial_trials=6,
        name="Pt-Scotch-like",
    ))


# ----------------------------------------------------------------------
# distributed RCB
# ----------------------------------------------------------------------

def dist_rcb_bisect(comm: Comm, graph: CSRGraph, coords: np.ndarray,
                    tolerance: float = 1e-4, max_rounds: int = 40):
    """Rank program: one parallel RCB cut, Zoltan style.

    Zoltan finds the weighted median by *iterative bisection search on
    the cut plane*: each round all ranks count the weight below the
    trial plane (one allreduce) and the interval halves until the two
    halves balance within ``tolerance``.  That communication schedule —
    tens of one-word allreduces — is precisely why the paper's
    SP-PG7-NL (three reductions total) overtakes RCB beyond ~128
    processors (Figure 4).

    ``coords`` is a shared read-only reference; each rank works on its
    owned block.  Returns ``(side, info)``.
    """
    n = graph.num_vertices
    p = comm.size
    starts = block_starts(n, p)
    lo, hi = block_of(starts, comm.rank)
    own = coords[lo:hi]
    vw = graph.vwgt[lo:hi]

    # global extents (one allreduce), widest axis
    if own.shape[0]:
        local = np.array([own[:, 0].min(), own[:, 1].min(),
                          -own[:, 0].max(), -own[:, 1].max()])
    else:
        local = np.full(4, np.inf)
    ext = yield from comm.allreduce(local, op="min", words=4)
    span = np.array([-ext[2] - ext[0], -ext[3] - ext[1]])
    axis = int(np.argmax(span))
    lo_v, hi_v = float(ext[axis]), float(-ext[axis + 2])

    total = graph.total_vertex_weight
    half = total / 2.0
    vals = own[:, axis]
    rounds = 0
    threshold = (lo_v + hi_v) / 2.0
    for rounds in range(1, max_rounds + 1):
        threshold = (lo_v + hi_v) / 2.0
        below_local = float(vw[vals <= threshold].sum())
        comm.charge(float(hi - lo))
        below = yield from comm.allreduce(below_local, words=1)
        if abs(below - half) <= tolerance * total:
            break
        if below < half:
            lo_v = threshold
        else:
            hi_v = threshold

    side_own = (vals > threshold).astype(np.int8)
    side = yield from allgather_concat(comm, side_own)
    return side, {"axis": axis, "threshold": float(threshold),
                  "median_rounds": rounds}
