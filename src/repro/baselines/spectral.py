"""Spectral bisection (Fiedler-vector baseline).

Not one of the paper's evaluated methods, but the classical reference
the background section points to ("spectral, multilevel and geometric
schemes") — and the method whose eigenvector cost motivates ScalaPart
to avoid line separators ("our parallel partitioner ... avoids the
eigenvector calculation needed for a line separator in the interests of
parallel scalability").  Included as an extra quality baseline and for
the ablation benchmarks.
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from ..results import PartitionResult
from ..errors import PartitionError
from ..geometric.circles import median_split
from ..graph.csr import CSRGraph
from ..graph.partition import Bisection
from ..refine import fm_refine
from ..rng import SeedLike, as_generator

__all__ = ["fiedler_vector", "spectral_bisect"]


def fiedler_vector(graph: CSRGraph, seed: SeedLike = None, tol: float = 1e-6) -> np.ndarray:
    """Second-smallest Laplacian eigenvector via LOBPCG (with a dense
    fallback for tiny graphs)."""
    import scipy.sparse as sp
    from scipy.sparse.linalg import lobpcg

    n = graph.num_vertices
    if n < 3:
        return np.zeros(n)
    adj = graph.to_scipy()
    deg = np.asarray(adj.sum(axis=1)).ravel()
    lap = sp.diags(deg) - adj
    if n <= 400:
        w, v = np.linalg.eigh(lap.toarray())
        return v[:, 1]
    rng = as_generator(seed)
    x = rng.normal(size=(n, 2))
    x[:, 0] = 1.0  # include the trivial eigenvector to deflate it
    try:
        # LOBPCG warns (UserWarning) when it stops at maxiter without
        # reaching tol; the iterate it returns is still accurate enough
        # for a median split, and the dense fallback below covers real
        # failures — so the warning is noise here, not a signal.
        with warnings.catch_warnings():
            warnings.filterwarnings(
                "ignore",
                message=".*not reaching the requested tolerance.*",
                category=UserWarning,
            )
            warnings.filterwarnings(
                "ignore",
                message=".*Exited at iteration.*",
                category=UserWarning,
            )
            warnings.filterwarnings(
                "ignore",
                message=".*Exited postprocessing.*",
                category=UserWarning,
            )
            w, v = lobpcg(lap.tocsr(), x, tol=tol, maxiter=300, largest=False)
        order = np.argsort(w)
        fied = v[:, order[1]]
    except Exception:  # LOBPCG can fail to converge on tough spectra
        w, v = np.linalg.eigh(lap.toarray())
        fied = v[:, 1]
    # deflate any residual constant component
    return fied - fied.mean()


def spectral_bisect(
    graph: CSRGraph,
    seed: SeedLike = None,
    max_imbalance: float = 0.05,
    refine: bool = True,
) -> PartitionResult:
    """Median split of the Fiedler vector, optionally FM-polished."""
    if graph.num_vertices < 2:
        raise PartitionError("cannot bisect fewer than 2 vertices")
    t0 = time.perf_counter()
    fied = fiedler_vector(graph, seed=seed)
    side, sdist = median_split(fied, graph.vwgt)
    bis = Bisection(graph, side)
    if refine:
        bis = fm_refine(bis, max_imbalance=max_imbalance, max_passes=4).bisection
    return PartitionResult(
        bisection=bis,
        method="Spectral",
        seconds=time.perf_counter() - t0,
        extras={"sdist": sdist},
    )
