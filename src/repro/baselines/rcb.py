"""Recursive coordinate bisection (the Zoltan RCB baseline).

RCB [1, 2] splits a coordinate-bearing point set at the weighted median
of its widest axis, recursively.  The paper uses it in two roles, both
reimplemented here:

* as a *partitioner baseline* (one median cut for the bisection
  experiments — fast, but cut quality suffers on non-grid geometry);
* inside ScalaPart's multilevel projection, "we apply a recursive
  coordinate bisection scheme such as the one in Zoltan to map vertices
  of G^k ... to some p^k × q^k processor grid" — that mapping is
  :func:`rcb_grid_map`.
"""

from __future__ import annotations

import time
from typing import Tuple

import numpy as np

from ..errors import GeometryError
from ..geometric.circles import median_split
from ..graph.csr import CSRGraph
from ..graph.partition import Bisection
from ..results import PartitionResult

__all__ = ["rcb_bisect", "rcb_labels", "rcb_grid_map"]


def _widest_axis(coords: np.ndarray) -> int:
    span = coords.max(axis=0) - coords.min(axis=0) if coords.size else np.zeros(2)
    return int(np.argmax(span))


def rcb_bisect(
    graph: CSRGraph, coords: np.ndarray, seed=None
) -> PartitionResult:
    """One RCB cut: weighted-median split along the widest axis.

    ``seed`` is accepted for harness uniformity but unused — RCB is
    deterministic, which is why the paper reports a single cut-size for
    it rather than a range.
    """
    n = graph.num_vertices
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape != (n, 2):
        raise GeometryError(f"coords must be ({n}, 2), got {coords.shape}")
    t0 = time.perf_counter()
    axis = _widest_axis(coords)
    side, sdist = median_split(coords[:, axis], graph.vwgt)
    bis = Bisection(graph, side)
    return PartitionResult(
        bisection=bis,
        method="RCB",
        seconds=time.perf_counter() - t0,
        extras={"axis": axis, "sdist": sdist},
    )


def rcb_labels(
    coords: np.ndarray,
    weights: np.ndarray,
    nparts: int,
) -> np.ndarray:
    """Full recursive RCB into ``nparts`` weighted-equal parts.

    Returns a part label per point.  ``nparts`` need not be a power of
    two; odd counts split proportionally (⌈k/2⌉ : ⌊k/2⌋).
    """
    coords = np.asarray(coords, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if nparts < 1:
        raise GeometryError("nparts must be >= 1")
    labels = np.zeros(coords.shape[0], dtype=np.int64)
    _rcb_recurse(coords, weights, np.arange(coords.shape[0]), nparts, 0, labels)
    return labels


def _rcb_recurse(coords, weights, idx, nparts, base, labels) -> None:
    if nparts <= 1 or idx.size == 0:
        labels[idx] = base
        return
    left_parts = (nparts + 1) // 2
    axis = _widest_axis(coords[idx])
    vals = coords[idx, axis]
    order = np.argsort(vals, kind="stable")
    cum = np.cumsum(weights[idx][order])
    total = cum[-1]
    target = total * left_parts / nparts
    k = int(np.searchsorted(cum, target, side="left")) + 1
    k = min(max(k, 1), idx.size - 1)
    left = idx[order[:k]]
    right = idx[order[k:]]
    _rcb_recurse(coords, weights, left, left_parts, base, labels)
    _rcb_recurse(coords, weights, right, nparts - left_parts, base + left_parts, labels)


def rcb_grid_map(
    coords: np.ndarray,
    weights: np.ndarray,
    rows: int,
    cols: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Map points to a ``rows × cols`` grid with balanced loads.

    Splits y into ``rows`` weighted-equal strips, then each strip's x
    into ``cols`` parts — the Zoltan-style mapping ScalaPart uses to
    assign the coarsest embedded graph to the processor grid.
    Returns ``(row, col)`` per point.
    """
    coords = np.asarray(coords, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if rows < 1 or cols < 1:
        raise GeometryError("grid dims must be >= 1")
    n = coords.shape[0]
    row = _split_ranks(coords[:, 1], weights, rows)
    col = np.zeros(n, dtype=np.int64)
    for r in range(rows):
        sel = np.flatnonzero(row == r)
        if sel.size:
            col[sel] = _split_ranks(coords[sel, 0], weights[sel], cols)
    return row, col


def _split_ranks(values: np.ndarray, weights: np.ndarray, k: int) -> np.ndarray:
    """Assign each value to one of ``k`` weighted-equal quantile bins."""
    n = values.shape[0]
    out = np.zeros(n, dtype=np.int64)
    if n == 0 or k <= 1:
        return out
    order = np.argsort(values, kind="stable")
    cum = np.cumsum(weights[order])
    total = cum[-1]
    if total <= 0:
        # zero weight: fall back to equal counts
        bounds = np.linspace(0, n, k + 1).astype(np.int64)
        for b in range(k):
            out[order[bounds[b] : bounds[b + 1]]] = b
        return out
    # midpoint rank: item i occupies (cum_i - w_i/2)/total of the mass,
    # which bins boundary items fairly instead of pushing them all up
    mid = cum - weights[order] / 2.0
    bins = np.clip((mid / total * k).astype(np.int64), 0, k - 1)
    out[order] = bins
    return out
