"""Multilevel bisection baselines: ParMetis-like and Pt-Scotch-like.

The paper compares ScalaPart against the two dominant parallel
multilevel partitioners.  Their *sequential* quality characters are
reproduced here with one shared multilevel engine differing only in
tuning, exactly the trade-off the paper discusses ("we conjecture that
the cut quality of ParMetis reflects a trade-off in favor of faster
coarsening and refinement"):

* ``parmetis_like`` — speed-tuned: classic ~2× coarsening, greedy
  graph-growing initial partition with few trials, 2 boundary-FM passes
  per level, early stall cutoff.
* ``scotch_like`` — quality-tuned: more initial-partition trials, FM
  restricted to a *band graph* around the current cut (Pt-Scotch's
  signature technique, cited by the paper as the analogue of its strip)
  but with many passes and a generous stall budget.

Both return a :class:`~repro.results.PartitionResult`, so the
benchmark harness treats them like every other method.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..coarsen import build_hierarchy
from ..results import PartitionResult
from ..graph.csr import CSRGraph
from ..graph.partition import Bisection
from ..refine import fm_refine
from ..rng import SeedLike, as_generator, derive_seed

__all__ = [
    "greedy_graph_growing",
    "band_mask",
    "multilevel_bisection",
    "parmetis_like",
    "scotch_like",
]


def greedy_graph_growing(
    graph: CSRGraph, seed: SeedLike = None, trials: int = 4
) -> Bisection:
    """Greedy graph-growing initial bisection (METIS's GGP).

    Grows a region by BFS from a random seed vertex until it holds half
    the vertex weight; the best of ``trials`` seeds (by cut) wins.
    """
    n = graph.num_vertices
    if n == 0:
        return Bisection(graph, np.zeros(0, dtype=np.int8))
    if n == 1:
        return Bisection(graph, np.zeros(1, dtype=np.int8))
    rng = as_generator(seed)
    half = graph.total_vertex_weight / 2.0
    best: Optional[Bisection] = None
    best_cut = np.inf
    for _ in range(max(1, trials)):
        start = int(rng.integers(n))
        side = np.ones(n, dtype=np.int8)
        side[start] = 0
        grown = float(graph.vwgt[start])
        frontier = [start]
        seen = np.zeros(n, dtype=bool)
        seen[start] = True
        while grown < half and frontier:
            nxt = []
            for v in frontier:
                for u in graph.neighbors(v):
                    if not seen[u]:
                        seen[u] = True
                        nxt.append(int(u))
            # add next BFS ring (or part of it) in order
            for u in nxt:
                if grown >= half:
                    break
                side[u] = 0
                grown += float(graph.vwgt[u])
            frontier = [u for u in nxt if side[u] == 0]
        if (side == 0).all():  # disconnected leftovers
            side[-1] = 1
        b = Bisection(graph, side)
        cut = b.cut_weight
        if cut < best_cut:
            best, best_cut = b, cut
    assert best is not None
    return best


def band_mask(bisection: Bisection, hops: int = 3) -> np.ndarray:
    """Vertices within ``hops`` BFS steps of a cut edge (Pt-Scotch's
    band graph, selected by hop count rather than coordinates)."""
    g = bisection.graph
    mask = np.zeros(g.num_vertices, dtype=bool)
    frontier = bisection.boundary_vertices()
    mask[frontier] = True
    for _ in range(max(0, hops)):
        if frontier.size == 0:
            break
        nxt = []
        for v in frontier:
            nbrs = g.neighbors(int(v))
            fresh = nbrs[~mask[nbrs]]
            mask[fresh] = True
            nxt.append(fresh)
        frontier = np.concatenate(nxt) if nxt else np.zeros(0, dtype=np.int64)
    return mask


def multilevel_bisection(
    graph: CSRGraph,
    *,
    seed: SeedLike = None,
    coarsest_size: int = 64,
    max_imbalance: float = 0.05,
    initial_trials: int = 4,
    fm_passes: int = 2,
    band_hops: Optional[int] = None,
    stall_scale: float = 1.0,
    method_name: str = "multilevel",
) -> PartitionResult:
    """Shared multilevel engine (coarsen → initial partition → refine up).

    ``band_hops`` switches per-level refinement from whole-graph
    boundary FM to band-restricted FM.
    """
    t0 = time.perf_counter()
    t = time.perf_counter()
    h = build_hierarchy(
        graph, coarsest_size=coarsest_size, keep_every_other=False, seed=seed
    )
    t_coarsen = time.perf_counter() - t

    t = time.perf_counter()
    bis = greedy_graph_growing(h.coarsest, seed=derive_seed(seed, 0x161), trials=initial_trials)
    bis = fm_refine(bis, max_imbalance=max_imbalance, max_passes=max(4, fm_passes)).bisection
    t_initial = time.perf_counter() - t

    t = time.perf_counter()
    for level in range(h.num_levels - 1, 0, -1):
        fine_side = h.project_one_level(bis.side, level)
        bis = Bisection(h.graphs[level - 1], fine_side)
        stall = int(max(64, stall_scale * h.graphs[level - 1].num_vertices // 50))
        movable = band_mask(bis, band_hops) if band_hops is not None else None
        bis = fm_refine(
            bis,
            max_imbalance=max_imbalance,
            max_passes=fm_passes,
            movable=movable,
            stall_limit=stall,
        ).bisection
    t_refine = time.perf_counter() - t

    return PartitionResult(
        bisection=bis,
        method=method_name,
        seconds=time.perf_counter() - t0,
        stage_seconds={
            "coarsen": t_coarsen,
            "initial": t_initial,
            "uncoarsen": t_refine,
        },
        extras={"levels": h.num_levels},
    )


def parmetis_like(
    graph: CSRGraph, seed: SeedLike = None, max_imbalance: float = 0.05
) -> PartitionResult:
    """Speed-tuned multilevel bisection (the ParMetis analogue)."""
    return multilevel_bisection(
        graph,
        seed=seed,
        max_imbalance=max_imbalance,
        initial_trials=2,
        fm_passes=2,
        band_hops=None,
        stall_scale=0.5,
        method_name="ParMetis-like",
    )


def scotch_like(
    graph: CSRGraph, seed: SeedLike = None, max_imbalance: float = 0.05
) -> PartitionResult:
    """Quality-tuned multilevel bisection with band refinement
    (the Pt-Scotch analogue)."""
    return multilevel_bisection(
        graph,
        seed=seed,
        max_imbalance=max_imbalance,
        initial_trials=6,
        fm_passes=8,
        band_hops=3,
        stall_scale=4.0,
        method_name="Pt-Scotch-like",
    )
