"""Command-line interface: partition METIS-format graphs from the shell.

Downstream adoption path: any graph in the standard METIS format can be
partitioned without writing Python::

    python -m repro partition mesh.graph --parts 8 --method scalapart --out mesh.part
    python -m repro partition mesh.graph --method rcb --coords mesh.xy

Method choices come straight from the central registry
(:mod:`repro.core.methods`): registering a new method makes it
available here with no CLI changes.
    python -m repro info mesh.graph
    python -m repro embed mesh.graph --out mesh.xy
    python -m repro trace mesh.graph --nranks 64 --profile mesh.trace.jsonl
    python -m repro chaos --methods scalapart,parmetis --plans 8 --seed 0
    python -m repro lint src/ --format json

The partition file contains one part id per line (METIS ``.part``
convention), so the output drops into existing tool chains.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .core.config import ScalaPartConfig
from .core.cost import cost_model_names
from .core.kway import hierarchical_kway, parse_hierarchy, partition_kway
from .core.methods import cli_choices, get_method
from .core.parallel import run_parallel
from .embed.multilevel import hu_layout, multilevel_embedding
from .errors import ReproError
from .graph.io import read_coords, read_metis, write_coords
from .parallel.trace import SpmdResult, write_trace_jsonl

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="ScalaPart (SC'13) graph partitioning toolkit",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="partition a METIS-format graph")
    p.add_argument("graph", help="input graph (METIS format)")
    p.add_argument("--method", default="scalapart", choices=cli_choices())
    p.add_argument("--k", "--parts", type=int, default=2, dest="k",
                   help="number of parts (native k-way methods split "
                        "directly; bisection methods route through "
                        "recursive bisection + k-way refinement)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--coords", help="coordinate file for coordinate-based "
                                    "methods (default: compute a Hu layout)")
    p.add_argument("--out", help="write part ids here (default: stdout)")
    p.add_argument("--max-imbalance", type=float, default=0.05)
    p.add_argument("--cost-model", default="unit", dest="cost_model",
                   choices=cost_model_names(),
                   help="vertex cost model for the balance constraint")
    p.add_argument("--hierarchy", metavar="K1xK2",
                   help="hierarchical K = K1xK2 partitioning (e.g. 2x4; "
                        "sequential backend only, overrides --parts)")
    p.add_argument("--backend", default="seq", choices=["seq", "sim", "procs"],
                   help="executor: seq = sequential entry point (default), "
                        "sim = SPMD simulator, procs = one worker process "
                        "per rank on real cores")
    p.add_argument("--nranks", type=int, default=4,
                   help="ranks for --backend sim/procs")
    p.add_argument("--checkpoint", metavar="DIR",
                   help="durable stage-checkpoint store for --backend "
                        "sim/procs: completed embeddings persist here and "
                        "later runs (or recovery retries) resume from them")

    e = sub.add_parser("embed", help="compute planar coordinates for a graph")
    e.add_argument("graph")
    e.add_argument("--seed", type=int, default=0)
    e.add_argument("--repulsion", default="lattice", choices=["lattice", "bh"])
    e.add_argument("--out", required=True, help="coordinate output file")

    i = sub.add_parser("info", help="print graph statistics")
    i.add_argument("graph")

    t = sub.add_parser(
        "trace",
        help="run a method on P virtual ranks and report the "
             "communication profile",
    )
    t.add_argument("graph", help="input graph (METIS format)")
    t.add_argument("--method", default="scalapart",
                   choices=cli_choices(traceable_only=True))
    t.add_argument("--parts", "--k", type=int, default=2, dest="k",
                   help="number of parts (k != 2 needs a native k-way "
                        "method, e.g. kway-geometric)")
    t.add_argument("--cost-model", default="unit", dest="cost_model",
                   choices=cost_model_names(),
                   help="vertex cost model for the balance constraint")
    t.add_argument("--nranks", type=int, default=16,
                   help="virtual ranks to simulate")
    t.add_argument("--backend", default="sim", choices=["sim", "procs"],
                   help="executor to trace (procs = real worker processes, "
                        "measured wall-clock accounts)")
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--coords", help="coordinate file for rcb/sp-pg7-nl "
                                    "(default: compute a Hu layout)")
    t.add_argument("--block-size", type=int, default=None,
                   help="β-refresh block size (ScalaPart ablation knob)")
    t.add_argument("--profile", metavar="PATH",
                   help="write the full JSONL trace here")

    c = sub.add_parser(
        "chaos",
        help="fault-injection sweep: run methods under seeded fault "
             "plans and report recovery outcomes as JSON",
    )
    c.add_argument("graph", nargs="?", default=None,
                   help="input graph (METIS format; default: generate a "
                        "random Delaunay mesh)")
    c.add_argument("--n", type=int, default=300,
                   help="vertices of the generated mesh when no graph "
                        "file is given")
    c.add_argument("--methods", default="scalapart",
                   help="comma-separated CLI method names to sweep")
    c.add_argument("--parts", "--k", type=int, default=2, dest="k",
                   help="number of parts (k != 2 needs native k-way "
                        "methods)")
    c.add_argument("--nranks", type=int, default=8)
    c.add_argument("--backend", default="sim", choices=["sim", "procs"],
                   help="executor to inject faults into (procs = one real "
                        "worker process per rank; kills become SIGKILL)")
    c.add_argument("--checkpoint", metavar="DIR",
                   help="durable stage-checkpoint store: recovery retries "
                        "resume from the persisted embedding instead of "
                        "recomputing it")
    c.add_argument("--op-timeout", type=float, default=None,
                   dest="op_timeout",
                   help="per-op receive timeout for --backend procs "
                        "(seconds; also bounds stall detection)")
    c.add_argument("--plans", type=int, default=4,
                   help="seeded fault plans per method")
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--kill-rate", type=float, default=2e-4,
                   help="per-op probability of killing a rank")
    c.add_argument("--kill-op", type=int, default=None,
                   help="schedule a transient kill of rank (plan %% nranks) "
                        "at this op ordinal in every plan (deterministic "
                        "recovery demo)")
    c.add_argument("--drop-rate", type=float, default=2e-4)
    c.add_argument("--duplicate-rate", type=float, default=1e-4)
    c.add_argument("--delay-rate", type=float, default=1e-3)
    c.add_argument("--corrupt-rate", type=float, default=0.0)
    c.add_argument("--retries", type=int, default=1,
                   help="full-P retries before shrinking (RetryPolicy)")
    c.add_argument("--max-steps", type=int, default=None,
                   help="engine op budget per attempt (scaled by backoff)")
    c.add_argument("--no-recovery", action="store_true",
                   help="propagate the first typed error instead of "
                        "descending the recovery ladder")
    c.add_argument("--out", help="write the JSON report here "
                                 "(default: stdout)")

    lint = sub.add_parser(
        "lint",
        help="static SPMD-correctness checks (per-file rules SP101-SP106 "
             "plus the whole-program protocol rules SP107-SP112) over "
             "Python sources",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint")
    lint.add_argument("--format", default="text",
                      choices=["text", "json", "sarif"],
                      dest="fmt", help="output format (json for CI, sarif "
                                       "for GitHub code scanning)")
    lint.add_argument("--select", metavar="CODES",
                      help="comma-separated rule codes to enable "
                           "(default: all)")
    lint.add_argument("--ignore", metavar="CODES",
                      help="comma-separated rule codes to disable")
    lint.add_argument("--protocol", dest="protocol", action="store_true",
                      default=True,
                      help="run the whole-program protocol checker "
                           "(SP107-SP112; the default)")
    lint.add_argument("--no-protocol", dest="protocol", action="store_false",
                      help="skip the whole-program protocol checker")
    lint.add_argument("--registry", action="store_true",
                      help="also model-check every registered MethodSpec's "
                           "distributed entry point against the repro "
                           "package tree")
    return ap


def _load_coords(args, graph):
    if args.coords:
        coords = read_coords(args.coords)
        if coords.shape[0] != graph.num_vertices:
            raise ReproError(
                f"coordinate file has {coords.shape[0]} rows for a graph "
                f"with {graph.num_vertices} vertices"
            )
        return coords[:, :2]
    print("# no --coords given: computing a Hu layout...", file=sys.stderr)
    return hu_layout(graph, seed=args.seed)


def _quality(res, k: int) -> str:
    """stderr quality summary: 2-way keeps the historical ``cut=`` keys,
    k-way uses ``kway_cut=`` so scripts can tell the two apart."""
    if k > 2:
        return (f"kway_cut={res.cut_size} "
                f"kway_imbalance={res.imbalance:.4f}")
    return f"cut={res.cut_size} imbalance={res.imbalance:.4f}"


def _write_parts(parts, out: Optional[str]) -> None:
    """One label per line (METIS ``.part`` convention) — the single
    writer every partition path shares, 2-way and k-way alike."""
    text = "\n".join(str(int(x)) for x in parts) + "\n"
    if out:
        with open(out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)


def _cmd_partition(args) -> int:
    graph = read_metis(args.graph)
    spec = get_method(args.method)
    coords = _load_coords(args, graph) if spec.needs_coords else None
    t0 = time.perf_counter()
    k = args.k
    if args.hierarchy:
        if args.backend != "seq":
            raise ReproError(
                "--hierarchy runs on the sequential backend only "
                f"(got --backend {args.backend})"
            )
        k1, k2 = parse_hierarchy(args.hierarchy)
        k = k1 * k2
        res = hierarchical_kway(
            graph, k1, k2, spec, coords=coords, seed=args.seed,
            cost_model=args.cost_model,
        )
    elif args.backend != "seq":
        if spec.distributed is None:
            raise ReproError(
                f"method {spec.name!r} has no distributed implementation "
                f"for --backend {args.backend}"
            )
        if k != 2 and not spec.kway:
            raise ReproError(
                f"--backend {args.backend} with --parts {k} needs a "
                f"native k-way method (e.g. kway-geometric); "
                f"{spec.name!r} reaches k > 2 through recursive "
                f"bisection on the sequential backend only"
            )
        res = run_parallel(spec, graph, args.nranks, coords=coords,
                           seed=args.seed, backend=args.backend,
                           k=k, cost_model=args.cost_model,
                           checkpoint=args.checkpoint)
        pids = res.extras.get("pids")
        if pids is not None:
            print(f"# backend=procs nranks={args.nranks} "
                  f"pids={','.join(str(p) for p in pids)} "
                  f"distinct_pids={len(set(pids))}", file=sys.stderr)
    elif k == 2 and args.cost_model == "unit":
        res = spec.sequential(graph, coords, seed=args.seed)
    else:
        res = partition_kway(
            graph, k, spec, coords=coords, seed=args.seed,
            cost_model=args.cost_model, max_imbalance=args.max_imbalance,
        )
    dt = time.perf_counter() - t0
    _write_parts(res.parts, args.out)
    hier = f" hierarchy={args.hierarchy}" if args.hierarchy else ""
    cm = (f" cost_model={args.cost_model}"
          if args.cost_model != "unit" else "")
    print(f"# method={args.method} k={k}{hier}{cm} {_quality(res, k)} "
          f"time={dt:.3f}s", file=sys.stderr)
    return 0


def _cmd_embed(args) -> int:
    graph = read_metis(args.graph)
    res = multilevel_embedding(graph, seed=args.seed, repulsion=args.repulsion)
    write_coords(res.pos, args.out)
    print(f"# embedded n={graph.num_vertices} with {res.num_levels} levels "
          f"-> {args.out}", file=sys.stderr)
    return 0


def _cmd_info(args) -> int:
    g = read_metis(args.graph)
    deg = g.degrees()
    print(f"vertices      : {g.num_vertices}")
    print(f"edges         : {g.num_edges}")
    print(f"degree        : min={deg.min() if deg.size else 0} "
          f"max={deg.max() if deg.size else 0} "
          f"mean={deg.mean() if deg.size else 0:.2f}")
    print(f"vertex weight : {g.total_vertex_weight:g}")
    print(f"edge weight   : {g.total_edge_weight:g}")
    print(f"connected     : {g.is_connected()}")
    return 0


def _print_trace_report(res: SpmdResult, method: str) -> None:
    stats = res.comm_stats
    secs = "simulated_seconds" if res.backend == "sim" else "wall_seconds"
    print(f"method={method} backend={res.backend} nranks={res.nranks} "
          f"{secs}={res.elapsed:.6f} "
          f"comm_fraction={res.comm_fraction:.3f}")
    if stats is not None:
        print(f"total: {stats.summary()}")
        print(f"global collectives: {stats.collective_invocations()}")
    header = (f"{'phase':<20} {'elapsed_ms':>11} {'comm%':>6} "
              f"{'msgs':>8} {'words':>12} {'colls':>6} {'wait_ms':>9}")
    print(header)
    for name in sorted(res.phases):
        ph = res.phases[name]
        cs = res.phase_comm_stats(name)
        print(f"{name:<20} {ph.elapsed * 1e3:>11.4f} "
              f"{100 * ph.comm_fraction:>6.1f} "
              f"{cs.total_messages:>8d} {cs.total_words:>12.0f} "
              f"{cs.collective_invocations():>6d} "
              f"{cs.total_wait * 1e3:>9.4f}")


def _cmd_trace(args) -> int:
    graph = read_metis(args.graph)
    spec = get_method(args.method)
    coords = _load_coords(args, graph) if spec.needs_coords else None
    cfg = None
    if args.block_size is not None:
        cfg = ScalaPartConfig(block_size=args.block_size)
    res = run_parallel(spec, graph, args.nranks, coords=coords, config=cfg,
                       seed=args.seed, backend=args.backend,
                       k=args.k, cost_model=args.cost_model)
    trace: SpmdResult = res.extras["trace"]
    _print_trace_report(trace, res.method)
    if trace.pids is not None:
        print(f"# pids={','.join(str(p) for p in trace.pids)} "
              f"distinct_pids={len(set(trace.pids))}", file=sys.stderr)
    print(_quality(res, args.k), file=sys.stderr)
    if args.profile:
        write_trace_jsonl(trace, args.profile)
        print(f"# trace written to {args.profile}", file=sys.stderr)
    return 0


#: salt namespace separating chaos plan seeds from other derivations
_CHAOS_SALT = 0xC4A0


def _cmd_chaos(args) -> int:
    from .core.parallel import RetryPolicy
    from .parallel.faults import FaultPlan
    from .rng import derive_seed

    if args.graph:
        graph = read_metis(args.graph)
        gname = args.graph
        gcoords = None
    else:
        from .graph.generators import random_delaunay

        graph, gcoords = random_delaunay(args.n, seed=args.seed)
        gname = f"delaunay{args.n}"
    retry = None if args.no_recovery else RetryPolicy(retries=args.retries)
    rates = {
        "kill_rate": args.kill_rate,
        "drop_rate": args.drop_rate,
        "duplicate_rate": args.duplicate_rate,
        "delay_rate": args.delay_rate,
        "corrupt_rate": args.corrupt_rate,
    }
    runs = []
    for name in args.methods.split(","):
        spec = get_method(name.strip())
        if spec.distributed is None:
            raise ReproError(
                f"method {spec.name!r} has no distributed implementation "
                f"to inject faults into"
            )
        if args.k != 2 and not spec.kway:
            raise ReproError(
                f"--parts {args.k} needs a native k-way method; "
                f"{spec.name!r} is a bisection method"
            )
        coords = None
        if spec.needs_coords:
            coords = gcoords if gcoords is not None else hu_layout(
                graph, seed=args.seed)
        for i in range(args.plans):
            kills = ()
            if args.kill_op is not None:
                from .parallel.faults import KillRank

                kills = (KillRank(rank=i % args.nranks, at_op=args.kill_op),)
            plan = FaultPlan(seed=derive_seed(args.seed, _CHAOS_SALT, i),
                             kills=kills, **rates)
            run = {"method": spec.name, "plan": i, "plan_seed": plan.seed}
            try:
                res = run_parallel(
                    spec, graph, args.nranks, coords=coords,
                    seed=args.seed, faults=plan, retry=retry,
                    max_steps=args.max_steps, k=args.k,
                    backend=args.backend, op_timeout=args.op_timeout,
                    checkpoint=args.checkpoint,
                )
            except ReproError as exc:
                run["status"] = "failed"
                run["error"] = f"{type(exc).__name__}: {exc}"
            else:
                rec = res.extras.get("recovery")
                recovered = bool(rec and rec.get("recovered"))
                run["status"] = "recovered" if recovered else "ok"
                run["cut"] = int(res.cut_size)
                run["imbalance"] = float(res.imbalance)
                if rec is not None:
                    run["recovery"] = rec
            runs.append(run)
    counts = {"ok": 0, "recovered": 0, "failed": 0}
    for run in runs:
        counts[run["status"]] += 1
    report = {
        "graph": gname,
        "vertices": graph.num_vertices,
        "nranks": args.nranks,
        "backend": args.backend,
        "checkpoint": args.checkpoint,
        "parts": args.k,
        "seed": args.seed,
        "plans_per_method": args.plans,
        "rates": rates,
        "recovery_enabled": retry is not None,
        "runs": runs,
        "summary": counts,
    }
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    print(f"# chaos[{args.backend}]: {counts['ok']} clean, "
          f"{counts['recovered']} recovered, {counts['failed']} failed "
          f"of {len(runs)} runs", file=sys.stderr)
    return 1 if counts["failed"] else 0


def _cmd_lint(args) -> int:
    from .analysis import findings_to_json, findings_to_sarif, lint_paths

    if not args.paths and not args.registry:
        print("repro lint: no paths given (and --registry not set)",
              file=sys.stderr)
        return 2
    select = set(args.select.split(",")) if args.select else None
    ignore = set(args.ignore.split(",")) if args.ignore else None
    t0 = time.perf_counter()
    findings = lint_paths(args.paths, select=select, ignore=ignore,
                          protocol=args.protocol)
    if args.registry:
        from .analysis import check_registry

        reg_findings, entry_points = check_registry()
        seen = set(findings)
        findings = findings + [f for f in reg_findings if f not in seen]
        print(f"# registry: checked {len(entry_points)} distributed "
              f"entry point{'s' if len(entry_points) != 1 else ''} "
              f"({', '.join(entry_points)})", file=sys.stderr)
    elapsed = time.perf_counter() - t0
    if args.fmt == "json":
        print(findings_to_json(findings))
    elif args.fmt == "sarif":
        print(findings_to_sarif(findings))
    else:
        for f in findings:
            print(f.format())
        n = len(findings)
        print(f"# {n} finding{'s' if n != 1 else ''}", file=sys.stderr)
    # analyzer runtime regression canary for the CI job log
    print(f"# lint-timing: {elapsed:.2f}s "
          f"(protocol={'on' if args.protocol else 'off'})", file=sys.stderr)
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "partition":
            return _cmd_partition(args)
        if args.command == "embed":
            return _cmd_embed(args)
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "lint":
            return _cmd_lint(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
