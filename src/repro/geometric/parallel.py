"""Distributed geometric partitioning + strip refinement (SP-PG7-NL).

Parallel formulation of the Gilbert–Miller–Teng partitioner following
paper §3 exactly:

* "we use sampling across processors to calculate the centerpoint
  fast" — every rank contributes a small sample of its owned lifted
  points (one allgather); each rank then computes the *same*
  centerpoint and conformal map redundantly from the shared sample;
* "multiple great circles ... are computed redundantly on each
  processor" — the candidate normals come from a shared seed;
* "each processor computes its contribution to the measure of cut
  quality for all separators, before a reduction involving all
  processors to select the best cut" — a histogram allreduce fixes the
  balanced threshold of every candidate, then one allreduce sums the
  per-rank cut contributions and part weights.

Only sphere separators are computed ("avoids the eigenvector
calculation needed for a line separator in the interests of parallel
scalability").  The strip refinement gathers the (small) strip to the
subtree root, runs Fiduccia–Mattheyses there and broadcasts the result
— its serial cost is negligible because "the strip contains a small
multiple of the number of vertices in the edge separator".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.config import ScalaPartConfig
from ..graph.csr import CSRGraph
from ..graph.distributed import adjacency_slots, block_of, block_starts
from ..graph.partition import Bisection
from ..parallel.engine import Comm
from ..parallel.patterns import allgather_concat, share_from_root
from ..refine.strip import strip_refine
from ..rng import SeedLike, derive_seed
from .centerpoint import approx_centerpoint
from .circles import random_unit_vectors
from .stereo import lift, project, rotation_to_south

__all__ = ["DistGeoSelection", "dist_geometric", "dist_strip_refine",
           "dist_sp_pg7_nl"]

_HIST_BINS = 128


@dataclass(frozen=True)
class DistGeoSelection:
    """Per-rank outcome of the distributed circle selection.

    The winning separator is fully described by each rank's signed
    distances over its owned block (``sd_own``) plus the globally
    agreed cut weight — exactly what the strip-refinement stage needs.
    """

    #: signed distance of the owned block to the winning circle
    sd_own: np.ndarray
    #: globally reduced cut weight of the winning candidate
    best_cut: float
    #: number of candidate separators evaluated
    candidates: int


def dist_geometric(
    comm: Comm,
    graph: CSRGraph,
    pos_full: np.ndarray,
    *,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
):
    """Rank program: distributed great-circle selection (stage 3 alone).

    ``pos_full`` is the level-0 embedding (shared read-only reference;
    per-rank *work* touches only the owned block).  Returns a
    :class:`DistGeoSelection` for :func:`dist_strip_refine`.
    """
    cfg = config or ScalaPartConfig()
    n = graph.num_vertices
    p = comm.size
    starts = block_starts(n, p)
    lo, hi = block_of(starts, comm.rank)
    owned = np.arange(lo, hi, dtype=np.int64)

    # ---- sampled centerpoint & conformal map (redundant per rank) ----
    comm.set_phase("partition/sample")
    rng = np.random.default_rng(derive_seed(seed, 0xD157))
    per_rank = max(4, cfg.centerpoint_sample // p)
    take = min(per_rank, owned.shape[0])
    sample_ids = (
        owned[rng.choice(owned.shape[0], size=take, replace=False)]
        if take
        else owned
    )
    comm.charge(float(take) * 4)
    sample = yield from allgather_concat(comm, pos_full[sample_ids].ravel())
    sample = sample.reshape(-1, 2)
    # normalisation from the shared sample (median centre, median radius)
    centre = np.median(sample, axis=0)
    radii = np.linalg.norm(sample - centre, axis=1)
    scale = float(np.median(radii)) or 1.0
    lifted_sample = lift((sample - centre) / scale)
    cp = approx_centerpoint(lifted_sample, seed=derive_seed(seed, 0xCE27))
    comm.charge(float(lifted_sample.shape[0]) * 8)

    # map the owned points with the same conformal transform
    own_lift = lift((pos_full[lo:hi] - centre) / scale)
    rot = rotation_to_south(cp) if np.linalg.norm(cp) > 1e-15 else np.eye(3)
    r = min(float(np.linalg.norm(cp)), 1.0 - 1e-9)
    alpha = math.sqrt((1.0 + r) / (1.0 - r))
    own_u = lift(project(own_lift @ rot.T) * alpha)
    comm.charge(float(hi - lo) * 12)

    # ---- candidate circles: shared seed => identical normals --------
    normals = random_unit_vectors(
        np.random.default_rng(derive_seed(seed, 0x6C1)), cfg.ncircles, 3
    )
    sval_own = own_u @ normals.T  # (n_own, ncircles)
    comm.charge(float(hi - lo) * cfg.ncircles * 3)

    comm.set_phase("partition/select")
    # Balanced thresholds via a global histogram reduction per candidate.
    # No min/max pre-reduction is needed: the projections are dot
    # products of unit vectors, so every value lies in [-1, 1] — which
    # is how the parallel partitioner stays at the paper's "3 reductions".
    smin = np.full(cfg.ncircles, -1.0)
    span = np.full(cfg.ncircles, 2.0)
    hist = np.zeros((cfg.ncircles, _HIST_BINS))
    for cidx in range(cfg.ncircles):
        bins = np.clip(
            ((sval_own[:, cidx] - smin[cidx]) / span[cidx] * _HIST_BINS).astype(int),
            0, _HIST_BINS - 1,
        )
        hist[cidx] = np.bincount(bins, weights=graph.vwgt[lo:hi],
                                 minlength=_HIST_BINS)
    comm.charge(float(hi - lo) * cfg.ncircles)
    hist = yield from comm.allreduce(hist, words=cfg.ncircles * _HIST_BINS)
    cum = np.cumsum(hist, axis=1)
    half = cum[:, -1:] / 2.0
    kbin = np.argmax(cum >= half, axis=1)
    thresholds = smin + (kbin + 1) / _HIST_BINS * span

    # ---- per-rank cut contributions, one reduction -------------------
    # side of any endpoint is a pure function of its coordinates and the
    # shared (threshold, normal) data, so ghost sides need no extra
    # communication beyond the coordinates the embedding already holds
    full_norm = (pos_full - centre) / scale
    src_pos, src, dst, w = adjacency_slots(graph, owned)
    dst_u = lift(project(lift(full_norm[dst]) @ rot.T) * alpha) if dst.size else np.zeros((0, 3))
    comm.charge(float(dst.shape[0]) * 12)
    cuts = np.zeros(cfg.ncircles)
    bal = np.zeros(cfg.ncircles)
    for cidx in range(cfg.ncircles):
        side_src = sval_own[:, cidx][src_pos] > thresholds[cidx]
        side_dst = (dst_u @ normals[cidx]) > thresholds[cidx]
        cuts[cidx] = float(w[side_src != side_dst].sum()) / 2.0
        own_side = sval_own[:, cidx] > thresholds[cidx]
        bal[cidx] = float(graph.vwgt[lo:hi][own_side].sum())
    comm.charge(float(dst.shape[0] + (hi - lo)) * cfg.ncircles)
    totals = yield from comm.allreduce(
        np.vstack([cuts, bal]), words=2 * cfg.ncircles
    )
    cuts_g, bal_g = totals[0], totals[1]
    total_w = graph.total_vertex_weight
    imb = np.abs(2 * bal_g / total_w - 1.0)
    feasible = imb <= max(cfg.max_imbalance, float(imb.min()) + 1e-12)
    order = np.where(feasible, cuts_g, np.inf)
    best = int(np.argmin(order))
    return DistGeoSelection(
        sd_own=sval_own[:, best] - thresholds[best],
        best_cut=float(cuts_g[best]),
        candidates=cfg.ncircles,
    )


def dist_strip_refine(
    comm: Comm,
    graph: CSRGraph,
    selection: DistGeoSelection,
    *,
    config: Optional[ScalaPartConfig] = None,
):
    """Rank program: strip refinement of a selected separator (stage 4).

    Assembles the winning side from the per-rank signed distances, then
    gathers the (small) strip to the subtree root, runs FM there and
    broadcasts the result.  Returns ``(side, info)``.
    """
    cfg = config or ScalaPartConfig()
    p = comm.size
    comm.set_phase("partition/strip")
    sd_full = yield from allgather_concat(comm, selection.sd_own)
    side = (sd_full > 0).astype(np.int8)
    result = None
    if comm.rank == 0:
        bis = Bisection(graph, side)
        refined = strip_refine(
            bis, sd_full,
            factor=cfg.strip_factor,
            max_imbalance=cfg.max_imbalance,
            max_passes=cfg.strip_passes,
        )
        result = (
            refined.bisection.side,
            {
                "geometric_cut": selection.best_cut,
                "strip_size": refined.strip_size,
                "strip_factor": refined.strip_factor,
                "candidates": selection.candidates,
            },
        )
    # strip work is proportional to the strip, not the graph
    sep_guess = max(1.0, selection.best_cut)
    comm.charge(cfg.strip_factor * sep_guess * 8 / p)
    side_final, info = (yield from share_from_root(
        comm, result,
        words=cfg.strip_factor * sep_guess
        / max(1.0, math.log2(p) if p > 1 else 1.0),
    ))
    comm.set_phase("partition")
    return side_final, info


def dist_sp_pg7_nl(
    comm: Comm,
    graph: CSRGraph,
    pos_full: np.ndarray,
    *,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
):
    """Rank program: parallel SP-PG7-NL on an embedded graph.

    Chains :func:`dist_geometric` and :func:`dist_strip_refine` — the
    same two stage programs the registry pipeline composes.
    """
    cfg = config or ScalaPartConfig()
    selection = yield from dist_geometric(comm, graph, pos_full,
                                          config=cfg, seed=seed)
    return (yield from dist_strip_refine(comm, graph, selection, config=cfg))
