"""Geometric mesh partitioning (Gilbert–Miller–Teng) and helpers."""

from .centerpoint import approx_centerpoint, centerpoint_depth, radon_point
from .circles import (
    Candidate,
    circle_candidates,
    evaluate_cuts,
    line_candidates,
    median_split,
    random_unit_vectors,
)
from .gmt import GMTResult, g30, g7, g7_nl, geometric_partition, normalize_coords
from .stereo import conformal_to_center, lift, project, rotation_to_south

__all__ = [
    "approx_centerpoint",
    "centerpoint_depth",
    "radon_point",
    "Candidate",
    "circle_candidates",
    "evaluate_cuts",
    "line_candidates",
    "median_split",
    "random_unit_vectors",
    "GMTResult",
    "g30",
    "g7",
    "g7_nl",
    "geometric_partition",
    "normalize_coords",
    "conformal_to_center",
    "lift",
    "project",
    "rotation_to_south",
]
