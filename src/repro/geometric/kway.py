"""Direct geometric k-way assignment (balanced spherical K-means).

Generalises the great-circle split: instead of one circle cutting the
lifted sphere in two, the embedding is split into K cells around K
centroids.  The pipeline mirrors the 2-way geometric stage:

* normalise the coordinates and lift them onto the sphere;
* seed K centroids with cost-weighted k-means++ (distance
  ``1 − ⟨u, c⟩``, the spherical analogue of squared distance);
* a few Lloyd iterations move the centroids to the cost-weighted mean
  of their cells (projected back onto the sphere);
* with centroids frozen, *bias balancing* iterates
  ``part[v] = argmax_j (⟨u_v, c_j⟩ − bias_j)`` and raises the bias of
  overloaded cells (``bias_j += lr · (cost_j/target − 1)``) until the
  CostModel-weighted part costs meet the balance target — the additive
  bias trades a sliver of geometric locality for balance, exactly like
  the median shift of the 2-way candidates.

The distributed rank program follows the SP-PG7-NL recipe: one sample
allgather fixes a shared normalisation and shared seed centroids, each
Lloyd/bias iteration is one small ``(k)``-sized allreduce of per-part
sums, and every rank applies identical updates — so sim and procs
backends produce bit-identical partitions.  The final greedy k-way
refinement gathers the labelling to the subtree root (boundary work is
proportional to the separator, not the graph) and broadcasts the
result, like the strip refinement.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..errors import GeometryError
from ..graph.csr import CSRGraph
from ..graph.distributed import block_of, block_starts
from ..graph.partition import KWayPartition
from ..parallel.engine import Comm
from ..parallel.patterns import allgather_concat, share_from_root
from ..refine.kway import kway_refine
from ..rng import SeedLike, as_generator, derive_seed
from .gmt import normalize_coords
from .stereo import lift

__all__ = ["dist_kway_geometric", "kway_geometric_assign", "seed_centroids"]

#: bias learning-rate schedule: large first steps, gentle tail so the
#: assignment settles instead of oscillating between cells
_BIAS_LR0 = 0.12
_BIAS_DECAY = 0.97


def _bias_lr(it: int) -> float:
    return _BIAS_LR0 * (_BIAS_DECAY ** it)


def seed_centroids(
    upoints: np.ndarray,
    weights: np.ndarray,
    k: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Cost-weighted k-means++ seeding on the unit sphere.

    Picks K of the given points, each with probability proportional to
    ``weight · (1 − ⟨u, nearest chosen⟩)`` — spread-out heavy regions
    get centroids first.
    """
    upoints = np.asarray(upoints, dtype=np.float64)
    n = upoints.shape[0]
    if n < k:
        raise GeometryError(
            f"need at least k={k} points to seed centroids, got {n}"
        )
    rng = as_generator(derive_seed(seed, 0x4B17))
    w = np.maximum(np.asarray(weights, dtype=np.float64), 0.0)
    if float(w.sum()) <= 0:
        w = np.ones(n)
    centroids = np.empty((k, 3))
    first = int(rng.choice(n, p=w / w.sum()))
    centroids[0] = upoints[first]
    d = 1.0 - upoints @ centroids[0]
    for j in range(1, k):
        scores = np.maximum(d, 0.0) * w
        s = float(scores.sum())
        idx = int(rng.choice(n, p=scores / s)) if s > 0 else int(rng.integers(n))
        centroids[j] = upoints[idx]
        d = np.minimum(d, 1.0 - upoints @ centroids[j])
    return centroids


def _updated_centroids(tot: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """New centroids from reduced ``(k, 4)`` per-part [x, y, z, cost]
    sums; cells that emptied keep their previous centroid."""
    out = centroids.copy()
    norms = np.linalg.norm(tot[:, :3], axis=1)
    ok = (tot[:, 3] > 0) & (norms > 1e-12)
    out[ok] = tot[ok, :3] / norms[ok, None]
    return out


def _part_sums(
    u: np.ndarray, costs: np.ndarray, parts: np.ndarray, k: int
) -> np.ndarray:
    """Per-part ``[Σ cost·x, Σ cost·y, Σ cost·z, Σ cost]`` as (k, 4)."""
    sums = np.zeros((k, 4))
    for d in range(3):
        sums[:, d] = np.bincount(parts, weights=costs * u[:, d], minlength=k)
    sums[:, 3] = np.bincount(parts, weights=costs, minlength=k)
    return sums


def kway_geometric_assign(
    graph: CSRGraph,
    coords: np.ndarray,
    k: int,
    *,
    costs: Optional[np.ndarray] = None,
    seed: SeedLike = None,
    lloyd_iters: int = 4,
    balance_iters: int = 48,
    balance_tol: float = 0.02,
) -> Tuple[np.ndarray, dict]:
    """Sequential direct k-way assignment of an embedded graph.

    Returns ``(parts, info)`` — an int64 labelling in ``[0, k)`` plus
    convergence diagnostics.  ``costs`` is the per-vertex balance cost
    (``graph.vwgt`` when ``None``).
    """
    n = graph.num_vertices
    if k < 1:
        raise GeometryError(f"k must be >= 1, got {k}")
    if n < k:
        raise GeometryError(f"cannot split {n} vertices into {k} parts")
    if k == 1:
        return np.zeros(n, dtype=np.int64), {"assign_imbalance": 0.0,
                                             "assign_iters": 0}
    c = graph.vwgt if costs is None else np.asarray(costs, dtype=np.float64)
    u = lift(normalize_coords(coords))
    centroids = seed_centroids(u, c, k, seed=seed)
    target = float(c.sum()) / k
    if target <= 0:
        c = np.ones(n)
        target = n / k

    for _ in range(lloyd_iters):
        parts = np.argmax(u @ centroids.T, axis=1)
        centroids = _updated_centroids(_part_sums(u, c, parts, k), centroids)

    aff = u @ centroids.T
    bias = np.zeros(k)
    best_key = (np.inf, np.inf)
    best_parts = None
    iters = 0
    for it in range(balance_iters):
        iters = it + 1
        parts = np.argmax(aff - bias, axis=1)
        pc = np.bincount(parts, weights=c, minlength=k)
        imb = float(pc.max() / target - 1.0)
        key = (float((pc <= 0).sum()), imb)
        if key < best_key:
            best_key, best_parts = key, parts
        if key[0] == 0 and imb <= balance_tol:
            break
        bias += _bias_lr(it) * (pc / target - 1.0)
    if best_parts is None:
        best_parts = np.argmax(aff, axis=1)
    info = {
        "assign_imbalance": float(best_key[1]),
        "assign_iters": iters,
        "lloyd_iters": lloyd_iters,
    }
    return best_parts.astype(np.int64), info


def dist_kway_geometric(
    comm: Comm,
    graph: CSRGraph,
    pos_full: np.ndarray,
    *,
    k: int,
    costs: Optional[np.ndarray] = None,
    config=None,
    seed: SeedLike = None,
    max_imbalance: Optional[float] = None,
):
    """Rank program: distributed direct k-way of an embedded graph.

    ``pos_full`` is the level-0 embedding (shared read-only reference;
    per-rank *work* touches only the owned block).  Returns
    ``(parts, info)`` with the refined labelling on every rank.
    """
    from ..core.config import ScalaPartConfig

    cfg = config or ScalaPartConfig()
    n = graph.num_vertices
    p = comm.size
    if k < 1:
        raise GeometryError(f"k must be >= 1, got {k}")
    if n < k:
        raise GeometryError(f"cannot split {n} vertices into {k} parts")
    if k == 1:
        return np.zeros(n, dtype=np.int64), {"assign_imbalance": 0.0}
    starts = block_starts(n, p)
    lo, hi = block_of(starts, comm.rank)
    owned = np.arange(lo, hi, dtype=np.int64)
    costs_full = graph.vwgt if costs is None else np.asarray(costs, np.float64)

    # ---- shared sample: normalisation + seed centroids ---------------
    comm.set_phase("partition/sample")
    rng = np.random.default_rng(derive_seed(seed, 0xD158))
    per_rank = max(4, cfg.centerpoint_sample // p)
    take = min(per_rank, owned.shape[0])
    sample_ids = (
        owned[rng.choice(owned.shape[0], size=take, replace=False)]
        if take
        else owned
    )
    comm.charge(float(take) * 4)
    packed = np.column_stack([pos_full[sample_ids], costs_full[sample_ids]])
    sample = yield from allgather_concat(comm, packed.ravel())
    sample = sample.reshape(-1, 3)
    centre = np.median(sample[:, :2], axis=0)
    radii = np.linalg.norm(sample[:, :2] - centre, axis=1)
    scale = float(np.median(radii)) or 1.0
    u_samp = lift((sample[:, :2] - centre) / scale)
    centroids = seed_centroids(u_samp, sample[:, 2], k, seed=seed)

    own_u = lift((pos_full[lo:hi] - centre) / scale)
    own_costs = np.ascontiguousarray(costs_full[lo:hi], dtype=np.float64)
    comm.charge(float(hi - lo) * 12)
    target = float(costs_full.sum()) / k
    if target <= 0:
        costs_full = np.ones(n)
        own_costs = np.ones(hi - lo)
        target = n / k

    # ---- Lloyd iterations: one (k, 4) allreduce each ------------------
    comm.set_phase("partition/centroids")
    for _ in range(cfg.kway_lloyd_iters):
        parts_own = np.argmax(own_u @ centroids.T, axis=1)
        comm.charge(float(hi - lo) * (3 * k + 4))
        tot = yield from comm.allreduce(
            _part_sums(own_u, own_costs, parts_own, k), words=4 * k
        )
        centroids = _updated_centroids(tot, centroids)

    # ---- bias balancing: one (k,) allreduce each ----------------------
    comm.set_phase("partition/assign")
    aff = own_u @ centroids.T
    comm.charge(float(hi - lo) * 3 * k)
    bias = np.zeros(k)
    best_key = (np.inf, np.inf)
    best_parts = np.zeros(hi - lo, dtype=np.int64)
    iters = 0
    for it in range(cfg.kway_balance_iters):
        iters = it + 1
        parts_own = np.argmax(aff - bias, axis=1)
        pc_own = np.bincount(parts_own, weights=own_costs, minlength=k)
        comm.charge(float(hi - lo) * 2)
        pc = yield from comm.allreduce(pc_own, words=k)
        imb = float(pc.max() / target - 1.0)
        # pc is identical on every rank, so best_key / break agree too
        key = (float((pc <= 0).sum()), imb)
        if key < best_key:
            best_key, best_parts = key, parts_own
        if key[0] == 0 and imb <= 0.02:
            break
        bias += _bias_lr(it) * (pc / target - 1.0)

    # ---- root-side greedy refinement, like the strip stage ------------
    comm.set_phase("partition/kway-refine")
    parts_full = yield from allgather_concat(
        comm, best_parts.astype(np.int64)
    )
    bound = cfg.max_imbalance if max_imbalance is None else max_imbalance
    info = {
        "assign_imbalance": float(best_key[1]),
        "assign_iters": iters,
        "lloyd_iters": cfg.kway_lloyd_iters,
    }
    result = None
    if comm.rank == 0:
        kp = KWayPartition(graph, parts_full, k, costs=costs)
        refined = kway_refine(kp, max_imbalance=bound,
                              max_passes=cfg.kway_refine_passes,
                              pairwise_rounds=cfg.kway_pairwise_rounds)
        result = (
            np.asarray(refined.partition.parts),
            {
                **info,
                "geometric_cut": refined.initial_cut,
                "refine_passes": refined.passes,
                "refine_moves": refined.moves,
            },
        )
    # boundary work is proportional to the separator, not the graph
    boundary_guess = float(k) * math.sqrt(max(n, 1.0))
    comm.charge(boundary_guess * cfg.kway_refine_passes / p)
    parts_final, final_info = (yield from share_from_root(
        comm, result,
        words=float(n) / max(1.0, math.log2(p) if p > 1 else 1.0),
    ))
    comm.set_phase("partition")
    return parts_final, final_info
