"""Separator candidates: great circles and lines, and their evaluation.

A great circle with unit normal ``g`` through the sphere's centre
induces the split ``sign(u_i · g)``; a line separator with direction
``d`` in the plane induces ``sign(x_i · d − θ)``.  Following standard
practice (and the paper's requirement of |V₁| ≈ |V₂|), every candidate
is shifted to the *weighted median* of its projection values, which
makes each candidate exactly balanced up to one vertex regardless of
ties — the selection then only compares cut sizes.

``sdist`` — the projection value minus the median — orders vertices by
distance from the separating surface and is exactly what the strip
refinement consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import GeometryError
from ..graph.csr import CSRGraph

__all__ = [
    "Candidate",
    "median_split",
    "circle_candidates",
    "line_candidates",
    "evaluate_cuts",
    "random_unit_vectors",
]


@dataclass(frozen=True)
class Candidate:
    """One separator candidate: a balanced split plus its geometry."""

    kind: str  # "circle" or "line"
    side: np.ndarray  # int8 labels
    sdist: np.ndarray  # signed distance proxy (projection minus median)


def random_unit_vectors(rng: np.random.Generator, n: int, dim: int) -> np.ndarray:
    """``n`` uniformly distributed unit vectors in ℝ^dim."""
    v = rng.normal(size=(n, dim))
    norms = np.linalg.norm(v, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return v / norms


def median_split(values: np.ndarray, weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split at the weighted median of ``values``.

    Returns ``(side, sdist)``: side 1 holds the upper weighted half
    (balanced up to one vertex even under ties, because the split is by
    *rank*, not by threshold comparison), and ``sdist`` is
    ``values − median_value``.
    """
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    n = values.shape[0]
    side = np.zeros(n, dtype=np.int8)
    if n == 0:
        return side, values.copy()
    order = np.argsort(values, kind="stable")
    cum = np.cumsum(weights[order])
    half = cum[-1] / 2.0
    k = int(np.searchsorted(cum, half, side="left")) + 1
    k = min(max(k, 1), n - 1) if n > 1 else 0
    side[order[k:]] = 1
    median_value = values[order[k - 1]] if n > 1 else values[order[0]]
    return side, values - median_value


def circle_candidates(
    upoints: np.ndarray,
    vwgt: np.ndarray,
    ntries: int,
    rng: np.random.Generator,
) -> List[Candidate]:
    """Great-circle candidates on centred sphere points ``(n, 3)``."""
    upoints = np.asarray(upoints, dtype=np.float64)
    if upoints.ndim != 2 or upoints.shape[1] != 3:
        raise GeometryError("circle candidates need (n, 3) sphere points")
    normals = random_unit_vectors(rng, ntries, 3)
    out = []
    for g in normals:
        sval = upoints @ g
        side, sdist = median_split(sval, vwgt)
        out.append(Candidate("circle", side, sdist))
    return out


def line_candidates(
    points: np.ndarray,
    vwgt: np.ndarray,
    ntries: int,
    rng: np.random.Generator,
) -> List[Candidate]:
    """Line-separator candidates on plane points ``(n, 2)``."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise GeometryError("line candidates need (n, 2) points")
    dirs = random_unit_vectors(rng, ntries, 2)
    out = []
    for d in dirs:
        sval = points @ d
        side, sdist = median_split(sval, vwgt)
        out.append(Candidate("line", side, sdist))
    return out


def evaluate_cuts(graph: CSRGraph, candidates: Sequence[Candidate]) -> np.ndarray:
    """Cut weight of every candidate, batched over the adjacency arrays."""
    if not candidates:
        return np.zeros(0)
    sides = np.stack([c.side for c in candidates], axis=1)  # (n, t)
    src = graph.edge_sources()
    crossing = sides[src, :] != sides[graph.indices, :]  # (2m, t)
    return graph.ewgt @ crossing / 2.0
