"""Approximate centerpoints via iterated Radon reduction.

A *centerpoint* of a point set in ℝ^d is a point such that every
halfspace containing it contains ≥ n/(d+1) of the points; GMT's balance
guarantee for great-circle separators rests on cutting through one.
Exact centerpoints are expensive; the standard approximation (Clarkson
et al., used by the meshpart implementation the paper builds on) is
*Radon reduction*: repeatedly replace random groups of d+2 points by
their Radon point — a point common to the convex hulls of both halves
of a Radon partition — until few points remain; their centroid is the
answer.  The paper's parallel formulation computes this "fast using
sampling across processors", which
:func:`repro.geometric.parallel` reuses directly via ``sample_size``.
"""

from __future__ import annotations


import numpy as np

from ..errors import GeometryError
from ..rng import SeedLike, as_generator

__all__ = ["radon_point", "approx_centerpoint", "centerpoint_depth"]


def radon_point(points: np.ndarray) -> np.ndarray:
    """Radon point of ``d+2`` points in ℝ^d.

    Solves ``Σλ_i = 0, Σλ_i p_i = 0`` for a nontrivial λ (null space of
    the ``(d+1) × (d+2)`` system); the Radon point is the convex
    combination of the positive-λ points with weights λ⁺.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] != pts.shape[1] + 2:
        raise GeometryError(f"radon_point needs (d+2, d) points, got {pts.shape}")
    d = pts.shape[1]
    a = np.vstack([np.ones((1, d + 2)), pts.T])  # (d+1, d+2)
    _, _, vh = np.linalg.svd(a)
    lam = vh[-1]
    pos = lam > 0
    s_pos = lam[pos].sum()
    if s_pos <= 1e-300 or pos.all():
        # numerically degenerate configuration: fall back to centroid
        return pts.mean(axis=0)
    return (lam[pos, None] * pts[pos]).sum(axis=0) / s_pos


def approx_centerpoint(
    points: np.ndarray,
    seed: SeedLike = None,
    sample_size: int = 1000,
) -> np.ndarray:
    """Approximate centerpoint by iterated Radon reduction.

    A random sample of ``sample_size`` points is repeatedly reduced:
    each pass shuffles the current set, groups it into (d+2)-tuples and
    replaces every tuple by its Radon point; leftovers carry over.  The
    final handful is averaged.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise GeometryError("approx_centerpoint expects (n, d) points")
    n, d = pts.shape
    if n == 0:
        raise GeometryError("cannot take the centerpoint of no points")
    g = d + 2
    if n <= g:
        return pts.mean(axis=0)
    rng = as_generator(seed)
    if n > sample_size:
        pts = pts[rng.choice(n, size=sample_size, replace=False)]
    current = pts
    while current.shape[0] > g:
        order = rng.permutation(current.shape[0])
        current = current[order]
        ngroups = current.shape[0] // g
        reduced = [
            radon_point(current[i * g : (i + 1) * g]) for i in range(ngroups)
        ]
        leftover = current[ngroups * g :]
        current = np.vstack([np.asarray(reduced), leftover]) if reduced else leftover
    return current.mean(axis=0)


def centerpoint_depth(points: np.ndarray, cp: np.ndarray, ntrials: int = 200,
                      seed: SeedLike = None) -> float:
    """Empirical Tukey-depth lower bound of ``cp`` (testing helper).

    Samples random directions and returns the minimum fraction of
    points on the lighter side of the hyperplane through ``cp``.  A true
    centerpoint in ℝ^d has depth ≥ 1/(d+1).
    """
    pts = np.asarray(points, dtype=np.float64)
    cp = np.asarray(cp, dtype=np.float64)
    rng = as_generator(seed)
    dirs = rng.normal(size=(ntrials, pts.shape[1]))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    proj = (pts - cp) @ dirs.T  # (n, ntrials)
    frac_pos = (proj > 0).mean(axis=0)
    return float(np.minimum(frac_pos, 1.0 - frac_pos).min())
