"""Stereographic lifting and the GMT conformal map.

Geometric mesh partitioning [9, 24] projects the mesh vertices onto the
unit sphere one dimension up, centres them with a conformal map, and
cuts with random great circles.  This module implements the geometry:

* :func:`lift` — inverse stereographic projection ℝ² → S²; the origin
  maps to the south pole ``(0,0,−1)`` and infinity to the north pole.
* :func:`project` — stereographic projection S² → ℝ² (from the north
  pole), the inverse of :func:`lift`.
* :func:`conformal_to_center` — given an (approximate) centerpoint of
  the lifted points inside the ball, rotate it onto the −z axis and
  apply the GMT dilation (project, scale by √((1−r)/(1+r)), re-lift) so
  the centerpoint moves to the sphere's centre.  Afterwards *every*
  great circle through the centre is a provably balanced separator
  candidate.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import GeometryError

__all__ = ["lift", "project", "rotation_to_south", "conformal_to_center"]


def lift(points: np.ndarray) -> np.ndarray:
    """Inverse stereographic projection of ``(n, 2)`` points onto S².

    ``u = (2p, ‖p‖² − 1) / (‖p‖² + 1)``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise GeometryError(f"lift expects (n, 2) points, got {points.shape}")
    r2 = (points * points).sum(axis=1)
    denom = r2 + 1.0
    out = np.empty((points.shape[0], 3))
    out[:, 0] = 2.0 * points[:, 0] / denom
    out[:, 1] = 2.0 * points[:, 1] / denom
    out[:, 2] = (r2 - 1.0) / denom
    return out


def project(upoints: np.ndarray) -> np.ndarray:
    """Stereographic projection of ``(n, 3)`` sphere points to ℝ²
    (from the north pole; inverse of :func:`lift`).  Points at the pole
    itself are clamped slightly below it."""
    upoints = np.asarray(upoints, dtype=np.float64)
    if upoints.ndim != 2 or upoints.shape[1] != 3:
        raise GeometryError(f"project expects (n, 3) points, got {upoints.shape}")
    z = np.minimum(upoints[:, 2], 1.0 - 1e-12)
    return upoints[:, :2] / (1.0 - z)[:, None]


def rotation_to_south(v: np.ndarray) -> np.ndarray:
    """Rotation matrix taking unit-ish vector ``v`` to ``(0, 0, −1)``.

    Built from the axis–angle form; degenerate inputs (already at a
    pole) return the identity or a 180° flip.
    """
    v = np.asarray(v, dtype=np.float64).reshape(3)
    norm = np.linalg.norm(v)
    if norm < 1e-15:
        return np.eye(3)
    a = v / norm
    b = np.array([0.0, 0.0, -1.0])
    cos = float(np.clip(a @ b, -1.0, 1.0))
    if cos > 1.0 - 1e-12:
        return np.eye(3)
    if cos < -1.0 + 1e-12:
        # v is the north pole: rotate pi about the x axis
        return np.diag([1.0, -1.0, -1.0])
    axis = np.cross(a, b)
    axis /= np.linalg.norm(axis)
    sin = float(np.sqrt(1.0 - cos * cos))
    kx, ky, kz = axis
    kmat = np.array([[0, -kz, ky], [kz, 0, -kx], [-ky, kx, 0]])
    return np.eye(3) + sin * kmat + (1 - cos) * (kmat @ kmat)


def conformal_to_center(
    upoints: np.ndarray, centerpoint: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, float]:
    """GMT conformal map sending ``centerpoint`` to the sphere centre.

    Returns ``(mapped_points, rotation, alpha)`` where ``mapped_points``
    lie on S² with their centerpoint (approximately) at the origin,
    ``rotation`` is the applied 3×3 rotation and ``alpha`` the dilation
    factor — enough to reproduce the map on other point sets.
    """
    upoints = np.asarray(upoints, dtype=np.float64)
    cp = np.asarray(centerpoint, dtype=np.float64).reshape(3)
    r = float(np.linalg.norm(cp))
    if r >= 1.0:
        # a centerpoint must be interior; clamp defensively
        r = min(r, 1.0 - 1e-9)
    rot = rotation_to_south(cp) if r > 1e-15 else np.eye(3)
    rotated = upoints @ rot.T
    # the centerpoint now sits at height z = -r; projecting from the north
    # pole sends the sphere point at that height to plane radius
    # sqrt((1-r)/(1+r)), so dilating by sqrt((1+r)/(1-r)) lifts it back to
    # the equator — i.e. the centerpoint moves to the sphere's centre
    # (GMT's "dilation lemma").
    alpha = float(np.sqrt((1.0 + r) / (1.0 - r)))
    plane = project(rotated) * alpha
    return lift(plane), rot, alpha
