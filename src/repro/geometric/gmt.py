"""Geometric mesh partitioning (Gilbert–Miller–Teng) drivers.

The sequential partitioner the paper calls G30 / G7 / G7-NL (§4):

* normalise the coordinates, lift them onto the sphere;
* for each of ``ncenterpoints`` approximate centerpoints, conformally
  centre the point set and draw random great circles through the centre;
* optionally add random line separators in the plane (the "-NL"
  variants drop these, as does ScalaPart's parallel formulation, "in
  the interests of parallel scalability");
* every candidate is balance-shifted to the weighted median; the
  candidate with the smallest cut wins.

Naming follows the paper exactly:

===========  ========  ======  ============
variant      circles   lines   centerpoints
===========  ========  ======  ============
``g30``      23        7       2
``g7``       5         2       1
``g7_nl``    5         0       1
===========  ========  ======  ============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import GeometryError
from ..graph.csr import CSRGraph
from ..graph.partition import Bisection
from ..rng import SeedLike, as_generator, derive_seed
from .centerpoint import approx_centerpoint
from .circles import Candidate, circle_candidates, evaluate_cuts, line_candidates
from .stereo import conformal_to_center, lift

__all__ = ["GMTResult", "normalize_coords", "geometric_partition", "g30", "g7", "g7_nl"]


@dataclass(frozen=True)
class GMTResult:
    """Best separator found by the geometric partitioner."""

    bisection: Bisection
    sdist: np.ndarray  # signed-distance proxy of the winning separator
    kind: str  # "circle" or "line"
    cut: float
    candidates: int

    @property
    def cut_size(self) -> int:
        return self.bisection.cut_size


def normalize_coords(coords: np.ndarray) -> np.ndarray:
    """Centre at the coordinate-wise median and scale to median radius 1.

    The stereographic lift is scale-sensitive: points far from the
    origin crowd the north pole.  This normalisation (same role as
    meshpart's) spreads the lifted points over the sphere.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise GeometryError(f"coords must be (n, 2), got {coords.shape}")
    centred = coords - np.median(coords, axis=0)
    radii = np.linalg.norm(centred, axis=1)
    scale = float(np.median(radii))
    if scale <= 1e-300:
        scale = float(radii.max()) or 1.0
    return centred / scale


def geometric_partition(
    graph: CSRGraph,
    coords: np.ndarray,
    *,
    ncircles: int = 5,
    nlines: int = 0,
    ncenterpoints: int = 1,
    seed: SeedLike = None,
    sample_size: int = 1000,
) -> GMTResult:
    """Run the GMT partitioner with the given candidate budget."""
    n = graph.num_vertices
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape != (n, 2):
        raise GeometryError(f"coords must be ({n}, 2), got {coords.shape}")
    if ncircles < 0 or nlines < 0 or ncenterpoints < 1:
        raise GeometryError("candidate counts must be nonnegative (>=1 centerpoint)")
    if ncircles + nlines == 0:
        raise GeometryError("need at least one candidate separator")
    if n < 2:
        raise GeometryError("cannot bisect a graph with fewer than 2 vertices")
    rng = as_generator(derive_seed(seed, 0x93))

    norm = normalize_coords(coords)
    upts = lift(norm)
    candidates: List[Candidate] = []

    # distribute the circle budget over the centerpoints
    share = [ncircles // ncenterpoints] * ncenterpoints
    for i in range(ncircles % ncenterpoints):
        share[i] += 1
    for i, k in enumerate(share):
        if k == 0:
            continue
        cp = approx_centerpoint(upts, seed=derive_seed(seed, 0xC0, i),
                                sample_size=sample_size)
        mapped, _, _ = conformal_to_center(upts, cp)
        candidates.extend(circle_candidates(mapped, graph.vwgt, k, rng))
    if nlines:
        candidates.extend(line_candidates(norm, graph.vwgt, nlines, rng))

    cuts = evaluate_cuts(graph, candidates)
    best = int(np.argmin(cuts))
    c = candidates[best]
    return GMTResult(
        bisection=Bisection(graph, c.side),
        sdist=c.sdist,
        kind=c.kind,
        cut=float(cuts[best]),
        candidates=len(candidates),
    )


def g30(graph: CSRGraph, coords: np.ndarray, seed: SeedLike = None) -> GMTResult:
    """Best of 30 tries: 23 great circles (2 centerpoints) + 7 lines."""
    return geometric_partition(
        graph, coords, ncircles=23, nlines=7, ncenterpoints=2, seed=seed
    )


def g7(graph: CSRGraph, coords: np.ndarray, seed: SeedLike = None) -> GMTResult:
    """Best of 7 tries: 5 great circles (1 centerpoint) + 2 lines."""
    return geometric_partition(
        graph, coords, ncircles=5, nlines=2, ncenterpoints=1, seed=seed
    )


def g7_nl(graph: CSRGraph, coords: np.ndarray, seed: SeedLike = None) -> GMTResult:
    """G7 without line separators — the variant ScalaPart parallelises."""
    return geometric_partition(
        graph, coords, ncircles=5, nlines=0, ncenterpoints=1, seed=seed
    )
