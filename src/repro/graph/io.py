"""Graph file I/O: METIS/Chaco graph format, edge lists, coordinates.

The METIS ``.graph`` format is the lingua franca of the partitioning
community (ParMetis, Scotch and Zoltan all read it), so the reproduction
reads and writes it: downstream users can partition their own graphs
with the examples in ``examples/``.

Format recap (see the METIS 5 manual):

* first non-comment line: ``n m [fmt [ncon]]`` where ``m`` counts
  *undirected* edges; ``fmt`` is a 3-digit flag string ``[vwgts?][vsize?]
  [ewgts?]`` — we support ``0``/``1``/``10``/``11``/``100``/``101``...
  restricted to vertex and edge weights (no vsize, ncon = 1),
* line ``i`` (1-based): optional vertex weight, then pairs/ids of
  neighbours (1-based), each followed by its weight when ``fmt`` ends
  in 1.
* lines starting with ``%`` are comments.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, TextIO, Union

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph

__all__ = [
    "read_metis",
    "write_metis",
    "read_edgelist",
    "write_edgelist",
    "read_coords",
    "write_coords",
]

PathLike = Union[str, Path]


def _open(path_or_file, mode: str):
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode), True
    return path_or_file, False


class _EdgeBuffer:
    """Doubling-capacity edge accumulator (the streaming reader's "growing
    CSR arrays"): holds only numeric data, never the file text."""

    __slots__ = ("srcs", "dsts", "wgts", "size")

    def __init__(self, cap: int = 1024) -> None:
        self.srcs = np.empty(cap, dtype=np.int64)
        self.dsts = np.empty(cap, dtype=np.int64)
        self.wgts = np.empty(cap, dtype=np.float64)
        self.size = 0

    def append(self, srcs: np.ndarray, dsts: np.ndarray, wgts: np.ndarray) -> None:
        need = self.size + srcs.size
        if need > self.srcs.size:
            cap = max(need, 2 * self.srcs.size)
            for name in ("srcs", "dsts", "wgts"):
                old = getattr(self, name)
                grown = np.empty(cap, dtype=old.dtype)
                grown[: self.size] = old[: self.size]
                setattr(self, name, grown)
        self.srcs[self.size : need] = srcs
        self.dsts[self.size : need] = dsts
        self.wgts[self.size : need] = wgts
        self.size = need


def _content_lines(fh):
    """Yield stripped non-blank, non-comment lines; blank lines and
    ``%`` comments are skipped anywhere in the file (trailing blanks
    used to break the strict line-count check)."""
    for ln in fh:
        ln = ln.strip()
        if ln and not ln.startswith("%"):
            yield ln


def _parse_chunk(chunk, v0, n, has_vwgt, has_ewgt, vwgt, buf: _EdgeBuffer) -> None:
    """Tokenise a block of vertex lines into float values and extract the
    vertex weights / neighbour ids / edge weights with array arithmetic."""
    counts = np.empty(len(chunk), dtype=np.int64)
    toks: list = []
    for i, ln in enumerate(chunk):
        t = ln.split()
        counts[i] = len(t)
        toks.extend(t)
    try:
        vals = np.array(toks, dtype=np.float64)
    except ValueError as exc:
        raise GraphError(f"non-numeric token in vertex lines: {exc}") from None
    starts = np.concatenate([[0], np.cumsum(counts)])
    if has_vwgt:
        if (counts == 0).any():
            bad = int(np.argmax(counts == 0))
            raise GraphError(f"missing vertex weight on line {v0 + bad + 2}")
        vwgt[v0 : v0 + len(chunk)] = vals[starts[:-1]]
        is_vw = np.zeros(vals.size, dtype=bool)
        is_vw[starts[:-1]] = True
        rest = vals[~is_vw]
        rest_cnt = counts - 1
    else:
        rest = vals
        rest_cnt = counts
    if has_ewgt:
        if (rest_cnt % 2).any():
            bad = int(np.argmax(rest_cnt % 2 != 0))
            raise GraphError(f"odd token count with edge weights on line {v0 + bad + 2}")
        off = np.arange(rest.size) - np.repeat(
            np.cumsum(rest_cnt) - rest_cnt, rest_cnt
        )
        nbrs = rest[off % 2 == 0]
        wgts = rest[off % 2 == 1]
        deg = rest_cnt >> 1
    else:
        nbrs = rest
        wgts = np.ones(rest.size, dtype=np.float64)
        deg = rest_cnt
    dsts = nbrs.astype(np.int64) - 1
    if (dsts + 1 != nbrs).any():
        raise GraphError("non-integer neighbor id in vertex lines")
    if (dsts < 0).any() or (dsts >= n).any():
        raise GraphError(f"neighbor id out of range 1..{n}")
    srcs = np.repeat(np.arange(v0, v0 + len(chunk), dtype=np.int64), deg)
    keep = srcs < dsts  # undirected: keep each pair once
    buf.append(srcs[keep], dsts[keep], wgts[keep])


def read_metis(
    path_or_file: Union[PathLike, TextIO], *, chunk_lines: int = 65536
) -> CSRGraph:
    """Read a graph in METIS format, streaming ``chunk_lines`` vertex
    lines at a time.

    Only one chunk of text is resident at once — the reader never
    materialises the file in a Python list — so million-vertex graphs
    load in memory proportional to the edge arrays, not ~2× the text
    size (DESIGN §11).  Vertex lines are counted as they stream, so
    trailing blank lines and trailing comments are accepted.
    """
    if chunk_lines < 1:
        raise GraphError("chunk_lines must be >= 1")
    fh, owned = _open(path_or_file, "r")
    try:
        lines = _content_lines(fh)
        header_line = next(lines, None)
        if header_line is None:
            raise GraphError("empty METIS file")
        header = header_line.split()
        if len(header) < 2:
            raise GraphError(f"bad METIS header: {header_line!r}")
        n, m = int(header[0]), int(header[1])
        fmt = header[2] if len(header) > 2 else "0"
        has_ewgt = fmt.endswith("1")
        has_vwgt = len(fmt) >= 2 and fmt[-2] == "1"
        if len(fmt) >= 3 and fmt[-3] == "1":
            raise GraphError("vertex sizes (fmt=1xx) are not supported")
        if len(header) > 3 and int(header[3]) != 1:
            raise GraphError("only ncon=1 is supported")
        vwgt = np.ones(n, dtype=np.float64)
        buf = _EdgeBuffer()
        seen = 0
        chunk: list = []
        for ln in lines:
            if seen + len(chunk) == n:
                raise GraphError(f"expected {n} vertex lines, found more")
            chunk.append(ln)
            if len(chunk) == chunk_lines:
                _parse_chunk(chunk, seen, n, has_vwgt, has_ewgt, vwgt, buf)
                seen += len(chunk)
                chunk = []
        if chunk:
            _parse_chunk(chunk, seen, n, has_vwgt, has_ewgt, vwgt, buf)
            seen += len(chunk)
        if seen != n:
            raise GraphError(f"expected {n} vertex lines, found {seen}")
    finally:
        if owned:
            fh.close()
    if buf.size:
        edges = np.column_stack([buf.srcs[: buf.size], buf.dsts[: buf.size]])
        g = CSRGraph.from_edges(n, edges, buf.wgts[: buf.size], vwgt, dedupe=True)
    else:
        g = CSRGraph(np.zeros(n + 1, dtype=np.int64), np.zeros(0, dtype=np.int64), vwgt=vwgt)
    if g.num_edges != m:
        raise GraphError(f"METIS header declares {m} edges, file has {g.num_edges}")
    return g


def _read_metis_reference(path_or_file: Union[PathLike, TextIO]) -> CSRGraph:
    """Pre-streaming reader (materialises every line, per-edge Python
    loop), kept temporarily for the parity tests."""
    fh, owned = _open(path_or_file, "r")
    try:
        lines = [ln.strip() for ln in fh if ln.strip() and not ln.lstrip().startswith("%")]
    finally:
        if owned:
            fh.close()
    if not lines:
        raise GraphError("empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphError(f"bad METIS header: {lines[0]!r}")
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) > 2 else "0"
    has_ewgt = fmt.endswith("1")
    has_vwgt = len(fmt) >= 2 and fmt[-2] == "1"
    if len(fmt) >= 3 and fmt[-3] == "1":
        raise GraphError("vertex sizes (fmt=1xx) are not supported")
    if len(header) > 3 and int(header[3]) != 1:
        raise GraphError("only ncon=1 is supported")
    if len(lines) - 1 != n:
        raise GraphError(f"expected {n} vertex lines, found {len(lines) - 1}")
    vwgt = np.ones(n, dtype=np.float64)
    srcs, dsts, wgts = [], [], []
    for v, line in enumerate(lines[1:]):
        tok = line.split()
        pos = 0
        if has_vwgt:
            if not tok:
                raise GraphError(f"missing vertex weight on line {v + 2}")
            vwgt[v] = float(tok[0])
            pos = 1
        rest = tok[pos:]
        if has_ewgt:
            if len(rest) % 2:
                raise GraphError(f"odd token count with edge weights on line {v + 2}")
            nbrs = rest[0::2]
            ws = rest[1::2]
        else:
            nbrs = rest
            ws = ["1"] * len(rest)
        for u, w in zip(nbrs, ws):
            srcs.append(v)
            dsts.append(int(u) - 1)
            wgts.append(float(w))
    if srcs:
        edges = np.column_stack(
            [np.asarray(srcs, dtype=np.int64), np.asarray(dsts, dtype=np.int64)]
        )
        keep = edges[:, 0] < edges[:, 1]
        g = CSRGraph.from_edges(
            n, edges[keep], np.asarray(wgts)[keep], vwgt, dedupe=True
        )
    else:
        g = CSRGraph(np.zeros(n + 1, dtype=np.int64), np.zeros(0, dtype=np.int64), vwgt=vwgt)
    if g.num_edges != m:
        raise GraphError(f"METIS header declares {m} edges, file has {g.num_edges}")
    return g


def write_metis(
    graph: CSRGraph,
    path_or_file: Union[PathLike, TextIO],
    *,
    vertex_weights: bool = False,
    edge_weights: bool = False,
) -> None:
    """Write a graph in METIS format.

    Weights are written as integers (METIS requires it); float weights
    are rounded and must be >= 1 after rounding.
    """
    fh, owned = _open(path_or_file, "w")
    try:
        fmt = f"{int(vertex_weights)}{int(edge_weights)}"
        header = f"{graph.num_vertices} {graph.num_edges}"
        if fmt != "00":
            header += f" {fmt.lstrip('0') or '0'}" if fmt != "10" else " 10"
        fh.write(header + "\n")
        for v in range(graph.num_vertices):
            parts = []
            if vertex_weights:
                parts.append(str(max(1, int(round(graph.vwgt[v])))))
            nbrs = graph.neighbors(v)
            ws = graph.edge_weights_of(v)
            for u, w in zip(nbrs, ws):
                parts.append(str(int(u) + 1))
                if edge_weights:
                    parts.append(str(max(1, int(round(w)))))
            fh.write(" ".join(parts) + "\n")
    finally:
        if owned:
            fh.close()


def read_edgelist(path_or_file: Union[PathLike, TextIO], n: Optional[int] = None) -> CSRGraph:
    """Read a whitespace edge list ``u v [w]`` (0-based ids, ``#`` comments)."""
    fh, owned = _open(path_or_file, "r")
    try:
        rows = []
        for ln in fh:
            ln = ln.split("#", 1)[0].strip()
            if ln:
                rows.append(ln.split())
    finally:
        if owned:
            fh.close()
    if not rows:
        return CSRGraph.empty(n or 0)
    us = np.array([int(r[0]) for r in rows], dtype=np.int64)
    vs = np.array([int(r[1]) for r in rows], dtype=np.int64)
    ws = np.array([float(r[2]) if len(r) > 2 else 1.0 for r in rows])
    nn = n if n is not None else int(max(us.max(), vs.max())) + 1
    return CSRGraph.from_edges(nn, np.column_stack([us, vs]), ws)


def write_edgelist(graph: CSRGraph, path_or_file: Union[PathLike, TextIO]) -> None:
    """Write the undirected edge list ``u v w`` (0-based)."""
    fh, owned = _open(path_or_file, "w")
    try:
        edges, w = graph.edge_list()
        for i in range(edges.shape[0]):
            fh.write(f"{edges[i, 0]} {edges[i, 1]} {w[i]:g}\n")
    finally:
        if owned:
            fh.close()


def read_coords(path_or_file: Union[PathLike, TextIO]) -> np.ndarray:
    """Read per-vertex coordinates, one ``x y [z]`` line per vertex."""
    fh, owned = _open(path_or_file, "r")
    try:
        rows = [ln.split() for ln in fh if ln.strip() and not ln.startswith("#")]
    finally:
        if owned:
            fh.close()
    if not rows:
        return np.zeros((0, 2))
    return np.array([[float(x) for x in r] for r in rows], dtype=np.float64)


def write_coords(coords: np.ndarray, path_or_file: Union[PathLike, TextIO]) -> None:
    fh, owned = _open(path_or_file, "w")
    try:
        for row in np.asarray(coords, dtype=np.float64):
            fh.write(" ".join(f"{x:.10g}" for x in row) + "\n")
    finally:
        if owned:
            fh.close()
