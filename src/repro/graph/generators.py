"""Synthetic graph generators.

The paper evaluates on nine graphs from the University of Florida sparse
matrix collection (Table 1).  Those exact matrices are unavailable
offline, so this module provides *generators for graphs of the same
character* — 5-point grids (ecology), Delaunay triangulations
(delaunay_n*), perforated meshes (hugetrace / hugebubbles), circuit-like
grids with irregular shorts (G3_circuit) and KKT-structured power-flow
graphs (kkt_power) — plus small classical graphs used throughout the
test suite (paths, cycles, stars, complete graphs, random regular /
geometric graphs).

Every generator returns a :class:`GeneratedGraph` bundling the
:class:`~repro.graph.csr.CSRGraph` with native 2-D coordinates when the
construction has them (``None`` otherwise).  Note that the paper gives
RCB / G30 coordinates from a *force-directed embedding*, not native mesh
coordinates; the benchmark harness follows suit, but native coordinates
are invaluable for unit-testing the geometric partitioner in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import GraphError
from ..rng import SeedLike, as_generator
from .csr import CSRGraph

__all__ = [
    "GeneratedGraph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid2d",
    "grid3d",
    "delaunay_mesh",
    "random_delaunay",
    "perforated_delaunay",
    "annulus_delaunay",
    "circuit_grid",
    "kkt_power_like",
    "random_geometric",
    "random_regular",
    "preferential_attachment",
    "caterpillar",
]


def _simplices_to_edges(simplices: np.ndarray) -> np.ndarray:
    """Unique undirected edge list from triangle simplices.

    Interior mesh edges belong to two triangles; they must appear once
    (with unit weight), so duplicates are removed rather than merged.
    """
    s = simplices
    e = np.vstack([s[:, [0, 1]], s[:, [1, 2]], s[:, [0, 2]]])
    e = np.sort(e, axis=1)
    return np.unique(e, axis=0)


@dataclass(frozen=True)
class GeneratedGraph:
    """A generated graph plus optional native coordinates and a name."""

    graph: CSRGraph
    coords: Optional[np.ndarray] = None
    name: str = ""

    def __iter__(self):
        # allow ``graph, coords = generator(...)`` unpacking
        return iter((self.graph, self.coords))


# ----------------------------------------------------------------------
# classical small graphs (test scaffolding)
# ----------------------------------------------------------------------

def path_graph(n: int) -> GeneratedGraph:
    """Path ``0-1-...-(n-1)`` with coordinates on a line."""
    e = (np.column_stack([np.arange(n - 1), np.arange(1, n)])
         if n > 1 else np.zeros((0, 2), dtype=np.int64))
    coords = np.column_stack([np.arange(n, dtype=np.float64), np.zeros(n)])
    return GeneratedGraph(CSRGraph.from_edges(n, e), coords, f"path{n}")


def cycle_graph(n: int) -> GeneratedGraph:
    """Cycle on ``n`` vertices placed on the unit circle."""
    if n < 3:
        raise GraphError("cycle needs n >= 3")
    e = np.column_stack([np.arange(n), (np.arange(n) + 1) % n])
    t = 2 * np.pi * np.arange(n) / n
    return GeneratedGraph(
        CSRGraph.from_edges(n, e), np.column_stack([np.cos(t), np.sin(t)]), f"cycle{n}"
    )


def star_graph(n: int) -> GeneratedGraph:
    """Star: vertex 0 connected to ``1..n-1``."""
    e = np.column_stack([np.zeros(n - 1, dtype=np.int64), np.arange(1, n)])
    return GeneratedGraph(CSRGraph.from_edges(n, e), None, f"star{n}")


def complete_graph(n: int) -> GeneratedGraph:
    iu = np.triu_indices(n, 1)
    return GeneratedGraph(
        CSRGraph.from_edges(n, np.column_stack(iu)), None, f"K{n}"
    )


def caterpillar(spine: int, legs: int) -> GeneratedGraph:
    """Path of length ``spine`` with ``legs`` pendant vertices per spine node."""
    n = spine * (1 + legs)
    sp = np.arange(spine)
    e = [np.column_stack([sp[:-1], sp[1:]])]
    leg_ids = spine + np.arange(spine * legs)
    owners = np.repeat(sp, legs)
    if legs:
        e.append(np.column_stack([owners, leg_ids]))
    return GeneratedGraph(
        CSRGraph.from_edges(n, np.vstack(e)), None, f"caterpillar{spine}x{legs}"
    )


# ----------------------------------------------------------------------
# meshes
# ----------------------------------------------------------------------

def grid2d(
    nx: int, ny: int, periodic: bool = False, diagonals: bool = False
) -> GeneratedGraph:
    """``nx × ny`` 5-point grid (optionally periodic / 8-point).

    This is the analogue of the ``ecology1``/``ecology2`` matrices,
    which are 5-point discretisations of a 2-D landscape model.
    """
    if nx < 1 or ny < 1:
        raise GraphError("grid dimensions must be positive")
    idx = np.arange(nx * ny).reshape(ny, nx)
    blocks = [
        np.column_stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()]),
        np.column_stack([idx[:-1, :].ravel(), idx[1:, :].ravel()]),
    ]
    if diagonals:
        blocks.append(np.column_stack([idx[:-1, :-1].ravel(), idx[1:, 1:].ravel()]))
        blocks.append(np.column_stack([idx[1:, :-1].ravel(), idx[:-1, 1:].ravel()]))
    if periodic and nx > 2:
        blocks.append(np.column_stack([idx[:, -1], idx[:, 0]]))
    if periodic and ny > 2:
        blocks.append(np.column_stack([idx[-1, :], idx[0, :]]))
    edges = np.vstack(blocks) if blocks else np.zeros((0, 2), dtype=np.int64)
    xs, ys = np.meshgrid(np.arange(nx, dtype=np.float64), np.arange(ny, dtype=np.float64))
    coords = np.column_stack([xs.ravel(), ys.ravel()])
    return GeneratedGraph(CSRGraph.from_edges(nx * ny, edges), coords, f"grid{nx}x{ny}")


def grid3d(nx: int, ny: int, nz: int) -> GeneratedGraph:
    """``nx × ny × nz`` 7-point grid (coordinates are the first two axes)."""
    idx = np.arange(nx * ny * nz).reshape(nz, ny, nx)
    blocks = [
        np.column_stack([idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()]),
        np.column_stack([idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel()]),
        np.column_stack([idx[:-1, :, :].ravel(), idx[1:, :, :].ravel()]),
    ]
    edges = np.vstack(blocks)
    return GeneratedGraph(
        CSRGraph.from_edges(nx * ny * nz, edges), None, f"grid{nx}x{ny}x{nz}"
    )


def delaunay_mesh(points: np.ndarray, name: str = "delaunay") -> GeneratedGraph:
    """Delaunay triangulation of an ``(n, 2)`` point set."""
    from scipy.spatial import Delaunay

    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise GraphError("delaunay_mesh expects (n, 2) points")
    if points.shape[0] < 3:
        raise GraphError("delaunay_mesh needs at least 3 points")
    tri = Delaunay(points)
    g = CSRGraph.from_edges(points.shape[0], _simplices_to_edges(tri.simplices))
    return GeneratedGraph(g, points, name)


def random_delaunay(n: int, seed: SeedLike = None, name: str = "") -> GeneratedGraph:
    """Delaunay triangulation of ``n`` uniform points in the unit square.

    Analogue of the ``delaunay_nXX`` UFL graphs (which are Delaunay
    triangulations of 2^XX random points).
    """
    rng = as_generator(seed)
    pts = rng.random((n, 2))
    return delaunay_mesh(pts, name or f"delaunay{n}")


def perforated_delaunay(
    n: int,
    holes: int = 12,
    hole_radius: float = 0.06,
    seed: SeedLike = None,
    name: str = "",
) -> GeneratedGraph:
    """Delaunay mesh of the unit square with circular holes punched out.

    Analogue of ``hugebubbles-00020`` (adaptive meshes of 2-D domains
    containing bubbles).  Points inside the holes are removed and
    triangles whose centroid falls inside a hole are dropped, leaving a
    multiply-connected mesh.
    """
    from scipy.spatial import Delaunay

    rng = as_generator(seed)
    pts = rng.random((int(n * 1.6), 2))
    centres = rng.random((holes, 2)) * 0.8 + 0.1
    d = np.linalg.norm(pts[:, None, :] - centres[None, :, :], axis=2)
    pts = pts[(d > hole_radius).all(axis=1)][:n]
    if pts.shape[0] < 3:
        raise GraphError("perforated mesh lost too many points")
    tri = Delaunay(pts)
    cent = pts[tri.simplices].mean(axis=1)
    dc = np.linalg.norm(cent[:, None, :] - centres[None, :, :], axis=2)
    keep = (dc > hole_radius).all(axis=1)
    g = CSRGraph.from_edges(pts.shape[0], _simplices_to_edges(tri.simplices[keep]))
    graph, ids = g.largest_component()
    return GeneratedGraph(graph, pts[ids], name or f"bubbles{n}")


def annulus_delaunay(
    n: int,
    inner: float = 0.25,
    aspect: float = 6.0,
    seed: SeedLike = None,
    name: str = "",
) -> GeneratedGraph:
    """Delaunay mesh of a long thin annular band.

    Analogue of ``hugetrace-00000`` (meshes of long traced 2-D regions):
    an elongated annulus produces the long, thin, hole-containing domain
    whose small separators the trace meshes exhibit.
    """
    from scipy.spatial import Delaunay

    rng = as_generator(seed)
    t = rng.random(int(n * 1.2)) * 2 * np.pi
    r = inner + (1 - inner) * rng.random(int(n * 1.2))
    pts = np.column_stack([aspect * r * np.cos(t), r * np.sin(t)])[:n]
    tri = Delaunay(pts)
    cent = pts[tri.simplices].mean(axis=1)
    rc = np.hypot(cent[:, 0] / aspect, cent[:, 1])
    g = CSRGraph.from_edges(pts.shape[0], _simplices_to_edges(tri.simplices[rc > inner]))
    graph, ids = g.largest_component()
    return GeneratedGraph(graph, pts[ids], name or f"trace{n}")


# ----------------------------------------------------------------------
# irregular graphs
# ----------------------------------------------------------------------

def circuit_grid(
    nx: int,
    ny: int,
    shorts_fraction: float = 0.02,
    seed: SeedLike = None,
    name: str = "",
) -> GeneratedGraph:
    """Grid with a sprinkling of random long-range 'via' edges.

    Analogue of ``G3_circuit`` (circuit simulation): predominantly
    grid-structured with a small number of irregular connections that
    spoil pure geometric cuts.
    """
    rng = as_generator(seed)
    base = grid2d(nx, ny)
    n = base.graph.num_vertices
    k = int(shorts_fraction * n)
    extra = rng.integers(0, n, size=(k, 2))
    edges, w = base.graph.edge_list()
    all_edges = np.vstack([edges, extra])
    g = CSRGraph.from_edges(n, all_edges)
    return GeneratedGraph(g, base.coords, name or f"circuit{nx}x{ny}")


def kkt_power_like(
    grid_side: int,
    constraints_fraction: float = 0.5,
    couplings: int = 4,
    hub_fraction: float = 0.002,
    hub_degree: int = 60,
    seed: SeedLike = None,
    name: str = "",
) -> GeneratedGraph:
    """KKT-structured graph modelled on ``kkt_power``.

    ``kkt_power`` is the graph of a KKT system from optimal power flow:
    a network block (grid-like power network), a constraint block whose
    vertices couple to a handful of network vertices, and a heavy tail of
    high-degree vertices.  The resulting graph is decidedly non-planar
    with large separators — the case where geometric methods struggle
    (Table 2 shows G7/RCB ~45–51% worse than G30 on this graph).
    """
    rng = as_generator(seed)
    net = grid2d(grid_side, grid_side, diagonals=True)
    n_net = net.graph.num_vertices
    n_con = int(constraints_fraction * n_net)
    n_hub = max(1, int(hub_fraction * (n_net + n_con)))
    n = n_net + n_con + n_hub
    edges = [net.graph.edge_list()[0]]
    # constraint vertices couple to `couplings` random network vertices
    con_ids = n_net + np.arange(n_con)
    targets = rng.integers(0, n_net, size=(n_con, couplings))
    edges.append(
        np.column_stack([np.repeat(con_ids, couplings), targets.ravel()])
    )
    # hubs connect widely across both blocks (heavy-tailed degrees)
    hub_ids = n_net + n_con + np.arange(n_hub)
    hub_targets = rng.integers(0, n_net + n_con, size=(n_hub, hub_degree))
    edges.append(
        np.column_stack([np.repeat(hub_ids, hub_degree), hub_targets.ravel()])
    )
    g = CSRGraph.from_edges(n, np.vstack(edges))
    graph, _ = g.largest_component()
    return GeneratedGraph(graph, None, name or f"kkt{grid_side}")


def random_geometric(
    n: int, radius: Optional[float] = None, seed: SeedLike = None
) -> GeneratedGraph:
    """Random geometric graph in the unit square (KD-tree construction)."""
    from scipy.spatial import cKDTree

    rng = as_generator(seed)
    pts = rng.random((n, 2))
    if radius is None:
        radius = 1.8 / np.sqrt(max(n, 1))  # ~ constant expected degree
    tree = cKDTree(pts)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    g = CSRGraph.from_edges(n, pairs.astype(np.int64))
    return GeneratedGraph(g, pts, f"geo{n}")


def random_regular(n: int, d: int, seed: SeedLike = None) -> GeneratedGraph:
    """Random ``d``-regular-ish multigraph via the configuration model
    (self loops and duplicate edges dropped, so degrees are ≤ d)."""
    if (n * d) % 2 != 0:
        raise GraphError("n*d must be even")
    rng = as_generator(seed)
    stubs = np.repeat(np.arange(n), d)
    rng.shuffle(stubs)
    edges = stubs.reshape(-1, 2)
    g = CSRGraph.from_edges(n, edges)
    return GeneratedGraph(g, None, f"reg{n}x{d}")


def preferential_attachment(n: int, m: int = 3, seed: SeedLike = None) -> GeneratedGraph:
    """Barabási–Albert preferential attachment (power-law degrees)."""
    if n <= m:
        raise GraphError("need n > m")
    rng = as_generator(seed)
    repeated: list = list(range(m))
    edges = []
    for v in range(m, n):
        chosen = rng.choice(len(repeated), size=m, replace=False)
        tgt = {repeated[int(c)] for c in chosen}
        for t in tgt:
            edges.append((v, t))
            repeated.append(t)
        repeated.extend([v] * len(tgt))
    g = CSRGraph.from_edges(n, np.array(edges, dtype=np.int64))
    return GeneratedGraph(g, None, f"ba{n}x{m}")
