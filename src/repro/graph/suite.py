"""The nine-graph evaluation suite (Table 1 analogues).

The paper's Table 1 lists nine UFL graphs with 1–21 M vertices.  The
exact matrices are unavailable offline, so each entry here is a scaled
synthetic analogue with matching *character* (see DESIGN.md §2).  Every
entry records the paper's N and M (in millions) so the benchmark
harness can print Table 1 with both paper and reproduction sizes.

A global ``scale`` knob shrinks or grows the whole suite; the default
``scale=1.0`` sizes (roughly 8k–36k vertices) let the entire SC'13
evaluation — every method × graph × processor count — run in minutes on
a laptop while preserving the quality/time *relationships* the paper
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import GraphError
from ..rng import DEFAULT_SEED, SeedLike, derive_seed
from . import generators as gen
from .generators import GeneratedGraph

__all__ = ["SuiteEntry", "SUITE", "LARGE4", "suite_names", "build", "build_suite"]


@dataclass(frozen=True)
class SuiteEntry:
    """One row of Table 1: a named analogue of a UFL graph."""

    name: str
    paper_name: str
    paper_n_millions: float
    paper_m_millions: float
    description: str
    builder: Callable[[float, SeedLike], GeneratedGraph]

    def build(self, scale: float = 1.0, seed: SeedLike = None) -> GeneratedGraph:
        if scale <= 0:
            raise GraphError("scale must be positive")
        if seed is None:
            seed = derive_seed(DEFAULT_SEED, hash(self.name) & 0xFFFF)
        g = self.builder(scale, seed)
        return GeneratedGraph(g.graph, g.coords, self.name)


def _s(base: int, scale: float) -> int:
    return max(16, int(round(base * scale)))


def _side(base: int, scale: float) -> int:
    return max(4, int(round(base * np.sqrt(scale))))


_ENTRIES: List[SuiteEntry] = [
    SuiteEntry(
        "ecology1", "ecology1", 1.0, 4.99,
        "5-point grid (landscape ecology stencil)",
        lambda sc, seed: gen.grid2d(_side(100, sc), _side(100, sc)),
    ),
    SuiteEntry(
        "ecology2", "ecology2", 0.99, 4.99,
        "5-point grid, slightly different shape",
        lambda sc, seed: gen.grid2d(_side(96, sc), _side(104, sc)),
    ),
    SuiteEntry(
        "delaunay_n20", "delaunay_n20", 1.05, 6.29,
        "Delaunay triangulation of random points (small)",
        lambda sc, seed: gen.random_delaunay(_s(8192, sc), seed),
    ),
    SuiteEntry(
        "G3_circuit", "G3_circuit", 1.58, 7.66,
        "grid with irregular circuit 'shorts'",
        lambda sc, seed: gen.circuit_grid(_side(110, sc), _side(110, sc), 0.02, seed),
    ),
    SuiteEntry(
        "kkt_power", "kkt_power", 2.06, 12.77,
        "KKT system of optimal power flow (irregular, heavy-tailed)",
        lambda sc, seed: gen.kkt_power_like(_side(76, sc), seed=seed),
    ),
    SuiteEntry(
        "hugetrace-00000", "hugetrace-00000", 4.59, 13.76,
        "long thin annular mesh (trace-like domain)",
        lambda sc, seed: gen.annulus_delaunay(_s(14000, sc), seed=seed),
    ),
    SuiteEntry(
        "delaunay_n23", "delaunay_n23", 8.39, 50.33,
        "Delaunay triangulation (medium)",
        lambda sc, seed: gen.random_delaunay(_s(18000, sc), seed),
    ),
    SuiteEntry(
        "delaunay_n24", "delaunay_n24", 16.77, 100.66,
        "Delaunay triangulation (large)",
        lambda sc, seed: gen.random_delaunay(_s(30000, sc), seed),
    ),
    SuiteEntry(
        "hugebubbles-00020", "hugebubbles-00020", 21.20, 63.58,
        "perforated mesh with bubble holes (largest)",
        lambda sc, seed: gen.perforated_delaunay(_s(34000, sc), seed=seed),
    ),
]

#: Table-1 order, keyed by analogue name.
SUITE: Dict[str, SuiteEntry] = {e.name: e for e in _ENTRIES}

#: The four largest graphs used in Figure 9.
LARGE4 = ["hugetrace-00000", "delaunay_n23", "delaunay_n24", "hugebubbles-00020"]


def suite_names() -> List[str]:
    """Suite graph names in Table-1 order."""
    return [e.name for e in _ENTRIES]


def build(name: str, scale: float = 1.0, seed: SeedLike = None) -> GeneratedGraph:
    """Build one suite graph by name."""
    if name not in SUITE:
        raise GraphError(f"unknown suite graph {name!r}; known: {suite_names()}")
    return SUITE[name].build(scale, seed)


def build_suite(
    scale: float = 1.0, seed: SeedLike = None, names: Optional[List[str]] = None
) -> Dict[str, GeneratedGraph]:
    """Build all (or the named subset of) suite graphs."""
    return {n: build(n, scale, seed) for n in (names or suite_names())}
