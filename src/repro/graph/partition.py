"""Partition data structures and partition-quality measures.

The paper partitions a graph into two parts ``V1``/``V2`` of nearly equal
size and measures the *edge separator* size ``|S|`` (the cut).  This
module provides :class:`Bisection` — an immutable labelling of vertices
into sides 0 and 1 — and its k-way generalisation
:class:`KWayPartition`, plus all quality metrics used in the
evaluation: cut size, weighted cut, balance / imbalance, boundary
vertices, and separator-edge extraction (used by the refinement
stages).

K-way balance is *cost-aware*: every k-way metric accepts an optional
per-vertex cost array (produced by a ``repro.core.cost.CostModel``) and
falls back to ``graph.vwgt`` when none is given, so weighted graphs are
balanced by weight, never by raw vertex counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import PartitionError
from .csr import CSRGraph

__all__ = [
    "Bisection",
    "KWayPartition",
    "cut_size",
    "cut_weight",
    "imbalance",
    "kway_cut",
    "kway_cut_weight",
    "kway_imbalance",
    "part_costs",
]


def _sides_array(side, n: int) -> np.ndarray:
    side = np.asarray(side)
    if side.shape != (n,):
        raise PartitionError(f"side labels must have shape ({n},), got {side.shape}")
    if side.dtype == bool:
        side = side.astype(np.int8)
    side = side.astype(np.int8, copy=True)
    if side.size and not np.isin(side, (0, 1)).all():
        raise PartitionError("side labels must be 0 or 1")
    side.setflags(write=False)
    return side


@dataclass(frozen=True)
class Bisection:
    """Two-way partition of the vertices of a :class:`CSRGraph`.

    ``side[v]`` is 0 or 1.  Instances are immutable; refinement
    algorithms produce new instances via :meth:`with_side`.
    """

    graph: CSRGraph
    side: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "side", _sides_array(self.side, self.graph.num_vertices)
        )

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_part0(cls, graph: CSRGraph, part0: np.ndarray) -> "Bisection":
        """Build from the set of vertex ids on side 0."""
        side = np.ones(graph.num_vertices, dtype=np.int8)
        side[np.asarray(part0, dtype=np.int64)] = 0
        return cls(graph, side)

    @classmethod
    def trivial(cls, graph: CSRGraph) -> "Bisection":
        """Everything on side 0 (useful as a neutral starting point)."""
        return cls(graph, np.zeros(graph.num_vertices, dtype=np.int8))

    def with_side(self, side: np.ndarray) -> "Bisection":
        return Bisection(self.graph, side)

    def flipped(self) -> "Bisection":
        """Swap the two sides (cut and balance are invariant)."""
        return Bisection(self.graph, 1 - self.side)

    # -- metrics ----------------------------------------------------------
    @property
    def part_sizes(self) -> Tuple[int, int]:
        n1 = int(self.side.sum())
        return self.graph.num_vertices - n1, n1

    @property
    def part_weights(self) -> Tuple[float, float]:
        w1 = float(self.graph.vwgt[self.side == 1].sum())
        return self.graph.total_vertex_weight - w1, w1

    @property
    def cut_size(self) -> int:
        """Number of edges crossing the partition (the paper's ``|S|``)."""
        return cut_size(self.graph, self.side)

    @property
    def cut_weight(self) -> float:
        return cut_weight(self.graph, self.side)

    @property
    def imbalance(self) -> float:
        """``max(w0, w1) / (w_total / 2) - 1``; 0 means perfectly balanced."""
        return imbalance(self.graph, self.side)

    def separator_edges(self) -> np.ndarray:
        """``(k, 2)`` array of cut edges with ``u`` on side 0, ``v`` on 1."""
        edges, _ = self.graph.edge_list()
        if edges.shape[0] == 0:
            return np.zeros((0, 2), dtype=np.int64)
        s = self.side
        crossing = s[edges[:, 0]] != s[edges[:, 1]]
        sub = edges[crossing]
        swap = s[sub[:, 0]] == 1
        sub[swap] = sub[swap][:, ::-1]
        return sub

    def boundary_vertices(self) -> np.ndarray:
        """Vertices incident to at least one cut edge."""
        sep = self.separator_edges()
        return np.unique(sep.ravel())

    def external_degrees(self) -> np.ndarray:
        """Per-vertex weight of edges to the *other* side (FM's ED)."""
        g = self.graph
        src = g.edge_sources()
        other = self.side[src] != self.side[g.indices]
        return np.bincount(
            src[other], weights=g.ewgt[other], minlength=g.num_vertices
        )

    def internal_degrees(self) -> np.ndarray:
        """Per-vertex weight of edges to the *same* side (FM's ID)."""
        g = self.graph
        src = g.edge_sources()
        same = self.side[src] == self.side[g.indices]
        return np.bincount(src[same], weights=g.ewgt[same], minlength=g.num_vertices)

    def validate(self, max_imbalance: Optional[float] = None) -> None:
        """Raise :class:`PartitionError` if the bisection is malformed or
        (when ``max_imbalance`` is given) too unbalanced."""
        _sides_array(self.side, self.graph.num_vertices)
        if self.graph.num_vertices >= 2:
            if (self.side == 0).sum() == 0 or (self.side == 1).sum() == 0:
                raise PartitionError("bisection has an empty side")
        if max_imbalance is not None and self.imbalance > max_imbalance:
            raise PartitionError(
                f"imbalance {self.imbalance:.4f} exceeds allowed {max_imbalance:.4f}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n0, n1 = self.part_sizes
        return f"Bisection(n0={n0}, n1={n1}, cut={self.cut_size})"


def _parts_array(parts, n: int, k: int) -> np.ndarray:
    parts = np.asarray(parts)
    if parts.shape != (n,):
        raise PartitionError(
            f"part labels must have shape ({n},), got {parts.shape}"
        )
    parts = parts.astype(np.int64, copy=True)
    if parts.size and (parts.min() < 0 or parts.max() >= k):
        raise PartitionError(f"part labels must lie in [0, {k})")
    parts.setflags(write=False)
    return parts


def _costs_array(costs, n: int) -> Optional[np.ndarray]:
    if costs is None:
        return None
    costs = np.ascontiguousarray(costs, dtype=np.float64)
    if costs.shape != (n,):
        raise PartitionError(
            f"vertex costs must have shape ({n},), got {costs.shape}"
        )
    costs.setflags(write=False)
    return costs


@dataclass(frozen=True)
class KWayPartition:
    """K-way partition of the vertices of a :class:`CSRGraph`.

    ``parts[v]`` lies in ``[0, k)``.  ``costs`` is the optional
    per-vertex balance cost (resolved from a CostModel); when ``None``
    the balance metrics use ``graph.vwgt``.  Instances are immutable;
    refinement produces new instances via :meth:`with_parts`.
    """

    graph: CSRGraph
    parts: np.ndarray
    k: int
    costs: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise PartitionError(f"k must be >= 1, got {self.k}")
        object.__setattr__(
            self, "parts",
            _parts_array(self.parts, self.graph.num_vertices, self.k),
        )
        object.__setattr__(
            self, "costs", _costs_array(self.costs, self.graph.num_vertices)
        )

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_bisection(
        cls, bis: Bisection, costs: Optional[np.ndarray] = None
    ) -> "KWayPartition":
        return cls(bis.graph, bis.side.astype(np.int64), 2, costs=costs)

    def with_parts(self, parts: np.ndarray) -> "KWayPartition":
        return KWayPartition(self.graph, parts, self.k, costs=self.costs)

    def to_bisection(self) -> Bisection:
        if self.k > 2:
            raise PartitionError(
                f"cannot view a {self.k}-way partition as a bisection"
            )
        return Bisection(self.graph, self.parts.astype(np.int8))

    # -- metrics ----------------------------------------------------------
    @property
    def balance_costs(self) -> np.ndarray:
        """The cost array the balance metrics use (vwgt fallback)."""
        return self.costs if self.costs is not None else self.graph.vwgt

    @property
    def part_sizes(self) -> np.ndarray:
        return np.bincount(self.parts, minlength=self.k)

    @property
    def part_weights(self) -> np.ndarray:
        return np.bincount(
            self.parts, weights=self.graph.vwgt, minlength=self.k
        )

    @property
    def part_costs(self) -> np.ndarray:
        return np.bincount(
            self.parts, weights=self.balance_costs, minlength=self.k
        )

    @property
    def cut_size(self) -> int:
        return kway_cut(self.graph, self.parts)

    @property
    def cut_weight(self) -> float:
        return kway_cut_weight(self.graph, self.parts)

    @property
    def imbalance(self) -> float:
        """``max_part_cost / (total_cost / k) - 1`` (0 = perfect)."""
        return kway_imbalance(
            self.graph, self.parts, self.k, costs=self.costs
        )

    def boundary_vertices(self) -> np.ndarray:
        """Vertices incident to at least one cut edge."""
        g = self.graph
        src = g.edge_sources()
        crossing = self.parts[src] != self.parts[g.indices]
        return np.unique(src[crossing])

    def boundary_connectivity(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(boundary, conn)`` where ``conn[i, p]`` is the weight of
        edges from boundary vertex ``boundary[i]`` into part ``p``."""
        g = self.graph
        src = g.edge_sources()
        boundary = self.boundary_vertices()
        pos = np.full(g.num_vertices, -1, dtype=np.int64)
        pos[boundary] = np.arange(boundary.size)
        mask = pos[src] >= 0
        conn = np.zeros((boundary.size, self.k))
        np.add.at(
            conn,
            (pos[src[mask]], self.parts[g.indices[mask]]),
            g.ewgt[mask],
        )
        return boundary, conn

    def validate(self, max_imbalance: Optional[float] = None) -> None:
        """Raise :class:`PartitionError` if malformed, a part is empty
        (when the graph has >= k vertices), or too unbalanced."""
        _parts_array(self.parts, self.graph.num_vertices, self.k)
        if self.graph.num_vertices >= self.k:
            sizes = self.part_sizes
            if (sizes == 0).any():
                empty = np.flatnonzero(sizes == 0)
                raise PartitionError(
                    f"k-way partition has empty parts {empty.tolist()}"
                )
        if max_imbalance is not None and self.imbalance > max_imbalance:
            raise PartitionError(
                f"k-way imbalance {self.imbalance:.4f} exceeds allowed "
                f"{max_imbalance:.4f}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KWayPartition(k={self.k}, cut={self.cut_size}, "
            f"imbalance={self.imbalance:.4f})"
        )


# ----------------------------------------------------------------------
# free functions (usable without building a Bisection)
# ----------------------------------------------------------------------

def cut_size(graph: CSRGraph, side: np.ndarray) -> int:
    """Number of undirected edges with endpoints on different sides."""
    side = np.asarray(side)
    src = graph.edge_sources()
    crossing = side[src] != side[graph.indices]
    return int(crossing.sum()) // 2


def cut_weight(graph: CSRGraph, side: np.ndarray) -> float:
    """Total weight of cut edges."""
    side = np.asarray(side)
    src = graph.edge_sources()
    crossing = side[src] != side[graph.indices]
    return float(graph.ewgt[crossing].sum()) / 2.0


def imbalance(graph: CSRGraph, side: np.ndarray) -> float:
    """``max(w0, w1) / (w_total/2) - 1`` (0 = perfect balance)."""
    side = np.asarray(side)
    total = graph.total_vertex_weight
    if total == 0:
        return 0.0
    w1 = float(graph.vwgt[side == 1].sum())
    return max(total - w1, w1) / (total / 2.0) - 1.0


def kway_cut(graph: CSRGraph, parts: np.ndarray) -> int:
    """Number of edges whose endpoints lie in different parts."""
    parts = np.asarray(parts)
    src = graph.edge_sources()
    return int((parts[src] != parts[graph.indices]).sum()) // 2


def kway_cut_weight(graph: CSRGraph, parts: np.ndarray) -> float:
    """Total weight of edges whose endpoints lie in different parts."""
    parts = np.asarray(parts)
    src = graph.edge_sources()
    crossing = parts[src] != parts[graph.indices]
    return float(graph.ewgt[crossing].sum()) / 2.0


def part_costs(
    graph: CSRGraph,
    parts: np.ndarray,
    k: int,
    costs: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-part total balance cost (``graph.vwgt`` when no costs given)."""
    parts = np.asarray(parts)
    weights = graph.vwgt if costs is None else np.asarray(costs, dtype=np.float64)
    return np.bincount(parts, weights=weights, minlength=k)


def kway_imbalance(
    graph: CSRGraph,
    parts: np.ndarray,
    k: int,
    costs: Optional[np.ndarray] = None,
) -> float:
    """``max_part_cost / (total_cost/k) − 1`` (0 = perfect balance).

    Balance is measured against per-vertex *costs* — ``graph.vwgt`` by
    default (never raw vertex counts), or an explicit cost-model array.
    """
    if k < 1:
        return 0.0
    pc = part_costs(graph, parts, k, costs=costs)
    total = float(pc.sum())
    if total == 0:
        return 0.0
    return float(pc.max() / (total / k) - 1.0)
