"""Bisection data structure and partition-quality measures.

The paper partitions a graph into two parts ``V1``/``V2`` of nearly equal
size and measures the *edge separator* size ``|S|`` (the cut).  This
module provides :class:`Bisection` — an immutable labelling of vertices
into sides 0 and 1 — and all quality metrics used in the evaluation:
cut size, weighted cut, balance / imbalance, boundary vertices, and
separator-edge extraction (used by the strip-refinement stage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import PartitionError
from .csr import CSRGraph

__all__ = ["Bisection", "cut_size", "cut_weight", "imbalance"]


def _sides_array(side, n: int) -> np.ndarray:
    side = np.asarray(side)
    if side.shape != (n,):
        raise PartitionError(f"side labels must have shape ({n},), got {side.shape}")
    if side.dtype == bool:
        side = side.astype(np.int8)
    side = side.astype(np.int8, copy=True)
    if side.size and not np.isin(side, (0, 1)).all():
        raise PartitionError("side labels must be 0 or 1")
    side.setflags(write=False)
    return side


@dataclass(frozen=True)
class Bisection:
    """Two-way partition of the vertices of a :class:`CSRGraph`.

    ``side[v]`` is 0 or 1.  Instances are immutable; refinement
    algorithms produce new instances via :meth:`with_side`.
    """

    graph: CSRGraph
    side: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "side", _sides_array(self.side, self.graph.num_vertices)
        )

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_part0(cls, graph: CSRGraph, part0: np.ndarray) -> "Bisection":
        """Build from the set of vertex ids on side 0."""
        side = np.ones(graph.num_vertices, dtype=np.int8)
        side[np.asarray(part0, dtype=np.int64)] = 0
        return cls(graph, side)

    @classmethod
    def trivial(cls, graph: CSRGraph) -> "Bisection":
        """Everything on side 0 (useful as a neutral starting point)."""
        return cls(graph, np.zeros(graph.num_vertices, dtype=np.int8))

    def with_side(self, side: np.ndarray) -> "Bisection":
        return Bisection(self.graph, side)

    def flipped(self) -> "Bisection":
        """Swap the two sides (cut and balance are invariant)."""
        return Bisection(self.graph, 1 - self.side)

    # -- metrics ----------------------------------------------------------
    @property
    def part_sizes(self) -> Tuple[int, int]:
        n1 = int(self.side.sum())
        return self.graph.num_vertices - n1, n1

    @property
    def part_weights(self) -> Tuple[float, float]:
        w1 = float(self.graph.vwgt[self.side == 1].sum())
        return self.graph.total_vertex_weight - w1, w1

    @property
    def cut_size(self) -> int:
        """Number of edges crossing the partition (the paper's ``|S|``)."""
        return cut_size(self.graph, self.side)

    @property
    def cut_weight(self) -> float:
        return cut_weight(self.graph, self.side)

    @property
    def imbalance(self) -> float:
        """``max(w0, w1) / (w_total / 2) - 1``; 0 means perfectly balanced."""
        return imbalance(self.graph, self.side)

    def separator_edges(self) -> np.ndarray:
        """``(k, 2)`` array of cut edges with ``u`` on side 0, ``v`` on 1."""
        edges, _ = self.graph.edge_list()
        if edges.shape[0] == 0:
            return np.zeros((0, 2), dtype=np.int64)
        s = self.side
        crossing = s[edges[:, 0]] != s[edges[:, 1]]
        sub = edges[crossing]
        swap = s[sub[:, 0]] == 1
        sub[swap] = sub[swap][:, ::-1]
        return sub

    def boundary_vertices(self) -> np.ndarray:
        """Vertices incident to at least one cut edge."""
        sep = self.separator_edges()
        return np.unique(sep.ravel())

    def external_degrees(self) -> np.ndarray:
        """Per-vertex weight of edges to the *other* side (FM's ED)."""
        g = self.graph
        src = g.edge_sources()
        other = self.side[src] != self.side[g.indices]
        return np.bincount(
            src[other], weights=g.ewgt[other], minlength=g.num_vertices
        )

    def internal_degrees(self) -> np.ndarray:
        """Per-vertex weight of edges to the *same* side (FM's ID)."""
        g = self.graph
        src = g.edge_sources()
        same = self.side[src] == self.side[g.indices]
        return np.bincount(src[same], weights=g.ewgt[same], minlength=g.num_vertices)

    def validate(self, max_imbalance: Optional[float] = None) -> None:
        """Raise :class:`PartitionError` if the bisection is malformed or
        (when ``max_imbalance`` is given) too unbalanced."""
        _sides_array(self.side, self.graph.num_vertices)
        if self.graph.num_vertices >= 2:
            if (self.side == 0).sum() == 0 or (self.side == 1).sum() == 0:
                raise PartitionError("bisection has an empty side")
        if max_imbalance is not None and self.imbalance > max_imbalance:
            raise PartitionError(
                f"imbalance {self.imbalance:.4f} exceeds allowed {max_imbalance:.4f}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n0, n1 = self.part_sizes
        return f"Bisection(n0={n0}, n1={n1}, cut={self.cut_size})"


# ----------------------------------------------------------------------
# free functions (usable without building a Bisection)
# ----------------------------------------------------------------------

def cut_size(graph: CSRGraph, side: np.ndarray) -> int:
    """Number of undirected edges with endpoints on different sides."""
    side = np.asarray(side)
    src = graph.edge_sources()
    crossing = side[src] != side[graph.indices]
    return int(crossing.sum()) // 2


def cut_weight(graph: CSRGraph, side: np.ndarray) -> float:
    """Total weight of cut edges."""
    side = np.asarray(side)
    src = graph.edge_sources()
    crossing = side[src] != side[graph.indices]
    return float(graph.ewgt[crossing].sum()) / 2.0


def imbalance(graph: CSRGraph, side: np.ndarray) -> float:
    """``max(w0, w1) / (w_total/2) - 1`` (0 = perfect balance)."""
    side = np.asarray(side)
    total = graph.total_vertex_weight
    if total == 0:
        return 0.0
    w1 = float(graph.vwgt[side == 1].sum())
    return max(total - w1, w1) / (total / 2.0) - 1.0
