"""Compressed-sparse-row graph kernel.

:class:`CSRGraph` is the central data structure of the library: an
undirected graph with integer vertex ids ``0..n-1`` stored in CSR
(adjacency-array) form, with per-vertex weights and per-edge weights.
Both directions of every undirected edge are stored, exactly like the
METIS/ParMetis adjacency structure the paper builds on, so that
``indices[indptr[v]:indptr[v+1]]`` is the full neighbour list of ``v``.

Design notes
------------
* All arrays are NumPy; every bulk operation (construction, subgraphs,
  degree/cut computations) is vectorised — no per-edge Python loops on
  hot paths, following the scientific-Python optimisation guidance.
* Vertex weights are ``float64`` (coarsening accumulates them; geometric
  partitioning treats them as point masses). Edge weights are ``float64``
  as well; a weight of 1.0 per edge reproduces the unweighted graphs of
  the paper.
* Instances are immutable by convention: algorithms build new graphs
  instead of mutating, which keeps the multilevel hierarchy safe to hold.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..errors import GraphError

__all__ = ["CSRGraph"]


class CSRGraph:
    """Undirected weighted graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n+1``; neighbour list of vertex ``v``
        occupies ``indices[indptr[v]:indptr[v+1]]``.
    indices:
        ``int64`` array of length ``2m`` holding neighbour ids (each
        undirected edge appears once per endpoint).
    ewgt:
        edge weights aligned with ``indices`` (symmetric: the two copies
        of an undirected edge carry equal weight). ``None`` means unit.
    vwgt:
        per-vertex weights. ``None`` means unit.
    validate:
        run structural validation (sorted neighbour lists are *not*
        required; symmetry and bounds are).
    """

    __slots__ = ("indptr", "indices", "ewgt", "vwgt")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        ewgt: Optional[np.ndarray] = None,
        vwgt: Optional[np.ndarray] = None,
        validate: bool = True,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        n = self.indptr.shape[0] - 1
        if ewgt is None:
            ewgt = np.ones(self.indices.shape[0], dtype=np.float64)
        if vwgt is None:
            vwgt = np.ones(n, dtype=np.float64)
        self.ewgt = np.ascontiguousarray(ewgt, dtype=np.float64)
        self.vwgt = np.ascontiguousarray(vwgt, dtype=np.float64)
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: np.ndarray,
        weights: Optional[np.ndarray] = None,
        vwgt: Optional[np.ndarray] = None,
        *,
        dedupe: bool = True,
    ) -> "CSRGraph":
        """Build a graph from an ``(m, 2)`` array of undirected edges.

        Self loops are dropped. With ``dedupe=True`` parallel edges are
        merged, accumulating their weights (the behaviour graph
        contraction needs); with ``dedupe=False`` the caller guarantees
        the edge list is already simple.
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise GraphError(f"edge array must have shape (m, 2), got {edges.shape}")
        if edges.size and (edges.min() < 0 or edges.max() >= n):
            raise GraphError("edge endpoint out of range")
        if weights is None:
            weights = np.ones(edges.shape[0], dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape[0] != edges.shape[0]:
                raise GraphError("weights length must match number of edges")
        keep = edges[:, 0] != edges[:, 1]
        edges, weights = edges[keep], weights[keep]
        if dedupe and edges.shape[0]:
            lo = np.minimum(edges[:, 0], edges[:, 1])
            hi = np.maximum(edges[:, 0], edges[:, 1])
            key = lo * np.int64(n) + hi
            order = np.argsort(key, kind="stable")
            key, lo, hi, weights = key[order], lo[order], hi[order], weights[order]
            first = np.ones(key.shape[0], dtype=bool)
            first[1:] = key[1:] != key[:-1]
            group = np.cumsum(first) - 1
            # bincount accumulates in slot order like np.add.at (bit-
            # identical merge) but runs as one C loop, not a buffered
            # per-element scatter
            wsum = np.bincount(group, weights=weights, minlength=int(group[-1]) + 1)
            edges = np.column_stack([lo[first], hi[first]])
            weights = wsum
        # symmetrise: emit both directions then bucket by source
        src = np.concatenate([edges[:, 0], edges[:, 1]])
        dst = np.concatenate([edges[:, 1], edges[:, 0]])
        wgt = np.concatenate([weights, weights])
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(src, kind="stable")
        return cls(indptr, dst[order], wgt[order], vwgt, validate=False)

    @classmethod
    def from_scipy(cls, mat, vwgt: Optional[np.ndarray] = None) -> "CSRGraph":
        """Build from a scipy sparse matrix (pattern symmetrised, diagonal
        dropped, absolute values used as edge weights)."""
        import scipy.sparse as sp

        mat = sp.csr_matrix(mat)
        if mat.shape[0] != mat.shape[1]:
            raise GraphError("adjacency matrix must be square")
        mat = abs(mat).maximum(abs(mat.T))  # symmetrise (no weight doubling)
        mat.setdiag(0)
        mat.eliminate_zeros()
        coo = mat.tocoo()
        keep = coo.row < coo.col
        edges = np.column_stack([coo.row[keep], coo.col[keep]]).astype(np.int64)
        w = np.abs(coo.data[keep]).astype(np.float64)
        w[w == 0] = 1.0
        return cls.from_edges(mat.shape[0], edges, w, vwgt)

    @classmethod
    def from_networkx(cls, g) -> "CSRGraph":
        """Build from a networkx graph (node labels relabelled 0..n-1)."""
        import networkx as nx

        g = nx.convert_node_labels_to_integers(g)
        n = g.number_of_nodes()
        edges = np.array([(u, v) for u, v in g.edges()], dtype=np.int64)
        w = np.array(
            [float(d.get("weight", 1.0)) for _, _, d in g.edges(data=True)],
            dtype=np.float64,
        )
        if edges.size == 0:
            edges = edges.reshape(0, 2)
            w = w.reshape(0)
        return cls.from_edges(n, edges, w)

    @classmethod
    def empty(cls, n: int = 0) -> "CSRGraph":
        """Graph with ``n`` isolated vertices."""
        return cls(np.zeros(n + 1, dtype=np.int64), np.zeros(0, dtype=np.int64))

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.indptr.shape[0] - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (half the stored adjacency length)."""
        return self.indices.shape[0] // 2

    @property
    def total_vertex_weight(self) -> float:
        return float(self.vwgt.sum())

    @property
    def total_edge_weight(self) -> float:
        """Sum of undirected edge weights."""
        return float(self.ewgt.sum()) / 2.0

    def degrees(self) -> np.ndarray:
        """Unweighted degree of every vertex."""
        return np.diff(self.indptr)

    def weighted_degrees(self) -> np.ndarray:
        """Sum of incident edge weights per vertex."""
        return np.bincount(
            self.edge_sources(), weights=self.ewgt, minlength=self.num_vertices
        )

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour ids of vertex ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors`."""
        return self.ewgt[self.indptr[v] : self.indptr[v + 1]]

    def edge_sources(self) -> np.ndarray:
        """Source vertex for every directed adjacency slot (length 2m)."""
        return np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees())

    def edge_list(self) -> Tuple[np.ndarray, np.ndarray]:
        """Undirected edge list ``(edges(m,2), weights(m,))`` with u < v."""
        src = self.edge_sources()
        keep = src < self.indices
        return (
            np.column_stack([src[keep], self.indices[keep]]),
            self.ewgt[keep],
        )

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield undirected edges ``(u, v, w)`` with ``u < v``."""
        edges, w = self.edge_list()
        for i in range(edges.shape[0]):
            yield int(edges[i, 0]), int(edges[i, 1]), float(w[i])

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.any(self.neighbors(u) == v))

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: np.ndarray) -> Tuple["CSRGraph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns ``(sub, vertices)`` where vertex ``i`` of ``sub``
        corresponds to ``vertices[i]`` of ``self`` (the second element is
        the sorted, de-duplicated id map).
        """
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        if vertices.size and (vertices[0] < 0 or vertices[-1] >= self.num_vertices):
            raise GraphError("subgraph vertex id out of range")
        inv = np.full(self.num_vertices, -1, dtype=np.int64)
        inv[vertices] = np.arange(vertices.size)
        edges, w = self.edge_list()
        if edges.shape[0]:
            keep = (inv[edges[:, 0]] >= 0) & (inv[edges[:, 1]] >= 0)
            edges, w = inv[edges[keep]], w[keep]
        sub = CSRGraph.from_edges(
            vertices.size, edges, w, self.vwgt[vertices], dedupe=False
        )
        return sub, vertices

    def permute(self, perm: np.ndarray) -> "CSRGraph":
        """Relabel vertices: new id of old vertex ``v`` is ``perm[v]``."""
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape[0] != self.num_vertices or np.unique(perm).size != perm.size:
            raise GraphError("perm must be a permutation of 0..n-1")
        edges, w = self.edge_list()
        new_vwgt = np.empty_like(self.vwgt)
        new_vwgt[perm] = self.vwgt
        if edges.shape[0]:
            edges = perm[edges]
        return CSRGraph.from_edges(self.num_vertices, edges, w, new_vwgt, dedupe=False)

    def connected_components(self) -> np.ndarray:
        """Component label per vertex (labels are 0..k-1, BFS order)."""
        import scipy.sparse as sp
        from scipy.sparse.csgraph import connected_components

        mat = self.to_scipy(pattern_only=True)
        _, labels = connected_components(mat, directed=False)
        return labels.astype(np.int64)

    def is_connected(self) -> bool:
        if self.num_vertices == 0:
            return True
        return int(self.connected_components().max()) == 0

    def largest_component(self) -> Tuple["CSRGraph", np.ndarray]:
        """Induced subgraph on the largest connected component."""
        labels = self.connected_components()
        if labels.size == 0:
            return self, np.zeros(0, dtype=np.int64)
        big = np.argmax(np.bincount(labels))
        return self.subgraph(np.flatnonzero(labels == big))

    def to_scipy(self, pattern_only: bool = False):
        """Export as a scipy CSR matrix (symmetric)."""
        import scipy.sparse as sp

        data = (
            np.ones(self.indices.shape[0], dtype=np.float64)
            if pattern_only
            else self.ewgt
        )
        return sp.csr_matrix(
            (data, self.indices, self.indptr),
            shape=(self.num_vertices, self.num_vertices),
        )

    def to_networkx(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_vertices))
        edges, w = self.edge_list()
        g.add_weighted_edges_from(
            (int(u), int(v), float(wt)) for (u, v), wt in zip(edges, w)
        )
        return g

    # ------------------------------------------------------------------
    # validation / dunder
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n = self.num_vertices
        if n < 0:
            raise GraphError("indptr must have length >= 1")
        if self.indptr[0] != 0 or np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be nondecreasing starting at 0")
        if self.indptr[-1] != self.indices.shape[0]:
            raise GraphError("indptr[-1] must equal len(indices)")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n):
            raise GraphError("neighbour id out of range")
        if self.ewgt.shape[0] != self.indices.shape[0]:
            raise GraphError("ewgt must align with indices")
        if self.vwgt.shape[0] != n:
            raise GraphError("vwgt must have one entry per vertex")
        if self.indices.shape[0] % 2 != 0:
            raise GraphError("adjacency length must be even (undirected graph)")
        src = self.edge_sources()
        if np.any(src == self.indices):
            raise GraphError("self loops are not allowed")
        # symmetry check: multiset of (u,v) equals multiset of (v,u)
        fwd = np.sort(src * np.int64(max(n, 1)) + self.indices)
        bwd = np.sort(self.indices * np.int64(max(n, 1)) + src)
        if not np.array_equal(fwd, bwd):
            raise GraphError("adjacency structure is not symmetric")

    def validate(self) -> None:
        """Public re-validation hook (raises :class:`GraphError`)."""
        self._validate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"vwgt_total={self.total_vertex_weight:g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if self.num_vertices != other.num_vertices:
            return False
        a, aw = self.edge_list()
        b, bw = other.edge_list()
        if a.shape != b.shape:
            return False
        ka = np.lexsort((a[:, 1], a[:, 0]))
        kb = np.lexsort((b[:, 1], b[:, 0]))
        return (
            np.array_equal(a[ka], b[kb])
            and np.allclose(aw[ka], bw[kb])
            and np.allclose(self.vwgt, other.vwgt)
        )

    __hash__ = None  # type: ignore[assignment]
