"""Distribution helpers for graphs on the SPMD virtual machine.

Simulator memory idiom
----------------------
A real cluster holds ``P`` rank-local slices whose union is the graph;
aggregate memory is O(n + m).  Our virtual ranks live in one process,
so per-rank *copies* of shared read-only structures would inflate
memory by P×.  The convention used by every distributed algorithm in
this library is therefore:

* mutable per-rank state (owned coordinates, owned labels, ghost
  buffers) is genuinely rank-local and sized O(n/P);
* immutable structures (the CSR arrays of the current level's graph,
  ownership maps) are passed by *reference* through collectives wrapped
  in :class:`Shared`, which the engine's defensive copier deliberately
  passes through.  Mutating the payload of a ``Shared`` is a bug.

Communication *costs* are always charged for the honest distributed
payload (the arrays a real implementation would move), either because
the payload really is the rank-local slice, or through the explicit
``words=`` override documented at each call site.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph

__all__ = [
    "Shared",
    "block_starts",
    "block_of",
    "owner_by_block",
    "adjacency_slots",
    "block_adjacency_slots",
]


class Shared:
    """Reference wrapper: payloads the engine must not deep-copy.

    Use only for immutable data (see module docstring).
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Shared({type(self.value).__name__})"


def block_starts(n: int, p: int) -> np.ndarray:
    """Start offsets of a near-equal block distribution (length p+1).

    Rank ``r`` owns global ids ``[starts[r], starts[r+1])``; the first
    ``n % p`` ranks get one extra element.
    """
    if p < 1:
        raise GraphError("block distribution needs p >= 1")
    base, extra = divmod(n, p)
    sizes = np.full(p, base, dtype=np.int64)
    sizes[:extra] += 1
    starts = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(sizes, out=starts[1:])
    return starts


def block_of(starts: np.ndarray, rank: int) -> Tuple[int, int]:
    """Owned id range of ``rank``."""
    return int(starts[rank]), int(starts[rank + 1])


def owner_by_block(starts: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Owning rank of each global id under a block distribution."""
    return np.searchsorted(starts, np.asarray(ids), side="right") - 1


def block_adjacency_slots(
    graph: CSRGraph, lo: int, hi: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flattened adjacency of the contiguous vertex block ``[lo, hi)``.

    Same contract as :func:`adjacency_slots` but for the block
    distribution every rank-local kernel actually uses: the slot range
    is one CSR slice, so ``dst`` and ``w`` are *views* of the graph's
    arrays (zero copy, zero gather) and only ``src_pos`` is materialised.
    """
    if not (0 <= lo <= hi <= graph.num_vertices):
        raise GraphError(f"block [{lo}, {hi}) out of range")
    deg = np.diff(graph.indptr[lo : hi + 1])
    src_pos = np.repeat(np.arange(hi - lo, dtype=np.int64), deg)
    sl = slice(int(graph.indptr[lo]), int(graph.indptr[hi]))
    return src_pos, lo + src_pos, graph.indices[sl], graph.ewgt[sl]


def adjacency_slots(
    graph: CSRGraph, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flattened adjacency of a vertex subset.

    Returns ``(src_pos, src, dst, w)`` where ``src_pos`` indexes into
    ``vertices`` (i.e. a *local* row id), ``src``/``dst`` are global
    endpoint ids and ``w`` the edge weights — the working arrays of
    every per-rank vectorised kernel (forces, gains, matching).

    Contiguous ascending id ranges (the block-distribution common case)
    are detected and served by :func:`block_adjacency_slots`, which
    slices the CSR arrays directly instead of gathering per-slot.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    k = vertices.shape[0]
    if k and vertices[-1] - vertices[0] + 1 == k and bool(
        np.all(np.diff(vertices) == 1)
    ):
        return block_adjacency_slots(
            graph, int(vertices[0]), int(vertices[-1]) + 1
        )
    deg = graph.indptr[vertices + 1] - graph.indptr[vertices]
    total = int(deg.sum())
    src_pos = np.repeat(np.arange(k), deg)
    if total == 0:
        e = np.zeros(0, dtype=np.int64)
        return src_pos, e, e.copy(), np.zeros(0)
    base = np.repeat(graph.indptr[vertices], deg)
    offset = np.arange(total) - np.repeat(np.cumsum(deg) - deg, deg)
    slots = base + offset
    return src_pos, vertices[src_pos], graph.indices[slots], graph.ewgt[slots]
