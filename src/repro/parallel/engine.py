"""SPMD coroutine engine: virtual ranks, MPI-like communicators, clocks.

This is the substrate that stands in for the paper's MPI cluster.  A
*rank program* is a generator function

.. code-block:: python

    def program(comm, graph):
        local = graph_slice(graph, comm.rank, comm.size)
        comm.charge(local.num_edges)              # local computation
        total = yield from comm.allreduce(local.num_edges)
        return total

executed simultaneously (in simulation) on ``P`` virtual ranks by
:func:`run_spmd`.  Communication methods are generator methods and must
be invoked as ``result = yield from comm.op(...)``; purely local
operations (:meth:`Comm.charge`, :meth:`Comm.set_phase`) are plain
calls.  The engine advances each rank until it blocks on communication,
matches communication requests across ranks, charges Hockney-model
costs to per-rank simulated clocks, and resumes ranks with the results.

Why coroutines and not threads: the evaluation sweeps P up to 1,024
virtual ranks; generator-based ranks cost ~micro-seconds to suspend and
resume, are deterministic (ranks are always stepped in rank order), and
cannot data-race.  The *data path is real* — collectives really move
the Python/NumPy payloads between rank programs — so distributed
algorithms compute real results while the clocks estimate what the
communication would cost on the modelled cluster.

Semantics notes
---------------
* ``send`` is buffered/eager (like MPI_Send under the eager protocol):
  it never blocks the sender.  ``recv`` blocks until a matching message
  (same source, tag and communicator) has been posted.  Messages between
  a (src, dst, tag) pair are delivered FIFO.
* A collective completes when *every* rank of its communicator has
  posted the *same* collective; posting mismatched collectives raises
  :class:`~repro.errors.CommError`, and a state where no rank can
  advance raises :class:`~repro.errors.DeadlockError` naming the parked
  operations — both invaluable when debugging distributed algorithms.
* Payload delivery has two modes (``run_spmd(..., copy_mode=...)``).
  The default ``"readonly"`` fast path delivers NumPy arrays as
  *read-only views* (``flags.writeable = False``) — zero-copy, so halo
  exchanges, allgathers and β-refreshes cost O(1) per array instead of
  a full copy.  Receivers that need to mutate call ``.copy()``
  explicitly (attempting in-place mutation raises ``ValueError``), and
  senders must not mutate a payload after posting it — the same
  contract as the :class:`~repro.graph.distributed.Shared` idiom.
  ``copy_mode="defensive"`` restores deep-copy-on-delivery semantics
  (received data never aliases sender memory), and a per-message
  ``comm.send(..., copy=True/False)`` overrides the engine mode.
* ``run_spmd(..., sanitize=True)`` (or ``REPRO_SANITIZE=1`` in the
  environment) enables the dynamic sanitizer
  (:mod:`repro.analysis.sanitizer`): posted payloads are checksummed
  and mutation before delivery raises :class:`CommError`, completed
  collectives are ledgered per rank and cross-checked on exit,
  communication generators created without ``yield from`` are reported
  when their rank returns, and undelivered messages at exit become an
  error instead of a :class:`~repro.errors.CommWarning`.
* ``run_spmd(..., faults=FaultPlan(...))`` injects deterministic faults
  (:mod:`repro.parallel.faults`): ranks die at scheduled op indices and
  point-to-point messages are dropped, duplicated, delayed or
  corrupted.  Surviving ranks that depend on a dead rank raise
  :class:`~repro.errors.RankFailure`; ``max_steps`` /
  ``max_sim_seconds`` convert runaway programs into a typed
  :class:`~repro.errors.BudgetExceededError`.  With ``faults=None``
  (default) none of this machinery is on the hot path.
"""

from __future__ import annotations

import inspect
import os
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.sanitizer import Sanitizer, payload_checksum
from ..errors import (
    BudgetExceededError,
    CommError,
    CommWarning,
    DeadlockError,
    RankFailure,
)
from ..rng import SeedLike, spawn_streams
from .faults import FaultEvent, FaultPlan, corrupt_payload
from .machine import MachineModel, QDR_CLUSTER
from .trace import CommStats, DEFAULT_PHASE, PhaseBreakdown, SpmdResult

__all__ = ["Comm", "run_spmd", "payload_words"]


# ----------------------------------------------------------------------
# payload utilities
# ----------------------------------------------------------------------

def payload_words(obj: Any) -> float:
    """Estimate the size of a payload in 8-byte words.

    Used by the cost model when the caller does not pass ``words=``.
    NumPy arrays are exact; containers are summed recursively; scalars
    count as one word.
    """
    if obj is None:
        return 0.0
    if isinstance(obj, np.ndarray):
        return max(1.0, obj.nbytes / 8.0)
    if isinstance(obj, (int, float, complex, bool, np.generic)):
        return 1.0
    if isinstance(obj, (bytes, str)):
        return max(1.0, len(obj) / 8.0)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 1.0 + sum(payload_words(x) for x in obj)
    if isinstance(obj, dict):
        return 1.0 + sum(payload_words(k) + payload_words(v) for k, v in obj.items())
    d = getattr(obj, "__dict__", None)
    if d is not None:
        return 1.0 + payload_words(d)
    return 4.0


def _copy_payload(obj: Any) -> Any:
    """Defensive copy of a message payload (arrays and containers)."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, list):
        return [_copy_payload(x) for x in obj]
    if isinstance(obj, tuple):
        return tuple(_copy_payload(x) for x in obj)
    if isinstance(obj, dict):
        return {k: _copy_payload(v) for k, v in obj.items()}
    return obj


def _readonly_payload(obj: Any) -> Any:
    """Zero-copy delivery: arrays become read-only views of the sender's
    buffer (containers are rebuilt so the structure is private, the
    array data is not)."""
    if isinstance(obj, np.ndarray):
        view = obj.view()
        view.flags.writeable = False
        return view
    if isinstance(obj, list):
        return [_readonly_payload(x) for x in obj]
    if isinstance(obj, tuple):
        return tuple(_readonly_payload(x) for x in obj)
    if isinstance(obj, dict):
        return {k: _readonly_payload(v) for k, v in obj.items()}
    return obj


_COPY_MODES = ("readonly", "defensive")

#: execution backends run_spmd can dispatch to
_BACKENDS = ("sim", "procs")


_REDUCERS: Dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": lambda a, b: (np.minimum(a, b) if isinstance(a, np.ndarray)
                         or isinstance(b, np.ndarray) else min(a, b)),
    "max": lambda a, b: (np.maximum(a, b) if isinstance(a, np.ndarray)
                         or isinstance(b, np.ndarray) else max(a, b)),
}

#: one-shot ufunc per named op for the stacked-array fast path
_ARRAY_REDUCERS = {"sum": np.sum, "prod": np.prod, "min": np.min, "max": np.max}


def _reduce_values(values: Sequence[Any], op) -> Any:
    """Combine per-rank contributions into one reduction result.

    Named ops on array payloads take a vectorised fast path: the
    contributions are stacked and reduced with a single ufunc call
    instead of a pairwise Python fold.  Shape-mismatched array
    contributions (including scalars mixed with arrays) raise
    :class:`CommError` — silently broadcasting them is never what a
    distributed reduction means.
    """
    if callable(op):
        fn = op
        acc = _copy_payload(values[0])
        for v in values[1:]:
            acc = fn(acc, v)
        return acc
    try:
        fn = _REDUCERS[op]
    except KeyError:
        raise CommError(f"unknown reduction op {op!r}") from None
    if any(isinstance(v, np.ndarray) for v in values):
        shapes = {v.shape if isinstance(v, np.ndarray) else () for v in values}
        if len(shapes) != 1:
            raise CommError(
                f"{op} reduction over mismatched payload shapes {sorted(shapes)}; "
                "all ranks must contribute arrays of one shape"
            )
        return _ARRAY_REDUCERS[op](np.stack(values), axis=0)
    if len(values) == 1:
        return _copy_payload(values[0])
    acc = values[0]
    for v in values[1:]:
        acc = fn(acc, v)
    return acc


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------

_COLLECTIVES = {
    "barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "scan", "split", "exchange",
}


@dataclass
class _Op:
    """A communication request yielded by a rank program."""

    kind: str
    cid: int
    value: Any = None
    root: int = 0
    op: Any = "sum"
    tag: int = 0
    source: int = -1
    dest: int = -1
    color: Any = None
    key: int = 0
    words: Optional[float] = None
    #: per-message copy override for sends (None = engine copy_mode)
    copy: Optional[bool] = None
    #: memoised payload_words(value) — computed at most once per op
    wcache: Optional[float] = None
    #: sanitizer checksum of the payload at post time (sanitize mode)
    cksum: Optional[int] = None


def _op_words(op: "_Op") -> float:
    """Payload size of an op in words, computed once and cached.

    Collectives consult the size twice (ledger accounting and cost
    model); caching keeps the recursive container walk off the hot path.
    """
    if op.words is not None:
        return op.words
    if op.wcache is None:
        op.wcache = payload_words(op.value)
    return op.wcache


@dataclass
class _Group:
    """A communicator: an ordered list of participating global ranks."""

    cid: int
    members: Tuple[int, ...]  # global rank ids, position = local rank

    @property
    def size(self) -> int:
        return len(self.members)

    def local(self, grank: int) -> int:
        return self.members.index(grank)


class Comm:
    """Per-rank handle to a communicator of the virtual machine.

    Mirrors the mpi4py surface (lower-case object API): ``rank``,
    ``size``, collectives, ``send``/``recv``, ``split``.  Every
    communication method is a generator and must be driven with
    ``yield from``.
    """

    def __init__(self, engine: "_Engine", group: _Group, grank: int) -> None:
        self._engine = engine
        self._group = group
        self._grank = grank

    # -- local, non-yielding ----------------------------------------------
    @property
    def rank(self) -> int:
        """This rank's index within the communicator."""
        return self._group.members.index(self._grank)

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._group.size

    @property
    def world_rank(self) -> int:
        """Global rank id in the world communicator."""
        return self._grank

    @property
    def rng(self) -> np.random.Generator:
        """Rank-private deterministic random stream."""
        return self._engine.rngs[self._grank]

    @property
    def machine(self) -> MachineModel:
        return self._engine.machine

    def charge(self, work: float) -> None:
        """Charge ``work`` units of local computation to this rank's clock."""
        self._engine.charge(self._grank, work)

    def charge_comm_seconds(self, seconds: float) -> None:
        """Book modelled communication time directly on this rank's clock.

        For phases whose functional execution is folded (computed once
        and shared) but whose real communication schedule is known
        analytically — e.g. the coarsest-graph embedding's per-iteration
        exchanges.  Use sparingly; prefer real collectives.
        """
        if seconds < 0:
            raise CommError("cannot charge negative communication time")
        self._engine.charge_comm(self._grank, seconds)

    def set_phase(self, name: str) -> None:
        """Attribute subsequent time to phase ``name`` (see Figures 7–8)."""
        self._engine.set_phase(self._grank, name)

    @property
    def clock(self) -> float:
        """Current simulated time on this rank (seconds)."""
        return float(self._engine.clocks[self._grank])

    # -- point to point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0, words: Optional[float] = None,
             copy: Optional[bool] = None):
        """Buffered send to local rank ``dest`` (never blocks).

        ``copy`` overrides the engine's delivery mode for this message:
        ``True`` forces a defensive deep copy, ``False`` forces the
        zero-copy read-only fast path, ``None`` (default) follows
        ``run_spmd``'s ``copy_mode``.
        """
        yield _Op("send", self._group.cid, value=obj, dest=dest, tag=tag,
                  words=words, copy=copy)

    def recv(self, source: int, tag: int = 0):
        """Blocking receive from local rank ``source``."""
        result = yield _Op("recv", self._group.cid, source=source, tag=tag)
        return result

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0,
                 words: Optional[float] = None, copy: Optional[bool] = None):
        """Exchange: send ``obj`` to ``dest`` and receive from ``source``."""
        yield _Op("send", self._group.cid, value=obj, dest=dest, tag=tag,
                  words=words, copy=copy)
        result = yield _Op("recv", self._group.cid, source=source, tag=tag)
        return result

    # -- collectives ---------------------------------------------------------
    def barrier(self):
        yield _Op("barrier", self._group.cid)

    def bcast(self, obj: Any, root: int = 0, words: Optional[float] = None):
        result = yield _Op("bcast", self._group.cid, value=obj, root=root, words=words)
        return result

    def reduce(self, value: Any, op="sum", root: int = 0, words: Optional[float] = None):
        result = yield _Op("reduce", self._group.cid, value=value, op=op, root=root, words=words)
        return result

    def allreduce(self, value: Any, op="sum", words: Optional[float] = None):
        result = yield _Op("allreduce", self._group.cid, value=value, op=op, words=words)
        return result

    def gather(self, value: Any, root: int = 0, words: Optional[float] = None):
        result = yield _Op("gather", self._group.cid, value=value, root=root, words=words)
        return result

    def allgather(self, value: Any, words: Optional[float] = None):
        result = yield _Op("allgather", self._group.cid, value=value, words=words)
        return result

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0,
                words: Optional[float] = None):
        result = yield _Op("scatter", self._group.cid, value=values, root=root, words=words)
        return result

    def alltoall(self, values: Sequence[Any], words: Optional[float] = None):
        result = yield _Op("alltoall", self._group.cid, value=values, words=words)
        return result

    def scan(self, value: Any, op="sum", words: Optional[float] = None):
        """Inclusive prefix reduction."""
        result = yield _Op("scan", self._group.cid, value=value, op=op, words=words)
        return result

    def exchange(self, messages: Dict[int, Any], words: Optional[float] = None):
        """Halo exchange: send ``messages[nbr]`` to each neighbour (local
        rank), receive ``{nbr: payload}`` from every rank that targeted
        this one.  All ranks of the communicator must participate (ranks
        with nothing to send pass ``{}``); posted as one synchronising
        step — the idiom for the per-iteration boundary exchanges of the
        lattice embedding."""
        result = yield _Op("exchange", self._group.cid, value=messages, words=words)
        return result

    def split(self, color: Any, key: int = 0):
        """Partition the communicator by ``color`` (``None`` = leave).

        Returns a new :class:`Comm` whose ranks are ordered by
        ``(key, old rank)``, or ``None`` for ranks with ``color=None``.
        """
        result = yield _Op("split", self._group.cid, color=color, key=key)
        return result


# ----------------------------------------------------------------------
# sanitized communicator
# ----------------------------------------------------------------------

#: Comm methods wrapped by the sanitizer's undriven-generator tracking
_TRACKED_METHODS = (
    "send", "recv", "sendrecv", "barrier", "bcast", "reduce", "allreduce",
    "gather", "allgather", "scatter", "alltoall", "scan", "exchange",
    "split",
)


class _SanitizedComm(Comm):
    """Comm whose communication generators register with the engine's
    sanitizer, so ops created without ``yield from`` can be reported
    when the rank program returns (lint rule SP101's dynamic twin)."""

    def _tracked(self, name: str, inner):
        return self._engine.sanitizer.track(self._grank, name, inner)


def _make_tracked_method(name: str):
    base = getattr(Comm, name)

    def method(self, *args: Any, **kwargs: Any):
        return self._tracked(name, base(self, *args, **kwargs))

    method.__name__ = name
    method.__doc__ = base.__doc__
    return method


for _name in _TRACKED_METHODS:
    setattr(_SanitizedComm, _name, _make_tracked_method(_name))
del _name


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------

_READY, _PARKED, _DONE, _DEAD = 0, 1, 2, 3


class _RankState:
    __slots__ = ("grank", "gen", "status", "op", "result", "send_value")

    def __init__(self, grank: int, gen) -> None:
        self.grank = grank
        self.gen = gen
        self.status = _READY
        self.op: Optional[_Op] = None
        self.result: Any = None
        self.send_value: Any = None


class _Engine:
    def __init__(self, nranks: int, machine: MachineModel, seed: SeedLike,
                 copy_mode: str = "readonly", sanitize: bool = False,
                 faults: Optional[FaultPlan] = None,
                 max_steps: Optional[int] = None,
                 max_sim_seconds: Optional[float] = None) -> None:
        if copy_mode not in _COPY_MODES:
            raise CommError(
                f"unknown copy_mode {copy_mode!r}; expected one of {_COPY_MODES}"
            )
        self.machine = machine
        self.copy_mode = copy_mode
        self.sanitizer: Optional[Sanitizer] = Sanitizer(nranks) if sanitize else None
        # fault injection + budgets: all None on the no-fault fast path,
        # so the hot loop pays only `is not None` checks
        self.faults = faults
        self.max_steps = max_steps
        self.max_sim_seconds = max_sim_seconds
        self.steps = 0
        self.op_counts = [0] * nranks if faults is not None else None
        # sender-local send ordinals: the cross-backend fault site (the
        # procs backend counts the same per-rank sequence)
        self.send_counts = [0] * nranks if faults is not None else None
        self.fault_events: List[FaultEvent] = []
        self.dead: Dict[int, FaultEvent] = {}
        self.nranks = nranks
        self.clocks = np.zeros(nranks)
        self.comp_time = np.zeros(nranks)
        self.comm_time = np.zeros(nranks)
        self.phase = [DEFAULT_PHASE] * nranks
        self.phase_acc: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self.rngs = spawn_streams(seed, nranks)
        self.mailbox: Dict[Tuple[int, int, int, int], deque] = {}
        self.groups: Dict[int, _Group] = {}
        self._next_cid = 0
        self.messages = 0
        self.collectives = 0
        self.words_sent = 0.0
        self.stats: Dict[str, CommStats] = {}

    # -- accounting ----------------------------------------------------------
    def _phase_arrays(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        if name not in self.phase_acc:
            self.phase_acc[name] = (np.zeros(self.nranks), np.zeros(self.nranks))
        return self.phase_acc[name]

    def charge(self, grank: int, work: float) -> None:
        dt = self.machine.compute_cost(work)
        self.clocks[grank] += dt
        self.comp_time[grank] += dt
        self._phase_arrays(self.phase[grank])[0][grank] += dt

    def charge_comm(self, grank: int, dt: float) -> None:
        self.clocks[grank] += dt
        self.comm_time[grank] += dt
        self._phase_arrays(self.phase[grank])[1][grank] += dt

    def advance_to(self, grank: int, t: float) -> None:
        """Move a rank's clock forward to ``t``, booking the gap as comm."""
        if t > self.clocks[grank]:
            self.charge_comm(grank, t - float(self.clocks[grank]))

    def set_phase(self, grank: int, name: str) -> None:
        self.phase[grank] = name

    def stats_for(self, grank: int) -> CommStats:
        """Comm counters of the phase ``grank`` is currently in."""
        name = self.phase[grank]
        s = self.stats.get(name)
        if s is None:
            s = self.stats[name] = CommStats.zeros(self.nranks)
        return s

    def deliver(self, obj: Any, copy: Optional[bool] = None) -> Any:
        """Prepare a payload for handing to a receiving rank.

        ``copy=None`` follows the engine's ``copy_mode``; ``True``/
        ``False`` force the defensive copy / zero-copy path per message.
        """
        defensive = (self.copy_mode == "defensive") if copy is None else copy
        return _copy_payload(obj) if defensive else _readonly_payload(obj)

    def new_group(self, members: Sequence[int]) -> _Group:
        g = _Group(self._next_cid, tuple(members))
        self.groups[g.cid] = g
        self._next_cid += 1
        return g

    def make_comm(self, group: _Group, grank: int) -> Comm:
        cls = Comm if self.sanitizer is None else _SanitizedComm
        return cls(self, group, grank)


def _is_generator_function(fn) -> bool:
    return inspect.isgeneratorfunction(fn)


def _env_sanitize() -> bool:
    """Default for ``run_spmd``'s ``sanitize`` from the environment."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1", "true", "yes", "on"
    )


def run_spmd(
    fn: Callable,
    nranks: int,
    *args: Any,
    machine: MachineModel = QDR_CLUSTER,
    seed: SeedLike = None,
    copy_mode: str = "readonly",
    sanitize: Optional[bool] = None,
    faults: Optional[FaultPlan] = None,
    max_steps: Optional[int] = None,
    max_sim_seconds: Optional[float] = None,
    backend: str = "sim",
    op_timeout: Optional[float] = None,
    stall_timeout: Optional[float] = None,
    **kwargs: Any,
) -> SpmdResult:
    """Execute rank program ``fn`` on ``nranks`` virtual ranks.

    ``fn(comm, *args, **kwargs)`` must be a generator function (or a
    plain function if it performs no communication).  Returns a
    :class:`~repro.parallel.trace.SpmdResult` with per-rank return
    values and the simulated timing accounts.

    ``copy_mode`` selects payload-delivery semantics: ``"readonly"``
    (default) delivers NumPy payloads as zero-copy read-only views,
    ``"defensive"`` deep-copies every delivery (see the module
    docstring's semantics notes).  The two modes are functionally
    equivalent for rank programs that follow the no-mutation contract —
    the determinism suite asserts identical results under both.

    ``sanitize`` enables the dynamic sanitizer (payload checksums, the
    collective ledger, undriven-generator and undelivered-message
    errors — see the module docstring).  ``None`` (default) reads the
    ``REPRO_SANITIZE`` environment variable, so a test shard can turn
    it on without touching call sites.  A correct rank program returns
    identical results with and without it.

    ``faults`` is a deterministic :class:`~repro.parallel.faults.
    FaultPlan` the scheduler consults to kill ranks and drop / duplicate
    / delay / corrupt point-to-point messages; injected faults are
    recorded on ``SpmdResult.faults`` and surviving ranks that depend on
    a dead rank raise :class:`~repro.errors.RankFailure`.  ``max_steps``
    / ``max_sim_seconds`` bound the run (communication ops posted /
    simulated clock) and convert runaway programs into a typed
    :class:`~repro.errors.BudgetExceededError` instead of a hang.  With
    all three left ``None`` (the default) the engine takes the existing
    fast path unchanged.

    ``backend`` selects the executor: ``"sim"`` (default) is the
    deterministic single-process simulator documented above;
    ``"procs"`` runs the same rank program on one worker *process* per
    rank (:func:`~repro.parallel.procs.run_spmd_procs`) with measured
    wall-clock timing.  ``op_timeout`` bounds how long a procs-backend
    rank may block on one operation before a
    :class:`~repro.errors.DeadlockError`; ``stall_timeout`` bounds how
    long the procs parent tolerates *every* live rank sitting blocked
    at once before declaring a global deadlock via its heartbeat
    supervisor (both ignored by the simulator, which detects deadlocks
    exactly).  An unknown backend raises
    ``ValueError`` — catching typos that the engine's ``**kwargs``
    forwarding used to swallow silently.
    """
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; known backends: "
            + ", ".join(repr(b) for b in _BACKENDS)
        )
    if backend == "procs":
        from .procs import run_spmd_procs

        # env-derived sanitize is deliberately NOT resolved here: only an
        # explicit sanitize=True is an error on the procs backend
        return run_spmd_procs(
            fn, nranks, *args, machine=machine, seed=seed,
            copy_mode=copy_mode, sanitize=sanitize, faults=faults,
            max_steps=max_steps, max_sim_seconds=max_sim_seconds,
            op_timeout=op_timeout, stall_timeout=stall_timeout, **kwargs,
        )
    if nranks < 1:
        raise CommError(f"nranks must be >= 1, got {nranks}")
    if sanitize is None:
        sanitize = _env_sanitize()
    eng = _Engine(nranks, machine, seed, copy_mode=copy_mode,
                  sanitize=sanitize, faults=faults, max_steps=max_steps,
                  max_sim_seconds=max_sim_seconds)
    world = eng.new_group(range(nranks))
    states: List[_RankState] = []
    for r in range(nranks):
        comm = eng.make_comm(world, r)
        out = fn(comm, *args, **kwargs)
        st = _RankState(r, out if inspect.isgenerator(out) else None)
        if st.gen is None:
            st.status = _DONE
            st.result = out
            _check_undriven(eng, r)
        states.append(st)

    ready = deque(st for st in states if st.status == _READY)
    while True:
        # 1. advance every runnable rank to its next blocking point
        while ready:
            st = ready.popleft()
            _step(eng, states, st)
        # 2. match parked requests
        progress = _complete_recvs(eng, states, ready)
        progress |= _complete_collectives(eng, states, ready)
        if eng.max_sim_seconds is not None \
                and float(eng.clocks.max()) > eng.max_sim_seconds:
            raise BudgetExceededError(
                f"simulated clock {float(eng.clocks.max()):.6g}s exceeded "
                f"the max_sim_seconds budget of {eng.max_sim_seconds:.6g}s",
                budget="sim_seconds", limit=eng.max_sim_seconds,
                used=float(eng.clocks.max()),
            )
        if ready:
            continue
        if all(st.status in (_DONE, _DEAD) for st in states):
            break
        if not progress:
            _raise_deadlock(eng, states)

    if eng.dead:
        # killed ranks never produced results: the job is incomplete
        # even if every survivor returned cleanly
        rank, ev = next(iter(sorted(eng.dead.items())))
        raise RankFailure(
            f"rank {rank} was killed in phase {ev.phase!r} at "
            f"t={ev.time:.6g}s (op {ev.op_index}) and never returned; "
            f"{len(eng.dead)} rank(s) dead at exit",
            dead_rank=rank, phase=ev.phase,
            sim_time=float(eng.clocks.max()),
        )
    _check_undelivered(eng)
    _check_ledgers(eng)
    phases = {
        name: PhaseBreakdown(comp, comm)
        for name, (comp, comm) in eng.phase_acc.items()
    }
    return SpmdResult(
        values=[st.result for st in states],
        clocks=eng.clocks,
        comp_time=eng.comp_time,
        comm_time=eng.comm_time,
        phases=phases,
        messages=eng.messages,
        collectives=eng.collectives,
        words_sent=eng.words_sent,
        comm_stats=CommStats.aggregate(eng.stats, nranks),
        faults=list(eng.fault_events),
    )


def _check_undriven(eng: _Engine, grank: int) -> None:
    """Sanitizer: fail if ``grank`` returned with undriven comm generators.

    Calling ``comm.send(...)`` without ``yield from`` builds a generator
    that never runs — the message is silently never posted (lint rule
    SP101 catches the static pattern; this is the dynamic counterpart).
    """
    if eng.sanitizer is None:
        return
    leftover = eng.sanitizer.undriven_ops(grank)
    if leftover:
        ops = ", ".join(leftover)
        raise CommError(
            f"sanitizer: rank {grank} returned with {len(leftover)} "
            f"communication generator(s) it never drove: {ops}; "
            "communication methods must be driven with "
            "'yield from comm.<op>(...)' or the operation never executes"
        )


def _check_undelivered(eng: _Engine) -> None:
    """Report messages still queued when every rank has returned.

    A leftover mailbox entry means some rank sent a message nobody
    received — usually a tag/peer mismatch.  Warns by default
    (:class:`~repro.errors.CommWarning`) with the full pending-message
    list (source→dest, tag, words); the sanitizer escalates the same
    condition to :class:`~repro.errors.CommError`.
    """
    leftovers = [
        f"{len(q)} message(s) rank {src} -> rank {dst} "
        f"(tag={tag}, comm={cid}, "
        f"{sum(entry[1] for entry in q):.0f} words)"
        for (src, dst, tag, cid), q in sorted(eng.mailbox.items())
        if q
    ]
    if not leftovers:
        return
    msg = (
        "SPMD program finished with undelivered messages: "
        + "; ".join(leftovers)
        + " — check for mismatched tags or a missing recv"
    )
    if eng.sanitizer is not None:
        raise CommError("sanitizer: " + msg)
    warnings.warn(msg, CommWarning, stacklevel=3)


def _check_ledgers(eng: _Engine) -> None:
    """Sanitizer: cross-check per-communicator collective sequences."""
    if eng.sanitizer is None:
        return
    mismatch = eng.sanitizer.sequence_mismatch(eng.groups)
    if mismatch:
        raise CommError("sanitizer: " + mismatch)


def _sanitize_collective(eng: _Engine, kind: str, parked: List[_RankState]) -> None:
    """Verify posted-payload checksums and book the collective ledger."""
    root = parked[0].op.root if kind in ("bcast", "reduce", "gather", "scatter") \
        else None
    for s in parked:
        if s.op.cksum is not None and payload_checksum(s.op.value) != s.op.cksum:
            raise CommError(
                f"sanitizer: rank {s.grank} had its {kind} payload mutated "
                "between posting the collective and its completion; under "
                "copy_mode='readonly' other ranks may alias this memory — "
                "post a copy or delay the mutation until the collective "
                "completes"
            )
        eng.sanitizer.record_collective(s.grank, s.op.cid, kind, root)


def _kill_rank(eng: _Engine, st: _RankState, op_index: int) -> None:
    """Inject a rank death: close the generator, record the event."""
    ev = FaultEvent(
        kind="kill", time=float(eng.clocks[st.grank]), rank=st.grank,
        op_index=op_index, phase=eng.phase[st.grank],
        detail=f"rank {st.grank} killed posting op {op_index}",
    )
    eng.fault_events.append(ev)
    eng.dead[st.grank] = ev
    try:
        st.gen.close()
    except Exception:
        # a finally-block that yields raises on close; the rank is dead
        # either way
        pass
    st.op = None
    st.status = _DEAD


def _step(eng: _Engine, states: List[_RankState], st: _RankState) -> None:
    """Run one rank until it parks on a blocking op or finishes."""
    value = st.send_value
    st.send_value = None
    while True:
        try:
            op = st.gen.send(value)
        except StopIteration as stop:
            st.status = _DONE
            st.result = stop.value
            _check_undriven(eng, st.grank)
            return
        if not isinstance(op, _Op):
            raise CommError(
                f"rank {st.grank} yielded {op!r}; rank programs must only "
                "yield via 'yield from comm.<op>(...)'"
            )
        if eng.max_steps is not None:
            eng.steps += 1
            if eng.steps > eng.max_steps:
                raise BudgetExceededError(
                    f"SPMD program posted more than max_steps="
                    f"{eng.max_steps} communication operations",
                    budget="steps", limit=eng.max_steps, used=eng.steps,
                )
        if eng.faults is not None:
            op_index = eng.op_counts[st.grank]
            eng.op_counts[st.grank] = op_index + 1
            if eng.faults.kill_now(st.grank, op_index, len(eng.dead)):
                _kill_rank(eng, st, op_index)
                return
        if op.kind == "send":
            _do_send(eng, st.grank, op)
            value = None
            continue
        st.op = op
        st.status = _PARKED
        if eng.sanitizer is not None and op.kind in _COLLECTIVES \
                and op.value is not None:
            # snapshot the payload at post time; verified when the
            # collective completes (other ranks run in between and may
            # alias this memory via the Shared idiom)
            op.cksum = payload_checksum(op.value)
        return


def _do_send(eng: _Engine, grank: int, op: _Op) -> None:
    group = eng.groups[op.cid]
    if not (0 <= op.dest < group.size):
        raise CommError(f"send dest {op.dest} out of range for comm size {group.size}")
    gdst = group.members[op.dest]
    words = _op_words(op)
    t_post = float(eng.clocks[grank])
    # sender pays the injection overhead; transfer overlaps
    eng.charge_comm(grank, eng.machine.t_s)
    arrival = t_post + eng.machine.message_cost(words)
    cksum = None
    if eng.sanitizer is not None and op.value is not None:
        cksum = payload_checksum(op.value)
    fault = None
    if eng.faults is not None:
        # eng.messages is the global send ordinal (deterministic rank
        # scheduling order); the sender-local ordinal is the site shared
        # with the procs backend, so random rates and rank-scoped
        # scheduled faults fire on the same logical messages there
        local_index = eng.send_counts[grank]
        eng.send_counts[grank] = local_index + 1
        fault = eng.faults.message_fault(eng.messages, sender=grank,
                                         sender_index=local_index)
    key = (grank, gdst, op.tag, op.cid)
    if fault is None:
        eng.mailbox.setdefault(key, deque()).append(
            (arrival, words, eng.deliver(op.value, op.copy), cksum)
        )
    else:
        _fault_send(eng, grank, gdst, op, key, fault, arrival, words, cksum)
    eng.messages += 1
    eng.words_sent += words
    stats = eng.stats_for(grank)
    stats.sends[grank] += 1
    stats.words_sent[grank] += words


def _fault_send(eng: _Engine, grank: int, gdst: int, op: _Op, key,
                fault: Tuple[str, float], arrival: float, words: float,
                cksum: Optional[int]) -> None:
    """Apply one message fault to a posted send (slow path)."""
    kind, delay = fault
    msg_index = eng.messages
    detail = ""
    if kind == "drop":
        pass  # the message is simply never enqueued
    elif kind == "duplicate":
        payload = eng.deliver(op.value, op.copy)
        q = eng.mailbox.setdefault(key, deque())
        q.append((arrival, words, payload, cksum))
        q.append((arrival, words, eng.deliver(op.value, op.copy), cksum))
    elif kind == "delay":
        arrival += delay
        detail = f"delayed by {delay:.6g}s"
        eng.mailbox.setdefault(key, deque()).append(
            (arrival, words, eng.deliver(op.value, op.copy), cksum)
        )
    elif kind == "corrupt":
        # salt with the sender-local ordinal: the procs backend perturbs
        # the same element of the same logical message
        payload, detail = corrupt_payload(eng.deliver(op.value, op.copy),
                                          eng.send_counts[grank] - 1)
        # cksum (taken at post time) is deliberately kept: under
        # sanitize the mismatch is caught at delivery
        eng.mailbox.setdefault(key, deque()).append(
            (arrival, words, payload, cksum)
        )
    else:  # pragma: no cover - guarded by MessageFault.__post_init__
        raise CommError(f"unhandled message-fault kind {kind!r}")
    eng.fault_events.append(FaultEvent(
        kind=kind, time=float(eng.clocks[grank]), rank=grank, dest=gdst,
        tag=op.tag, msg_index=msg_index, phase=eng.phase[grank],
        detail=detail,
    ))


def _complete_recvs(eng: _Engine, states: List[_RankState], ready: deque) -> bool:
    progress = False
    for st in states:
        if st.status != _PARKED or st.op is None or st.op.kind != "recv":
            continue
        group = eng.groups[st.op.cid]
        if not (0 <= st.op.source < group.size):
            raise CommError(
                f"recv source {st.op.source} out of range for comm size {group.size}"
            )
        gsrc = group.members[st.op.source]
        key = (gsrc, st.grank, st.op.tag, st.op.cid)
        q = eng.mailbox.get(key)
        if not q:
            if states[gsrc].status == _DEAD:
                # nothing queued and the source can never post again
                ev = eng.dead[gsrc]
                raise RankFailure(
                    f"rank {st.grank} blocked on recv(source={st.op.source}, "
                    f"tag={st.op.tag}, comm={st.op.cid}) from rank {gsrc}, "
                    f"which was killed in phase {ev.phase!r} at "
                    f"t={ev.time:.6g}s",
                    dead_rank=gsrc, phase=ev.phase,
                    sim_time=float(eng.clocks[st.grank]),
                    detected_by=st.grank,
                )
            continue
        arrival, words, payload, cksum = q.popleft()
        if cksum is not None and payload_checksum(payload) != cksum:
            raise CommError(
                f"sanitizer: rank {gsrc} mutated a buffer it had posted to "
                f"send(tag={st.op.tag}) before rank {st.grank} received it; "
                "under copy_mode='readonly' the receiver aliases the "
                "sender's memory — send a copy (obj.copy() or copy=True) "
                "or delay the mutation until after the matching receive"
            )
        stats = eng.stats_for(st.grank)
        stats.recvs[st.grank] += 1
        stats.words_received[st.grank] += words
        # idle time: the receiver sat parked before the sender even
        # posted; the transfer itself is the modelled message cost
        wait = arrival - float(eng.clocks[st.grank]) - eng.machine.message_cost(words)
        if wait > 0:
            stats.wait_time[st.grank] += wait
        eng.advance_to(st.grank, arrival)
        st.send_value = payload
        st.op = None
        st.status = _READY
        ready.append(st)
        progress = True
    return progress


def _complete_collectives(eng: _Engine, states: List[_RankState], ready: deque) -> bool:
    # group parked collective ops by communicator
    by_cid: Dict[int, List[_RankState]] = {}
    for st in states:
        if st.status == _PARKED and st.op is not None and st.op.kind in _COLLECTIVES:
            by_cid.setdefault(st.op.cid, []).append(st)
    progress = False
    for cid, parked in by_cid.items():
        group = eng.groups[cid]
        if len(parked) != group.size:
            if eng.dead:
                dead_members = [g for g in group.members
                                if states[g].status == _DEAD]
                if dead_members:
                    # the collective can never complete: a member is dead
                    g = dead_members[0]
                    ev = eng.dead[g]
                    waiter = parked[0]
                    raise RankFailure(
                        f"collective '{waiter.op.kind}' on comm {cid} can "
                        f"never complete: rank {g} was killed in phase "
                        f"{ev.phase!r} at t={ev.time:.6g}s "
                        f"({len(parked)}/{group.size} ranks arrived)",
                        dead_rank=g, phase=ev.phase,
                        sim_time=float(eng.clocks[waiter.grank]),
                        detected_by=waiter.grank,
                    )
            # a member is missing: either still running (fine) or done (deadlock later)
            continue
        parked.sort(key=lambda s: group.members.index(s.grank))
        kinds = {s.op.kind for s in parked}
        if len(kinds) != 1:
            msg = (
                f"mismatched collectives on comm {cid}: "
                + ", ".join(f"rank {group.local(s.grank)}:{s.op.kind}" for s in parked)
            )
            if eng.sanitizer is not None:
                history = "\n".join(
                    "  " + eng.sanitizer.ledger_tail(s.grank) for s in parked
                )
                msg += "\nrecent collectives before the mismatch:\n" + history
            raise CommError(msg)
        kind = kinds.pop()
        if kind in ("bcast", "reduce", "gather", "scatter"):
            roots = {s.op.root for s in parked}
            if len(roots) != 1:
                raise CommError(f"mismatched roots in {kind} on comm {cid}: {roots}")
        if eng.sanitizer is not None:
            _sanitize_collective(eng, kind, parked)
        _count_collective(eng, kind, parked)
        _run_collective(eng, group, kind, parked)
        for st in parked:
            st.op = None
            st.status = _READY
            ready.append(st)
        progress = True
        eng.collectives += 1
    return progress


def _count_collective(eng: _Engine, kind: str, parked: List[_RankState]) -> None:
    """Book one collective into the comm ledger (before clocks move).

    Every member rank's per-phase ``collectives[kind]`` counter bumps by
    one, its contributed payload is added to ``collective_words``, and
    the skew it absorbed waiting for the slowest member is booked as
    wait time.  The operation itself is counted once (``collective_ops``)
    in the phase of the communicator's first member.
    """
    t0 = max(float(eng.clocks[s.grank]) for s in parked)
    for s in parked:
        g = s.grank
        stats = eng.stats_for(g)
        stats._coll_array(kind)[g] += 1
        stats.collective_words[g] += _op_words(s.op)
        wait = t0 - float(eng.clocks[g])
        if wait > 0:
            stats.wait_time[g] += wait
    first = eng.stats_for(parked[0].grank)
    first.collective_ops[kind] = first.collective_ops.get(kind, 0) + 1


def _run_collective(eng: _Engine, group: _Group, kind: str, parked: List[_RankState]) -> None:
    p = group.size
    ops = [st.op for st in parked]
    granks = [st.grank for st in parked]
    t0 = max(float(eng.clocks[g]) for g in granks)

    # ---- results + payload size ----
    if kind == "barrier":
        words = 0.0
        results = [None] * p
    elif kind == "bcast":
        rop = ops[ops[0].root]
        words = _op_words(rop)
        # zero-copy mode: every rank gets a fresh container skeleton over
        # read-only views of the root's arrays; defensive: deep copies
        results = [eng.deliver(rop.value) for _ in range(p)]
    elif kind == "reduce":
        words = max(_op_words(o) for o in ops)
        red = _reduce_values([o.value for o in ops], ops[0].op)
        results = [red if i == ops[0].root else None for i in range(p)]
    elif kind == "allreduce":
        words = max(_op_words(o) for o in ops)
        red = _reduce_values([o.value for o in ops], ops[0].op)
        results = [eng.deliver(red) for _ in range(p)]
    elif kind == "scan":
        words = max(_op_words(o) for o in ops)
        results = []
        acc = None
        for o in ops:
            acc = _copy_payload(o.value) if acc is None else _reduce_values([acc, o.value], o.op)
            results.append(eng.deliver(acc))
    elif kind == "gather":
        words = max(_op_words(o) for o in ops)
        gathered = [eng.deliver(o.value) for o in ops]
        results = [gathered if i == ops[0].root else None for i in range(p)]
    elif kind == "allgather":
        words = max(_op_words(o) for o in ops)
        if eng.copy_mode == "readonly":
            # deliver each contribution once; ranks get private list
            # skeletons over the shared read-only array views
            items = [eng.deliver(o.value) for o in ops]
            results = [list(items) for _ in range(p)]
        else:
            gathered = [o.value for o in ops]
            results = [_copy_payload(gathered) for _ in range(p)]
    elif kind == "scatter":
        rop = ops[ops[0].root]
        vals = rop.value
        if vals is None or len(vals) != p:
            raise CommError(
                f"scatter root must supply exactly {p} values, got "
                f"{None if vals is None else len(vals)}"
            )
        words = (
            max(payload_words(v) for v in vals)
            if rop.words is None else rop.words / p
        )
        results = [eng.deliver(v) for v in vals]
    elif kind == "alltoall":
        for o in ops:
            if o.value is None or len(o.value) != p:
                raise CommError(f"alltoall requires {p} values per rank")
        words = max(
            max(payload_words(v) for v in o.value) if o.words is None else o.words / p
            for o in ops
        )
        results = [
            [eng.deliver(ops[src].value[dst]) for src in range(p)]
            for dst in range(p)
        ]
    elif kind == "exchange":
        # per-rank payload dicts {dst_local_rank: payload}
        inboxes: List[Dict[int, Any]] = [dict() for _ in range(p)]
        out_words = np.zeros(p)
        for i, o in enumerate(ops):
            msgs = o.value or {}
            if not isinstance(msgs, dict):
                raise CommError("exchange expects a dict {neighbor_rank: payload}")
            for dst, payload in msgs.items():
                if not (0 <= dst < p):
                    raise CommError(f"exchange neighbour {dst} out of range")
                if dst == i:
                    raise CommError("exchange to self is not allowed")
                inboxes[dst][i] = eng.deliver(payload)
            out_words[i] = (
                o.words if o.words is not None
                else sum(payload_words(v) for v in msgs.values())
            )
        in_words = np.array(
            [sum(payload_words(v) for v in box.values()) for box in inboxes]
        )
        nnbrs = np.array([len(o.value or {}) for o in ops])
        for i, st in enumerate(parked):
            cost = eng.machine.exchange_cost(int(nnbrs[i]), float(out_words[i]),
                                             float(in_words[i]))
            eng.advance_to(st.grank, t0 + cost)
            st.send_value = inboxes[group.local(st.grank)]
        return
    elif kind == "split":
        by_color: Dict[Any, List[Tuple[int, int, int]]] = {}
        for i, o in enumerate(ops):
            if o.color is not None:
                by_color.setdefault(o.color, []).append((o.key, i, granks[i]))
        words = 1.0
        new_comms: Dict[int, Comm] = {}
        for color, lst in sorted(by_color.items(), key=lambda kv: repr(kv[0])):
            lst.sort()
            g = eng.new_group([grank for _, _, grank in lst])
            for _, i, grank in lst:
                new_comms[i] = eng.make_comm(g, grank)
        results = [new_comms.get(i) for i in range(p)]
    else:  # pragma: no cover - guarded by _COLLECTIVES
        raise CommError(f"unhandled collective {kind}")

    cost = eng.machine.collective_cost(kind, p, words)
    t_done = t0 + cost
    for st in parked:
        eng.advance_to(st.grank, t_done)
        st.send_value = results[group.local(st.grank)]


def _raise_deadlock(eng: _Engine, states: List[_RankState]) -> None:
    """No rank can progress: name every parked op with its context.

    Each blocked rank contributes one entry (kind, peer, tag, comm,
    phase) to both the message and the exception's ``parked`` list, so
    the deadlock is diagnosable without re-running under trace.
    """
    lines = []
    parked = []
    for st in states:
        if st.status in (_DONE, _DEAD):
            continue
        op = st.op
        phase = eng.phase[st.grank]
        if op is None:
            desc = "running"
            entry = {"rank": st.grank, "kind": "running", "peer": None,
                     "tag": None, "comm": None, "phase": phase}
        elif op.kind == "recv":
            desc = f"recv(comm={op.cid}, source={op.source}, tag={op.tag})"
            entry = {"rank": st.grank, "kind": "recv", "peer": op.source,
                     "tag": op.tag, "comm": op.cid, "phase": phase}
        else:
            desc = f"{op.kind}(comm={op.cid})"
            entry = {"rank": st.grank, "kind": op.kind, "peer": None,
                     "tag": None, "comm": op.cid, "phase": phase}
        parked.append(entry)
        lines.append(f"  rank {st.grank}: waiting on {desc} "
                     f"[phase {phase!r}]")
    if eng.dead:
        for rank, ev in sorted(eng.dead.items()):
            lines.append(f"  rank {rank}: DEAD (killed in phase "
                         f"{ev.phase!r} at t={ev.time:.6g}s)")
        rank, ev = next(iter(sorted(eng.dead.items())))
        raise RankFailure(
            "SPMD stalled after a rank failure: no surviving rank can "
            "make progress.\n" + "\n".join(lines),
            dead_rank=rank, phase=ev.phase,
            sim_time=float(eng.clocks.max()),
        )
    raise DeadlockError(
        "SPMD deadlock: no rank can make progress.\n" + "\n".join(lines),
        parked=parked,
    )
