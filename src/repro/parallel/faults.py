"""Deterministic fault model for the SPMD engine (chaos engineering).

The paper targets 1,024-processor runs, where rank failures and lost or
late messages are the operating norm rather than the exception.  This
module describes *what goes wrong* in a run — the engine
(:func:`repro.parallel.engine.run_spmd` with ``faults=...``) consults a
:class:`FaultPlan` while it schedules ranks and messages, and the
recovery ladder in :func:`repro.core.parallel.run_parallel` decides what
to do about the resulting typed errors.

Design constraints
------------------
* **Deterministic.**  Same seed + same plan ⇒ the identical fault
  sequence, run after run.  Scheduled faults (:class:`KillRank`,
  :class:`MessageFault`) fire at fixed op/message ordinals; random
  faults are decided by counter-based hashing (``SeedSequence`` over
  ``(seed, attempt, site)``), never by drawing from a shared stream, so
  a decision for one site cannot perturb any other.
* **Transient by default.**  Real faults are tied to a moment, not to
  the job: a re-run lands on different hardware.  Scheduled faults
  therefore fire on attempt 0 only unless ``attempts=None`` (every
  attempt) or an explicit attempt tuple is given; random faults are
  re-drawn per attempt.  The recovery ladder advances the plan's
  ``attempt`` epoch via :meth:`FaultPlan.for_attempt`.
* **Observable.**  Every injected fault becomes a :class:`FaultEvent`
  on the run's :class:`~repro.parallel.trace.SpmdResult` and a
  ``{"record": "fault"}`` line in the JSONL trace.

Fault kinds
-----------
``kill``
    a rank dies when it posts its ``at_op``-th communication operation;
    surviving ranks that depend on it raise
    :class:`~repro.errors.RankFailure`.
``drop`` / ``duplicate`` / ``delay``
    a point-to-point message is lost (the receiver blocks — typically a
    :class:`~repro.errors.DeadlockError`), delivered twice, or arrives
    late by ``delay`` simulated seconds.
``corrupt``
    the delivered payload is perturbed.  Under ``sanitize=True`` the
    posted-payload checksum no longer matches at delivery and the run
    raises :class:`~repro.errors.CommError`; without the sanitizer the
    corruption flows through and the recovery ladder's balance
    validation is the last line of defence.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import CommError

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "KillRank",
    "MessageFault",
    "MESSAGE_FAULT_KINDS",
    "corrupt_payload",
]

#: every point-to-point fault kind a plan can inject
MESSAGE_FAULT_KINDS: Tuple[str, ...] = ("drop", "duplicate", "delay", "corrupt")

#: salt namespaces for the counter-based hash (keep decisions independent)
_SALT_KILL = 0x4B
_SALT_MSG = 0x6D
_SALT_DELAY = 0x64

_MASK63 = 0x7FFFFFFFFFFFFFFF


def _uniform(*salt: int) -> float:
    """Deterministic uniform in ``[0, 1)`` from integer salts.

    Counter-based (one hash per decision site) so fault decisions are
    independent of each other and of evaluation order.
    """
    ss = np.random.SeedSequence([int(s) & _MASK63 for s in salt])
    return float(ss.generate_state(1, dtype=np.uint64)[0]) / float(2 ** 64)


# ----------------------------------------------------------------------
# events (what actually happened during a run)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, recorded at its simulated injection time."""

    kind: str            #: "kill" | "drop" | "duplicate" | "delay" | "corrupt"
    time: float          #: simulated seconds at injection
    rank: int = -1       #: killed rank, or the sender of a faulted message
    dest: int = -1       #: global destination rank (message faults)
    tag: int = -1        #: message tag (message faults)
    op_index: int = -1   #: rank-local op ordinal (kills)
    msg_index: int = -1  #: send ordinal (global on sim, sender-local on procs)
    phase: str = ""      #: phase of the affected rank at injection
    detail: str = ""     #: human-readable description

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (used by the JSONL trace)."""
        return {
            "kind": self.kind,
            "time": self.time,
            "rank": self.rank,
            "dest": self.dest,
            "tag": self.tag,
            "op_index": self.op_index,
            "msg_index": self.msg_index,
            "phase": self.phase,
            "detail": self.detail,
        }


# ----------------------------------------------------------------------
# scheduled faults
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class KillRank:
    """Kill ``rank`` when it posts its ``at_op``-th communication op.

    ``attempts`` restricts the kill to specific recovery attempts
    (default: attempt 0 only — a transient node failure); ``None``
    means every attempt (a hard failure that forces the ladder down to
    fewer ranks or a sequential fallback).
    """

    rank: int
    at_op: int = 0
    attempts: Optional[Tuple[int, ...]] = (0,)


@dataclass(frozen=True)
class MessageFault:
    """Apply ``kind`` to the ``index``-th point-to-point send of the run.

    With ``rank=None`` (the default) ``index`` is the *global* send
    ordinal — the simulator counts every ``comm.send`` in deterministic
    scheduling order.  Real processes have no global ordinal, so the
    procs backend rejects globally-indexed faults; give ``rank`` to key
    the fault on that sender's ``index``-th own send instead (the
    sender-local ordinal is identical on both backends, so a
    rank-scoped fault fires at the same logical message everywhere).
    ``delay`` is the extra seconds for ``kind="delay"`` (simulated on
    the sim backend, wall-clock on procs).
    """

    kind: str
    index: int
    delay: float = 0.0
    attempts: Optional[Tuple[int, ...]] = (0,)
    #: restrict to one sender and count its own sends (cross-backend)
    rank: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_FAULT_KINDS:
            raise CommError(
                f"unknown message-fault kind {self.kind!r}; expected one "
                f"of {MESSAGE_FAULT_KINDS}"
            )


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of faults for one SPMD run.

    Combine *scheduled* faults (``kills``, ``messages``) with *random*
    rates (per-op kill probability, per-message drop/duplicate/delay/
    corrupt probabilities).  Random decisions hash ``(seed, attempt,
    site)`` so the same plan produces the identical fault sequence every
    run, and a different ``attempt`` epoch (see :meth:`for_attempt`)
    re-draws them — faults are transient across recovery attempts, the
    way real hardware faults are.
    """

    seed: int = 0
    kills: Tuple[KillRank, ...] = ()
    messages: Tuple[MessageFault, ...] = ()
    #: per-op probability that a rank dies posting that op
    kill_rate: float = 0.0
    #: per-message probabilities (checked in this order, first hit wins)
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    corrupt_rate: float = 0.0
    #: scale of random delays (simulated seconds)
    mean_delay: float = 1e-4
    #: cap on random kills per attempt (scheduled kills are uncapped)
    max_kills: int = 1
    #: recovery epoch — advanced by the ladder, not set by hand
    attempt: int = 0

    def __post_init__(self) -> None:
        for rate in (self.kill_rate, self.drop_rate, self.duplicate_rate,
                     self.delay_rate, self.corrupt_rate):
            if not 0.0 <= rate <= 1.0:
                raise CommError(f"fault rate {rate} outside [0, 1]")
        object.__setattr__(self, "kills", tuple(self.kills))
        object.__setattr__(self, "messages", tuple(self.messages))

    # -- epochs ---------------------------------------------------------
    def for_attempt(self, attempt: int) -> "FaultPlan":
        """The same plan as seen by recovery attempt ``attempt``."""
        return replace(self, attempt=int(attempt))

    def _active(self, attempts: Optional[Tuple[int, ...]]) -> bool:
        return attempts is None or self.attempt in attempts

    # -- engine queries -------------------------------------------------
    def kill_now(self, rank: int, op_index: int, killed_so_far: int) -> bool:
        """Should ``rank`` die posting its ``op_index``-th op?"""
        for k in self.kills:
            if k.rank == rank and k.at_op == op_index and self._active(k.attempts):
                return True
        if self.kill_rate > 0.0 and killed_so_far < self.max_kills:
            return _uniform(self.seed, self.attempt, _SALT_KILL,
                            rank, op_index) < self.kill_rate
        return False

    def message_fault(
        self,
        msg_index: Optional[int],
        sender: Optional[int] = None,
        sender_index: Optional[int] = None,
    ) -> Optional[Tuple[str, float]]:
        """Fault (kind, delay-seconds) for one posted send, or ``None``
        for clean delivery.

        ``msg_index`` is the global send ordinal (simulator; ``None``
        on the procs backend, which has no global order).  ``sender`` /
        ``sender_index`` identify the same send by its sender-local
        ordinal — available on both backends, and when present they are
        the site random rates hash on, so a plan's random faults land
        on the same logical messages under ``backend="sim"`` and
        ``backend="procs"``.
        """
        for m in self.messages:
            if not self._active(m.attempts):
                continue
            if m.rank is None:
                if msg_index is not None and m.index == msg_index:
                    return m.kind, m.delay
            elif sender is not None and m.rank == sender \
                    and m.index == sender_index:
                return m.kind, m.delay
        rates = (("drop", self.drop_rate), ("duplicate", self.duplicate_rate),
                 ("delay", self.delay_rate), ("corrupt", self.corrupt_rate))
        # sender-local site when known (cross-backend reproducible);
        # legacy global site otherwise (direct plan queries)
        site: Tuple[int, ...] = ((sender, sender_index)
                                 if sender is not None else (msg_index,))
        for pos, (kind, rate) in enumerate(rates):
            if rate > 0.0 and _uniform(self.seed, self.attempt, _SALT_MSG,
                                       pos, *site) < rate:
                delay = 0.0
                if kind == "delay":
                    delay = self.mean_delay * (0.5 + _uniform(
                        self.seed, self.attempt, _SALT_DELAY, *site))
                return kind, delay
        return None

    # -- introspection --------------------------------------------------
    @property
    def is_active(self) -> bool:
        """Can this plan inject anything at all?"""
        return bool(self.kills or self.messages or self.kill_rate
                    or self.drop_rate or self.duplicate_rate
                    or self.delay_rate or self.corrupt_rate)

    def describe(self) -> str:
        """One-line human-readable summary (chaos CLI reports)."""
        parts: List[str] = [f"seed={self.seed}", f"attempt={self.attempt}"]
        if self.kills:
            parts.append(f"kills={len(self.kills)}")
        if self.messages:
            parts.append(f"messages={len(self.messages)}")
        for name in ("kill_rate", "drop_rate", "duplicate_rate",
                     "delay_rate", "corrupt_rate"):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value:g}")
        return "FaultPlan(" + ", ".join(parts) + ")"


# ----------------------------------------------------------------------
# payload corruption
# ----------------------------------------------------------------------

def corrupt_payload(obj: Any, salt: int) -> Tuple[Any, str]:
    """Deterministically perturb one element of a payload.

    Returns ``(corrupted, description)``; ``description`` is ``""``
    when the payload holds nothing corruptible (the delivery proceeds
    unchanged, but the event is still recorded).  Arrays are copied —
    the sender's buffer is never touched — and delivered read-only if
    the original view was.
    """
    if isinstance(obj, np.ndarray):
        if obj.size == 0:
            return obj, ""
        out = obj.copy()
        idx = salt % obj.size
        flat = out.reshape(-1)
        if out.dtype == np.bool_:
            flat[idx] = ~flat[idx]
            desc = f"flipped element {idx}"
        elif np.issubdtype(out.dtype, np.integer):
            flat[idx] = flat[idx] ^ 1
            desc = f"bit-flipped element {idx}"
        elif np.issubdtype(out.dtype, np.floating) \
                or np.issubdtype(out.dtype, np.complexfloating):
            flat[idx] = flat[idx] + 1.0
            desc = f"perturbed element {idx}"
        else:
            return obj, ""
        if not obj.flags.writeable:
            out.flags.writeable = False
        return out, f"{desc} of {out.dtype} array"
    if isinstance(obj, bool):
        return (not obj), "flipped bool"
    if isinstance(obj, int):
        return obj ^ 1, "bit-flipped int"
    if isinstance(obj, float):
        return obj + 1.0, "perturbed float"
    if isinstance(obj, (list, tuple)):
        items = list(obj)
        for i, item in enumerate(items):
            new, desc = corrupt_payload(item, salt)
            if desc:
                items[i] = new
                where = f"item {i}: {desc}"
                return (items if isinstance(obj, list) else tuple(items)), where
        return obj, ""
    if isinstance(obj, dict):
        out = dict(obj)
        for key in out:
            new, desc = corrupt_payload(out[key], salt)
            if desc:
                out[key] = new
                return out, f"key {key!r}: {desc}"
        return obj, ""
    return obj, ""
