"""Real-parallel executor: one OS process per rank (``backend="procs"``).

:func:`run_spmd_procs` runs the *same* rank programs the simulated
engine runs — unmodified generator functions driving the same
:class:`~repro.parallel.engine.Comm` surface — but each rank is a real
``multiprocessing`` worker (fork start method), point-to-point and
collective payloads move over per-rank queues, and large NumPy arrays
travel pickle-free through named ``shared_memory`` segments.  The
simulated engine is the executable oracle: for a deterministic rank
program, both backends must produce bit-identical per-rank results and
identical communication ledgers (asserted by
``tests/parallel/test_backend_parity.py``).

How parity is achieved
----------------------
* **Same op stream.**  Workers reuse the engine's :class:`Comm` and
  ``_Op`` classes verbatim; the per-process driver interprets the ops a
  rank yields exactly as the simulator's scheduler does.
* **Same reduction/collective semantics.**  Each collective is
  coordinated by the communicator's first member (local rank 0), which
  validates mismatched kinds/roots with the simulator's error messages
  and computes results with the engine's own ``_reduce_values`` /
  ``_copy_payload`` in local-rank order — bit-identical folds.
* **Same seeding.**  Every worker derives the full per-rank stream list
  with :func:`~repro.rng.spawn_streams` from the one engine seed, so
  ``comm.rng`` is the stream the simulator would have handed it.
* **Same ledger.**  Each member books its own per-phase CommStats
  exactly as the simulator does (``collective_ops`` counted once, in
  the coordinator's phase); the parent merges the per-rank columns.

What differs (and is documented in DESIGN §"Execution backends"):
clocks are *measured wall seconds* (not Hockney-model estimates), so
clock-dependent outputs are excluded from parity; ``copy_mode`` always
behaves defensively (process isolation copies every payload);
``sanitize=True`` and ``max_sim_seconds`` are simulated-only and raise
:class:`~repro.errors.ConfigError`; ``max_steps`` is enforced per rank
rather than globally.

Fault injection is real here.  Scheduled
:class:`~repro.parallel.faults.KillRank` faults ``os._exit`` the worker
and the parent surfaces a typed :class:`~repro.errors.RankFailure`.
Message faults (drop / duplicate / delay / corrupt — scheduled via
rank-scoped :class:`~repro.parallel.faults.MessageFault` or random
rates) are injected by the *sender* at the :class:`_Router` queue
layer, keyed on the sender-local send ordinal with the same
counter-based hashing the simulator uses, so one plan lands its random
faults on the same logical messages under both backends.  Globally
indexed scheduled faults (``MessageFault(rank=None)``) stay
simulated-only — real processes have no global send order — and
``max_kills`` caps random kills per *worker* rather than per run (no
worker can observe another's death).  ``delay`` sleeps wall-clock
seconds at the receiver.  Injected faults ship back with each
surviving worker's result and land on ``SpmdResult.faults``
(best-effort: a killed or failed worker's events are lost with it).

Two layers of supervision bound a faulted run.  Per op: a blocked
operation polls its inbox with exponential backoff and raises
:class:`~repro.errors.DeadlockError` (with the simulator's parked-op
context dict) after ``op_timeout`` seconds.  Per run: every worker
publishes a heartbeat — ops completed, blocked/running state, and its
parked-op context — through shared arrays; when *every* live
unfinished worker has sat blocked for ``stall_timeout`` seconds the
parent declares the run deadlocked immediately instead of waiting out
the full per-op timeout (a dropped message stalls the whole job, and
chaos sweeps cannot afford 120 s per injected drop).

On startup the parent also sweeps stale ``rpr``-prefixed ``/dev/shm``
segments whose creating process is gone (a previously *crashed* parent
never reached its own exit-path sweep) and reports the swept names via
:class:`~repro.errors.CommWarning`.
"""

from __future__ import annotations

import glob
import itertools
import os
import queue as _queue
import re
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .. import errors as _errors
from ..errors import (
    BudgetExceededError,
    CommError,
    CommWarning,
    ConfigError,
    DeadlockError,
    RankFailure,
)
from ..graph.distributed import Shared
from ..rng import SeedLike, spawn_streams
from .engine import (
    _COLLECTIVES,
    _COPY_MODES,
    _Group,
    _Op,
    _copy_payload,
    _env_sanitize,
    _op_words,
    _reduce_values,
)
from .faults import FaultEvent, FaultPlan, corrupt_payload
from .machine import MachineModel, QDR_CLUSTER
from .trace import CommStats, DEFAULT_PHASE, PhaseBreakdown, SpmdResult

__all__ = ["run_spmd_procs", "procs_available", "DEFAULT_OP_TIMEOUT",
           "DEFAULT_STALL_TIMEOUT"]

#: default seconds a blocked op waits before raising DeadlockError
DEFAULT_OP_TIMEOUT = 120.0

#: default seconds of *every* live rank sitting blocked before the
#: parent's heartbeat supervisor declares a global deadlock (clamped to
#: op_timeout; a single blocked rank still waits the full op_timeout)
DEFAULT_STALL_TIMEOUT = 20.0

#: worker exit code signalling an injected KillRank (not a crash)
_KILLED_EXIT = 66

#: arrays at or above this many bytes travel via shared memory
_SHM_THRESHOLD = 1 << 16

#: parent poll interval while waiting for worker results (seconds)
_POLL = 0.1

_RUN_COUNTER = itertools.count()

#: one-shot latch for the REPRO_SANITIZE-is-ignored warning, so a CI
#: shard that launches hundreds of procs runs sees the notice once
_ENV_SANITIZE_WARNED = False


def _warn_env_sanitize_ignored() -> None:
    global _ENV_SANITIZE_WARNED
    if _ENV_SANITIZE_WARNED:
        return
    _ENV_SANITIZE_WARNED = True
    warnings.warn(
        "REPRO_SANITIZE is set but backend='procs' cannot sanitize: the "
        "payload sanitizer is simulated-only, so this run is NOT "
        "sanitized.  Unset REPRO_SANITIZE or use backend='sim' "
        "(pass sanitize=True explicitly to make this an error).",
        CommWarning,
        stacklevel=3,
    )

#: diagnostics of the most recent run in this process (leak tests)
_LAST_RUN: Dict[str, Any] = {}


def procs_available() -> bool:
    """Can ``backend="procs"`` run here?  Requires the fork start
    method (rank programs are closures and are inherited, never
    pickled)."""
    import multiprocessing as mp

    return "fork" in mp.get_all_start_methods()


# ----------------------------------------------------------------------
# shared-memory payload codec
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _ShmArray:
    """Placeholder for an ndarray parked in a named shm segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    order: str  # "C" or "F"


class _SharedRef:
    """Pickled stand-in for :class:`Shared` (codec-internal)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


def _untrack(shm) -> None:
    """Detach a freshly *created* segment from the resource tracker.

    Ownership is explicit here: the consumer unlinks (its attach-time
    registration and unlink-time unregistration balance out on
    CPython < 3.13, where attaching also registers) and the parent
    sweeps leftovers by name prefix.  Leaving the creator's
    registration in place would make the tracker double-unlink at
    interpreter exit.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class _SegmentFactory:
    """Names and creates this worker's outgoing shm segments."""

    def __init__(self, prefix: str, rank: int) -> None:
        self._prefix = prefix
        self._rank = rank
        self._seq = itertools.count()

    def new(self, nbytes: int):
        from multiprocessing.shared_memory import SharedMemory

        name = f"{self._prefix}r{self._rank}s{next(self._seq):x}"
        shm = SharedMemory(name=name, create=True, size=max(1, nbytes))
        _untrack(shm)
        return shm


def _encode_payload(obj: Any, seg: _SegmentFactory) -> Any:
    """Replace large arrays with shm placeholders; rebuild containers."""
    if isinstance(obj, np.ndarray):
        if obj.nbytes < _SHM_THRESHOLD:
            # small arrays pickle through the queue; strip read-only
            # views down to plain owned arrays first
            return obj if obj.flags.owndata and obj.flags.writeable \
                else obj.copy()
        if obj.flags.f_contiguous and not obj.flags.c_contiguous:
            order, data = "F", obj
        else:
            order, data = "C", np.ascontiguousarray(obj)
        shm = seg.new(data.nbytes)
        dst = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf,
                         order=order)
        dst[...] = data
        meta = _ShmArray(shm.name, data.dtype.str, tuple(data.shape), order)
        shm.close()
        return meta
    if isinstance(obj, list):
        return [_encode_payload(x, seg) for x in obj]
    if isinstance(obj, tuple):
        return tuple(_encode_payload(x, seg) for x in obj)
    if isinstance(obj, dict):
        return {k: _encode_payload(v, seg) for k, v in obj.items()}
    if isinstance(obj, Shared):
        return _SharedRef(_encode_payload(obj.value, seg))
    return obj


def _decode_payload(obj: Any) -> Any:
    """Inverse of :func:`_encode_payload`; consumes (unlinks) segments."""
    if isinstance(obj, _ShmArray):
        from multiprocessing.shared_memory import SharedMemory

        shm = SharedMemory(name=obj.name)
        src = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype),
                         buffer=shm.buf, order=obj.order)
        arr = src.copy(order=obj.order)
        shm.close()
        shm.unlink()
        return arr
    if isinstance(obj, list):
        return [_decode_payload(x) for x in obj]
    if isinstance(obj, tuple):
        return tuple(_decode_payload(x) for x in obj)
    if isinstance(obj, dict):
        return {k: _decode_payload(v) for k, v in obj.items()}
    if isinstance(obj, _SharedRef):
        return Shared(_decode_payload(obj.value))
    return obj


def _drain_segments(obj: Any) -> None:
    """Unlink every segment referenced by an un-decoded payload
    (cleanup of messages that will never be delivered)."""
    if isinstance(obj, _ShmArray):
        from multiprocessing.shared_memory import SharedMemory

        try:
            shm = SharedMemory(name=obj.name)
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass
        return
    if isinstance(obj, (list, tuple)):
        for x in obj:
            _drain_segments(x)
    elif isinstance(obj, dict):
        for v in obj.values():
            _drain_segments(v)
    elif isinstance(obj, _SharedRef):
        _drain_segments(obj.value)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

#: park-kind encoding for the heartbeat channel (fixed order)
_PARK_KINDS: Tuple[str, ...] = ("recv",) + tuple(sorted(_COLLECTIVES))

#: bytes reserved per rank for the heartbeat's phase label
_PHASE_BYTES = 24


class _Heartbeat:
    """Shared-array liveness channel between the workers and the parent.

    Each worker is the sole writer of its own slots: completed-op
    counter, running/blocked/done state with the monotonic time of the
    last transition, and (while blocked) the parked-op context the
    simulator's :class:`~repro.errors.DeadlockError` reports.  The
    parent reads the arrays lock-free — staleness of one poll interval
    is harmless because the supervisor only acts on *sustained*
    all-blocked states.
    """

    _RUNNING, _BLOCKED, _DONE = 0, 1, 2

    def __init__(self, nranks: int) -> None:
        from multiprocessing.sharedctypes import RawArray

        self.nranks = nranks
        self.state = RawArray("i", nranks)
        self.since = RawArray("d", [time.monotonic()] * nranks)
        self.ops = RawArray("q", nranks)
        self.kind = RawArray("i", [-1] * nranks)
        self.peer = RawArray("i", [-1] * nranks)
        self.tag = RawArray("i", [-1] * nranks)
        self.phase = RawArray("c", _PHASE_BYTES * nranks)

    # -- worker-side writers --------------------------------------------
    def blocked(self, rank: int, parked: Dict[str, Any]) -> None:
        try:
            ki = _PARK_KINDS.index(parked.get("kind"))
        except ValueError:
            ki = -1
        self.kind[rank] = ki
        peer = parked.get("peer")
        tag = parked.get("tag")
        self.peer[rank] = -1 if peer is None else int(peer)
        self.tag[rank] = -1 if tag is None else int(tag)
        raw = str(parked.get("phase", "")).encode("utf-8",
                                                  "replace")[:_PHASE_BYTES]
        base = rank * _PHASE_BYTES
        self.phase[base:base + _PHASE_BYTES] = raw.ljust(_PHASE_BYTES, b"\x00")
        self.since[rank] = time.monotonic()
        self.state[rank] = self._BLOCKED

    def running(self, rank: int) -> None:
        self.state[rank] = self._RUNNING
        self.since[rank] = time.monotonic()

    def op_done(self, rank: int) -> None:
        self.ops[rank] += 1

    def done(self, rank: int) -> None:
        self.state[rank] = self._DONE
        self.since[rank] = time.monotonic()

    # -- parent-side reader ---------------------------------------------
    def parked_of(self, rank: int) -> Dict[str, Any]:
        ki = self.kind[rank]
        peer = self.peer[rank]
        tag = self.tag[rank]
        base = rank * _PHASE_BYTES
        raw = bytes(self.phase[base:base + _PHASE_BYTES])
        return {
            "rank": rank,
            "kind": _PARK_KINDS[ki] if 0 <= ki < len(_PARK_KINDS) else "?",
            "peer": None if peer < 0 else int(peer),
            "tag": None if tag < 0 else int(tag),
            "comm": None,
            "phase": raw.rstrip(b"\x00").decode("utf-8", "replace"),
        }


class _Router:
    """This worker's view of the message fabric.

    One inbound queue per rank; messages are ``(key, words, encoded,
    due)`` tuples (``due`` is a monotonic not-before time for delayed
    messages, 0.0 otherwise).  Out-of-order arrivals are buffered per
    key, preserving per-key FIFO order (the engine's (src, dst, tag,
    comm) delivery contract).  Blocking fetches poll with per-op
    exponential backoff — cheap sub-millisecond first polls for the
    common fast delivery, capped growth while parked — and publish
    their parked context on the heartbeat channel so the parent's
    supervisor can diagnose a global stall.
    """

    def __init__(self, inboxes: List[Any], grank: int,
                 timeout: float, hb: Optional[_Heartbeat] = None) -> None:
        self.inboxes = inboxes
        self.grank = grank
        self.timeout = timeout
        self.hb = hb
        self._buffer: Dict[Tuple, deque] = {}

    def post(self, dst_grank: int, key: Tuple, words: float,
             encoded: Any, due: float = 0.0) -> None:
        self.inboxes[dst_grank].put((key, words, encoded, due))

    @staticmethod
    def _honor_due(words: float, encoded: Any, due: float):
        if due:
            wait = due - time.monotonic()
            if wait > 0:
                time.sleep(wait)
        return words, encoded

    def fetch(self, key: Tuple, desc: str, parked: Dict[str, Any]):
        """Blocking receive of the message filed under ``key``."""
        buf = self._buffer.get(key)
        if buf:
            return self._honor_due(*buf.popleft())
        deadline = time.monotonic() + self.timeout
        inbox = self.inboxes[self.grank]
        if self.hb is not None:
            self.hb.blocked(self.grank, parked)
        poll = 0.002
        try:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"procs backend: rank {self.grank} made no progress "
                        f"for {self.timeout:.6g}s waiting on {desc} "
                        f"[phase {parked['phase']!r}]",
                        parked=[parked],
                    )
                try:
                    k, words, encoded, due = inbox.get(
                        timeout=min(remaining, poll))
                except _queue.Empty:
                    poll = min(poll * 2.0, 0.25)
                    continue
                if k == key:
                    return self._honor_due(words, encoded, due)
                self._buffer.setdefault(k, deque()).append(
                    (words, encoded, due))
        finally:
            if self.hb is not None:
                self.hb.running(self.grank)

    def drain(self) -> None:
        """Consume leftover segments so nothing leaks on normal exit."""
        for q in self._buffer.values():
            for _, encoded, _ in q:
                _drain_segments(encoded)
        inbox = self.inboxes[self.grank]
        while True:
            try:
                _, _, encoded, _ = inbox.get_nowait()
            except _queue.Empty:
                return
            _drain_segments(encoded)


class _WorkerSide:
    """Engine stand-in inside one worker: the object a :class:`Comm`
    holds.  Time is *measured* (wall seconds between op boundaries);
    ``charge``/``charge_comm`` are therefore no-ops."""

    def __init__(self, grank: int, nranks: int, machine: MachineModel,
                 seed: SeedLike, router: _Router,
                 seg: _SegmentFactory,
                 faults: Optional[FaultPlan] = None,
                 hb: Optional[_Heartbeat] = None) -> None:
        self.grank = grank
        self.nranks = nranks
        self.machine = machine
        self.rngs = spawn_streams(seed, nranks)
        self.router = router
        self.seg = seg
        self.faults = faults
        self.hb = hb
        self.send_count = 0
        self.fault_events: List[FaultEvent] = []
        self.clocks = np.zeros(nranks)
        self.comp_time = 0.0
        self.comm_time = 0.0
        self.phase = DEFAULT_PHASE
        self.phase_acc: Dict[str, List[float]] = {}
        self.stats: Dict[str, CommStats] = {}
        self.groups: Dict[Any, _Group] = {}
        self.coll_seq: Dict[Any, int] = {}
        self.messages = 0
        self.collectives = 0
        self.words_sent = 0.0
        self._mark = time.perf_counter()

    # -- Comm-facing surface (mirrors _Engine) --------------------------
    def charge(self, grank: int, work: float) -> None:
        pass  # real time is measured, not modelled

    def charge_comm(self, grank: int, dt: float) -> None:
        pass

    def set_phase(self, grank: int, name: str) -> None:
        self.mark_comp()
        self.phase = name

    # -- wall-clock accounting ------------------------------------------
    def _phase_cell(self) -> List[float]:
        cell = self.phase_acc.get(self.phase)
        if cell is None:
            cell = self.phase_acc[self.phase] = [0.0, 0.0]
        return cell

    def _book(self, slot: int) -> None:
        now = time.perf_counter()
        dt = now - self._mark
        self._mark = now
        if dt <= 0:
            return
        self._phase_cell()[slot] += dt
        if slot == 0:
            self.comp_time += dt
        else:
            self.comm_time += dt
        self.clocks[self.grank] += dt

    def mark_comp(self) -> None:
        self._book(0)

    def mark_comm(self) -> None:
        self._book(1)

    def stats_for(self, grank: int) -> CommStats:
        s = self.stats.get(self.phase)
        if s is None:
            s = self.stats[self.phase] = CommStats.zeros(self.nranks)
        return s

    def make_comm(self, group: _Group, grank: int):
        from .engine import Comm

        return Comm(self, group, grank)

    def parked_ctx(self, kind: str, peer=None, tag=None, cid=None) -> Dict[str, Any]:
        return {"rank": self.grank, "kind": kind, "peer": peer,
                "tag": tag, "comm": cid, "phase": self.phase}


def _execute_op(side: _WorkerSide, op: _Op) -> Any:
    """Execute one yielded op against the real fabric."""
    group = side.groups[op.cid]
    me = side.grank
    if op.kind == "send":
        if not (0 <= op.dest < group.size):
            raise CommError(
                f"send dest {op.dest} out of range for comm size {group.size}"
            )
        gdst = group.members[op.dest]
        words = _op_words(op)
        key = ("p", me, op.tag, op.cid)
        fault = None
        if side.faults is not None:
            local_index = side.send_count
            side.send_count = local_index + 1
            fault = side.faults.message_fault(None, sender=me,
                                              sender_index=local_index)
        if fault is None:
            side.router.post(gdst, key, words,
                             _encode_payload(op.value, side.seg))
        else:
            _fault_post(side, gdst, op, key, words, fault, local_index)
        side.messages += 1
        side.words_sent += words
        stats = side.stats_for(me)
        stats.sends[me] += 1
        stats.words_sent[me] += words
        return None
    if op.kind == "recv":
        if not (0 <= op.source < group.size):
            raise CommError(
                f"recv source {op.source} out of range for comm size "
                f"{group.size}"
            )
        gsrc = group.members[op.source]
        desc = f"recv(comm={op.cid}, source={op.source}, tag={op.tag})"
        words, encoded = side.router.fetch(
            ("p", gsrc, op.tag, op.cid), desc,
            side.parked_ctx("recv", peer=op.source, tag=op.tag, cid=op.cid),
        )
        stats = side.stats_for(me)
        stats.recvs[me] += 1
        stats.words_received[me] += words
        return _decode_payload(encoded)
    if op.kind in _COLLECTIVES:
        return _collective(side, group, op)
    raise CommError(f"unhandled op kind {op.kind!r}")  # pragma: no cover


def _fault_post(side: _WorkerSide, gdst: int, op: _Op, key: Tuple,
                words: float, fault: Tuple[str, float],
                local_index: int) -> None:
    """Apply one message fault to a posted send (slow path).

    Mirrors the simulator's ``_fault_send``: drop never posts, duplicate
    posts two independent encodings, delay stamps a wall-clock not-before
    time honoured by the receiver, corrupt perturbs the same element the
    simulator would (salted by the sender-local ordinal).  The event's
    ``msg_index`` is the sender-local ordinal — real processes have no
    global send order.
    """
    kind, delay = fault
    detail = ""
    if kind == "drop":
        pass  # the message is simply never posted
    elif kind == "duplicate":
        side.router.post(gdst, key, words,
                         _encode_payload(op.value, side.seg))
        side.router.post(gdst, key, words,
                         _encode_payload(op.value, side.seg))
    elif kind == "delay":
        detail = f"delayed by {delay:.6g}s"
        side.router.post(gdst, key, words,
                         _encode_payload(op.value, side.seg),
                         due=time.monotonic() + delay)
    elif kind == "corrupt":
        payload, detail = corrupt_payload(op.value, local_index)
        side.router.post(gdst, key, words,
                         _encode_payload(payload, side.seg))
    else:  # pragma: no cover - guarded by MessageFault.__post_init__
        raise CommError(f"unhandled message-fault kind {kind!r}")
    side.fault_events.append(FaultEvent(
        kind=kind, time=float(side.clocks[side.grank]), rank=side.grank,
        dest=gdst, tag=op.tag, msg_index=local_index, phase=side.phase,
        detail=detail,
    ))


def _collective(side: _WorkerSide, group: _Group, op: _Op) -> Any:
    """One collective step, coordinated by the group's first member.

    Ledger parity with the simulator's ``_count_collective``: every
    member books its participation and contributed words in its own
    phase; the completed operation is counted once, in the
    coordinator's (local rank 0's) phase.
    """
    cid = group.cid
    seq = side.coll_seq.get(cid, 0)
    side.coll_seq[cid] = seq + 1
    me = side.grank
    p = group.size
    stats = side.stats_for(me)
    stats._coll_array(op.kind)[me] += 1
    stats.collective_words[me] += _op_words(op)
    coord = group.members[0]
    desc = f"{op.kind}(comm={cid})"
    parked = side.parked_ctx(op.kind, cid=cid)
    if me != coord:
        contrib = (op.kind, op.root, op.color, op.key, op.op,
                   _encode_payload(op.value, side.seg))
        side.router.post(coord, ("cc", me, seq, cid), 0.0, contrib)
        _, encoded = side.router.fetch(("cr", cid, seq), desc, parked)
        result = _decode_payload(encoded)
        return _finish_collective(side, group, op, result)

    # ---- coordinator path ----
    ops: List[_Op] = [op]
    for i in range(1, p):
        _, contrib = side.router.fetch(("cc", group.members[i], seq, cid),
                                       desc, parked)
        kind, root, color, key, redop, encoded = contrib
        ops.append(_Op(kind, cid, value=_decode_payload(encoded), root=root,
                       op=redop, color=color, key=key))
    kinds = {o.kind for o in ops}
    if len(kinds) != 1:
        raise CommError(
            f"mismatched collectives on comm {cid}: "
            + ", ".join(f"rank {i}:{o.kind}" for i, o in enumerate(ops))
        )
    kind = kinds.pop()
    if kind in ("bcast", "reduce", "gather", "scatter"):
        roots = {o.root for o in ops}
        if len(roots) != 1:
            raise CommError(f"mismatched roots in {kind} on comm {cid}: {roots}")
    results = _collective_results(side, group, kind, ops)
    side.collectives += 1
    stats = side.stats_for(me)
    stats.collective_ops[kind] = stats.collective_ops.get(kind, 0) + 1
    for i in range(1, p):
        side.router.post(group.members[i], ("cr", cid, seq), 0.0,
                         _encode_payload(results[i], side.seg))
    return _finish_collective(side, group, op, _copy_payload(results[0]))


def _finish_collective(side: _WorkerSide, group: _Group, op: _Op,
                       result: Any) -> Any:
    """Post-process a collective result on the receiving member."""
    if op.kind == "split":
        if result is None:
            return None
        child_cid, members = result
        child = _Group(child_cid, tuple(members))
        side.groups[child_cid] = child
        return side.make_comm(child, side.grank)
    return result


def _collective_results(side: _WorkerSide, group: _Group, kind: str,
                        ops: List[_Op]) -> List[Any]:
    """Per-local-rank results, mirroring the simulator's
    ``_run_collective`` value semantics exactly (delivery copies are the
    codec's job; folds reuse the engine's own helpers)."""
    p = group.size
    if kind == "barrier":
        return [None] * p
    if kind == "bcast":
        rval = ops[ops[0].root].value
        return [rval] * p
    if kind == "reduce":
        red = _reduce_values([o.value for o in ops], ops[0].op)
        return [red if i == ops[0].root else None for i in range(p)]
    if kind == "allreduce":
        red = _reduce_values([o.value for o in ops], ops[0].op)
        return [red] * p
    if kind == "scan":
        results: List[Any] = []
        acc = None
        for o in ops:
            acc = _copy_payload(o.value) if acc is None \
                else _reduce_values([acc, o.value], o.op)
            results.append(_copy_payload(acc))
        return results
    if kind == "gather":
        gathered = [o.value for o in ops]
        return [gathered if i == ops[0].root else None for i in range(p)]
    if kind == "allgather":
        items = [o.value for o in ops]
        return [list(items) for _ in range(p)]
    if kind == "scatter":
        vals = ops[ops[0].root].value
        if vals is None or len(vals) != p:
            raise CommError(
                f"scatter root must supply exactly {p} values, got "
                f"{None if vals is None else len(vals)}"
            )
        return list(vals)
    if kind == "alltoall":
        for o in ops:
            if o.value is None or len(o.value) != p:
                raise CommError(f"alltoall requires {p} values per rank")
        return [[ops[src].value[dst] for src in range(p)] for dst in range(p)]
    if kind == "exchange":
        inboxes: List[Dict[int, Any]] = [dict() for _ in range(p)]
        for i, o in enumerate(ops):
            msgs = o.value or {}
            if not isinstance(msgs, dict):
                raise CommError("exchange expects a dict {neighbor_rank: payload}")
            for dst, payload in msgs.items():
                if not (0 <= dst < p):
                    raise CommError(f"exchange neighbour {dst} out of range")
                if dst == i:
                    raise CommError("exchange to self is not allowed")
                inboxes[dst][i] = payload
        return inboxes
    if kind == "split":
        granks = list(group.members)
        by_color: Dict[Any, List[Tuple[int, int, int]]] = {}
        for i, o in enumerate(ops):
            if o.color is not None:
                by_color.setdefault(o.color, []).append((o.key, i, granks[i]))
        seq = side.coll_seq[group.cid] - 1  # the seq of this split op
        results: List[Any] = [None] * p
        for ci, (color, lst) in enumerate(
                sorted(by_color.items(), key=lambda kv: repr(kv[0]))):
            lst.sort()
            child_cid = f"{group.cid}/{seq}.{ci}"
            members = tuple(grank for _, _, grank in lst)
            for _, i, _ in lst:
                results[i] = (child_cid, members)
        return results
    raise CommError(f"unhandled collective {kind}")  # pragma: no cover


def _drive(side: _WorkerSide, gen, plan: Optional[FaultPlan],
           max_steps: Optional[int]) -> Any:
    """Drive one rank program to completion against the real fabric."""
    value = None
    op_index = 0
    side._mark = time.perf_counter()
    while True:
        try:
            op = gen.send(value)
        except StopIteration as stop:
            side.mark_comp()
            return stop.value
        side.mark_comp()
        if not isinstance(op, _Op):
            raise CommError(
                f"rank {side.grank} yielded {op!r}; rank programs must only "
                "yield via 'yield from comm.<op>(...)'"
            )
        if max_steps is not None and op_index + 1 > max_steps:
            raise BudgetExceededError(
                f"rank {side.grank} posted more than max_steps={max_steps} "
                "communication operations (the procs backend bounds each "
                "rank separately)",
                budget="steps", limit=max_steps, used=op_index + 1,
            )
        if plan is not None and plan.kill_now(side.grank, op_index, 0):
            os._exit(_KILLED_EXIT)
        op_index += 1
        value = _execute_op(side, op)
        if side.hb is not None:
            side.hb.op_done(side.grank)
        side.mark_comm()


def _worker_entry(rank: int, nranks: int, fn, args, kwargs,
                  machine: MachineModel, seed: SeedLike, prefix: str,
                  inboxes, results_q, plan: Optional[FaultPlan],
                  max_steps: Optional[int], op_timeout: float,
                  hb: Optional[_Heartbeat]) -> None:
    """Process entry point for one rank (fork: everything inherited)."""
    import inspect

    seg = _SegmentFactory(prefix, rank)
    router = _Router(inboxes, rank, op_timeout, hb=hb)
    side = _WorkerSide(rank, nranks, machine, seed, router, seg,
                       faults=plan, hb=hb)
    world = _Group(0, tuple(range(nranks)))
    side.groups[0] = world
    comm = side.make_comm(world, rank)
    try:
        out = fn(comm, *args, **kwargs)
        if inspect.isgenerator(out):
            result = _drive(side, out, plan, max_steps)
        else:
            result = out
        router.drain()
        payload = _encode_payload({
            "value": result,
            "pid": os.getpid(),
            "clock": float(side.clocks[rank]),
            "comp": side.comp_time,
            "comm": side.comm_time,
            "phase_acc": dict(side.phase_acc),
            "stats": {name: s.to_dict() for name, s in side.stats.items()},
            "messages": side.messages,
            "collectives": side.collectives,
            "words_sent": side.words_sent,
            "faults": [ev.to_dict() for ev in side.fault_events],
        }, seg)
        results_q.put(("done", rank, payload))
    except BaseException as exc:  # noqa: BLE001 - reconstructed in parent
        attrs = {}
        for name in ("parked", "dead_rank", "phase", "sim_time",
                     "detected_by", "budget", "limit", "used"):
            if hasattr(exc, name):
                attrs[name] = getattr(exc, name)
        results_q.put(("error", rank, type(exc).__name__, str(exc), attrs,
                       traceback.format_exc()))
    finally:
        if hb is not None:
            hb.done(rank)
        results_q.close()
        results_q.join_thread()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

def _validate(nranks: int, copy_mode: str, sanitize: Optional[bool],
              faults: Optional[FaultPlan],
              max_sim_seconds: Optional[float]) -> None:
    if nranks < 1:
        raise CommError(f"nranks must be >= 1, got {nranks}")
    if copy_mode not in _COPY_MODES:
        raise CommError(
            f"unknown copy_mode {copy_mode!r}; expected one of {_COPY_MODES}"
        )
    if sanitize:
        raise ConfigError(
            "sanitize=True is simulated-only: the dynamic sanitizer "
            "instruments the in-process scheduler and cannot observe "
            "payloads across process boundaries; run backend='sim' to "
            "sanitize (REPRO_SANITIZE is ignored by backend='procs')"
        )
    if max_sim_seconds is not None:
        raise ConfigError(
            "max_sim_seconds is simulated-only (the procs backend has no "
            "modelled clock); use max_steps or op_timeout instead"
        )
    if faults is not None:
        for m in faults.messages:
            if m.rank is None:
                raise ConfigError(
                    "backend='procs' cannot honour a globally-indexed "
                    "MessageFault: real processes have no global send "
                    "ordinal.  Key the fault on its sender instead — "
                    "MessageFault(kind, index, rank=R) counts rank R's own "
                    "sends, identically on both backends"
                )
    if not procs_available():
        raise CommError(
            "backend='procs' requires the fork start method "
            "(rank programs are closures and cannot be pickled)"
        )


def _raise_worker_error(rank: int, cls_name: str, message: str,
                        attrs: Dict[str, Any], tb: str) -> None:
    cls = getattr(_errors, cls_name, None)
    if isinstance(cls, type) and issubclass(cls, _errors.ReproError):
        if cls is DeadlockError:
            raise DeadlockError(message, parked=attrs.get("parked"))
        exc = cls(message)
        for name, value in attrs.items():
            setattr(exc, name, value)
        raise exc
    raise CommError(
        f"procs backend: rank {rank} raised {cls_name}: {message}\n{tb}"
    )


def _scheduled_kill_for(faults: Optional[FaultPlan],
                        rank: int) -> Optional[int]:
    """op ordinal of the active scheduled kill for ``rank``, if any."""
    if faults is None:
        return None
    for k in faults.kills:
        if k.rank == rank and faults._active(k.attempts):
            return k.at_op
    return None


def _sweep_segments(prefix: str) -> List[str]:
    """Remove leftover /dev/shm segments of this run; return their names."""
    leaked = []
    for path in glob.glob(f"/dev/shm/{prefix}*"):
        leaked.append(os.path.basename(path))
        try:
            os.unlink(path)
        except OSError:
            pass
    return sorted(leaked)


_STALE_SEGMENT_RE = re.compile(r"^rpr([0-9a-f]+)g")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OverflowError, OSError):
        return True  # exists (or unknowable) — leave its segments alone
    return True


def _sweep_stale_segments() -> List[str]:
    """Remove ``rpr``-prefixed segments whose creating parent is gone.

    A *crashed* parent never reaches its own exit-path sweep, so its
    run's segments would accumulate in /dev/shm across runs.  Segment
    names embed the creating parent's pid (``rpr{pid:x}g…``); anything
    from a dead pid — other than our own — is fair game.  Returns the
    swept names so the caller can surface them in a CommWarning.
    """
    swept = []
    own = os.getpid()
    for path in glob.glob("/dev/shm/rpr*"):
        name = os.path.basename(path)
        m = _STALE_SEGMENT_RE.match(name)
        if m is None:
            continue
        try:
            pid = int(m.group(1), 16)
        except ValueError:  # pragma: no cover - regex guarantees hex
            continue
        if pid == own or _pid_alive(pid):
            continue
        try:
            os.unlink(path)
        except OSError:
            continue
        swept.append(name)
    return sorted(swept)


def run_spmd_procs(
    fn,
    nranks: int,
    *args: Any,
    machine: MachineModel = QDR_CLUSTER,
    seed: SeedLike = None,
    copy_mode: str = "readonly",
    sanitize: Optional[bool] = None,
    faults: Optional[FaultPlan] = None,
    max_steps: Optional[int] = None,
    max_sim_seconds: Optional[float] = None,
    op_timeout: Optional[float] = None,
    stall_timeout: Optional[float] = None,
    **kwargs: Any,
) -> SpmdResult:
    """Execute rank program ``fn`` on ``nranks`` worker *processes*.

    Same contract as :func:`~repro.parallel.engine.run_spmd` (which
    delegates here for ``backend="procs"``); see the module docstring
    for the semantic differences.  The returned
    :class:`~repro.parallel.trace.SpmdResult` has ``backend="procs"``,
    wall-clock timing accounts, and the per-rank worker ``pids``.

    ``stall_timeout`` bounds a *global* stall: when every live
    unfinished worker has sat blocked that long, the parent raises
    :class:`~repro.errors.DeadlockError` without waiting out the full
    per-op ``op_timeout``.  Defaults to
    ``min(op_timeout, DEFAULT_STALL_TIMEOUT)``.
    """
    import multiprocessing as mp

    _validate(nranks, copy_mode, sanitize, faults, max_sim_seconds)
    if sanitize is None and _env_sanitize():
        _warn_env_sanitize_ignored()
    if op_timeout is None:
        op_timeout = DEFAULT_OP_TIMEOUT
    if stall_timeout is None:
        stall_timeout = min(op_timeout, DEFAULT_STALL_TIMEOUT)

    stale = _sweep_stale_segments()
    if stale:
        warnings.warn(
            f"backend='procs' swept {len(stale)} stale shared-memory "
            "segment(s) left behind by dead processes: "
            + ", ".join(stale),
            CommWarning,
            stacklevel=2,
        )

    ctx = mp.get_context("fork")
    prefix = f"rpr{os.getpid():x}g{next(_RUN_COUNTER):x}"
    inboxes = [ctx.Queue() for _ in range(nranks)]
    results_q = ctx.Queue()
    hb = _Heartbeat(nranks)
    workers = [
        ctx.Process(
            target=_worker_entry,
            args=(r, nranks, fn, args, kwargs, machine, seed, prefix,
                  inboxes, results_q, faults, max_steps, op_timeout, hb),
            daemon=True,
        )
        for r in range(nranks)
    ]
    done: Dict[int, Dict[str, Any]] = {}
    error: Optional[Tuple] = None
    report = _LAST_RUN
    report.clear()
    report.update({"prefix": prefix, "leaked": None, "stale_swept": stale})
    try:
        for w in workers:
            w.start()
        deadline = time.monotonic() + op_timeout + 30.0 * max(1, nranks)
        while len(done) < nranks and error is None:
            try:
                msg = results_q.get(timeout=_POLL)
            except _queue.Empty:
                msg = None
            if msg is not None:
                if msg[0] == "done":
                    done[msg[1]] = _decode_payload(msg[2])
                else:
                    error = msg
                continue
            # no message: check for silently dead workers
            for r, w in enumerate(workers):
                if r in done or w.exitcode is None:
                    continue
                # drain once more — the result may have raced the exit
                try:
                    while True:
                        msg = results_q.get_nowait()
                        if msg[0] == "done":
                            done[msg[1]] = _decode_payload(msg[2])
                        else:
                            error = msg
                except _queue.Empty:
                    pass
                if r in done or error is not None:
                    break
                at_op = _scheduled_kill_for(faults, r)
                if w.exitcode == _KILLED_EXIT:
                    if at_op is not None:
                        where = f"at op {at_op}"
                    else:
                        where = (f"at op {int(hb.ops[r])} "
                                 "(random kill_rate draw)")
                    detail = (f"rank {r} was killed (injected fault) "
                              f"{where} and never returned")
                else:
                    detail = (f"rank {r} worker process died with exit code "
                              f"{w.exitcode} before returning a result")
                raise RankFailure(
                    "procs backend: " + detail, dead_rank=r, phase="",
                    sim_time=0.0,
                )
            if error is not None:
                continue
            # heartbeat supervision: when every live unfinished worker
            # has sat blocked for stall_timeout, no message can ever
            # arrive — declare the deadlock now instead of waiting out
            # the full per-op timeout
            pending = [r for r, w in enumerate(workers)
                       if r not in done and w.exitcode is None]
            if pending and all(hb.state[r] == _Heartbeat._BLOCKED
                               for r in pending):
                newest = max(hb.since[r] for r in pending)
                if time.monotonic() - newest > stall_timeout:
                    raise DeadlockError(
                        f"procs backend: all {len(pending)} unfinished "
                        f"rank(s) sat blocked for {stall_timeout:.6g}s "
                        "(heartbeat supervision); the run was terminated",
                        parked=[hb.parked_of(r) for r in pending],
                    )
            if time.monotonic() > deadline:
                raise DeadlockError(
                    f"procs backend: no worker produced a result within "
                    f"{op_timeout:.6g}s (+grace); the run was terminated",
                    parked=[],
                )
        if error is not None:
            _, rank, cls_name, message, attrs, tb = error
            _raise_worker_error(rank, cls_name, message, attrs, tb)
    finally:
        for w in workers:
            if w.is_alive():
                w.terminate()
        for w in workers:
            w.join(timeout=5.0)
        for q in inboxes:
            q.cancel_join_thread()
            q.close()
        results_q.cancel_join_thread()
        results_q.close()
        report["leaked"] = _sweep_segments(prefix)

    # ---- assemble the cross-rank result -------------------------------
    clocks = np.zeros(nranks)
    comp_time = np.zeros(nranks)
    comm_time = np.zeros(nranks)
    values: List[Any] = [None] * nranks
    pids: List[int] = [0] * nranks
    phases: Dict[str, PhaseBreakdown] = {}
    stats: Dict[str, CommStats] = {}
    messages = 0
    collectives = 0
    words_sent = 0.0
    fault_events: List[FaultEvent] = []
    for r in range(nranks):
        rec = done[r]
        values[r] = rec["value"]
        pids[r] = rec["pid"]
        clocks[r] = rec["clock"]
        comp_time[r] = rec["comp"]
        comm_time[r] = rec["comm"]
        messages += rec["messages"]
        collectives += rec["collectives"]
        words_sent += rec["words_sent"]
        for d in rec.get("faults", ()):
            fault_events.append(FaultEvent(**d))
        for name, (comp, comm) in rec["phase_acc"].items():
            ph = phases.get(name)
            if ph is None:
                ph = phases[name] = PhaseBreakdown.zeros(nranks)
            ph.comp[r] += comp
            ph.comm[r] += comm
        for name, d in rec["stats"].items():
            s = stats.get(name)
            if s is None:
                s = stats[name] = CommStats.zeros(nranks)
            s.add(CommStats.from_dict(d))
    return SpmdResult(
        values=values,
        clocks=clocks,
        comp_time=comp_time,
        comm_time=comm_time,
        phases=phases,
        messages=messages,
        collectives=collectives,
        words_sent=words_sent,
        comm_stats=CommStats.aggregate(stats, nranks),
        faults=fault_events,
        backend="procs",
        pids=pids,
    )
