"""Execution traces and results for the SPMD virtual machine.

The paper's Figures 7–8 break ScalaPart's runtime into components
(coarsening / embedding / partitioning) and, within embedding, into
computation vs communication.  The engine therefore accounts every
simulated second to a *phase* (a label the algorithm sets via
``comm.set_phase``) and within the phase to either computation or
communication.  :class:`SpmdResult` exposes those accounts.

Phases are hierarchical: a label like ``"embed/refresh"`` is a child of
``"embed"``, and :meth:`SpmdResult.phase` / :meth:`CommStats.phase`
aggregate a parent over all of its children, so coarse queries
("how much time did embedding take?") keep working when algorithms
label finer stages.

Communication observability
---------------------------
The paper's central claims are *communication* claims — ScalaPart wins
by replacing global collectives with blocked (stale-tolerant) β-refresh
and nearest-neighbour ghost exchange.  Clock seconds alone cannot
verify that, so the engine additionally maintains a :class:`CommStats`
ledger: per-rank, per-phase counts of point-to-point messages, words
moved, collective invocations by kind, and wait/idle seconds (time a
rank sat parked because of skew, beyond the modelled transfer cost).
:func:`trace_records` / :func:`write_trace_jsonl` serialise the full
account as JSON-lines so benchmarks and external tools can assert
communication-volume claims (e.g. the Fig. 8 block-size ablation)
instead of only timing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "PhaseBreakdown",
    "CommStats",
    "SpmdResult",
    "COLLECTIVE_KINDS",
    "GLOBAL_COLLECTIVES",
    "trace_records",
    "write_trace_jsonl",
    "read_trace_jsonl",
]

DEFAULT_PHASE = "main"

#: Separator of hierarchical phase labels ("embed/refresh" ⊂ "embed").
PHASE_SEP = "/"

#: Every collective kind the engine can complete.
COLLECTIVE_KINDS: Tuple[str, ...] = (
    "barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "scan", "split", "exchange",
)

#: Collectives that synchronise the whole communicator and move data
#: through a tree/butterfly — the operations the paper's blocked
#: β-refresh exists to amortise.  ``exchange`` is deliberately *not*
#: here: it is the nearest-neighbour halo pattern whose per-iteration
#: use is the point of the algorithm.
GLOBAL_COLLECTIVES: Tuple[str, ...] = (
    "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "scan",
)


def _subphases(phases: Dict[str, Any], name: str) -> List[str]:
    """Keys of ``phases`` equal to ``name`` or nested under it."""
    prefix = name + PHASE_SEP
    return [k for k in phases if k == name or k.startswith(prefix)]


@dataclass
class PhaseBreakdown:
    """Per-rank computation/communication seconds for one phase."""

    comp: np.ndarray
    comm: np.ndarray

    @property
    def elapsed(self) -> float:
        """Max over ranks of (comp + comm) within this phase."""
        total = self.comp + self.comm
        return float(total.max()) if total.size else 0.0

    @property
    def comp_elapsed(self) -> float:
        return float(self.comp.max()) if self.comp.size else 0.0

    @property
    def comm_elapsed(self) -> float:
        return float(self.comm.max()) if self.comm.size else 0.0

    @property
    def comm_fraction(self) -> float:
        """Fraction of this phase's elapsed time spent communicating
        (on the critical-path rank)."""
        e = self.elapsed
        if e <= 0:
            return 0.0
        i = int(np.argmax(self.comp + self.comm))
        return float(self.comm[i] / (self.comp[i] + self.comm[i]))

    @classmethod
    def zeros(cls, nranks: int) -> "PhaseBreakdown":
        return cls(np.zeros(nranks), np.zeros(nranks))

    @classmethod
    def merged(cls, parts: Sequence["PhaseBreakdown"], nranks: int) -> "PhaseBreakdown":
        """Element-wise sum of several breakdowns (phase aggregation)."""
        out = cls.zeros(nranks)
        for ph in parts:
            out.comp += ph.comp
            out.comm += ph.comm
        return out


@dataclass
class CommStats:
    """Per-rank communication counters for one phase (or a whole run).

    The engine increments these as the data moves; they are *measured*
    counts, not analytic estimates, which is what lets tests assert
    communication claims (one world allreduce bumps ``collectives
    ["allreduce"]`` by exactly one on every rank).

    Attributes
    ----------
    sends / recvs:
        point-to-point messages posted (per sender rank) and delivered
        (per receiver rank).
    words_sent / words_received:
        8-byte words moved point-to-point, attributed like the counts.
    collectives:
        kind -> per-rank participation counts; a collective over a
        sub-communicator only increments its members.
    collective_ops:
        kind -> number of completed collective *operations* (one world
        allreduce is one op regardless of P).
    collective_words:
        per-rank words contributed to collectives.
    wait_time:
        per-rank idle seconds: time spent parked waiting for peers
        beyond the modelled transfer cost of the operation itself.
    phases:
        per-phase child stats (empty on the per-phase entries).
    """

    nranks: int
    sends: np.ndarray
    recvs: np.ndarray
    words_sent: np.ndarray
    words_received: np.ndarray
    collectives: Dict[str, np.ndarray]
    collective_ops: Dict[str, int]
    collective_words: np.ndarray
    wait_time: np.ndarray
    phases: Dict[str, "CommStats"] = field(default_factory=dict)

    # -- construction ------------------------------------------------------
    @classmethod
    def zeros(cls, nranks: int) -> "CommStats":
        return cls(
            nranks=nranks,
            sends=np.zeros(nranks),
            recvs=np.zeros(nranks),
            words_sent=np.zeros(nranks),
            words_received=np.zeros(nranks),
            collectives={},
            collective_ops={},
            collective_words=np.zeros(nranks),
            wait_time=np.zeros(nranks),
        )

    def _coll_array(self, kind: str) -> np.ndarray:
        arr = self.collectives.get(kind)
        if arr is None:
            arr = self.collectives[kind] = np.zeros(self.nranks)
        return arr

    # -- mutation (engine-facing) -----------------------------------------
    def add(self, other: "CommStats") -> None:
        """Accumulate ``other`` into this record (in place)."""
        self.sends += other.sends
        self.recvs += other.recvs
        self.words_sent += other.words_sent
        self.words_received += other.words_received
        self.collective_words += other.collective_words
        self.wait_time += other.wait_time
        for kind, arr in other.collectives.items():
            self._coll_array(kind)[:] += arr
        for kind, nops in other.collective_ops.items():
            self.collective_ops[kind] = self.collective_ops.get(kind, 0) + nops

    @classmethod
    def aggregate(cls, phases: Dict[str, "CommStats"], nranks: int) -> "CommStats":
        """Run-level totals carrying the per-phase records as children."""
        out = cls.zeros(nranks)
        for stats in phases.values():
            out.add(stats)
        out.phases = dict(phases)
        return out

    # -- queries -----------------------------------------------------------
    def phase(self, name: str) -> "CommStats":
        """Stats of one phase, aggregated over its hierarchical children
        (zeros if the phase never communicated)."""
        keys = _subphases(self.phases, name)
        out = CommStats.zeros(self.nranks)
        for k in keys:
            out.add(self.phases[k])
        return out

    @property
    def total_messages(self) -> int:
        """Point-to-point messages posted, over all ranks."""
        return int(self.sends.sum())

    @property
    def total_words(self) -> float:
        """Words moved: point-to-point plus collective contributions."""
        return float(self.words_sent.sum() + self.collective_words.sum())

    @property
    def total_wait(self) -> float:
        return float(self.wait_time.sum())

    def collective_invocations(
        self, kinds: Optional[Iterable[str]] = None
    ) -> int:
        """Completed collective operations, summed over ``kinds``
        (default: the globally-synchronising kinds — excludes the
        nearest-neighbour ``exchange`` plus ``barrier``/``split``)."""
        if kinds is None:
            kinds = GLOBAL_COLLECTIVES
        return sum(self.collective_ops.get(k, 0) for k in kinds)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (used by the JSONL trace)."""
        return {
            "nranks": self.nranks,
            "sends": self.sends.tolist(),
            "recvs": self.recvs.tolist(),
            "words_sent": self.words_sent.tolist(),
            "words_received": self.words_received.tolist(),
            "collectives": {k: v.tolist() for k, v in sorted(self.collectives.items())},
            "collective_ops": dict(sorted(self.collective_ops.items())),
            "collective_words": self.collective_words.tolist(),
            "wait_time": self.wait_time.tolist(),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CommStats":
        nranks = int(d["nranks"])
        return cls(
            nranks=nranks,
            sends=np.asarray(d["sends"], dtype=np.float64),
            recvs=np.asarray(d["recvs"], dtype=np.float64),
            words_sent=np.asarray(d["words_sent"], dtype=np.float64),
            words_received=np.asarray(d["words_received"], dtype=np.float64),
            collectives={
                k: np.asarray(v, dtype=np.float64)
                for k, v in d.get("collectives", {}).items()
            },
            collective_ops={k: int(v) for k, v in d.get("collective_ops", {}).items()},
            collective_words=np.asarray(d["collective_words"], dtype=np.float64),
            wait_time=np.asarray(d["wait_time"], dtype=np.float64),
        )

    def summary(self) -> str:
        """One-line human-readable account."""
        colls = ", ".join(
            f"{k}={n}" for k, n in sorted(self.collective_ops.items()) if n
        )
        return (
            f"msgs={self.total_messages} words={self.total_words:.0f} "
            f"wait={self.total_wait * 1e3:.3f}ms colls[{colls}]"
        )


@dataclass
class SpmdResult:
    """Result of one :func:`~repro.parallel.engine.run_spmd` execution.

    Attributes
    ----------
    values:
        per-rank return values of the rank program.
    clocks:
        final simulated clock of every rank (seconds).
    comp_time / comm_time:
        per-rank split of the clock into computation and communication.
    phases:
        per-phase :class:`PhaseBreakdown` (phase labels are set by the
        algorithms via ``comm.set_phase``; hierarchical via ``/``).
    messages / collectives:
        counts of point-to-point messages and collective operations.
    words_sent:
        total 8-byte words moved by point-to-point messages.
    comm_stats:
        full per-rank, per-phase communication ledger (:class:`CommStats`).
    faults:
        injected :class:`~repro.parallel.faults.FaultEvent` records, in
        injection order (empty when the run had no fault plan).
    backend:
        which executor produced the result: ``"sim"`` (clocks are
        Hockney-model estimates) or ``"procs"`` (clocks are measured
        wall seconds on real worker processes).
    pids:
        per-rank OS process ids (``None`` on the simulated backend,
        where every rank shares the host process).
    """

    values: List[Any]
    clocks: np.ndarray
    comp_time: np.ndarray
    comm_time: np.ndarray
    phases: Dict[str, PhaseBreakdown]
    messages: int = 0
    collectives: int = 0
    words_sent: float = 0.0
    comm_stats: Optional[CommStats] = None
    faults: List[Any] = field(default_factory=list)
    backend: str = "sim"
    pids: Optional[List[int]] = None

    @property
    def nranks(self) -> int:
        return int(self.clocks.shape[0])

    @property
    def elapsed(self) -> float:
        """Simulated execution time: the maximum rank clock."""
        return float(self.clocks.max()) if self.clocks.size else 0.0

    @property
    def comm_fraction(self) -> float:
        """Communication share of the critical-path rank's time."""
        if self.clocks.size == 0 or self.elapsed == 0:
            return 0.0
        i = int(np.argmax(self.clocks))
        return float(self.comm_time[i] / self.clocks[i])

    def phase(self, name: str) -> PhaseBreakdown:
        """Breakdown for one phase, aggregated over hierarchical
        children (zeros if the phase never ran)."""
        keys = _subphases(self.phases, name)
        if len(keys) == 1:
            return self.phases[keys[0]]
        return PhaseBreakdown.merged([self.phases[k] for k in keys], self.nranks)

    def phase_elapsed(self, name: str) -> float:
        return self.phase(name).elapsed

    def phase_roots(self) -> List[str]:
        """Top-level phase names, in sorted order."""
        return sorted({k.split(PHASE_SEP, 1)[0] for k in self.phases})

    def phase_comm_stats(self, name: str) -> CommStats:
        """Comm counters of one phase (zeros when untracked)."""
        if self.comm_stats is None:
            return CommStats.zeros(self.nranks)
        return self.comm_stats.phase(name)

    def summary(self) -> str:
        """One-line human-readable account of the run."""
        parts = [
            f"P={self.nranks}",
            f"T={self.elapsed * 1e3:.3f}ms",
            f"comm={100 * self.comm_fraction:.1f}%",
            f"msgs={self.messages}",
            f"colls={self.collectives}",
        ]
        for name, ph in sorted(self.phases.items()):
            parts.append(f"{name}={ph.elapsed * 1e3:.3f}ms")
        return " ".join(parts)


# ----------------------------------------------------------------------
# JSONL trace export
# ----------------------------------------------------------------------

def trace_records(result: SpmdResult) -> Iterator[Dict[str, Any]]:
    """Serialise a run as a stream of JSON-able records.

    The stream starts with one ``run`` record (per-rank clock accounts
    and run-level communication totals), followed by one ``fault``
    record per injected fault (in injection order), then one ``phase``
    record per phase label in sorted order, each combining the phase's
    time breakdown with its communication counters.
    """
    stats = result.comm_stats
    run: Dict[str, Any] = {
        "record": "run",
        "backend": result.backend,
        "nranks": result.nranks,
        "elapsed": result.elapsed,
        "clocks": result.clocks.tolist(),
        "comp_time": result.comp_time.tolist(),
        "comm_time": result.comm_time.tolist(),
        "messages": result.messages,
        "collectives": result.collectives,
        "words_sent": result.words_sent,
    }
    if result.pids is not None:
        run["pids"] = list(result.pids)
    if result.faults:
        run["faults_injected"] = len(result.faults)
    if stats is not None:
        run["comm"] = stats.to_dict()
    yield run
    for ev in result.faults:
        yield {"record": "fault", **ev.to_dict()}
    for name in sorted(result.phases):
        ph = result.phases[name]
        rec: Dict[str, Any] = {
            "record": "phase",
            "phase": name,
            "comp": ph.comp.tolist(),
            "comm": ph.comm.tolist(),
            "elapsed": ph.elapsed,
            "comm_fraction": ph.comm_fraction,
        }
        if stats is not None and name in stats.phases:
            rec["comm_stats"] = stats.phases[name].to_dict()
        yield rec


def write_trace_jsonl(result: SpmdResult, dest: Union[str, IO[str]]) -> None:
    """Write the trace of ``result`` to ``dest`` (path or text file)."""
    if hasattr(dest, "write"):
        for rec in trace_records(result):
            dest.write(json.dumps(rec) + "\n")
    else:
        with open(dest, "w") as fh:
            write_trace_jsonl(result, fh)


def read_trace_jsonl(src: Union[str, IO[str]]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into its records (inverse of
    :func:`write_trace_jsonl`; ``comm``/``comm_stats`` payloads can be
    rebuilt with :meth:`CommStats.from_dict`)."""
    if hasattr(src, "read"):
        return [json.loads(line) for line in src if line.strip()]
    with open(src) as fh:
        return read_trace_jsonl(fh)
