"""Execution traces and results for the SPMD virtual machine.

The paper's Figures 7–8 break ScalaPart's runtime into components
(coarsening / embedding / partitioning) and, within embedding, into
computation vs communication.  The engine therefore accounts every
simulated second to a *phase* (a label the algorithm sets via
``comm.set_phase``) and within the phase to either computation or
communication.  :class:`SpmdResult` exposes those accounts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["PhaseBreakdown", "SpmdResult"]

DEFAULT_PHASE = "main"


@dataclass
class PhaseBreakdown:
    """Per-rank computation/communication seconds for one phase."""

    comp: np.ndarray
    comm: np.ndarray

    @property
    def elapsed(self) -> float:
        """Max over ranks of (comp + comm) within this phase."""
        total = self.comp + self.comm
        return float(total.max()) if total.size else 0.0

    @property
    def comp_elapsed(self) -> float:
        return float(self.comp.max()) if self.comp.size else 0.0

    @property
    def comm_elapsed(self) -> float:
        return float(self.comm.max()) if self.comm.size else 0.0

    @property
    def comm_fraction(self) -> float:
        """Fraction of this phase's elapsed time spent communicating
        (on the critical-path rank)."""
        e = self.elapsed
        if e <= 0:
            return 0.0
        i = int(np.argmax(self.comp + self.comm))
        return float(self.comm[i] / (self.comp[i] + self.comm[i]))


@dataclass
class SpmdResult:
    """Result of one :func:`~repro.parallel.engine.run_spmd` execution.

    Attributes
    ----------
    values:
        per-rank return values of the rank program.
    clocks:
        final simulated clock of every rank (seconds).
    comp_time / comm_time:
        per-rank split of the clock into computation and communication.
    phases:
        per-phase :class:`PhaseBreakdown` (phase labels are set by the
        algorithms via ``comm.set_phase``).
    messages / collectives:
        counts of point-to-point messages and collective operations.
    words_sent:
        total 8-byte words moved by point-to-point messages.
    """

    values: List[Any]
    clocks: np.ndarray
    comp_time: np.ndarray
    comm_time: np.ndarray
    phases: Dict[str, PhaseBreakdown]
    messages: int = 0
    collectives: int = 0
    words_sent: float = 0.0

    @property
    def nranks(self) -> int:
        return int(self.clocks.shape[0])

    @property
    def elapsed(self) -> float:
        """Simulated execution time: the maximum rank clock."""
        return float(self.clocks.max()) if self.clocks.size else 0.0

    @property
    def comm_fraction(self) -> float:
        """Communication share of the critical-path rank's time."""
        if self.clocks.size == 0 or self.elapsed == 0:
            return 0.0
        i = int(np.argmax(self.clocks))
        return float(self.comm_time[i] / self.clocks[i])

    def phase(self, name: str) -> PhaseBreakdown:
        """Breakdown for one phase (zeros if the phase never ran)."""
        if name in self.phases:
            return self.phases[name]
        z = np.zeros(self.nranks)
        return PhaseBreakdown(z, z.copy())

    def phase_elapsed(self, name: str) -> float:
        return self.phase(name).elapsed

    def summary(self) -> str:
        """One-line human-readable account of the run."""
        parts = [
            f"P={self.nranks}",
            f"T={self.elapsed * 1e3:.3f}ms",
            f"comm={100 * self.comm_fraction:.1f}%",
            f"msgs={self.messages}",
            f"colls={self.collectives}",
        ]
        for name, ph in sorted(self.phases.items()):
            parts.append(f"{name}={ph.elapsed * 1e3:.3f}ms")
        return " ".join(parts)
