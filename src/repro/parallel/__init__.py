"""SPMD virtual machine: coroutine ranks, MPI-like API, Hockney costs."""

from .checkpoint import (
    CheckpointKey,
    CheckpointPolicy,
    CheckpointStore,
    graph_content_hash,
)
from .engine import Comm, payload_words, run_spmd
from .faults import (
    FaultEvent,
    FaultPlan,
    KillRank,
    MessageFault,
    corrupt_payload,
)
from .machine import MachineModel, QDR_CLUSTER, ZERO_COST
from .procs import procs_available, run_spmd_procs
from .topology import ProcessGrid, grid_dims
from .trace import (
    CommStats,
    GLOBAL_COLLECTIVES,
    PhaseBreakdown,
    SpmdResult,
    read_trace_jsonl,
    trace_records,
    write_trace_jsonl,
)

__all__ = [
    "CheckpointKey",
    "CheckpointPolicy",
    "CheckpointStore",
    "graph_content_hash",
    "Comm",
    "payload_words",
    "run_spmd",
    "FaultEvent",
    "FaultPlan",
    "KillRank",
    "MessageFault",
    "corrupt_payload",
    "MachineModel",
    "QDR_CLUSTER",
    "ZERO_COST",
    "procs_available",
    "run_spmd_procs",
    "ProcessGrid",
    "grid_dims",
    "PhaseBreakdown",
    "CommStats",
    "GLOBAL_COLLECTIVES",
    "SpmdResult",
    "read_trace_jsonl",
    "trace_records",
    "write_trace_jsonl",
]
