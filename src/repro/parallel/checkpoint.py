"""Durable stage checkpoints for elastic recovery.

The recovery ladder in :func:`~repro.core.parallel.run_parallel`
(retry → shrink → fallback) recomputes from scratch on every attempt —
for the paper's pipeline that means re-coarsening and re-embedding even
when the failure hit the final refinement sweep.  This module makes
completed stage artifacts *durable* so an attempt (or a whole new
process, after a crash) can resume from the last persisted stage:

* :class:`CheckpointStore` — a directory of atomically written,
  crc32-verified ``.npz`` artifact files, keyed by
  ``(graph content hash, config fingerprint, seed, stage)``;
* :class:`CheckpointPolicy` — what the run should do with the store
  (save completed stages / resume from persisted ones);
* :class:`CheckpointContext` — one run's view of the policy: the
  resolved key per stage, the rank-0 save hook threaded into rank
  programs, and the strictly validated resume probe.

Durability contract
-------------------
``save`` writes to a same-directory temp file, flushes + fsyncs it,
atomically renames it over the final name, then fsyncs the directory —
a reader never observes a half-written artifact under POSIX rename
semantics.  ``load`` re-verifies everything it cannot afford to trust:
the npz must parse (``allow_pickle=False``), the embedded metadata must
match the requested key field-for-field, and every payload array must
match its recorded crc32.  Any mismatch raises
:class:`~repro.errors.CheckpointError`; resume paths treat that as
"no checkpoint" and fall through to a full recompute — a poisoned
checkpoint directory can cost time, never correctness.  Resumed cuts
are additionally re-validated against the method's ``balance_bound``
by the caller, exactly like freshly computed ones.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
import zlib
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import CheckpointError, CheckpointWarning, ConfigError
from ..rng import DEFAULT_SEED

__all__ = [
    "CheckpointKey",
    "CheckpointStore",
    "CheckpointPolicy",
    "CheckpointContext",
    "as_policy",
    "graph_content_hash",
    "config_fingerprint",
]

#: on-disk artifact format; bumped on incompatible layout changes
_FORMAT = 1

#: metadata entry name inside the npz (JSON, utf-8, as a uint8 array —
#: keeps the whole artifact loadable with ``allow_pickle=False``)
_META = "__meta__"


# ----------------------------------------------------------------------
# keying
# ----------------------------------------------------------------------

def _normalize_seed(seed: Any) -> int:
    """The run seed as the stable integer the checkpoint key records."""
    if seed is None:
        return DEFAULT_SEED
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    raise ConfigError(
        "checkpointing needs a reproducible run seed (an int or None); "
        f"got {type(seed).__name__} — Generator/SeedSequence seeds are "
        "stateful and cannot key a durable artifact"
    )


def graph_content_hash(graph) -> str:
    """Content hash of a CSR graph (structure + weights, order-exact)."""
    h = sha256()
    for arr in (graph.indptr, graph.indices, graph.ewgt, graph.vwgt):
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()[:20]


def config_fingerprint(method: str, config, k: int = 2,
                       cost_model=None) -> str:
    """Fingerprint of everything besides graph/seed that shapes an
    artifact: the method, its full config, ``k`` and the cost model.
    Over-keying is deliberate — a stale hit costs a recompute, a false
    hit would silently change results."""
    parts: Dict[str, Any] = {"method": method, "k": int(k)}
    if config is not None:
        import dataclasses

        parts["config"] = dataclasses.asdict(config)
    if cost_model == "unit":
        cost_model = None  # the default cost model, however it is spelled
    if cost_model is not None:
        if isinstance(cost_model, str):
            parts["cost_model"] = cost_model
        else:
            arr = np.ascontiguousarray(np.asarray(cost_model))
            parts["cost_model"] = sha256(arr.tobytes()).hexdigest()[:16]
    blob = json.dumps(parts, sort_keys=True, default=str)
    return sha256(blob.encode()).hexdigest()[:20]


@dataclass(frozen=True)
class CheckpointKey:
    """Identity of one durable artifact."""

    graph_hash: str
    fingerprint: str
    seed: int
    stage: str

    def digest(self) -> str:
        blob = f"{self.graph_hash}|{self.fingerprint}|{self.seed}|{self.stage}"
        return sha256(blob.encode()).hexdigest()[:20]

    def filename(self) -> str:
        return f"{self.stage}-{self.digest()}.npz"


# ----------------------------------------------------------------------
# artifact (de)serialisation
# ----------------------------------------------------------------------

def _artifact_payload(artifact) -> Tuple[Dict[str, np.ndarray],
                                         Dict[str, Any]]:
    """Split a checkpointable artifact into arrays + JSON metadata
    (stage-type knowledge lives with the artifact types; imported
    lazily to keep :mod:`repro.core` ↛ :mod:`repro.parallel` acyclic
    at import time)."""
    from ..core.stages import artifact_payload

    return artifact_payload(artifact)


def _artifact_restore(stage: str, arrays: Dict[str, np.ndarray],
                      meta: Dict[str, Any]):
    """Rebuild the typed artifact from its persisted payload."""
    from ..core.stages import artifact_from_arrays

    return artifact_from_arrays(stage, arrays, meta)


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------

class CheckpointStore:
    """A directory of durable, crc32-verified stage artifacts.

    Concurrency-safe against readers (atomic rename) and idempotent
    against writers: a re-save of the same key overwrites the previous
    file, which also self-heals a corrupted artifact on the next
    successful run.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore({str(self.root)!r})"

    def path_for(self, key: CheckpointKey) -> Path:
        return self.root / key.filename()

    # -- writing --------------------------------------------------------
    def save(self, key: CheckpointKey, artifact) -> Path:
        """Durably persist ``artifact`` under ``key``; returns the path.

        tmp-write + fsync + rename + directory fsync: a concurrent
        reader sees either the old artifact or the complete new one,
        never a torn write.
        """
        arrays, extra = _artifact_payload(artifact)
        meta = {
            "format": _FORMAT,
            "graph_hash": key.graph_hash,
            "fingerprint": key.fingerprint,
            "seed": key.seed,
            "stage": key.stage,
            "crc": {name: zlib.crc32(arr.tobytes())
                    for name, arr in arrays.items()},
            **extra,
        }
        meta_arr = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        final = self.path_for(key)
        fd, tmp = tempfile.mkstemp(dir=str(self.root),
                                   prefix=f".{key.stage}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez(f, **{_META: meta_arr}, **arrays)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, final)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        dirfd = os.open(str(self.root), os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)
        return final

    # -- reading --------------------------------------------------------
    def load(self, key: CheckpointKey):
        """Load and strictly validate the artifact stored under ``key``.

        Raises :class:`~repro.errors.CheckpointError` naming the precise
        reason when the file is absent, unreadable, keyed differently,
        or fails its crc32 — callers demote every one of those to a full
        recompute.
        """
        path = self.path_for(key)
        if not path.exists():
            raise CheckpointError(f"no checkpoint at {path}")
        try:
            with np.load(path, allow_pickle=False) as npz:
                if _META not in npz.files:
                    raise CheckpointError(
                        f"checkpoint {path.name} has no metadata record"
                    )
                meta = json.loads(bytes(npz[_META].tobytes()).decode())
                arrays = {name: npz[name] for name in npz.files
                          if name != _META}
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint {path.name} is unreadable "
                f"({type(exc).__name__}: {exc})"
            ) from exc
        if meta.get("format") != _FORMAT:
            raise CheckpointError(
                f"checkpoint {path.name} has format "
                f"{meta.get('format')!r}, expected {_FORMAT}"
            )
        for fld, want in (("graph_hash", key.graph_hash),
                          ("fingerprint", key.fingerprint),
                          ("seed", key.seed),
                          ("stage", key.stage)):
            if meta.get(fld) != want:
                raise CheckpointError(
                    f"checkpoint {path.name} key mismatch on {fld}: "
                    f"stored {meta.get(fld)!r}, expected {want!r}"
                )
        crcs = meta.get("crc") or {}
        if sorted(crcs) != sorted(arrays):
            raise CheckpointError(
                f"checkpoint {path.name} array set mismatch: stored "
                f"{sorted(arrays)}, recorded {sorted(crcs)}"
            )
        for name, arr in arrays.items():
            if zlib.crc32(np.ascontiguousarray(arr).tobytes()) != crcs[name]:
                raise CheckpointError(
                    f"checkpoint {path.name} failed crc32 verification "
                    f"on array {name!r} (truncated or corrupt payload)"
                )
        return _artifact_restore(key.stage, arrays, meta)

    def try_load(self, key: CheckpointKey):
        """``(artifact, None)`` on a verified hit; ``(None, reason)``
        when a file exists but is unusable (also warned, so operators
        can clean a poisoned directory); ``(None, None)`` when absent."""
        if not self.path_for(key).exists():
            return None, None
        try:
            return self.load(key), None
        except CheckpointError as exc:
            reason = str(exc)
            warnings.warn(
                f"ignoring checkpoint: {reason}; falling back to a full "
                "recompute",
                CheckpointWarning,
                stacklevel=2,
            )
            return None, reason


# ----------------------------------------------------------------------
# policy + per-run context
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CheckpointPolicy:
    """What :func:`~repro.core.parallel.run_parallel` does with a store."""

    store: CheckpointStore
    save: bool = True
    resume: bool = True


def as_policy(obj) -> Optional[CheckpointPolicy]:
    """Normalise the ``checkpoint=`` argument: a directory path, a
    :class:`CheckpointStore` or a :class:`CheckpointPolicy` (or None)."""
    if obj is None:
        return None
    if isinstance(obj, CheckpointPolicy):
        return obj
    if isinstance(obj, CheckpointStore):
        return CheckpointPolicy(store=obj)
    if isinstance(obj, (str, os.PathLike)):
        return CheckpointPolicy(store=CheckpointStore(obj))
    raise ConfigError(
        "checkpoint must be a directory path, CheckpointStore or "
        f"CheckpointPolicy, got {type(obj).__name__}"
    )


@dataclass
class CheckpointContext:
    """One run's resolved checkpoint identity.

    Built once per :func:`~repro.core.parallel.run_parallel` call from
    the *caller-level* method and seed, so every rung of the recovery
    ladder (retries, shrunk rank counts, cross-process restarts of the
    same invocation) resolves the same keys.  ``ignored`` accumulates
    the reasons any unusable artifacts were skipped; the driver surfaces
    it in ``extras``.
    """

    policy: CheckpointPolicy
    method: str
    graph_hash: str
    fingerprint: str
    seed: int
    ignored: List[str] = field(default_factory=list)

    @classmethod
    def for_run(cls, policy: CheckpointPolicy, graph, spec, config,
                seed, k: int = 2, cost_model=None) -> "CheckpointContext":
        return cls(
            policy=policy,
            method=spec.name,
            graph_hash=graph_content_hash(graph),
            fingerprint=config_fingerprint(spec.name, config, k=k,
                                           cost_model=cost_model),
            seed=_normalize_seed(seed),
        )

    def key_for(self, stage: str) -> CheckpointKey:
        return CheckpointKey(graph_hash=self.graph_hash,
                             fingerprint=self.fingerprint,
                             seed=self.seed, stage=stage)

    def can_save(self, spec) -> bool:
        return bool(self.policy.save and spec.checkpoint_stages
                    and spec.name == self.method)

    def can_resume(self, spec) -> bool:
        return bool(self.policy.resume and spec.checkpoint_stages
                    and spec.resume_method is not None
                    and spec.name == self.method)

    def save_artifact(self, stage: str, artifact) -> None:
        """Rank-0 save hook threaded into rank programs.  A durability
        failure is reported (CheckpointWarning), never fatal — the run's
        answer does not depend on the checkpoint landing."""
        try:
            self.policy.store.save(self.key_for(stage), artifact)
        except OSError as exc:
            warnings.warn(
                f"could not persist {stage!r} checkpoint: "
                f"{type(exc).__name__}: {exc}",
                CheckpointWarning,
                stacklevel=2,
            )

    def load_stage(self, stage: str):
        """Verified artifact for ``stage``, or None (recording why)."""
        artifact, reason = self.policy.store.try_load(self.key_for(stage))
        if reason is not None:
            self.ignored.append(reason)
        return artifact
