"""Process-grid topology helpers.

The fixed-lattice embedding arranges P processors in a ``√P × √P``
grid (paper §3); the multilevel scheme maps ``G^k`` onto a ``p × q``
grid and refines it to ``2p × 2q`` per level.  This module provides the
rank ↔ (row, col) arithmetic, neighbour enumeration and the factoring
of an arbitrary P into the most-square grid, all independent of the
engine so they can be unit-tested in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigError

__all__ = ["ProcessGrid", "grid_dims"]


def grid_dims(p: int) -> Tuple[int, int]:
    """Factor ``p`` into the most-square ``(rows, cols)`` with rows ≤ cols.

    Perfect squares give √P × √P exactly as the paper assumes; other
    counts give the nearest rectangle (e.g. 8 → 2×4, 32 → 4×8).
    """
    if p < 1:
        raise ConfigError(f"process count must be >= 1, got {p}")
    r = int(p**0.5)
    while r > 1 and p % r != 0:
        r -= 1
    return r, p // r


@dataclass(frozen=True)
class ProcessGrid:
    """A ``rows × cols`` arrangement of ranks (row-major)."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigError("grid dimensions must be positive")

    @classmethod
    def square_ish(cls, p: int) -> "ProcessGrid":
        return cls(*grid_dims(p))

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def rank_of(self, i: int, j: int) -> int:
        """Rank of grid position (row i, col j)."""
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise ConfigError(f"grid position ({i},{j}) out of range")
        return i * self.cols + j

    def pos_of(self, rank: int) -> Tuple[int, int]:
        if not (0 <= rank < self.size):
            raise ConfigError(f"rank {rank} out of range for {self}")
        return divmod(rank, self.cols)

    def neighbors4(self, rank: int) -> List[int]:
        """North/south/west/east neighbours (non-periodic)."""
        i, j = self.pos_of(rank)
        out = []
        for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            ii, jj = i + di, j + dj
            if 0 <= ii < self.rows and 0 <= jj < self.cols:
                out.append(self.rank_of(ii, jj))
        return out

    def neighbors8(self, rank: int) -> List[int]:
        """All ≤8 surrounding neighbours (non-periodic)."""
        i, j = self.pos_of(rank)
        out = []
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                if di == 0 and dj == 0:
                    continue
                ii, jj = i + di, j + dj
                if 0 <= ii < self.rows and 0 <= jj < self.cols:
                    out.append(self.rank_of(ii, jj))
        return out

    def refine(self) -> "ProcessGrid":
        """The ``2 rows × 2 cols`` grid of the next-finer level (paper's
        2×2 splitting of each lattice sub-domain)."""
        return ProcessGrid(self.rows * 2, self.cols * 2)

    def parent_position(self, i: int, j: int) -> Tuple[int, int]:
        """Position on the coarser (halved) grid that owns (i, j)."""
        return i // 2, j // 2
