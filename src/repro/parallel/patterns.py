"""Reusable SPMD communication patterns.

These are generator helpers to be ``yield from``-ed inside rank
programs.  They exist for one reason: the engine defensively copies
payloads per receiving rank, so a naive ``allgather`` of P slices
creates P² array copies — 10⁶ objects at P=1024.  The helpers below
assemble at a root and redistribute one :class:`~repro.graph.distributed.Shared`
reference instead, while charging *exactly* the collective cost the
textbook algorithm would incur (see each function's accounting note).
"""

from __future__ import annotations

import math
from typing import Any, Optional

import numpy as np

from ..graph.distributed import Shared
from .engine import Comm, payload_words

__all__ = ["allgather_concat", "gather_to_root", "share_from_root"]


def allgather_concat(comm: Comm, local: np.ndarray):
    """Allgather of per-rank array slices, returned concatenated (rank
    order), identical on every rank.

    Accounting: one recursive-doubling allgather moving ``(p−1)·m``
    words costs ``t_s·log p + t_w·(p−1)·m``.  We post the gather with
    ``words=0`` (latency tree only) and put the full volume on the
    broadcast, scaled by ``1/log p`` so the engine's tree formula
    reproduces the allgather volume exactly.
    """
    local = np.ascontiguousarray(local)
    m = payload_words(local)
    parts = yield from comm.gather(local, root=0, words=0)
    full = None
    if comm.rank == 0:
        full = np.concatenate([np.atleast_1d(x) for x in parts]) if parts else local
    p = comm.size
    lg = max(1.0, math.log2(p)) if p > 1 else 1.0
    volume = (p - 1) * m / lg
    shared = yield from comm.bcast(Shared(full), root=0, words=volume)
    return shared.value


def gather_to_root(comm: Comm, local: Any, words: Optional[float] = None):
    """Plain gather returning the list at root (None elsewhere); thin
    wrapper kept for symmetry and call-site readability."""
    out = yield from comm.gather(local, root=0, words=words)
    return out


def share_from_root(comm: Comm, value: Any, words: float = 1.0):
    """Broadcast an *immutable* object by reference (no per-rank copy).

    ``words`` must be the honest payload size a real broadcast of this
    data would move — it is the only cost the engine sees.
    """
    shared = yield from comm.bcast(
        Shared(value) if comm.rank == 0 else None, root=0, words=words
    )
    return shared.value
