"""Machine cost model for the SPMD virtual machine.

The paper's experiments ran on a 128-node cluster of 2.66 GHz Nehalem
processors with a QDR InfiniBand interconnect, P = 1–1,024 MPI ranks.
This module models that machine with the classic Hockney / latency-
bandwidth parameters the paper itself uses in §3.1 (``t_s`` message
latency, ``t_w`` per-word transfer time) plus a per-work-unit
computation rate.

Simulated time semantics
------------------------
* Every virtual rank owns a clock (seconds).  Computation advances it by
  ``work · alpha`` where *work* is an abstract operation count charged
  explicitly by the algorithms (e.g. edges touched during a matching
  sweep).  The benchmark harness reports ``max`` over rank clocks as the
  execution time, matching how MPI codes time with barriers around the
  region of interest.
* Communication costs use standard tree/butterfly collective formulas
  parameterised on (t_s, t_w) — see :meth:`MachineModel.collective_cost`.
* One *word* is 8 bytes (a float64).

The default constants land absolute times in the same order of
magnitude as the paper's cluster, but EXPERIMENTS.md compares *shape*
(ratios, crossovers), which is insensitive to the absolute scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import ConfigError

__all__ = ["MachineModel", "QDR_CLUSTER", "ZERO_COST"]


@dataclass(frozen=True)
class MachineModel:
    """Latency/bandwidth/compute-rate parameters of the virtual machine.

    Parameters
    ----------
    alpha:
        seconds per unit of charged computational work.  Work units are
        "elementary graph operations" (an edge relaxation, a force pair,
        a comparison); 5e-9 s/unit models a core sustaining ~200 M
        irregular graph ops/s — typical for Nehalem-era memory-bound
        graph kernels.
    t_s:
        per-message latency in seconds (MPI short-message latency).
    t_w:
        per-word (8-byte) transfer time in seconds.
    """

    alpha: float = 5.0e-9
    t_s: float = 4.0e-6
    t_w: float = 2.5e-9

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.t_s < 0 or self.t_w < 0:
            raise ConfigError("machine parameters must be nonnegative")

    # -- elementary costs -------------------------------------------------
    def compute_cost(self, work: float) -> float:
        """Time for ``work`` units of local computation."""
        if work < 0:
            raise ConfigError(f"negative work charge: {work}")
        return work * self.alpha

    def message_cost(self, words: float) -> float:
        """Point-to-point message of ``words`` 8-byte words."""
        return self.t_s + self.t_w * max(0.0, words)

    def collective_cost(self, kind: str, p: int, words: float) -> float:
        """Cost of one collective over ``p`` ranks.

        ``words`` is the per-rank contribution size (so an allgather
        moves ``p * words`` in total).  Formulas are the standard
        log-tree / recursive-doubling / pairwise-exchange costs found in
        Grama et al. and used by the paper's §3.1 analysis.
        """
        if p <= 0:
            raise ConfigError("collective over empty group")
        words = max(0.0, words)
        lg = math.log2(p) if p > 1 else 0.0
        if kind == "barrier":
            return self.t_s * lg
        if kind in ("bcast", "reduce", "allreduce", "scan"):
            # binomial tree / butterfly: log p stages of the full payload
            return lg * (self.t_s + self.t_w * words)
        if kind in ("gather", "scatter"):
            # binomial tree, data doubling per stage: ts*log p + tw*(p-1)*m
            return self.t_s * lg + self.t_w * max(0, p - 1) * words
        if kind in ("allgather", "reduce_scatter"):
            # recursive doubling: ts*log p + tw*(p-1)*m
            return self.t_s * lg + self.t_w * max(0, p - 1) * words
        if kind == "alltoall":
            # pairwise exchange: (p-1) rounds of m words
            return max(0, p - 1) * (self.t_s + self.t_w * words)
        if kind == "split":
            # communicator creation ~ an allgather of one word
            return self.t_s * lg + self.t_w * max(0, p - 1)
        raise ConfigError(f"unknown collective kind {kind!r}")

    def exchange_cost(self, nneighbors: int, words_out: float, words_in: float) -> float:
        """Neighbour (halo) exchange: simultaneous pairwise messages.

        Modelled as one latency per neighbour plus the serialised volume
        through this rank's network port in the larger direction.
        """
        return max(0, nneighbors) * self.t_s + self.t_w * max(words_out, words_in)

    def with_params(self, **kw) -> "MachineModel":
        """Copy with some parameters replaced."""
        return replace(self, **kw)


#: Defaults tuned to the paper's QDR InfiniBand Nehalem cluster.
QDR_CLUSTER = MachineModel()

#: A machine where communication and computation are free — useful in
#: unit tests that only check data movement correctness.
ZERO_COST = MachineModel(alpha=0.0, t_s=0.0, t_w=0.0)
