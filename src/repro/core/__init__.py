"""ScalaPart core: configuration, results, sequential and parallel drivers."""

from .complexity import ComplexityModel
from .config import ScalaPartConfig
from .parallel import (
    dist_scalapart,
    parmetis_parallel,
    rcb_parallel,
    scalapart_parallel,
    scotch_parallel,
    sp_pg7_nl_parallel,
)
from .recursive import KWayResult, kway_cut, kway_imbalance, recursive_bisection
from ..results import PartitionResult
from .scalapart import scalapart, sp_pg7_nl

__all__ = [
    "ComplexityModel",
    "ScalaPartConfig",
    "PartitionResult",
    "KWayResult",
    "kway_cut",
    "kway_imbalance",
    "recursive_bisection",
    "scalapart",
    "sp_pg7_nl",
    "dist_scalapart",
    "parmetis_parallel",
    "rcb_parallel",
    "scalapart_parallel",
    "scotch_parallel",
    "sp_pg7_nl_parallel",
]
