"""ScalaPart core: configuration, results, registry, stages, drivers."""

from .complexity import ComplexityModel
from .config import ScalaPartConfig
from .cost import (
    ArrayCost,
    CostModel,
    DegreeCost,
    UnitCost,
    cost_model_names,
    get_cost_model,
    resolve_costs,
)
from .kway import (
    hierarchical_kway,
    kway_geometric,
    parse_hierarchy,
    partition_kway,
)
from .methods import METHOD_REGISTRY, MethodSpec, get_method, register_method
from .parallel import (
    dist_scalapart,
    parmetis_parallel,
    rcb_parallel,
    run_parallel,
    scalapart_parallel,
    scotch_parallel,
    sp_pg7_nl_parallel,
)
from .recursive import (
    KWayResult,
    kway_cut,
    kway_cut_weight,
    kway_imbalance,
    recursive_bisection,
)
from ..graph.partition import KWayPartition
from ..results import PartitionResult
from .scalapart import scalapart, sp_pg7_nl
from .stages import (
    EMBED_STAGE,
    GEOMETRIC_STAGE,
    KWAY_GEOMETRIC_STAGE,
    KWAY_REFINE_STAGE,
    STRIP_REFINE_STAGE,
    EmbeddingArtifact,
    GeometricArtifact,
    KWayArtifact,
    RefineArtifact,
    StageArtifact,
)

__all__ = [
    "ComplexityModel",
    "ScalaPartConfig",
    "PartitionResult",
    "KWayPartition",
    "KWayResult",
    "kway_cut",
    "kway_cut_weight",
    "kway_imbalance",
    "recursive_bisection",
    "partition_kway",
    "hierarchical_kway",
    "kway_geometric",
    "parse_hierarchy",
    "CostModel",
    "UnitCost",
    "DegreeCost",
    "ArrayCost",
    "cost_model_names",
    "get_cost_model",
    "resolve_costs",
    "scalapart",
    "sp_pg7_nl",
    "dist_scalapart",
    "run_parallel",
    "parmetis_parallel",
    "rcb_parallel",
    "scalapart_parallel",
    "scotch_parallel",
    "sp_pg7_nl_parallel",
    "METHOD_REGISTRY",
    "MethodSpec",
    "get_method",
    "register_method",
    "StageArtifact",
    "EmbeddingArtifact",
    "GeometricArtifact",
    "KWayArtifact",
    "RefineArtifact",
    "EMBED_STAGE",
    "GEOMETRIC_STAGE",
    "KWAY_GEOMETRIC_STAGE",
    "KWAY_REFINE_STAGE",
    "STRIP_REFINE_STAGE",
]
