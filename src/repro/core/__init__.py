"""ScalaPart core: configuration, results, registry, stages, drivers."""

from .complexity import ComplexityModel
from .config import ScalaPartConfig
from .methods import METHOD_REGISTRY, MethodSpec, get_method, register_method
from .parallel import (
    dist_scalapart,
    parmetis_parallel,
    rcb_parallel,
    run_parallel,
    scalapart_parallel,
    scotch_parallel,
    sp_pg7_nl_parallel,
)
from .recursive import KWayResult, kway_cut, kway_imbalance, recursive_bisection
from ..results import PartitionResult
from .scalapart import scalapart, sp_pg7_nl
from .stages import (
    EMBED_STAGE,
    GEOMETRIC_STAGE,
    STRIP_REFINE_STAGE,
    EmbeddingArtifact,
    GeometricArtifact,
    RefineArtifact,
    StageArtifact,
)

__all__ = [
    "ComplexityModel",
    "ScalaPartConfig",
    "PartitionResult",
    "KWayResult",
    "kway_cut",
    "kway_imbalance",
    "recursive_bisection",
    "scalapart",
    "sp_pg7_nl",
    "dist_scalapart",
    "run_parallel",
    "parmetis_parallel",
    "rcb_parallel",
    "scalapart_parallel",
    "scotch_parallel",
    "sp_pg7_nl_parallel",
    "METHOD_REGISTRY",
    "MethodSpec",
    "get_method",
    "register_method",
    "StageArtifact",
    "EmbeddingArtifact",
    "GeometricArtifact",
    "RefineArtifact",
    "EMBED_STAGE",
    "GEOMETRIC_STAGE",
    "STRIP_REFINE_STAGE",
]
