"""Pluggable per-vertex cost models for k-way balance.

The paper balances parts by vertex weight, but large-scale consumers
(hierarchical node x core partitioners, heterogeneous simulations)
balance against whatever quantity actually loads a processor: vertex
weight, work proportional to incident edges, or a user-measured cost
array.  A :class:`CostModel` maps a graph to one float64 cost per
vertex; every k-way balance metric in the library (``kway_imbalance``,
the refinement balance constraint, the geometric assignment targets)
is computed against that array.

The default :class:`UnitCost` charges one cost unit per unit of vertex
weight — on an unweighted graph that is one unit per vertex, and on a
weighted graph the balance follows ``graph.vwgt`` (so weighted graphs
are *never* balanced by raw vertex counts).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import ConfigError
from ..graph.csr import CSRGraph

__all__ = [
    "ArrayCost",
    "CostModel",
    "DegreeCost",
    "UnitCost",
    "cost_model_names",
    "get_cost_model",
    "resolve_costs",
]


class CostModel:
    """Maps a graph to a positive per-vertex cost array.

    Subclasses override :meth:`vertex_costs`; ``name`` identifies the
    model in CLI flags, bench records, and cache keys.
    """

    name: str = "custom"

    def vertex_costs(self, graph: CSRGraph) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class UnitCost(CostModel):
    """One cost unit per unit of vertex weight (the default).

    Equals per-vertex counts on unweighted graphs; on weighted graphs
    the balance target follows ``graph.vwgt``.
    """

    name = "unit"

    def vertex_costs(self, graph: CSRGraph) -> np.ndarray:
        return graph.vwgt


class DegreeCost(CostModel):
    """Vertex weight plus incident edge weight.

    Models a solver whose per-vertex work is compute (vwgt) plus halo
    traffic proportional to the weighted degree.
    """

    name = "degree"

    def vertex_costs(self, graph: CSRGraph) -> np.ndarray:
        return graph.vwgt + graph.weighted_degrees()


class ArrayCost(CostModel):
    """User-supplied per-vertex cost array (measured load, etc.)."""

    name = "array"

    def __init__(self, costs: Sequence[float]):
        arr = np.ascontiguousarray(costs, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigError(
                f"cost array must be 1-D, got shape {arr.shape}"
            )
        if arr.size and (not np.isfinite(arr).all() or arr.min() < 0):
            raise ConfigError("cost array entries must be finite and >= 0")
        self._costs = arr

    def vertex_costs(self, graph: CSRGraph) -> np.ndarray:
        if self._costs.shape != (graph.num_vertices,):
            raise ConfigError(
                f"cost array has {self._costs.size} entries for a graph "
                f"with {graph.num_vertices} vertices"
            )
        return self._costs


COST_MODELS: Dict[str, CostModel] = {
    UnitCost.name: UnitCost(),
    DegreeCost.name: DegreeCost(),
}

CostModelLike = Union[None, str, CostModel, Sequence[float], np.ndarray]


def cost_model_names() -> List[str]:
    """Registered model names, in registration order (CLI choices)."""
    return list(COST_MODELS)


def get_cost_model(model: CostModelLike) -> CostModel:
    """Coerce ``model`` to a :class:`CostModel`.

    Accepts ``None`` (-> :class:`UnitCost`), a registered name, a
    :class:`CostModel` instance, or a per-vertex array (-> wrapped in
    :class:`ArrayCost`).
    """
    if model is None:
        return COST_MODELS[UnitCost.name]
    if isinstance(model, CostModel):
        return model
    if isinstance(model, str):
        try:
            return COST_MODELS[model]
        except KeyError:
            raise ConfigError(
                f"unknown cost model {model!r}; "
                f"choose from {cost_model_names()}"
            ) from None
    return ArrayCost(model)


def resolve_costs(
    graph: CSRGraph, model: CostModelLike = None
) -> Optional[np.ndarray]:
    """Per-vertex costs for ``graph`` under ``model``.

    Returns ``None`` for the default unit model — the metric layer
    treats that as "balance by ``graph.vwgt``" without materialising a
    second copy of the weight array.
    """
    cm = get_cost_model(model)
    if isinstance(cm, UnitCost):
        return None
    costs = np.ascontiguousarray(cm.vertex_costs(graph), dtype=np.float64)
    if costs.shape != (graph.num_vertices,):
        raise ConfigError(
            f"cost model {cm.name!r} returned shape {costs.shape} for a "
            f"graph with {graph.num_vertices} vertices"
        )
    return costs
