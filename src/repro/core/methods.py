"""Central method registry: one place that knows every partitioner.

Every consumer used to hardcode its own method list — the bench runner
kept a ``METHODS`` dict plus a nine-branch ``_execute`` if-chain, the
CLI kept ``_METHODS`` and ``_TRACE_METHODS``, and each ``*_parallel``
wrapper repeated the same engine boilerplate.  Following the
KaHIP/KaPPa design of a single configurable driver over interchangeable
components, this module is now the sole source of truth:

* :class:`MethodSpec` describes one method — display/CLI names, whether
  it consumes coordinates, its sequential entry point (normalised
  signature), its distributed rank program, the engine seed salt, and
  its balance contract;
* :func:`register_method` is a decorator that registers the decorated
  sequential entry point (all nine methods below are registered this
  way);
* ``METHOD_REGISTRY`` is consumed by
  :func:`repro.core.parallel.run_parallel`, the bench runner, the CLI
  and :func:`repro.core.recursive.recursive_bisection` — adding a
  method here makes it appear everywhere at once.

Sequential entry points share the signature
``fn(graph, coords=None, *, config=None, seed=None) -> PartitionResult``
(coordinate sources may be raw arrays or
:class:`~repro.core.stages.EmbeddingArtifact` objects); distributed
rank programs share
``fn(comm, graph, *, coords=None, config=None, seed=None,
max_imbalance=None)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..baselines.multilevel import parmetis_like, scotch_like
from ..baselines.parallel_ml import (
    dist_parmetis_like,
    dist_rcb_bisect,
    dist_scotch_like,
)
from ..baselines.rcb import rcb_bisect
from ..baselines.spectral import spectral_bisect
from ..errors import ConfigError
from ..geometric.gmt import GMTResult, g7, g7_nl, g30
from ..results import PartitionResult
from .scalapart import scalapart, sp_pg7_nl
from .stages import (
    EMBED_STAGE,
    GEOMETRIC_STAGE,
    KWAY_GEOMETRIC_STAGE,
    STRIP_REFINE_STAGE,
    as_coords,
)

__all__ = [
    "MethodSpec",
    "METHOD_REGISTRY",
    "register_method",
    "get_method",
    "method_names",
    "cli_choices",
    "distributed_methods",
    "distributed_entry_points",
    "methods_table",
    "recovery_ladder",
]


@dataclass(frozen=True)
class MethodSpec:
    """Everything the drivers need to know about one method."""

    #: canonical display name ("ScalaPart", "Pt-Scotch-like", ...)
    name: str
    #: lowercase CLI / argparse spelling ("scalapart", "scotch", ...)
    cli_name: str
    #: does the method consume vertex coordinates?
    needs_coords: bool = False
    #: ``fn(graph, coords=None, *, config=None, seed=None)``
    sequential: Optional[Callable] = None
    #: rank program ``fn(comm, graph, *, coords=None, config=None,
    #: seed=None, max_imbalance=None)``
    distributed: Optional[Callable] = None
    #: salt mixed into the engine seed by ``run_parallel`` (``None`` for
    #: deterministic methods, which always run the engine with seed 0)
    seed_salt: Optional[int] = None
    #: imbalance target handed to the distributed program's refinement
    default_max_imbalance: Optional[float] = None
    #: post-run guarantee: ``run_parallel`` validates packaged results
    #: against this bound when declared
    balance_bound: Optional[float] = None
    #: does the method take a :class:`ScalaPartConfig`?
    accepts_config: bool = False
    #: native k-way method: its entry points accept ``k`` and
    #: ``cost_model`` keywords and label vertices in ``[0, k)``
    #: (bisection methods reach k > 2 via recursive bisection instead)
    kway: bool = False
    #: stages whose artifacts the rank program persists when a
    #: checkpoint context is threaded in (the program must accept a
    #: ``checkpoint=`` keyword); empty = not checkpointable
    checkpoint_stages: Tuple[str, ...] = ()
    #: registered method that re-enters the pipeline downstream of a
    #: persisted embed artifact (fed via ``coords=``) on resume
    resume_method: Optional[str] = None
    #: one-line description (README method table, ``--help`` text)
    description: str = ""

    @property
    def traceable(self) -> bool:
        """Can the method run on the SPMD engine (``repro trace``)?"""
        return self.distributed is not None


#: the single registry every consumer reads
METHOD_REGISTRY: Dict[str, MethodSpec] = {}

#: cli_name / lowercase-name -> canonical name
_ALIASES: Dict[str, str] = {}


def register_method(
    name: str,
    *,
    cli_name: Optional[str] = None,
    needs_coords: bool = False,
    distributed: Optional[Callable] = None,
    seed_salt: Optional[int] = None,
    default_max_imbalance: Optional[float] = None,
    balance_bound: Optional[float] = None,
    accepts_config: bool = False,
    kway: bool = False,
    checkpoint_stages: Tuple[str, ...] = (),
    resume_method: Optional[str] = None,
    description: str = "",
):
    """Decorator: register the decorated sequential entry point.

    The decorated function becomes ``spec.sequential`` and is returned
    unchanged, so it stays directly callable.
    """

    def deco(fn: Callable) -> Callable:
        spec = MethodSpec(
            name=name,
            cli_name=cli_name or name.lower(),
            needs_coords=needs_coords,
            sequential=fn,
            distributed=distributed,
            seed_salt=seed_salt,
            default_max_imbalance=default_max_imbalance,
            balance_bound=balance_bound,
            accepts_config=accepts_config,
            kway=kway,
            checkpoint_stages=checkpoint_stages,
            resume_method=resume_method,
            description=description,
        )
        if spec.name in METHOD_REGISTRY:
            raise ConfigError(f"method {spec.name!r} registered twice")
        if spec.cli_name in _ALIASES:
            raise ConfigError(f"CLI name {spec.cli_name!r} registered twice")
        METHOD_REGISTRY[spec.name] = spec
        _ALIASES[spec.cli_name] = spec.name
        _ALIASES.setdefault(spec.name.lower(), spec.name)
        return fn

    return deco


def get_method(name: str) -> MethodSpec:
    """Look a method up by canonical or CLI name (case-insensitive)."""
    if name in METHOD_REGISTRY:
        return METHOD_REGISTRY[name]
    canonical = _ALIASES.get(str(name).lower())
    if canonical is None:
        raise ConfigError(
            f"unknown method {name!r}; known: {sorted(METHOD_REGISTRY)}"
        )
    return METHOD_REGISTRY[canonical]


def method_names(traceable_only: bool = False) -> List[str]:
    """Canonical names, registration order."""
    return [s.name for s in METHOD_REGISTRY.values()
            if s.traceable or not traceable_only]


def cli_choices(traceable_only: bool = False) -> List[str]:
    """Sorted CLI names (the argparse ``choices`` lists)."""
    return sorted(s.cli_name for s in METHOD_REGISTRY.values()
                  if s.traceable or not traceable_only)


def distributed_methods() -> List[MethodSpec]:
    """Specs with a distributed rank program, registration order.

    The cross-backend differential harness iterates this list: every
    method here must produce bit-identical partitions on
    ``backend="sim"`` and ``backend="procs"``.
    """
    return [s for s in METHOD_REGISTRY.values() if s.distributed is not None]


def distributed_entry_points() -> List[Tuple[str, Callable]]:
    """``(method name, rank program)`` for every registered method with
    a distributed path — the roots the whole-program protocol checker
    (:mod:`repro.analysis.protocol`, ``repro lint --registry``)
    model-checks for schedule divergence and unmatched point-to-point
    traffic before a procs run can deadlock on them.
    """
    return [(s.name, s.distributed) for s in distributed_methods()]


def recovery_ladder(spec: MethodSpec) -> List[Tuple[str, MethodSpec]]:
    """Degradation ladder for a method whose engine runs keep failing.

    Consumed by :func:`repro.core.parallel.run_parallel` after retries
    and rank-shrinking are exhausted.  Each entry is ``(mode, spec)``
    with ``mode`` ``"dist"`` (run the spec's rank program on the
    engine, faults still applied) or ``"seq"`` (run its sequential
    entry point — outside the fault domain, so it can only fail on its
    own merits).  The order follows the quality ladder of the registry:
    distributed ScalaPart first (skipped when it is the failing method
    itself), then sequential ScalaPart, then sequential RCB as the
    geometry-only last resort.
    """
    ladder: List[Tuple[str, MethodSpec]] = []
    scala = METHOD_REGISTRY.get("ScalaPart")
    if scala is not None:
        if scala.distributed is not None and scala.name != spec.name:
            ladder.append(("dist", scala))
        if scala.sequential is not None:
            ladder.append(("seq", scala))
    rcb = METHOD_REGISTRY.get("RCB")
    if rcb is not None and rcb.sequential is not None:
        ladder.append(("seq", rcb))
    return ladder


def methods_table() -> str:
    """The README method table, regenerated from the registry."""
    rows = ["| method | CLI name | coords | parallel | description |",
            "|---|---|---|---|---|"]
    for s in METHOD_REGISTRY.values():
        rows.append(
            f"| {s.name} | `{s.cli_name}` "
            f"| {'yes' if s.needs_coords else '—'} "
            f"| {'yes' if s.traceable else '—'} "
            f"| {s.description} |"
        )
    return "\n".join(rows)


# ----------------------------------------------------------------------
# distributed rank programs (normalised signatures)
# ----------------------------------------------------------------------

def _dist_scalapart(comm, graph, *, coords=None, config=None, seed=None,
                    max_imbalance=None, checkpoint=None):
    """Full distributed ScalaPart: the three shared stages in order.

    ``checkpoint`` is a
    :class:`~repro.parallel.checkpoint.CheckpointContext`; rank 0
    persists the completed embedding so a later attempt (or process)
    can resume from stages 3–4.  The save is pure rank-local I/O — no
    communication happens on the rank-0-only branch.
    """
    emb = yield from EMBED_STAGE.run_dist(comm, graph, None, config, seed)
    if checkpoint is not None and comm.rank == 0:
        checkpoint.save_artifact("embed", emb)
    geo = yield from GEOMETRIC_STAGE.run_dist(comm, graph, emb, config, seed)
    side, info = yield from STRIP_REFINE_STAGE.run_dist(comm, graph, geo,
                                                        config, seed)
    return side, {**info, **emb.info, "pos": emb.coords}


def _dist_sp_pg7_nl(comm, graph, *, coords=None, config=None, seed=None,
                    max_imbalance=None):
    """Partition-only component: stages 3–4 on given coordinates."""
    geo = yield from GEOMETRIC_STAGE.run_dist(comm, graph, coords,
                                              config, seed)
    return (yield from STRIP_REFINE_STAGE.run_dist(comm, graph, geo,
                                                   config, seed))


def _dist_parmetis(comm, graph, *, coords=None, config=None, seed=None,
                   max_imbalance=None):
    return (yield from dist_parmetis_like(
        comm, graph, seed=seed,
        max_imbalance=0.05 if max_imbalance is None else max_imbalance))


def _dist_scotch(comm, graph, *, coords=None, config=None, seed=None,
                 max_imbalance=None):
    return (yield from dist_scotch_like(
        comm, graph, seed=seed,
        max_imbalance=0.05 if max_imbalance is None else max_imbalance))


def _dist_rcb(comm, graph, *, coords=None, config=None, seed=None,
              max_imbalance=None):
    comm.set_phase("partition")
    return (yield from dist_rcb_bisect(comm, graph, as_coords(coords)))


def _dist_kway_geometric(comm, graph, *, coords=None, config=None, seed=None,
                         max_imbalance=None, k=2, cost_model=None,
                         checkpoint=None):
    """Direct k-way: embed (unless coords given), K-cell assignment,
    root-side greedy boundary refinement."""
    from .cost import resolve_costs

    costs = resolve_costs(graph, cost_model)
    info = {}
    if coords is None:
        emb = yield from EMBED_STAGE.run_dist(comm, graph, None, config, seed)
        if checkpoint is not None and comm.rank == 0:
            checkpoint.save_artifact("embed", emb)
        info = {**emb.info, "pos": emb.coords}
        coords = emb
    parts, kinfo = yield from KWAY_GEOMETRIC_STAGE.run_dist(
        comm, graph, coords, config, seed,
        k=k, costs=costs, max_imbalance=max_imbalance,
    )
    return parts, {**info, **kinfo}


# ----------------------------------------------------------------------
# registrations (sequential entry points with normalised signatures)
# ----------------------------------------------------------------------

def _wrap_gmt(res: GMTResult, name: str, seconds: float) -> PartitionResult:
    return PartitionResult(
        bisection=res.bisection,
        method=name,
        seconds=seconds,
        stage_seconds={"partition": seconds},
        extras={"geometric_cut": res.cut, "sdist": res.sdist,
                "candidates": res.candidates},
    )


@register_method(
    "ScalaPart", distributed=_dist_scalapart, seed_salt=1,
    accepts_config=True,
    checkpoint_stages=("embed",), resume_method="SP-PG7-NL",
    description="full pipeline: coarsen, lattice-embed, circles, strip FM",
)
def _scalapart(graph, coords=None, *, config=None, seed=None):
    return scalapart(graph, config, seed=seed)


@register_method(
    "SP-PG7-NL", cli_name="sp-pg7-nl", needs_coords=True,
    distributed=_dist_sp_pg7_nl, seed_salt=2, accepts_config=True,
    description="stages 3–4 only: great circles + strip FM on given coords",
)
def _sp_pg7_nl(graph, coords=None, *, config=None, seed=None):
    return sp_pg7_nl(graph, coords, config, seed=seed)


@register_method(
    "ParMetis-like", cli_name="parmetis", distributed=_dist_parmetis,
    seed_salt=3, default_max_imbalance=0.05, balance_bound=0.15,
    description="speed-tuned multilevel bisection (greedy refinement)",
)
def _parmetis(graph, coords=None, *, config=None, seed=None):
    return parmetis_like(graph, seed=seed)


@register_method(
    "Pt-Scotch-like", cli_name="scotch", distributed=_dist_scotch,
    seed_salt=4, default_max_imbalance=0.05, balance_bound=0.15,
    description="quality-tuned multilevel bisection (band FM)",
)
def _scotch(graph, coords=None, *, config=None, seed=None):
    return scotch_like(graph, seed=seed)


@register_method(
    "RCB", cli_name="rcb", needs_coords=True, distributed=_dist_rcb,
    balance_bound=0.05,
    description="recursive coordinate bisection (Zoltan-style median cut)",
)
def _rcb(graph, coords=None, *, config=None, seed=None):
    return rcb_bisect(graph, as_coords(coords), seed=seed)


@register_method(
    "Spectral", cli_name="spectral",
    description="Fiedler-vector bisection (classical reference)",
)
def _spectral(graph, coords=None, *, config=None, seed=None):
    return spectral_bisect(graph, seed=seed)


@register_method(
    "G30", cli_name="g30", needs_coords=True,
    description="sequential GMT, 23 circles + 7 lines (2 centerpoints)",
)
def _g30(graph, coords=None, *, config=None, seed=None):
    t0 = time.perf_counter()
    res = g30(graph, as_coords(coords), seed=seed)
    return _wrap_gmt(res, "G30", time.perf_counter() - t0)


@register_method(
    "G7", cli_name="g7", needs_coords=True,
    description="sequential GMT, 5 circles + 2 lines (1 centerpoint)",
)
def _g7(graph, coords=None, *, config=None, seed=None):
    t0 = time.perf_counter()
    res = g7(graph, as_coords(coords), seed=seed)
    return _wrap_gmt(res, "G7", time.perf_counter() - t0)


@register_method(
    "G7-NL", cli_name="g7-nl", needs_coords=True,
    description="G7 without line separators (what ScalaPart parallelises)",
)
def _g7_nl(graph, coords=None, *, config=None, seed=None):
    t0 = time.perf_counter()
    res = g7_nl(graph, as_coords(coords), seed=seed)
    return _wrap_gmt(res, "G7-NL", time.perf_counter() - t0)


@register_method(
    "KWay-Geometric", cli_name="kway-geometric",
    distributed=_dist_kway_geometric, seed_salt=5,
    default_max_imbalance=0.05, balance_bound=0.10,
    accepts_config=True, kway=True,
    checkpoint_stages=("embed",), resume_method="KWay-Geometric",
    description="direct k-way: K centroid cells on the sphere + boundary refine",
)
def _kway_geometric(graph, coords=None, *, config=None, seed=None, k=2,
                    cost_model=None, max_imbalance=None):
    from .kway import kway_geometric

    return kway_geometric(graph, coords, config=config, seed=seed, k=k,
                          cost_model=cost_model, max_imbalance=max_imbalance)
