"""Analytic communication-complexity model of ScalaPart (paper §3.1).

The paper derives the total communication cost of the multilevel
embedding, summed over levels ``i = 1..k`` with ``P^i ≈ P^{i-1}/4``:

.. math::

    t_s (\\log P)^2 + t_w P (\\log P)^2 + t_w \\tilde N \\log P
    + t_w \\sqrt{N / P}

(latency of the per-level collectives; the β-table reduction volume;
the far-edge allgather volume; the per-iteration boundary exchange),
plus ``3 (t_s + t_w c \\log P)`` for the geometric partitioning — "3
reductions with short messages".

This module evaluates those closed forms so the test suite can check
the *simulated* machine against the paper's *analysis*: the measured
embedding communication of :mod:`repro.embed.parallel` should scale no
worse than the model predicts (constants differ; shapes must agree).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..parallel.machine import MachineModel, QDR_CLUSTER

__all__ = ["ComplexityModel"]


@dataclass(frozen=True)
class ComplexityModel:
    """Closed-form §3.1 costs for a given machine and problem."""

    machine: MachineModel = QDR_CLUSTER
    #: iterations per level (the paper's small constant c0)
    c0: float = 16.0
    #: far-edge fraction: Ñ = far_fraction · sqrt(N/P) per the paper's
    #: "ñ is typically much smaller than the number of boundary points"
    far_fraction: float = 0.25
    #: number of great-circle separators (the short-message length c)
    ncircles: float = 5.0

    def embedding_comm(self, n: int, p: int) -> float:
        """Total embedding communication time (paper §3.1 sum)."""
        if p <= 1:
            return 0.0
        m = self.machine
        lg = math.log2(p)
        boundary = math.sqrt(n / p)
        n_tilde = self.far_fraction * boundary
        return (
            m.t_s * lg * lg
            + m.t_w * p * lg * lg
            + m.t_w * n_tilde * lg
            + self.c0 * m.t_w * boundary
        )

    def partition_comm(self, p: int) -> float:
        """Geometric partitioning: 3 reductions of c-length messages."""
        if p <= 1:
            return 0.0
        m = self.machine
        return 3.0 * (m.t_s + m.t_w * self.ncircles * math.log2(p))

    def total_comm(self, n: int, p: int) -> float:
        return self.embedding_comm(n, p) + self.partition_comm(p)

    def dominant_term(self, n: int, p: int) -> str:
        """Which §3.1 term dominates at (n, p) — the paper expects the
        ``t_s log²P`` latency term at scale."""
        if p <= 1:
            return "none"
        m = self.machine
        lg = math.log2(p)
        terms = {
            "ts_log2": m.t_s * lg * lg,
            "tw_P_log2": m.t_w * p * lg * lg,
            "tw_far": m.t_w * self.far_fraction * math.sqrt(n / p) * lg,
            "tw_boundary": self.c0 * m.t_w * math.sqrt(n / p),
        }
        return max(terms, key=terms.get)
