"""The three ScalaPart pipeline stages as reusable objects.

Paper §3's pipeline — multilevel embedding, geometric partitioning,
strip refinement — used to be written out twice: once sequentially in
:mod:`repro.core.scalapart` and once as rank programs in
:mod:`repro.core.parallel`.  This module expresses each stage as one
object with both faces:

* :meth:`Stage.run` — the sequential form, returning a typed
  :class:`StageArtifact` with wall-clock ``seconds``;
* :meth:`Stage.run_dist` — the distributed form, a rank-program
  generator for the SPMD engine (timing comes from the engine's phase
  accounting, so distributed artifacts carry ``seconds == 0``).

Both drivers consume the *same* stage instances (``EMBED_STAGE``,
``GEOMETRIC_STAGE``, ``STRIP_REFINE_STAGE``), so there is exactly one
place that encodes what a stage needs and what it produces.

Artifacts are re-feedable: an :class:`EmbeddingArtifact` captured from
one run can be handed to any coordinate-consuming method (SP-PG7-NL,
RCB, G30/G7/G7-NL) in place of a raw coordinate array — the Figure-4
comparison runs both partitioners on *identical* coordinates without
recomputing the embedding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..coarsen.matching import get_matcher
from ..embed.multilevel import multilevel_embedding
from ..embed.parallel import dist_multilevel_embedding
from ..errors import GeometryError
from ..geometric.gmt import geometric_partition
from ..geometric.kway import dist_kway_geometric, kway_geometric_assign
from ..geometric.parallel import dist_geometric, dist_strip_refine
from ..graph.csr import CSRGraph
from ..graph.partition import Bisection, KWayPartition
from ..parallel.engine import Comm
from ..refine.kway import kway_refine
from ..refine.strip import strip_refine
from ..rng import SeedLike, derive_seed
from .config import ScalaPartConfig

__all__ = [
    "StageArtifact",
    "EmbeddingArtifact",
    "GeometricArtifact",
    "KWayArtifact",
    "RefineArtifact",
    "as_coords",
    "artifact_payload",
    "artifact_from_arrays",
    "Stage",
    "EmbedStage",
    "GeometricStage",
    "KWayGeometricStage",
    "KWayRefineStage",
    "StripRefineStage",
    "EMBED_STAGE",
    "GEOMETRIC_STAGE",
    "KWAY_GEOMETRIC_STAGE",
    "KWAY_REFINE_STAGE",
    "STRIP_REFINE_STAGE",
    "SCALAPART_STAGES",
    "PARTITION_STAGES",
    "KWAY_STAGES",
]


# ----------------------------------------------------------------------
# artifacts
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StageArtifact:
    """Typed output of one pipeline stage.

    ``seconds`` is the sequential wall-clock cost of producing the
    artifact (0 for distributed runs, where the engine's phase
    accounting is authoritative); ``info`` carries the stage's
    diagnostics in the same keys the drivers expose via
    ``PartitionResult.extras``.
    """

    stage: str
    seconds: float = 0.0
    info: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class EmbeddingArtifact(StageArtifact):
    """Planar coordinates for every vertex (the embed stage's output)."""

    coords: np.ndarray = None  # (n, 2)


@dataclass(frozen=True)
class GeometricArtifact(StageArtifact):
    """Winning separator of the geometric stage, plus its signed
    distances (what the strip stage refines within)."""

    bisection: Bisection = None
    sdist: np.ndarray = None
    cut: float = 0.0


@dataclass(frozen=True)
class RefineArtifact(StageArtifact):
    """Final bisection after strip-restricted FM."""

    bisection: Bisection = None


@dataclass(frozen=True)
class KWayArtifact(StageArtifact):
    """K-way labelling from the direct geometric assignment or the
    greedy boundary refinement."""

    partition: KWayPartition = None


def as_coords(obj) -> np.ndarray:
    """Coerce a coordinate source to an ``(n, 2)`` array.

    Accepts a raw array or an :class:`EmbeddingArtifact` — the hook
    that lets one captured embedding feed several methods.
    """
    if obj is None:
        raise GeometryError("this method needs coordinates (or an "
                            "EmbeddingArtifact), got None")
    if isinstance(obj, EmbeddingArtifact):
        return obj.coords
    if isinstance(obj, StageArtifact):
        raise GeometryError(
            f"expected an EmbeddingArtifact, got a {obj.stage!r} artifact"
        )
    return np.asarray(obj, dtype=np.float64)


def _json_safe_info(info: Dict[str, Any]) -> Dict[str, Any]:
    """Best-effort JSON projection of a stage's info dict (diagnostics
    only — nothing downstream recomputes from it)."""
    out: Dict[str, Any] = {}
    for key, value in info.items():
        if isinstance(value, (str, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (int, np.integer)):
            out[key] = int(value)
        elif isinstance(value, (float, np.floating)):
            out[key] = float(value)
    return out


def artifact_payload(artifact: StageArtifact):
    """Split a checkpointable artifact into ``(arrays, json_meta)``.

    The durable-checkpoint subsystem
    (:mod:`repro.parallel.checkpoint`) persists the arrays crc-verified
    in an npz and the metadata as JSON.  Only the embed stage persists
    today — the downstream stages are cheap relative to coarsening +
    embedding, and their artifacts embed live ``Bisection`` views that
    would pin the graph.
    """
    from ..errors import ConfigError

    if isinstance(artifact, EmbeddingArtifact):
        coords = np.ascontiguousarray(artifact.coords, dtype=np.float64)
        return {"coords": coords}, {"info": _json_safe_info(artifact.info)}
    raise ConfigError(
        f"stage {getattr(artifact, 'stage', '?')!r} artifacts are not "
        "checkpointable (only the embed stage persists today)"
    )


def artifact_from_arrays(stage: str, arrays: Dict[str, np.ndarray],
                         meta: Dict[str, Any]) -> StageArtifact:
    """Rebuild the typed artifact from its persisted payload (inverse
    of :func:`artifact_payload`); raises
    :class:`~repro.errors.CheckpointError` on a malformed payload."""
    from ..errors import CheckpointError

    if stage == "embed":
        coords = arrays.get("coords")
        if coords is None or coords.ndim != 2 or coords.shape[1] != 2:
            raise CheckpointError(
                f"embed artifact payload is malformed: expected an (n, 2) "
                f"coords array, got "
                f"{None if coords is None else coords.shape}"
            )
        return EmbeddingArtifact(stage="embed",
                                 info=dict(meta.get("info") or {}),
                                 coords=coords)
    raise CheckpointError(f"unknown checkpoint stage {stage!r}")


# ----------------------------------------------------------------------
# stages
# ----------------------------------------------------------------------

class Stage:
    """One pipeline stage with a sequential and a distributed face.

    ``upstream`` is the previous stage's artifact (``None`` for the
    first stage).  ``run`` returns a :class:`StageArtifact`;
    ``run_dist`` is a rank-program generator whose return value feeds
    the next stage's ``run_dist`` (the final stage returns the
    ``(side, info)`` pair the host packagers expect).
    """

    name: str = "stage"

    def run(self, graph: CSRGraph, upstream,
            config: Optional[ScalaPartConfig] = None,
            seed: SeedLike = None) -> StageArtifact:
        raise NotImplementedError

    def run_dist(self, comm: Comm, graph: CSRGraph, upstream,
                 config: Optional[ScalaPartConfig] = None,
                 seed: SeedLike = None):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class EmbedStage(Stage):
    """Stages 1–2: coarsen + multilevel fixed-lattice embedding."""

    name = "embed"

    def run(self, graph, upstream=None, config=None, seed=None):
        cfg = config or ScalaPartConfig()
        t0 = time.perf_counter()
        emb = multilevel_embedding(
            graph,
            seed=derive_seed(seed, 0xE3BED0),
            c=cfg.c,
            coarsest_size=cfg.coarsest_size,
            coarsest_iters=cfg.coarsest_iters,
            smooth_iters=cfg.smooth_iters,
            jitter=cfg.jitter,
            repulsion="lattice",
            matcher=get_matcher(cfg.matching),
        )
        return EmbeddingArtifact(
            stage=self.name,
            seconds=time.perf_counter() - t0,
            info={"levels": emb.num_levels},
            coords=emb.pos,
        )

    def run_dist(self, comm, graph, upstream=None, config=None, seed=None):
        cfg = config or ScalaPartConfig()
        pos, emb_info = yield from dist_multilevel_embedding(
            comm,
            graph,
            coarsest_size=cfg.coarsest_size,
            coarsest_iters=cfg.coarsest_iters,
            smooth_iters=cfg.smooth_iters,
            block_size=cfg.block_size,
            c=cfg.c,
            jitter=cfg.jitter,
            seed=derive_seed(seed, 0xE3BED0),
        )
        return EmbeddingArtifact(stage=self.name, info=emb_info, coords=pos)


class GeometricStage(Stage):
    """Stage 3: great-circle separators on the embedded graph.

    ``upstream`` is the coordinate source — an
    :class:`EmbeddingArtifact` or a raw ``(n, 2)`` array (the SP-PG7-NL
    entry point, where coordinates already exist).
    """

    name = "partition"

    def run(self, graph, upstream, config=None, seed=None):
        cfg = config or ScalaPartConfig()
        coords = as_coords(upstream)
        t0 = time.perf_counter()
        gmt = geometric_partition(
            graph,
            coords,
            ncircles=cfg.ncircles,
            nlines=0,
            ncenterpoints=1,
            seed=derive_seed(seed, 0x5B),
            sample_size=cfg.centerpoint_sample,
        )
        return GeometricArtifact(
            stage=self.name,
            seconds=time.perf_counter() - t0,
            info={"geometric_cut": gmt.cut},
            bisection=gmt.bisection,
            sdist=gmt.sdist,
            cut=gmt.cut,
        )

    def run_dist(self, comm, graph, upstream, config=None, seed=None):
        cfg = config or ScalaPartConfig()
        coords = as_coords(upstream)
        comm.set_phase(self.name)
        return (yield from dist_geometric(comm, graph, coords,
                                          config=cfg, seed=seed))


class StripRefineStage(Stage):
    """Stage 4: FM restricted to the strip around the winning circle."""

    name = "refine"

    def run(self, graph, upstream: GeometricArtifact, config=None, seed=None):
        cfg = config or ScalaPartConfig()
        t0 = time.perf_counter()
        refined = strip_refine(
            upstream.bisection,
            upstream.sdist,
            factor=cfg.strip_factor,
            max_imbalance=cfg.max_imbalance,
            max_passes=cfg.strip_passes,
        )
        return RefineArtifact(
            stage=self.name,
            seconds=time.perf_counter() - t0,
            info={
                "strip_size": refined.strip_size,
                "strip_factor": refined.strip_factor,
            },
            bisection=refined.bisection,
        )

    def run_dist(self, comm, graph, upstream, config=None, seed=None):
        cfg = config or ScalaPartConfig()
        return (yield from dist_strip_refine(comm, graph, upstream,
                                             config=cfg))


class KWayGeometricStage(Stage):
    """Stage 3, K-way form: split the embedding into K centroid cells.

    Generalises :class:`GeometricStage` from one great circle to a
    balanced spherical K-means assignment.  ``upstream`` is the
    coordinate source; ``k`` and the resolved cost array arrive as
    keyword arguments from the driver.
    """

    name = "partition"

    def run(self, graph, upstream, config=None, seed=None, *,
            k: int = 2, costs=None):
        cfg = config or ScalaPartConfig()
        coords = as_coords(upstream)
        t0 = time.perf_counter()
        parts, info = kway_geometric_assign(
            graph,
            coords,
            k,
            costs=costs,
            seed=derive_seed(seed, 0x5B),
            lloyd_iters=cfg.kway_lloyd_iters,
            balance_iters=cfg.kway_balance_iters,
        )
        return KWayArtifact(
            stage=self.name,
            seconds=time.perf_counter() - t0,
            info=info,
            partition=KWayPartition(graph, parts, k, costs=costs),
        )

    def run_dist(self, comm, graph, upstream, config=None, seed=None, *,
                 k: int = 2, costs=None, max_imbalance=None):
        # the distributed form folds the root-side k-way refinement in
        # (like dist_strip_refine) and returns the final (parts, info)
        # pair the host packagers expect
        cfg = config or ScalaPartConfig()
        coords = as_coords(upstream)
        comm.set_phase(self.name)
        return (yield from dist_kway_geometric(
            comm, graph, coords,
            k=k, costs=costs, config=cfg,
            seed=derive_seed(seed, 0x5B),
            max_imbalance=max_imbalance,
        ))


class KWayRefineStage(Stage):
    """Stage 4, K-way form: greedy boundary refinement."""

    name = "refine"

    def run(self, graph, upstream: KWayArtifact, config=None, seed=None, *,
            max_imbalance=None):
        cfg = config or ScalaPartConfig()
        bound = cfg.max_imbalance if max_imbalance is None else max_imbalance
        t0 = time.perf_counter()
        refined = kway_refine(
            upstream.partition,
            max_imbalance=bound,
            max_passes=cfg.kway_refine_passes,
            pairwise_rounds=cfg.kway_pairwise_rounds,
        )
        return KWayArtifact(
            stage=self.name,
            seconds=time.perf_counter() - t0,
            info={
                "geometric_cut": refined.initial_cut,
                "refine_passes": refined.passes,
                "refine_moves": refined.moves,
            },
            partition=refined.partition,
        )


#: the shared singletons both drivers compose
EMBED_STAGE = EmbedStage()
GEOMETRIC_STAGE = GeometricStage()
STRIP_REFINE_STAGE = StripRefineStage()
KWAY_GEOMETRIC_STAGE = KWayGeometricStage()
KWAY_REFINE_STAGE = KWayRefineStage()

#: full ScalaPart pipeline (coarsen+embed → partition → refine)
SCALAPART_STAGES = (EMBED_STAGE, GEOMETRIC_STAGE, STRIP_REFINE_STAGE)
#: SP-PG7-NL: stages 3–4 only, coordinates supplied by the caller
PARTITION_STAGES = (GEOMETRIC_STAGE, STRIP_REFINE_STAGE)
#: direct k-way: coarsen+embed → K-cell assignment → boundary refine
KWAY_STAGES = (EMBED_STAGE, KWAY_GEOMETRIC_STAGE, KWAY_REFINE_STAGE)
