"""Configuration for the ScalaPart pipeline.

One dataclass gathers every knob the paper mentions, with defaults
matching its choices: coarsest graphs of "hundreds or few thousands" of
vertices, 5 great-circle candidates (the G7-NL budget), blocks of 2–8
iterations acting on stale β data, strips holding a small multiple of
the separator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..embed.forces import DEFAULT_C
from ..errors import ConfigError

__all__ = ["ScalaPartConfig"]


@dataclass(frozen=True)
class ScalaPartConfig:
    """Tuning knobs of ScalaPart (paper §3 defaults)."""

    #: stop coarsening near this many vertices ("hundreds or few thousands")
    coarsest_size: int = 160
    #: sequential matching kernel for the coarsening hierarchy:
    #: ``"hem-vec"`` (round-based vectorised heavy-edge matching, the
    #: default — the same locally-dominant-edge algorithm the parallel
    #: drivers run distributed), ``"hem"`` (the literal ParMetis greedy
    #: rule) or ``"random"`` (ablation baseline)
    matching: str = "hem-vec"
    #: FDL iterations on the coarsest graph (random start needs many)
    coarsest_iters: int = 150
    #: smoothing iterations per refined level ("a few iterations")
    smooth_iters: int = 16
    #: iterations per communication block — β data and far-edge
    #: coordinates refresh only once per block ("2-8 iterations ...
    #: no observable change in the quality of the embeddings"); the
    #: top of the paper's range minimises global collectives
    block_size: int = 8
    #: repulsion strength C of the force model
    c: float = DEFAULT_C
    #: jitter of inherited child coordinates (× K) during projection
    jitter: float = 0.25
    #: great-circle candidates (5 = the G7-NL budget ScalaPart parallelises)
    ncircles: int = 5
    #: strip size as a multiple of separator vertices (Fig 2 shows ~5.6)
    strip_factor: float = 6.0
    #: FM passes on the strip
    strip_passes: int = 6
    #: allowed partition imbalance
    max_imbalance: float = 0.05
    #: sample size for the parallel centerpoint computation
    centerpoint_sample: int = 1000
    #: Lloyd iterations of the direct k-way geometric assignment
    kway_lloyd_iters: int = 4
    #: bias-balancing iterations of the direct k-way assignment
    kway_balance_iters: int = 48
    #: greedy boundary passes of the k-way refinement
    kway_refine_passes: int = 8
    #: pairwise-FM rounds of the k-way refinement (0 disables)
    kway_pairwise_rounds: int = 3

    def __post_init__(self) -> None:
        if self.coarsest_size < 1:
            raise ConfigError("coarsest_size must be >= 1")
        # resolve eagerly so a typo fails at config time, not mid-pipeline
        from ..coarsen.matching import get_matcher

        get_matcher(self.matching)
        if self.coarsest_iters < 0 or self.smooth_iters < 0:
            raise ConfigError("iteration counts must be nonnegative")
        if self.block_size < 1:
            raise ConfigError("block_size must be >= 1")
        if self.ncircles < 1:
            raise ConfigError("need at least one great circle")
        if self.strip_factor <= 0:
            raise ConfigError("strip_factor must be positive")
        if not (0 <= self.max_imbalance < 1):
            raise ConfigError("max_imbalance must be in [0, 1)")
        if (self.kway_lloyd_iters < 0 or self.kway_refine_passes < 0
                or self.kway_pairwise_rounds < 0):
            raise ConfigError("k-way iteration counts must be nonnegative")
        if self.kway_balance_iters < 1:
            raise ConfigError("kway_balance_iters must be >= 1")

    def with_options(self, **kw) -> "ScalaPartConfig":
        """Copy with some fields replaced."""
        return replace(self, **kw)
