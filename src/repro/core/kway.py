"""High-level k-way drivers: direct, recursive, and hierarchical.

Three entry points sit on top of the registry:

* :func:`kway_geometric` — the sequential face of the ``kway-geometric``
  method: embed (unless coordinates are given), split the sphere into K
  centroid cells, greedy boundary refinement;
* :func:`partition_kway` — partition into K parts with *any* registered
  method: direct k-way methods run natively, bisection methods run
  through :func:`recursive_bisection` followed by the same k-way
  refinement pass;
* :func:`hierarchical_kway` — K = K1×K2 (node × core) partitioning as
  two stacked k-way calls with per-level imbalance budgets.  The final
  label of a vertex in node-part ``p1`` and core-part ``p2`` is
  ``p1 * K2 + p2``, so ``label // K2`` recovers the node level — the
  nested-labelling contract the tests pin down.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple, Union

import numpy as np

from ..errors import ConfigError, PartitionError
from ..graph.csr import CSRGraph
from ..graph.partition import Bisection, KWayPartition
from ..refine.kway import kway_refine
from ..results import PartitionResult
from ..rng import SeedLike, derive_seed
from .config import ScalaPartConfig
from .cost import get_cost_model, resolve_costs
from .stages import EMBED_STAGE, KWAY_GEOMETRIC_STAGE, KWAY_REFINE_STAGE

__all__ = [
    "hierarchical_kway",
    "kway_geometric",
    "parse_hierarchy",
    "partition_kway",
]


def kway_geometric(
    graph: CSRGraph,
    coords=None,
    *,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
    k: int = 2,
    cost_model=None,
    max_imbalance: Optional[float] = None,
) -> PartitionResult:
    """Sequential direct geometric k-way (embed → K cells → refine).

    ``coords`` may be ``None`` (the multilevel embedding runs first), a
    raw ``(n, 2)`` array, or an ``EmbeddingArtifact``.
    """
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if graph.num_vertices < k:
        raise PartitionError(
            f"cannot split {graph.num_vertices} vertices into {k} parts"
        )
    cfg = config or ScalaPartConfig()
    costs = resolve_costs(graph, cost_model)
    bound = cfg.max_imbalance if max_imbalance is None else max_imbalance

    stage_seconds = {}
    extras = {"cost_model": get_cost_model(cost_model).name}
    artifacts = {}
    upstream = coords
    if upstream is None:
        emb = EMBED_STAGE.run(graph, None, cfg, seed)
        stage_seconds["embed"] = emb.seconds
        extras.update({"pos": emb.coords, "levels": emb.info["levels"]})
        artifacts["embed"] = emb
        upstream = emb

    assign = KWAY_GEOMETRIC_STAGE.run(graph, upstream, cfg, seed,
                                      k=k, costs=costs)
    ref = KWAY_REFINE_STAGE.run(graph, assign, cfg, seed,
                                max_imbalance=bound)
    stage_seconds["partition"] = assign.seconds
    stage_seconds["refine"] = ref.seconds
    extras.update(assign.info)
    extras.update(ref.info)
    artifacts.update({"partition": assign, "refine": ref})
    extras["artifacts"] = artifacts

    part = ref.partition
    return PartitionResult(
        bisection=part.to_bisection() if k <= 2 else None,
        kway=part,
        method="KWay-Geometric",
        seconds=sum(stage_seconds.values()),
        stage_seconds=stage_seconds,
        extras=extras,
    )


def partition_kway(
    graph: CSRGraph,
    k: int,
    method: Union[str, "MethodSpec"] = "kway-geometric",  # noqa: F821
    *,
    coords=None,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
    cost_model=None,
    max_imbalance: float = 0.05,
    refine: bool = True,
) -> PartitionResult:
    """Partition into ``k`` parts with any registered method.

    Direct k-way methods (``spec.kway``) run natively; bisection
    methods run through recursive bisection and, when ``refine`` is
    set, the same greedy boundary k-way refinement that follows the
    direct path — so both routes share one balance contract.
    """
    from .methods import MethodSpec, get_method

    spec = method if isinstance(method, MethodSpec) else get_method(method)
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if spec.sequential is None:
        raise PartitionError(f"method {spec.name!r} has no sequential entry")
    costs = resolve_costs(graph, cost_model)

    if spec.kway:
        return spec.sequential(
            graph, coords, config=config, seed=seed,
            k=k, cost_model=cost_model, max_imbalance=max_imbalance,
        )

    if spec.needs_coords and coords is None:
        raise PartitionError(
            f"method {spec.name!r} needs coordinates for k-way partitioning"
        )
    from .recursive import recursive_bisection
    from .stages import as_coords

    t0 = time.perf_counter()
    kwargs = {"config": config} if spec.accepts_config else {}
    kres = recursive_bisection(
        graph, k, spec.sequential,
        coords=None if coords is None else as_coords(coords),
        seed=seed, cost_model=cost_model, **kwargs,
    )
    part = KWayPartition(graph, kres.parts, k, costs=costs)
    extras = {
        "bisections": kres.bisections,
        "cost_model": get_cost_model(cost_model).name,
    }
    if refine and k >= 2:
        cfg = config or ScalaPartConfig()
        rr = kway_refine(part, max_imbalance=max_imbalance,
                         max_passes=cfg.kway_refine_passes,
                         pairwise_rounds=cfg.kway_pairwise_rounds)
        part = rr.partition
        extras.update({"refine_passes": rr.passes, "refine_moves": rr.moves,
                       "recursive_cut": rr.initial_cut})
    seconds = time.perf_counter() - t0
    return PartitionResult(
        bisection=Bisection(graph, part.parts.astype(np.int8))
        if k <= 2 else None,
        kway=part,
        method=spec.name,
        seconds=seconds,
        stage_seconds={"partition": seconds},
        extras=extras,
    )


def parse_hierarchy(text: str) -> Tuple[int, int]:
    """Parse a ``"K1xK2"`` hierarchy spec (e.g. ``"2x4"``)."""
    parts = str(text).lower().split("x")
    if len(parts) != 2:
        raise ConfigError(
            f"hierarchy must look like K1xK2 (e.g. 2x4), got {text!r}"
        )
    try:
        k1, k2 = (int(p) for p in parts)
    except ValueError:
        raise ConfigError(
            f"hierarchy levels must be integers, got {text!r}"
        ) from None
    if k1 < 1 or k2 < 1:
        raise ConfigError(f"hierarchy levels must be >= 1, got {text!r}")
    return k1, k2


def hierarchical_kway(
    graph: CSRGraph,
    k1: int,
    k2: int,
    method: Union[str, "MethodSpec"] = "kway-geometric",  # noqa: F821
    *,
    coords=None,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
    cost_model=None,
    level_imbalance: Tuple[float, float] = (0.03, 0.05),
) -> PartitionResult:
    """Hierarchical K = K1×K2 partitioning (node × core).

    Two stacked k-way calls: level 1 splits the graph into ``k1`` node
    parts under the tighter budget ``level_imbalance[0]``; level 2
    splits each node part into ``k2`` core parts under
    ``level_imbalance[1]``.  The overall imbalance is bounded by
    ``(1 + e1)(1 + e2) − 1``, which is why the node level gets the
    tighter budget.  Labels nest: ``label = p1 * k2 + p2``.
    """
    if k1 < 1 or k2 < 1:
        raise PartitionError(f"hierarchy levels must be >= 1, got {k1}x{k2}")
    k = k1 * k2
    if graph.num_vertices < k:
        raise PartitionError(
            f"cannot split {graph.num_vertices} vertices into {k1}x{k2} parts"
        )
    e1, e2 = level_imbalance
    t0 = time.perf_counter()
    top = partition_kway(
        graph, k1, method,
        coords=coords, config=config, seed=seed,
        cost_model=cost_model, max_imbalance=e1,
    )
    costs = resolve_costs(graph, cost_model)
    labels = np.zeros(graph.num_vertices, dtype=np.int64)
    coords_arr = None
    if coords is not None:
        from .stages import as_coords

        coords_arr = as_coords(coords)
    for p1 in range(k1):
        ids = np.flatnonzero(top.parts == p1)
        if k2 == 1 or ids.size == 0:
            labels[ids] = p1 * k2
            continue
        sub, sub_ids = graph.subgraph(ids)
        sub_res = partition_kway(
            sub, min(k2, sub.num_vertices), method,
            coords=coords_arr[sub_ids] if coords_arr is not None else None,
            config=config, seed=derive_seed(seed, 0x41E2, p1),
            # slice the resolved costs so the core level balances the
            # same quantity the node level did
            cost_model=None if costs is None else costs[sub_ids],
            max_imbalance=e2,
        )
        labels[sub_ids] = p1 * k2 + sub_res.parts
    part = KWayPartition(graph, labels, k, costs=costs)
    return PartitionResult(
        bisection=part.to_bisection() if k <= 2 else None,
        kway=part,
        method=top.method,
        seconds=time.perf_counter() - t0,
        stage_seconds={"partition": time.perf_counter() - t0},
        extras={
            "hierarchy": (k1, k2),
            "level1_parts": top.parts,
            "level_imbalance": (e1, e2),
            "cost_model": get_cost_model(cost_model).name,
        },
    )
