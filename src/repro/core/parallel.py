"""Registry-driven host runner for the distributed methods.

:func:`run_parallel` runs any registered method on ``P`` virtual ranks
and packages the outcome as a
:class:`~repro.results.PartitionResult` whose ``seconds`` is the
*simulated* execution time — the quantity the paper's Figures 3–6/9
plot — and whose ``stage_seconds`` carries the per-phase breakdown.
The five historical ``*_parallel`` wrappers remain as thin aliases.

:func:`dist_scalapart` is the rank program combining the three shared
pipeline stages of paper §3 (phases are labelled so Figures 7–8 can be
regenerated from the trace).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError, PartitionError
from ..graph.csr import CSRGraph
from ..graph.partition import Bisection
from ..parallel.engine import run_spmd
from ..parallel.machine import MachineModel, QDR_CLUSTER
from ..parallel.trace import SpmdResult
from ..rng import SeedLike, derive_seed
from .config import ScalaPartConfig
from .methods import MethodSpec, get_method
from .stages import as_coords
from ..results import PartitionResult

__all__ = [
    "run_parallel",
    "dist_scalapart",
    "scalapart_parallel",
    "sp_pg7_nl_parallel",
    "parmetis_parallel",
    "scotch_parallel",
    "rcb_parallel",
]


def dist_scalapart(
    comm,
    graph: CSRGraph,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
):
    """Rank program: full distributed ScalaPart (coarsen→embed→partition).

    Kept for API compatibility; delegates to the registry's rank
    program, which composes the shared stage objects.
    """
    prog = get_method("ScalaPart").distributed
    return (yield from prog(comm, graph, config=config, seed=seed))


def _package(
    graph: CSRGraph,
    res: SpmdResult,
    method: str,
    max_imbalance: Optional[float] = None,
) -> PartitionResult:
    """Package an SPMD run; validate balance when a bound is declared.

    ``max_imbalance`` is the method's declared ``balance_bound`` (wired
    through by :func:`run_parallel`); ``None`` skips validation.
    """
    side, info = res.values[0]
    bis = Bisection(graph, np.asarray(side, dtype=np.int8))
    # phases are hierarchical ("embed/refresh" ⊂ "embed"): report every
    # label the run used plus the aggregated top-level stages the paper's
    # figures consume
    stage_seconds = {name: ph.elapsed for name, ph in res.phases.items()}
    phase_comm = {name: ph.comm_fraction for name, ph in res.phases.items()}
    for root in res.phase_roots():
        agg = res.phase(root)
        stage_seconds[root] = agg.elapsed
        phase_comm[root] = agg.comm_fraction
    out = PartitionResult(
        bisection=bis,
        method=method,
        seconds=res.elapsed,
        simulated=True,
        stage_seconds=stage_seconds,
        extras={
            **{k: v for k, v in info.items() if k != "pos"},
            "nranks": res.nranks,
            "comm_fraction": res.comm_fraction,
            "phase_comm": phase_comm,
            "comm_stats": res.comm_stats,
            "trace": res,
        },
    )
    if max_imbalance is not None:
        out.validate(max_imbalance)
    return out


def run_parallel(
    method,
    graph: CSRGraph,
    nranks: int,
    *,
    coords=None,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
    machine: MachineModel = QDR_CLUSTER,
    copy_mode: str = "readonly",
    sanitize: Optional[bool] = None,
    max_imbalance: Optional[float] = None,
) -> PartitionResult:
    """Run a registered method on ``nranks`` virtual ranks.

    ``method`` is a :class:`~repro.core.methods.MethodSpec`, a canonical
    name or a CLI name.  ``coords`` (for coordinate-based methods) may
    be a raw ``(n, 2)`` array or an
    :class:`~repro.core.stages.EmbeddingArtifact` captured from another
    run.  ``max_imbalance`` overrides the refinement target handed to
    the rank program (``spec.default_max_imbalance`` otherwise); the
    packaged result is validated against the spec's declared
    ``balance_bound``.  ``copy_mode`` is the engine's payload-delivery
    mode (see :func:`~repro.parallel.engine.run_spmd`); results are
    identical under both settings, ``"readonly"`` is the zero-copy fast
    path.  ``sanitize`` is forwarded to the engine's dynamic sanitizer
    (``None`` defers to the ``REPRO_SANITIZE`` environment variable).
    """
    spec = method if isinstance(method, MethodSpec) else get_method(method)
    if spec.distributed is None:
        raise ConfigError(
            f"method {spec.name!r} has no distributed implementation"
        )
    if graph.num_vertices < 2:
        raise PartitionError("cannot bisect fewer than 2 vertices")
    if spec.needs_coords:
        coords = as_coords(coords)
    target = (max_imbalance if max_imbalance is not None
              else spec.default_max_imbalance)

    def prog(comm):
        return (yield from spec.distributed(
            comm, graph, coords=coords, config=config, seed=seed,
            max_imbalance=target,
        ))

    engine_seed = 0 if spec.seed_salt is None else derive_seed(seed,
                                                               spec.seed_salt)
    res = run_spmd(prog, nranks, machine=machine, seed=engine_seed,
                   copy_mode=copy_mode, sanitize=sanitize)
    return _package(graph, res, spec.name, max_imbalance=spec.balance_bound)


# ----------------------------------------------------------------------
# historical wrappers (thin aliases over run_parallel)
# ----------------------------------------------------------------------

def scalapart_parallel(
    graph: CSRGraph,
    nranks: int,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
    machine: MachineModel = QDR_CLUSTER,
    copy_mode: str = "readonly",
) -> PartitionResult:
    """Run distributed ScalaPart on ``nranks`` virtual ranks."""
    return run_parallel("ScalaPart", graph, nranks, config=config, seed=seed,
                        machine=machine, copy_mode=copy_mode)


def sp_pg7_nl_parallel(
    graph: CSRGraph,
    coords,
    nranks: int,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
    machine: MachineModel = QDR_CLUSTER,
    copy_mode: str = "readonly",
) -> PartitionResult:
    """Run the partition-only component (SP-PG7-NL) on given coordinates
    — the paper's Figure 4 comparison against RCB."""
    return run_parallel("SP-PG7-NL", graph, nranks, coords=coords,
                        config=config, seed=seed, machine=machine,
                        copy_mode=copy_mode)


def parmetis_parallel(
    graph: CSRGraph,
    nranks: int,
    seed: SeedLike = None,
    machine: MachineModel = QDR_CLUSTER,
    max_imbalance: float = 0.05,
    copy_mode: str = "readonly",
) -> PartitionResult:
    """Run the distributed ParMetis analogue."""
    return run_parallel("ParMetis-like", graph, nranks, seed=seed,
                        machine=machine, max_imbalance=max_imbalance,
                        copy_mode=copy_mode)


def scotch_parallel(
    graph: CSRGraph,
    nranks: int,
    seed: SeedLike = None,
    machine: MachineModel = QDR_CLUSTER,
    max_imbalance: float = 0.05,
    copy_mode: str = "readonly",
) -> PartitionResult:
    """Run the distributed Pt-Scotch analogue."""
    return run_parallel("Pt-Scotch-like", graph, nranks, seed=seed,
                        machine=machine, max_imbalance=max_imbalance,
                        copy_mode=copy_mode)


def rcb_parallel(
    graph: CSRGraph,
    coords,
    nranks: int,
    machine: MachineModel = QDR_CLUSTER,
    copy_mode: str = "readonly",
) -> PartitionResult:
    """Run distributed RCB on given coordinates."""
    return run_parallel("RCB", graph, nranks, coords=coords,
                        machine=machine, copy_mode=copy_mode)
