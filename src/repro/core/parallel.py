"""Distributed ScalaPart and host-level runners for every method.

:func:`dist_scalapart` is the rank program combining the three stages
of paper §3 on the virtual machine (phases are labelled so Figures 7–8
can be regenerated from the trace).  The ``*_parallel`` host wrappers
below run a method on ``P`` virtual ranks and package the outcome as a
:class:`~repro.results.PartitionResult` whose ``seconds`` is the
*simulated* execution time — the quantity the paper's Figures 3–6/9
plot — and whose ``stage_seconds`` carries the per-phase breakdown.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..baselines.parallel_ml import (
    dist_parmetis_like,
    dist_rcb_bisect,
    dist_scotch_like,
)
from ..embed.parallel import dist_multilevel_embedding
from ..errors import PartitionError
from ..geometric.parallel import dist_sp_pg7_nl
from ..graph.csr import CSRGraph
from ..graph.partition import Bisection
from ..parallel.engine import Comm, run_spmd
from ..parallel.machine import MachineModel, QDR_CLUSTER
from ..parallel.trace import SpmdResult
from ..rng import SeedLike, derive_seed
from .config import ScalaPartConfig
from ..results import PartitionResult

__all__ = [
    "dist_scalapart",
    "scalapart_parallel",
    "sp_pg7_nl_parallel",
    "parmetis_parallel",
    "scotch_parallel",
    "rcb_parallel",
]


def dist_scalapart(
    comm: Comm,
    graph: CSRGraph,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
):
    """Rank program: full distributed ScalaPart (coarsen→embed→partition)."""
    cfg = config or ScalaPartConfig()
    pos, emb_info = yield from dist_multilevel_embedding(
        comm,
        graph,
        coarsest_size=cfg.coarsest_size,
        coarsest_iters=cfg.coarsest_iters,
        smooth_iters=cfg.smooth_iters,
        block_size=cfg.block_size,
        c=cfg.c,
        jitter=cfg.jitter,
        seed=derive_seed(seed, 0xE3BED0),
    )
    comm.set_phase("partition")
    side, info = yield from dist_sp_pg7_nl(
        comm, graph, pos, config=cfg, seed=seed
    )
    return side, {**info, **emb_info, "pos": pos}


def _package(
    graph: CSRGraph,
    res: SpmdResult,
    method: str,
    max_imbalance: Optional[float] = None,
) -> PartitionResult:
    side, info = res.values[0]
    bis = Bisection(graph, np.asarray(side, dtype=np.int8))
    # phases are hierarchical ("embed/refresh" ⊂ "embed"): report every
    # label the run used plus the aggregated top-level stages the paper's
    # figures consume
    stage_seconds = {name: ph.elapsed for name, ph in res.phases.items()}
    phase_comm = {name: ph.comm_fraction for name, ph in res.phases.items()}
    for root in res.phase_roots():
        agg = res.phase(root)
        stage_seconds[root] = agg.elapsed
        phase_comm[root] = agg.comm_fraction
    out = PartitionResult(
        bisection=bis,
        method=method,
        seconds=res.elapsed,
        simulated=True,
        stage_seconds=stage_seconds,
        extras={
            **{k: v for k, v in info.items() if k != "pos"},
            "nranks": res.nranks,
            "comm_fraction": res.comm_fraction,
            "phase_comm": phase_comm,
            "comm_stats": res.comm_stats,
            "trace": res,
        },
    )
    if max_imbalance is not None:
        out.validate(max_imbalance)
    return out


def scalapart_parallel(
    graph: CSRGraph,
    nranks: int,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
    machine: MachineModel = QDR_CLUSTER,
    copy_mode: str = "readonly",
) -> PartitionResult:
    """Run distributed ScalaPart on ``nranks`` virtual ranks.

    ``copy_mode`` is the engine's payload-delivery mode (see
    :func:`~repro.parallel.engine.run_spmd`); results are identical
    under both settings, ``"readonly"`` is the zero-copy fast path.
    """
    if graph.num_vertices < 2:
        raise PartitionError("cannot bisect fewer than 2 vertices")
    res = run_spmd(dist_scalapart, nranks, graph, config, seed,
                   machine=machine, seed=derive_seed(seed, 1),
                   copy_mode=copy_mode)
    return _package(graph, res, "ScalaPart")


def sp_pg7_nl_parallel(
    graph: CSRGraph,
    coords: np.ndarray,
    nranks: int,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
    machine: MachineModel = QDR_CLUSTER,
    copy_mode: str = "readonly",
) -> PartitionResult:
    """Run the partition-only component (SP-PG7-NL) on given coordinates
    — the paper's Figure 4 comparison against RCB."""

    def prog(comm):
        comm.set_phase("partition")
        return (yield from dist_sp_pg7_nl(comm, graph, coords,
                                          config=config, seed=seed))

    res = run_spmd(prog, nranks, machine=machine, seed=derive_seed(seed, 2),
                   copy_mode=copy_mode)
    return _package(graph, res, "SP-PG7-NL")


def parmetis_parallel(
    graph: CSRGraph,
    nranks: int,
    seed: SeedLike = None,
    machine: MachineModel = QDR_CLUSTER,
    max_imbalance: float = 0.05,
    copy_mode: str = "readonly",
) -> PartitionResult:
    """Run the distributed ParMetis analogue."""

    def prog(comm):
        return (yield from dist_parmetis_like(comm, graph, seed=seed,
                                              max_imbalance=max_imbalance))

    res = run_spmd(prog, nranks, machine=machine, seed=derive_seed(seed, 3),
                   copy_mode=copy_mode)
    return _package(graph, res, "ParMetis-like")


def scotch_parallel(
    graph: CSRGraph,
    nranks: int,
    seed: SeedLike = None,
    machine: MachineModel = QDR_CLUSTER,
    max_imbalance: float = 0.05,
    copy_mode: str = "readonly",
) -> PartitionResult:
    """Run the distributed Pt-Scotch analogue."""

    def prog(comm):
        return (yield from dist_scotch_like(comm, graph, seed=seed,
                                            max_imbalance=max_imbalance))

    res = run_spmd(prog, nranks, machine=machine, seed=derive_seed(seed, 4),
                   copy_mode=copy_mode)
    return _package(graph, res, "Pt-Scotch-like")


def rcb_parallel(
    graph: CSRGraph,
    coords: np.ndarray,
    nranks: int,
    machine: MachineModel = QDR_CLUSTER,
    copy_mode: str = "readonly",
) -> PartitionResult:
    """Run distributed RCB on given coordinates."""

    def prog(comm):
        comm.set_phase("partition")
        return (yield from dist_rcb_bisect(comm, graph, coords))

    res = run_spmd(prog, nranks, machine=machine, seed=0,
                   copy_mode=copy_mode)
    return _package(graph, res, "RCB")
