"""Registry-driven host runner for the distributed methods.

:func:`run_parallel` runs any registered method on ``P`` virtual ranks
and packages the outcome as a
:class:`~repro.results.PartitionResult` whose ``seconds`` is the
*simulated* execution time — the quantity the paper's Figures 3–6/9
plot — and whose ``stage_seconds`` carries the per-phase breakdown.
The five historical ``*_parallel`` wrappers remain as thin aliases.

:func:`dist_scalapart` is the rank program combining the three shared
pipeline stages of paper §3 (phases are labelled so Figures 7–8 can be
regenerated from the trace).

Fault recovery
--------------
With a :class:`RetryPolicy`, :func:`run_parallel` degrades gracefully
instead of propagating the first engine fault.  On a typed failure
(:class:`~repro.errors.RankFailure`, :class:`~repro.errors.
DeadlockError`, :class:`~repro.errors.BudgetExceededError`, any other
:class:`~repro.errors.CommError`, or a balance-validation
:class:`~repro.errors.PartitionError`) it descends a deterministic
ladder:

1. **retry** — re-run at full ``P`` with a re-salted seed and the
   simulated budgets scaled by ``backoff**attempt``;
2. **shrink** — halve the rank count (``P/2``, ``P/4``, … down to
   ``min_ranks``), the Holtgrewe-style repartition-on-fewer-PEs path;
3. **fallback** — descend the registry ladder
   (:func:`~repro.core.methods.recovery_ladder`): distributed ScalaPart,
   then sequential ScalaPart, then sequential RCB.

Every recovered partition is validated against the producing method's
``balance_bound`` (or the policy's ``validate_imbalance`` when the
method declares none), so degradation never returns a silently broken
partition.  The full attempt trail lands in
``result.extras["recovery"]``; the whole ladder is deterministic per
``(seed, FaultPlan)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import CommError, ConfigError, PartitionError, ReproError
from ..graph.csr import CSRGraph
from ..graph.partition import Bisection, KWayPartition
from ..parallel.checkpoint import CheckpointContext, as_policy
from ..parallel.engine import run_spmd
from ..parallel.faults import FaultPlan
from ..parallel.machine import MachineModel, QDR_CLUSTER
from ..parallel.trace import SpmdResult
from ..rng import SeedLike, derive_seed
from .config import ScalaPartConfig
from .cost import resolve_costs
from .methods import MethodSpec, get_method, recovery_ladder
from .stages import as_coords
from ..results import PartitionResult

__all__ = [
    "RetryPolicy",
    "run_parallel",
    "dist_scalapart",
    "scalapart_parallel",
    "sp_pg7_nl_parallel",
    "parmetis_parallel",
    "scotch_parallel",
    "rcb_parallel",
]

#: seed-salting namespace for recovery attempts (epoch 0 keeps the
#: caller's seed; attempt k reruns with derive_seed(seed, salt, k))
_RETRY_SALT = 0x5AFE

#: seed-salting namespace for the retry backoff jitter draw
_JITTER_SALT = 0x117E4


@dataclass(frozen=True)
class RetryPolicy:
    """How :func:`run_parallel` degrades when an engine run fails.

    ``retries`` re-runs at full ``P`` (re-salted seed, budgets scaled by
    ``backoff`` per attempt) come first; then, if ``shrink``, the rank
    count is halved down to ``min_ranks``; then, if ``fallback``, the
    registry's :func:`~repro.core.methods.recovery_ladder` is descended.
    ``validate_imbalance`` is the balance bound applied to recovered
    partitions whose method declares no ``balance_bound`` of its own.

    ``base_delay`` > 0 sleeps before every re-attempt:
    ``base_delay * backoff**(epoch-1)`` stretched by up to ``jitter``
    (multiplicatively, ``1 + jitter*u`` with ``u`` drawn via
    :func:`~repro.rng.derive_seed` from the run seed), so concurrent
    retries of many jobs de-stampede deterministically per seed.  The
    default 0 keeps recovery immediate; each attempt's actual sleep is
    recorded as ``"delay"`` in the ``extras["recovery"]`` trail.
    """

    retries: int = 1
    backoff: float = 2.0
    base_delay: float = 0.0
    jitter: float = 0.5
    shrink: bool = True
    min_ranks: int = 2
    fallback: bool = True
    validate_imbalance: float = 0.15

    def delay_for(self, seed: SeedLike, epoch: int) -> float:
        """Deterministic jittered backoff delay before attempt ``epoch``."""
        if self.base_delay <= 0.0 or epoch <= 0:
            return 0.0
        u = derive_seed(seed, _JITTER_SALT, epoch) / float(2 ** 63)
        return self.base_delay * self.backoff ** (epoch - 1) \
            * (1.0 + self.jitter * u)


def dist_scalapart(
    comm,
    graph: CSRGraph,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
):
    """Rank program: full distributed ScalaPart (coarsen→embed→partition).

    Kept for API compatibility; delegates to the registry's rank
    program, which composes the shared stage objects.
    """
    prog = get_method("ScalaPart").distributed
    return (yield from prog(comm, graph, config=config, seed=seed))


def _package(
    graph: CSRGraph,
    res: SpmdResult,
    method: str,
    max_imbalance: Optional[float] = None,
    *,
    k: int = 2,
    costs=None,
    is_kway: bool = False,
) -> PartitionResult:
    """Package an SPMD run; validate balance when a bound is declared.

    ``max_imbalance`` is the method's declared ``balance_bound`` (wired
    through by :func:`run_parallel`); ``None`` skips validation.
    ``simulated`` reflects the producing backend: the procs backend's
    ``seconds`` are measured wall time, not modelled cluster time.
    K-way methods (``is_kway``) return label arrays in ``[0, k)``;
    their results carry a :class:`KWayPartition` (plus a
    :class:`Bisection` view when ``k == 2``, so 2-way harnesses see
    them like any other method).
    """
    side, info = res.values[0]
    bis = None
    kway = None
    if is_kway:
        kway = KWayPartition(
            graph, np.asarray(side, dtype=np.int64), k, costs=costs
        )
        if k <= 2:
            bis = kway.to_bisection()
    else:
        bis = Bisection(graph, np.asarray(side, dtype=np.int8))
    # phases are hierarchical ("embed/refresh" ⊂ "embed"): report every
    # label the run used plus the aggregated top-level stages the paper's
    # figures consume
    stage_seconds = {name: ph.elapsed for name, ph in res.phases.items()}
    phase_comm = {name: ph.comm_fraction for name, ph in res.phases.items()}
    for root in res.phase_roots():
        agg = res.phase(root)
        stage_seconds[root] = agg.elapsed
        phase_comm[root] = agg.comm_fraction
    extras = {
        **{k: v for k, v in info.items() if k != "pos"},
        "nranks": res.nranks,
        "backend": res.backend,
        "comm_fraction": res.comm_fraction,
        "phase_comm": phase_comm,
        "comm_stats": res.comm_stats,
        "trace": res,
    }
    if res.pids is not None:
        extras["pids"] = list(res.pids)
    out = PartitionResult(
        bisection=bis,
        kway=kway,
        method=method,
        seconds=res.elapsed,
        simulated=(res.backend == "sim"),
        stage_seconds=stage_seconds,
        extras=extras,
    )
    if max_imbalance is not None:
        out.validate(max_imbalance)
    return out


def _engine_attempt(
    spec: MethodSpec,
    graph: CSRGraph,
    nranks: int,
    *,
    coords,
    config,
    seed,
    machine,
    copy_mode,
    sanitize,
    max_imbalance,
    faults,
    max_steps,
    max_sim_seconds,
    backend="sim",
    op_timeout=None,
    k=2,
    cost_model=None,
    checkpoint: Optional[CheckpointContext] = None,
) -> PartitionResult:
    """One engine run of ``spec`` on ``nranks`` ranks, packaged+validated.

    With a :class:`~repro.parallel.checkpoint.CheckpointContext`, the
    attempt first probes the store for the last durable stage: a
    verified embed artifact swaps the run to ``spec.resume_method`` fed
    the persisted coordinates (skipping re-coarsening + re-embedding),
    while an unusable artifact is ignored — recorded in
    ``extras["checkpoint"]["ignored"]`` — and the full pipeline runs,
    persisting its own embed stage for the next attempt.
    """
    target = (max_imbalance if max_imbalance is not None
              else spec.default_max_imbalance)

    run_spec = spec
    run_coords = coords
    resumed_from = None
    if (checkpoint is not None and coords is None
            and checkpoint.can_resume(spec)):
        artifact = checkpoint.load_stage(spec.checkpoint_stages[-1])
        if artifact is not None:
            run_spec = get_method(spec.resume_method)
            run_coords = artifact
            resumed_from = artifact.stage
    save_ctx = checkpoint if (checkpoint is not None and resumed_from is None
                              and checkpoint.can_save(spec)) else None

    def prog(comm):
        kw = {}
        if run_spec.kway:
            kw.update(k=k, cost_model=cost_model)
        if save_ctx is not None:
            kw["checkpoint"] = save_ctx
        return (yield from run_spec.distributed(
            comm, graph, coords=run_coords, config=config, seed=seed,
            max_imbalance=target, **kw,
        ))

    engine_seed = 0 if run_spec.seed_salt is None \
        else derive_seed(seed, run_spec.seed_salt)
    res = run_spmd(prog, nranks, machine=machine, seed=engine_seed,
                   copy_mode=copy_mode, sanitize=sanitize, faults=faults,
                   max_steps=max_steps, max_sim_seconds=max_sim_seconds,
                   backend=backend, op_timeout=op_timeout)
    costs = resolve_costs(graph, cost_model) if spec.kway else None
    out = _package(graph, res, spec.name, max_imbalance=spec.balance_bound,
                   k=k, costs=costs, is_kway=spec.kway)
    if checkpoint is not None:
        out.extras["checkpoint"] = {
            "resumed_from": resumed_from,
            "store": str(checkpoint.policy.store.root),
            "ignored": list(checkpoint.ignored),
        }
    return out


def _layout_coords(graph: CSRGraph, seed: SeedLike):
    """Deterministic fallback coordinates for coordinate-based methods."""
    from ..embed.multilevel import hu_layout

    return hu_layout(graph, seed=seed)


def _scaled(budget: Optional[float], scale: float):
    if budget is None:
        return None
    return type(budget)(budget * scale)


def _first_line(exc: BaseException) -> str:
    return str(exc).splitlines()[0] if str(exc) else type(exc).__name__


def _run_recovering(
    spec: MethodSpec,
    graph: CSRGraph,
    nranks: int,
    *,
    coords,
    config,
    seed,
    machine,
    copy_mode,
    sanitize,
    max_imbalance,
    faults: Optional[FaultPlan],
    retry: RetryPolicy,
    max_steps,
    max_sim_seconds,
    backend="sim",
    op_timeout=None,
    k=2,
    cost_model=None,
    checkpoint: Optional[CheckpointContext] = None,
) -> PartitionResult:
    """Descend the recovery ladder until an attempt yields a valid cut."""
    attempts: List[Dict[str, Any]] = []
    epoch = 0
    last_exc: Optional[BaseException] = None

    def bound_for(aspec: MethodSpec) -> float:
        if aspec.balance_bound is not None:
            return aspec.balance_bound
        return retry.validate_imbalance

    def finish(out: PartitionResult, rec: Dict[str, Any],
               aspec: MethodSpec) -> PartitionResult:
        rec["status"] = "ok"
        rec["cut"] = int(out.cut_size)
        rec["imbalance"] = float(out.imbalance)
        attempts.append(rec)
        recovery: Dict[str, Any] = {
            "attempts": attempts,
            "recovered": len(attempts) > 1,
            "final_method": aspec.name,
            "final_nranks": rec["nranks"],
        }
        ck = out.extras.get("checkpoint")
        if ck is not None:
            recovery["resumed_from"] = ck.get("resumed_from")
        out.extras["recovery"] = recovery
        return out

    def engine_attempt(step: str, aspec: MethodSpec,
                       p: int) -> Optional[PartitionResult]:
        nonlocal epoch, last_exc
        scale = retry.backoff ** epoch
        aseed = seed if epoch == 0 else derive_seed(seed, _RETRY_SALT, epoch)
        plan = None if faults is None else faults.for_attempt(epoch)
        delay = retry.delay_for(seed, epoch)
        rec: Dict[str, Any] = {"step": step, "mode": "engine",
                               "method": aspec.name, "nranks": p,
                               "attempt": epoch, "delay": delay}
        epoch += 1
        if delay > 0.0:
            time.sleep(delay)
        try:
            out = _engine_attempt(
                aspec, graph, p, coords=coords, config=config, seed=aseed,
                machine=machine, copy_mode=copy_mode, sanitize=sanitize,
                max_imbalance=max_imbalance, faults=plan,
                max_steps=_scaled(max_steps, scale),
                max_sim_seconds=_scaled(max_sim_seconds, scale),
                backend=backend, op_timeout=op_timeout,
                k=k, cost_model=cost_model, checkpoint=checkpoint,
            )
            ck = out.extras.get("checkpoint")
            if ck is not None and ck.get("resumed_from"):
                rec["resumed_from"] = ck["resumed_from"]
            out.validate(bound_for(aspec))
        except (CommError, PartitionError) as exc:
            rec["status"] = "failed"
            rec["error"] = f"{type(exc).__name__}: {_first_line(exc)}"
            attempts.append(rec)
            last_exc = exc
            return None
        return finish(out, rec, aspec)

    def sequential_attempt(aspec: MethodSpec) -> Optional[PartitionResult]:
        nonlocal epoch, last_exc
        aseed = derive_seed(seed, _RETRY_SALT, epoch)
        delay = retry.delay_for(seed, epoch)
        rec: Dict[str, Any] = {"step": "fallback", "mode": "sequential",
                               "method": aspec.name, "nranks": 1,
                               "attempt": epoch, "delay": delay}
        epoch += 1
        if delay > 0.0:
            time.sleep(delay)
        try:
            scoords = None
            if aspec.needs_coords:
                scoords = (coords if coords is not None
                           else _layout_coords(graph, aseed))
            if k != 2:
                # k-way fallback: any bisection method reaches K parts
                # via recursive bisection + the shared k-way refinement
                from .kway import partition_kway

                out = partition_kway(
                    graph, k, aspec, coords=scoords,
                    config=config if aspec.accepts_config else None,
                    seed=aseed, cost_model=cost_model,
                    max_imbalance=(max_imbalance if max_imbalance is not None
                                   else 0.05),
                )
            else:
                kwargs: Dict[str, Any] = {"seed": aseed}
                if aspec.accepts_config:
                    kwargs["config"] = config
                out = aspec.sequential(graph, scoords, **kwargs)
            out.validate(bound_for(aspec))
        except ReproError as exc:
            rec["status"] = "failed"
            rec["error"] = f"{type(exc).__name__}: {_first_line(exc)}"
            attempts.append(rec)
            last_exc = exc
            return None
        return finish(out, rec, aspec)

    # stage 1: the primary run plus retries at full rank count
    for attempt in range(max(0, retry.retries) + 1):
        out = engine_attempt("primary" if attempt == 0 else "retry",
                             spec, nranks)
        if out is not None:
            return out

    # stage 2: shrink the rank count (repartition on fewer virtual PEs)
    p_floor = max(1, retry.min_ranks)
    p_last = nranks
    if retry.shrink:
        p = nranks // 2
        while p >= p_floor:
            p_last = p
            out = engine_attempt("shrink", spec, p)
            if out is not None:
                return out
            if p == 1:
                break
            p //= 2

    # stage 3: descend the registry ladder to simpler methods
    if retry.fallback:
        for mode, fspec in recovery_ladder(spec):
            if mode == "dist":
                if k != 2 and not fspec.kway:
                    # bisection rank programs cannot produce K parts;
                    # their sequential recursive-bisection form can
                    continue
                out = engine_attempt("fallback", fspec, p_last)
            else:
                out = sequential_attempt(fspec)
            if out is not None:
                return out

    raise PartitionError(
        f"recovery exhausted after {len(attempts)} attempt(s) for method "
        f"{spec.name!r} on {nranks} ranks; last error: "
        f"{type(last_exc).__name__ if last_exc else 'none'}: "
        f"{_first_line(last_exc) if last_exc else ''}"
    ) from last_exc


def run_parallel(
    method,
    graph: CSRGraph,
    nranks: int,
    *,
    coords=None,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
    machine: MachineModel = QDR_CLUSTER,
    copy_mode: str = "readonly",
    sanitize: Optional[bool] = None,
    max_imbalance: Optional[float] = None,
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    max_steps: Optional[int] = None,
    max_sim_seconds: Optional[float] = None,
    backend: str = "sim",
    op_timeout: Optional[float] = None,
    k: int = 2,
    cost_model=None,
    checkpoint=None,
) -> PartitionResult:
    """Run a registered method on ``nranks`` virtual ranks.

    ``method`` is a :class:`~repro.core.methods.MethodSpec`, a canonical
    name or a CLI name.  ``coords`` (for coordinate-based methods) may
    be a raw ``(n, 2)`` array or an
    :class:`~repro.core.stages.EmbeddingArtifact` captured from another
    run.  ``max_imbalance`` overrides the refinement target handed to
    the rank program (``spec.default_max_imbalance`` otherwise); the
    packaged result is validated against the spec's declared
    ``balance_bound``.  ``copy_mode`` is the engine's payload-delivery
    mode (see :func:`~repro.parallel.engine.run_spmd`); results are
    identical under both settings, ``"readonly"`` is the zero-copy fast
    path.  ``sanitize`` is forwarded to the engine's dynamic sanitizer
    (``None`` defers to the ``REPRO_SANITIZE`` environment variable).

    ``faults`` injects a deterministic
    :class:`~repro.parallel.faults.FaultPlan` into the engine;
    ``max_steps``/``max_sim_seconds`` bound the run (see
    :func:`~repro.parallel.engine.run_spmd`).  Without a ``retry``
    policy the resulting typed errors propagate to the caller; with one,
    the recovery ladder documented in the module docstring is descended
    and the attempt trail is attached as ``extras["recovery"]``.

    ``backend`` selects the executor (``"sim"`` — the deterministic
    simulator, or ``"procs"`` — one worker process per rank; see
    :func:`~repro.parallel.engine.run_spmd`); both run the same rank
    program and must produce bit-identical partitions.  ``op_timeout``
    bounds per-operation blocking on the procs backend.

    ``k`` is the number of parts; values other than 2 need a native
    k-way method (``spec.kway``, e.g. ``"kway-geometric"``).
    ``cost_model`` selects the balance cost (a registered name, a
    :class:`~repro.core.cost.CostModel`, or a per-vertex array) and is
    forwarded to k-way rank programs; recovered k-way fallbacks run
    recursive bisection + k-way refinement under the same model.

    ``checkpoint`` enables stage-durable elastic recovery: a directory
    path, :class:`~repro.parallel.checkpoint.CheckpointStore` or
    :class:`~repro.parallel.checkpoint.CheckpointPolicy`.  Methods that
    declare ``checkpoint_stages`` persist their completed embedding
    (atomic, crc-verified, keyed by graph hash × config fingerprint ×
    seed × stage); every attempt — including the primary one, so a
    restarted process benefits too — probes the store first and, on a
    strictly verified hit, resumes downstream of the artifact via the
    spec's ``resume_method`` instead of re-coarsening and re-embedding.
    Any key mismatch or corrupt payload demotes to a full recompute.
    The outcome is reported in ``extras["checkpoint"]`` (and mirrored
    as ``extras["recovery"]["resumed_from"]`` when a retry policy is
    active).
    """
    spec = method if isinstance(method, MethodSpec) else get_method(method)
    if spec.distributed is None:
        raise ConfigError(
            f"method {spec.name!r} has no distributed implementation"
        )
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    if k != 2 and not spec.kway:
        raise ConfigError(
            f"method {spec.name!r} is a bisection method; only native "
            f"k-way methods accept k={k} (use partition_kway for "
            "recursive bisection)"
        )
    if graph.num_vertices < max(2, k):
        raise PartitionError(
            f"cannot split {graph.num_vertices} vertices into "
            f"{max(2, k)} parts"
        )
    if spec.needs_coords:
        coords = as_coords(coords)
    policy = as_policy(checkpoint)
    ctx = None
    if policy is not None:
        ctx = CheckpointContext.for_run(policy, graph, spec, config, seed,
                                        k=k, cost_model=cost_model)
    if retry is None:
        return _engine_attempt(
            spec, graph, nranks, coords=coords, config=config, seed=seed,
            machine=machine, copy_mode=copy_mode, sanitize=sanitize,
            max_imbalance=max_imbalance, faults=faults,
            max_steps=max_steps, max_sim_seconds=max_sim_seconds,
            backend=backend, op_timeout=op_timeout,
            k=k, cost_model=cost_model, checkpoint=ctx,
        )
    return _run_recovering(
        spec, graph, nranks, coords=coords, config=config, seed=seed,
        machine=machine, copy_mode=copy_mode, sanitize=sanitize,
        max_imbalance=max_imbalance, faults=faults, retry=retry,
        max_steps=max_steps, max_sim_seconds=max_sim_seconds,
        backend=backend, op_timeout=op_timeout,
        k=k, cost_model=cost_model, checkpoint=ctx,
    )


# ----------------------------------------------------------------------
# historical wrappers (thin aliases over run_parallel)
# ----------------------------------------------------------------------

def scalapart_parallel(
    graph: CSRGraph,
    nranks: int,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
    machine: MachineModel = QDR_CLUSTER,
    copy_mode: str = "readonly",
    backend: str = "sim",
) -> PartitionResult:
    """Run distributed ScalaPart on ``nranks`` virtual ranks."""
    return run_parallel("ScalaPart", graph, nranks, config=config, seed=seed,
                        machine=machine, copy_mode=copy_mode, backend=backend)


def sp_pg7_nl_parallel(
    graph: CSRGraph,
    coords,
    nranks: int,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
    machine: MachineModel = QDR_CLUSTER,
    copy_mode: str = "readonly",
) -> PartitionResult:
    """Run the partition-only component (SP-PG7-NL) on given coordinates
    — the paper's Figure 4 comparison against RCB."""
    return run_parallel("SP-PG7-NL", graph, nranks, coords=coords,
                        config=config, seed=seed, machine=machine,
                        copy_mode=copy_mode)


def parmetis_parallel(
    graph: CSRGraph,
    nranks: int,
    seed: SeedLike = None,
    machine: MachineModel = QDR_CLUSTER,
    max_imbalance: float = 0.05,
    copy_mode: str = "readonly",
) -> PartitionResult:
    """Run the distributed ParMetis analogue."""
    return run_parallel("ParMetis-like", graph, nranks, seed=seed,
                        machine=machine, max_imbalance=max_imbalance,
                        copy_mode=copy_mode)


def scotch_parallel(
    graph: CSRGraph,
    nranks: int,
    seed: SeedLike = None,
    machine: MachineModel = QDR_CLUSTER,
    max_imbalance: float = 0.05,
    copy_mode: str = "readonly",
) -> PartitionResult:
    """Run the distributed Pt-Scotch analogue."""
    return run_parallel("Pt-Scotch-like", graph, nranks, seed=seed,
                        machine=machine, max_imbalance=max_imbalance,
                        copy_mode=copy_mode)


def rcb_parallel(
    graph: CSRGraph,
    coords,
    nranks: int,
    machine: MachineModel = QDR_CLUSTER,
    copy_mode: str = "readonly",
) -> PartitionResult:
    """Run distributed RCB on given coordinates."""
    return run_parallel("RCB", graph, nranks, coords=coords,
                        machine=machine, copy_mode=copy_mode)
