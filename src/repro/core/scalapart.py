"""ScalaPart — sequential reference implementation.

The full pipeline of paper §3 in its sequential form (the distributed
form in :mod:`repro.core.parallel` mirrors it stage for stage on the
virtual machine):

1. **Coarsening** — heavy-edge matching, every other graph retained
   (sizes ÷4 per level);
2. **Multilevel fixed-lattice embedding** — exact-force FDL on the
   coarsest graph, then projection (coordinates ×2, jitter) and
   fixed-lattice smoothing per level;
3. **Parallel geometric partitioning** — G7-NL-style great circles on
   the embedded graph, best cut by separator size;
4. **Strip refinement** — FM restricted to the coordinate strip around
   the winning circle.

:func:`sp_pg7_nl` exposes stages 3–4 alone: the paper's "SP-PG7-NL",
used when coordinates already exist (Figure 4's comparison with RCB).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..coarsen.matching import get_matcher
from ..embed.multilevel import multilevel_embedding
from ..errors import PartitionError
from ..geometric.gmt import geometric_partition
from ..graph.csr import CSRGraph
from ..refine.strip import strip_refine
from ..rng import SeedLike, derive_seed
from .config import ScalaPartConfig
from ..results import PartitionResult

__all__ = ["scalapart", "sp_pg7_nl"]


def sp_pg7_nl(
    graph: CSRGraph,
    coords: np.ndarray,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
) -> PartitionResult:
    """Partition a graph that already has coordinates (stages 3–4).

    Great-circle separators only (no lines, no eigenvectors — the
    choices §3 makes "in the interests of parallel scalability"),
    followed by strip-restricted FM.
    """
    cfg = config or ScalaPartConfig()
    t0 = time.perf_counter()
    gmt = geometric_partition(
        graph,
        coords,
        ncircles=cfg.ncircles,
        nlines=0,
        ncenterpoints=1,
        seed=derive_seed(seed, 0x5B),
        sample_size=cfg.centerpoint_sample,
    )
    t_geom = time.perf_counter() - t0
    t1 = time.perf_counter()
    refined = strip_refine(
        gmt.bisection,
        gmt.sdist,
        factor=cfg.strip_factor,
        max_imbalance=cfg.max_imbalance,
        max_passes=cfg.strip_passes,
    )
    t_refine = time.perf_counter() - t1
    return PartitionResult(
        bisection=refined.bisection,
        method="SP-PG7-NL",
        seconds=time.perf_counter() - t0,
        stage_seconds={"partition": t_geom, "refine": t_refine},
        extras={
            "geometric_cut": gmt.cut,
            "strip_size": refined.strip_size,
            "strip_factor": refined.strip_factor,
            "sdist": gmt.sdist,
        },
    )


def scalapart(
    graph: CSRGraph,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
) -> PartitionResult:
    """Full sequential ScalaPart: embed, then partition and refine."""
    if graph.num_vertices < 2:
        raise PartitionError("cannot bisect fewer than 2 vertices")
    cfg = config or ScalaPartConfig()
    t0 = time.perf_counter()
    emb = multilevel_embedding(
        graph,
        seed=derive_seed(seed, 0xE3BED0),
        c=cfg.c,
        coarsest_size=cfg.coarsest_size,
        coarsest_iters=cfg.coarsest_iters,
        smooth_iters=cfg.smooth_iters,
        jitter=cfg.jitter,
        repulsion="lattice",
        matcher=get_matcher(cfg.matching),
    )
    t_embed = time.perf_counter() - t0
    part = sp_pg7_nl(graph, emb.pos, cfg, seed=seed)
    return PartitionResult(
        bisection=part.bisection,
        method="ScalaPart",
        seconds=t_embed + part.seconds,
        stage_seconds={
            "embed": t_embed,
            **part.stage_seconds,
        },
        extras={
            **part.extras,
            "pos": emb.pos,
            "levels": emb.num_levels,
        },
    )
