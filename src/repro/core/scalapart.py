"""ScalaPart — sequential reference implementation.

The full pipeline of paper §3 in its sequential form, composed from
the shared :mod:`repro.core.stages` objects (the distributed form in
:mod:`repro.core.parallel` composes the *same* stage instances on the
virtual machine):

1. **Coarsening** — heavy-edge matching, every other graph retained
   (sizes ÷4 per level);
2. **Multilevel fixed-lattice embedding** — exact-force FDL on the
   coarsest graph, then projection (coordinates ×2, jitter) and
   fixed-lattice smoothing per level;
3. **Parallel geometric partitioning** — G7-NL-style great circles on
   the embedded graph, best cut by separator size;
4. **Strip refinement** — FM restricted to the coordinate strip around
   the winning circle.

:func:`sp_pg7_nl` exposes stages 3–4 alone: the paper's "SP-PG7-NL",
used when coordinates already exist (Figure 4's comparison with RCB).
Both drivers put the per-stage :class:`~repro.core.stages.StageArtifact`
objects in ``extras["artifacts"]``, so an embedding computed once can
be re-fed to any coordinate-based method.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CSRGraph
from ..rng import SeedLike
from .config import ScalaPartConfig
from ..results import PartitionResult
from .stages import EMBED_STAGE, GEOMETRIC_STAGE, STRIP_REFINE_STAGE

__all__ = ["scalapart", "sp_pg7_nl"]


def sp_pg7_nl(
    graph: CSRGraph,
    coords: np.ndarray,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
) -> PartitionResult:
    """Partition a graph that already has coordinates (stages 3–4).

    Great-circle separators only (no lines, no eigenvectors — the
    choices §3 makes "in the interests of parallel scalability"),
    followed by strip-restricted FM.  ``coords`` may be a raw ``(n, 2)``
    array or an :class:`~repro.core.stages.EmbeddingArtifact`.
    """
    cfg = config or ScalaPartConfig()
    geo = GEOMETRIC_STAGE.run(graph, coords, cfg, seed)
    ref = STRIP_REFINE_STAGE.run(graph, geo, cfg, seed)
    return PartitionResult(
        bisection=ref.bisection,
        method="SP-PG7-NL",
        seconds=geo.seconds + ref.seconds,
        stage_seconds={"partition": geo.seconds, "refine": ref.seconds},
        extras={
            **geo.info,
            **ref.info,
            "sdist": geo.sdist,
            "artifacts": {"partition": geo, "refine": ref},
        },
    )


def scalapart(
    graph: CSRGraph,
    config: Optional[ScalaPartConfig] = None,
    seed: SeedLike = None,
) -> PartitionResult:
    """Full sequential ScalaPart: embed, then partition and refine."""
    if graph.num_vertices < 2:
        raise PartitionError("cannot bisect fewer than 2 vertices")
    cfg = config or ScalaPartConfig()
    emb = EMBED_STAGE.run(graph, None, cfg, seed)
    part = sp_pg7_nl(graph, emb, cfg, seed=seed)
    return PartitionResult(
        bisection=part.bisection,
        method="ScalaPart",
        seconds=emb.seconds + part.seconds,
        stage_seconds={
            "embed": emb.seconds,
            **part.stage_seconds,
        },
        extras={
            **part.extras,
            "pos": emb.coords,
            "levels": emb.info["levels"],
            "artifacts": {"embed": emb, **part.extras["artifacts"]},
        },
    )
