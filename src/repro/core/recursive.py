"""k-way partitioning by recursive bisection.

The paper computes bisections ("a single edge separator"); production
partitioners expose k-way partitioning, almost always implemented as
recursive bisection over the bisector — exactly what this module does
for *every* bisection method in the library.  This is also how the
paper's motivating use case (distributing a simulation over P
processors) consumes the algorithm.

The driver recurses on induced subgraphs, splitting the part budget
proportionally (so k need not be a power of two), and supports any
callable with the library's bisector signature
``f(graph, **kwargs) -> PartitionResult`` or
``f(graph, coords, **kwargs) -> PartitionResult`` for coordinate-based
methods (coordinates are sliced along with the subgraphs), as well as
any registered method name.

Results are backed by :class:`repro.graph.partition.KWayPartition`;
the quality metrics (``kway_cut``, ``kway_imbalance``) live there and
are re-exported here for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CSRGraph
from ..graph.partition import (  # noqa: F401  (compat re-exports)
    KWayPartition,
    kway_cut,
    kway_cut_weight,
    kway_imbalance,
)
from ..rng import SeedLike, derive_seed

__all__ = [
    "KWayResult",
    "recursive_bisection",
    "kway_cut",
    "kway_cut_weight",
    "kway_imbalance",
]


@dataclass
class KWayResult:
    """A k-way partition with its quality metrics.

    Thin result wrapper around :class:`KWayPartition` keeping the
    recursion bookkeeping (`bisections`) next to the labelling.
    ``costs`` is the optional cost-model array the balance metrics are
    measured against (``graph.vwgt`` when ``None``).
    """

    graph: CSRGraph
    parts: np.ndarray
    k: int
    bisections: int = 0
    extras: Dict = field(default_factory=dict)
    costs: Optional[np.ndarray] = None

    @property
    def partition(self) -> KWayPartition:
        return KWayPartition(self.graph, self.parts, self.k, costs=self.costs)

    @property
    def cut_size(self) -> int:
        return kway_cut(self.graph, self.parts)

    @property
    def imbalance(self) -> float:
        return kway_imbalance(self.graph, self.parts, self.k, costs=self.costs)

    @property
    def part_sizes(self) -> np.ndarray:
        return np.bincount(self.parts, minlength=self.k)

    def validate(self, max_imbalance: Optional[float] = None) -> None:
        if self.parts.shape != (self.graph.num_vertices,):
            raise PartitionError("parts must label every vertex")
        if self.parts.size and (self.parts.min() < 0 or self.parts.max() >= self.k):
            raise PartitionError("part labels out of range")
        if max_imbalance is not None and self.imbalance > max_imbalance:
            raise PartitionError(
                f"k-way imbalance {self.imbalance:.4f} exceeds {max_imbalance:.4f}"
            )


def recursive_bisection(
    graph: CSRGraph,
    k: int,
    bisector: Union[Callable, str],
    *,
    coords: Optional[np.ndarray] = None,
    seed: SeedLike = None,
    min_part: int = 1,
    cost_model=None,
    **bisector_kwargs,
) -> KWayResult:
    """Partition ``graph`` into ``k`` parts via recursive bisection.

    ``bisector(graph, [coords,] seed=..., **kwargs)`` must return an
    object exposing ``.bisection`` (every partitioner in this library
    does) — or a *registered method name* ("scalapart", "RCB", ...),
    resolved through :data:`repro.core.methods.METHOD_REGISTRY`.  The
    part budget splits ⌈k/2⌉ : ⌊k/2⌋, and the bisector's balance point
    follows the budget so odd ``k`` stays balanced.

    ``cost_model`` only affects how the *result's* balance is measured
    (the recursion itself splits by vertex weight); pass the partition
    to :func:`repro.refine.kway_refine` to enforce a cost-model bound.
    """
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if isinstance(bisector, str):
        # local import: methods.py imports the drivers this module feeds
        from .methods import get_method

        spec = get_method(bisector)
        if spec.sequential is None:
            raise PartitionError(
                f"method {spec.name!r} has no sequential bisector"
            )
        if spec.needs_coords and coords is None:
            raise PartitionError(
                f"method {spec.name!r} needs coordinates for recursive "
                "bisection"
            )
        bisector = spec.sequential
    from .cost import resolve_costs

    costs = resolve_costs(graph, cost_model)
    parts = np.zeros(graph.num_vertices, dtype=np.int64)
    counter = {"bisections": 0}
    _recurse(graph, np.arange(graph.num_vertices), coords, k, 0, parts,
             bisector, seed, counter, bisector_kwargs, min_part)
    return KWayResult(
        graph, parts, k, bisections=counter["bisections"], costs=costs
    )


def _rebalance_to_fraction(bis, target_frac: float, tol: float = 0.02):
    """Shift a ~50/50 bisection toward ``target_frac`` weight on side 0.

    Pure bisectors split evenly, but odd part budgets need unequal
    splits (e.g. 2:1 for k=3).  The transfer grows *contiguously* by
    BFS from the cut boundary into the donor side, so both sides stay
    (near-)connected — moving scattered best-gain vertices instead
    would shred the subgraphs the recursion partitions next.
    """
    g = bis.graph
    side = bis.side.astype(np.int8).copy()
    total = g.total_vertex_weight
    if total <= 0:
        return side
    w0 = float(g.vwgt[side == 0].sum())
    err = w0 / total - target_frac
    if abs(err) <= tol:
        return side
    donor = 0 if err > 0 else 1
    need = abs(err) * total
    # BFS over the donor side, seeded at the cut boundary
    sep = bis.separator_edges()
    seeds = np.unique(sep[:, donor]) if sep.size else np.zeros(0, dtype=np.int64)
    visited = np.zeros(g.num_vertices, dtype=bool)
    order: list = []
    frontier = [int(v) for v in seeds]
    for v in frontier:
        visited[v] = True
    while frontier:
        order.extend(frontier)
        nxt = []
        for v in frontier:
            for u in g.neighbors(v):
                if not visited[u] and side[u] == donor:
                    visited[u] = True
                    nxt.append(int(u))
        frontier = nxt
    # disconnected leftovers of the donor side go last
    rest = np.flatnonzero((side == donor) & ~visited)
    full_order = np.concatenate([np.asarray(order, dtype=np.int64), rest]) \
        if order or rest.size else np.zeros(0, dtype=np.int64)
    if full_order.size <= 1:
        return side
    cum = np.cumsum(g.vwgt[full_order])
    k = int(np.searchsorted(cum, need, side="left")) + 1
    k = min(k, full_order.size - 1)  # never empty the donor side
    side[full_order[:k]] = 1 - donor
    return side


def _recurse(graph, ids, coords, k, base, parts, bisector, seed, counter,
             kwargs, min_part) -> None:
    parts[ids] = base
    if k <= 1 or ids.size <= min_part:
        return
    sub, sub_ids = graph.subgraph(ids)
    if sub.num_vertices < 2:
        return
    sub_coords = coords[sub_ids] if coords is not None else None
    sub_seed = derive_seed(seed, base, k)
    args = (sub,) if sub_coords is None else (sub, sub_coords)
    res = bisector(*args, seed=sub_seed, **kwargs)
    bis = res.bisection
    counter["bisections"] += 1
    left_k = (k + 1) // 2
    if k % 2 == 0:
        # orient so side 0 is the (weakly) heavier side
        w0, w1 = bis.part_weights
        side = bis.side if w0 >= w1 else 1 - bis.side
    else:
        side = _rebalance_to_fraction(bis, left_k / k)
    left = sub_ids[side == 0]
    right = sub_ids[side == 1]
    _recurse(graph, left, coords, left_k, base, parts, bisector, seed,
             counter, kwargs, min_part)
    _recurse(graph, right, coords, k - left_k, base + left_k, parts,
             bisector, seed, counter, kwargs, min_part)
