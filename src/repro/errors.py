"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures without
swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid graph operations."""


class PartitionError(ReproError):
    """Raised for invalid partitions (non-covering, unbalanced, ...)."""


class EmbeddingError(ReproError):
    """Raised when an embedding cannot be computed or is degenerate."""


class GeometryError(ReproError):
    """Raised by the geometric partitioner (degenerate point sets, ...)."""


class CommError(ReproError):
    """Raised by the virtual parallel machine for communication misuse."""


class DeadlockError(CommError):
    """Raised when the SPMD engine detects that no rank can make progress."""


class CommWarning(UserWarning):
    """Suspicious but non-fatal SPMD communication outcome.

    Emitted by :func:`~repro.parallel.engine.run_spmd` when a program
    finishes with undelivered messages still queued; the sanitizer mode
    (``sanitize=True``) escalates the same condition to
    :class:`CommError`.
    """


class ConfigError(ReproError):
    """Raised for invalid configuration values."""
