"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures without
swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid graph operations."""


class PartitionError(ReproError):
    """Raised for invalid partitions (non-covering, unbalanced, ...)."""


class EmbeddingError(ReproError):
    """Raised when an embedding cannot be computed or is degenerate."""


class GeometryError(ReproError):
    """Raised by the geometric partitioner (degenerate point sets, ...)."""


class CommError(ReproError):
    """Raised by the virtual parallel machine for communication misuse."""


class DeadlockError(CommError):
    """Raised when the SPMD engine detects that no rank can make progress."""


class ConfigError(ReproError):
    """Raised for invalid configuration values."""
