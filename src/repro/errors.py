"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures without
swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid graph operations."""


class PartitionError(ReproError):
    """Raised for invalid partitions (non-covering, unbalanced, ...)."""


class EmbeddingError(ReproError):
    """Raised when an embedding cannot be computed or is degenerate."""


class GeometryError(ReproError):
    """Raised by the geometric partitioner (degenerate point sets, ...)."""


class CommError(ReproError):
    """Raised by the virtual parallel machine for communication misuse."""


class DeadlockError(CommError):
    """Raised when the SPMD engine detects that no rank can make progress.

    ``parked`` carries one dict per blocked rank — ``rank``, ``kind``
    (the op the rank is parked on), ``peer`` (source rank for a recv,
    ``None`` for collectives), ``tag``, ``comm`` and ``phase`` — so a
    deadlock is diagnosable without re-running under trace.
    """

    def __init__(self, message: str, parked=None) -> None:
        super().__init__(message)
        self.parked = list(parked) if parked else []


class RankFailure(CommError):
    """A virtual rank was killed (fault injection) and the job depends
    on it.

    Raised when a surviving rank communicates with a dead rank (blocked
    recv with an empty mailbox, or a collective the dead rank can never
    join), or at exit when a killed rank's result is missing.  Carries
    the dead rank, the phase it died in, and the simulated clock at the
    point of detection.
    """

    def __init__(self, message: str, *, dead_rank: int = -1,
                 phase: str = "", sim_time: float = 0.0,
                 detected_by=None) -> None:
        super().__init__(message)
        self.dead_rank = dead_rank
        self.phase = phase
        self.sim_time = sim_time
        self.detected_by = detected_by


class BudgetExceededError(CommError):
    """A simulated-execution budget was exhausted.

    :func:`~repro.parallel.engine.run_spmd` converts runaway programs
    into this typed error instead of a hang when ``max_steps`` or
    ``max_sim_seconds`` is set.  ``budget`` names the exhausted limit
    (``"steps"`` or ``"sim_seconds"``); ``limit``/``used`` quantify it.
    """

    def __init__(self, message: str, *, budget: str = "steps",
                 limit: float = 0.0, used: float = 0.0) -> None:
        super().__init__(message)
        self.budget = budget
        self.limit = limit
        self.used = used


class CommWarning(UserWarning):
    """Suspicious but non-fatal SPMD communication outcome.

    Emitted by :func:`~repro.parallel.engine.run_spmd` when a program
    finishes with undelivered messages still queued; the warning text
    lists every pending message (source→dest, tag, words).  The
    sanitizer mode (``sanitize=True``) escalates the same condition to
    :class:`CommError`.
    """


class ConfigError(ReproError):
    """Raised for invalid configuration values."""


class CheckpointError(ReproError):
    """A checkpoint artifact cannot be used (missing, corrupt, or keyed
    to a different run).

    Raised by :meth:`~repro.parallel.checkpoint.CheckpointStore.load`;
    the resume path in :func:`~repro.core.parallel.run_parallel` always
    catches it — an unusable checkpoint demotes to a full recompute,
    never to a failed run.
    """


class CheckpointWarning(UserWarning):
    """A checkpoint artifact was found but ignored (corrupt payload,
    crc mismatch, stale key).  The run continues with a full recompute;
    the warning names the file and the reason so operators can clean up
    a poisoned checkpoint directory."""
