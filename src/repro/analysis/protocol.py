"""Whole-program protocol checker for SPMD rank programs (SP107–SP112).

:mod:`repro.analysis.lint` checks one function at a time; this module
checks a whole *program*.  It builds an index over every parsed file,
resolves ``yield from helper(...)`` calls across modules (including the
stage singletons like ``EMBED_STAGE.run_dist`` and the registry's
distributed entry points), and abstract-interprets each root rank
program into an ordered **communication summary** — the sequence of
comm ops it posts, with tag/peer expressions and the loop/branch
structure they sit under.  The summaries are then model-checked:

======  ================================================================
SP107   a point-to-point op with no tag-compatible counterpart anywhere
        in the program — the recv blocks forever (or the send is never
        consumed)
SP108   collective count divergence the per-function SP102 cannot see:
        a *subcommunicator* collective inside a rank-dependent branch
        that is not its membership guard (the hole in SP102's
        guarded-split exemption), a collective reached through a call
        under a rank-dependent branch, or a collective inside a loop
        whose trip count depends on ``comm.rank``
SP109   a send/recv tag or peer expression that depends on unordered
        (set-derived) iteration — rank A and rank B can disagree on who
        talks to whom
SP110   an unconditional recv whose every matching send occurs later in
        program order — the static twin of the runtime
        :class:`~repro.errors.DeadlockError` (all ranks block on the
        recv, nobody reaches the send)
SP111   a posted payload that *aliases* a buffer mutated later in the
        same phase — the static twin of the sanitizer's checksum catch
        (SP104 handles the directly-sent name; this rule sees views,
        reshapes and ``np.asarray`` aliases)
SP112   perf discipline in the committed hot kernels: ``np.add.at``
        where ``np.bincount`` is the established bit-identical fast
        path, and array allocation inside the iteration loops of
        functions on the hot-kernel list (``BENCH_kernels.json`` locks
        those paths in)
======  ================================================================

Known unsoundness (by design, to keep the shipped tree clean):

* conditionals that do not read ``comm.rank`` are treated as
  rank-consistent — data-dependent branches on allreduce results *are*
  consistent, arbitrary data may not be;
* results of symmetric collectives (``allreduce``/``bcast``/
  ``allgather`` and the pattern helpers) cleanse rank taint;
* unresolved calls are assumed to post no communication;
* SP110 only fires on recvs outside any branch, and tag matching is
  existence-based (constant tags compared, everything else a wildcard);
* SP111 treats subscripts as views only when a slice is present
  (``a[mask]`` copies; ``a[0]`` row views are missed).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .lint import (
    COLLECTIVE_METHODS,
    PATTERN_HELPERS,
    SEND_METHODS,
    Finding,
    LintUnit,
    _FUNC_NODES,
    _SCOPE_NODES,
    _assigned_names,
    _comm_call_op,
    _is_comm_receiver,
    _is_split_result,
    _own_walk,
    _reads_rank,
    _receiver_name,
    iter_python_files,
)

__all__ = [
    "check_units",
    "check_registry",
    "program_ops",
    "HOT_KERNELS",
    "ProgramIndex",
]

#: collectives whose result is bit-identical on every participating
#: rank — assigning from one *cleanses* rank taint (the canonical
#: "everyone agrees on the break" idiom in dist_kway_geometric etc.)
SYMMETRIC_OPS = frozenset({
    "allreduce", "bcast", "allgather", "barrier",
    "allgather_concat", "share_from_root",
})

#: functions whose inner loops are locked in by BENCH_kernels.json —
#: SP112 enforces the bincount/workspace discipline only here, so the
#: ``_*_reference`` twins keep their deliberately naive np.add.at
HOT_KERNELS = frozenset({
    "attractive_forces",
    "repulsive_forces_lattice",
    "repulsive_forces_bh",
    "beta_force_field",
    "lattice_stats",
    "force_directed_layout",
    "kway_geometric_assign",
})

_ALLOC_FUNCS = frozenset({
    "zeros", "ones", "empty", "full",
    "zeros_like", "ones_like", "empty_like", "full_like",
})

#: positional index of the tag argument per p2p op
_TAG_POS = {"send": 2, "isend": 2, "recv": 1, "sendrecv": 3}
#: positional indices of peer (dest/source) arguments per p2p op
_PEER_POS = {"send": (1,), "isend": (1,), "recv": (0,), "sendrecv": (1, 2)}
_PEER_KWARGS = frozenset({"dest", "source"})

_MAX_INLINE_DEPTH = 12

#: a constant tag that matches anything (non-constant tag expressions)
_WILDCARD = "*"


# ----------------------------------------------------------------------
# program index: modules, functions, methods, instances, imports
# ----------------------------------------------------------------------

def _module_name(path: str) -> Optional[str]:
    """Dotted module name for files under a ``src`` layout (or any path
    containing a ``repro`` package directory); None for loose files."""
    parts = list(Path(path).with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("src", "repro"):
        if anchor in parts:
            i = parts.index(anchor)
            mod = parts[i + 1:] if anchor == "src" else parts[i:]
            if mod:
                return ".".join(mod)
    return None


@dataclass
class FuncInfo:
    """One function/method definition anywhere in the indexed program."""

    unit: LintUnit
    module: Optional[str]
    qualname: str
    node: ast.AST                      # FunctionDef / AsyncFunctionDef
    class_name: Optional[str] = None
    locals: Dict[str, "FuncInfo"] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name  # type: ignore[attr-defined]

    def params(self) -> List[str]:
        a = self.node.args  # type: ignore[attr-defined]
        names = [p.arg for p in a.posonlyargs + a.args]
        if self.class_name and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names


class ModuleInfo:
    def __init__(self, unit: LintUnit, name: Optional[str]) -> None:
        self.unit = unit
        self.name = name
        self.functions: Dict[str, FuncInfo] = {}
        self.classes: Dict[str, Dict[str, FuncInfo]] = {}
        self.instances: Dict[str, str] = {}    # var -> class name
        self.imports: Dict[str, Tuple[str, Optional[str]]] = {}

    def _resolve_relative(self, module: Optional[str], level: int) -> Optional[str]:
        if level == 0:
            return module
        if not self.name:
            return None
        base = self.name.split(".")
        if len(base) < level:
            return None
        base = base[:-level]
        if module:
            base += module.split(".")
        return ".".join(base) if base else None


class ProgramIndex:
    """Cross-file view of every function, class, module-level instance
    and import binding in a set of parsed units."""

    def __init__(self, units: Sequence[LintUnit]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.all_funcs: List[FuncInfo] = []
        for u in units:
            self._index_unit(u)

    # -- construction ---------------------------------------------------
    def _index_unit(self, unit: LintUnit) -> None:
        mi = ModuleInfo(unit, _module_name(unit.path))
        self.by_path[unit.path] = mi
        if mi.name:
            self.modules[mi.name] = mi
        for stmt in unit.tree.body:
            self._index_stmt(mi, stmt)

    def _index_stmt(self, mi: ModuleInfo, stmt: ast.stmt) -> None:
        if isinstance(stmt, _FUNC_NODES):
            mi.functions[stmt.name] = self._add_func(mi, stmt, stmt.name, None)
        elif isinstance(stmt, ast.ClassDef):
            methods: Dict[str, FuncInfo] = {}
            for sub in stmt.body:
                if isinstance(sub, _FUNC_NODES):
                    methods[sub.name] = self._add_func(
                        mi, sub, f"{stmt.name}.{sub.name}", stmt.name)
            mi.classes[stmt.name] = methods
        elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            fn = stmt.value.func
            cls = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else None)
            if cls:
                for t in stmt.targets:
                    if isinstance(t, ast.Name):
                        mi.instances[t.id] = cls
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                mi.imports[bound] = (alias.name if alias.asname
                                     else alias.name.split(".")[0], None)
        elif isinstance(stmt, ast.ImportFrom):
            target = mi._resolve_relative(stmt.module, stmt.level)
            if target is None:
                return
            for alias in stmt.names:
                mi.imports[alias.asname or alias.name] = (target, alias.name)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # TYPE_CHECKING blocks, optional imports
            for sub in getattr(stmt, "body", []):
                self._index_stmt(mi, sub)
            for sub in getattr(stmt, "orelse", []):
                self._index_stmt(mi, sub)

    def _add_func(self, mi: ModuleInfo, node: ast.AST, qualname: str,
                  class_name: Optional[str]) -> FuncInfo:
        fi = FuncInfo(mi.unit, mi.name, qualname, node, class_name)
        self.all_funcs.append(fi)
        self._add_nested(mi, fi)
        return fi

    def _add_nested(self, mi: ModuleInfo, parent: FuncInfo) -> None:
        stack = list(ast.iter_child_nodes(parent.node))
        while stack:
            cur = stack.pop()
            if isinstance(cur, _FUNC_NODES):
                fi = FuncInfo(mi.unit, mi.name,
                              f"{parent.qualname}.{cur.name}", cur,
                              parent.class_name)
                parent.locals[cur.name] = fi
                self.all_funcs.append(fi)
                self._add_nested(mi, fi)
            elif not isinstance(cur, (ast.Lambda, ast.ClassDef)):
                stack.extend(ast.iter_child_nodes(cur))

    # -- lookup ---------------------------------------------------------
    def _function_in(self, mi: ModuleInfo, name: str,
                     hops: int = 2) -> Optional[FuncInfo]:
        if name in mi.functions:
            return mi.functions[name]
        if hops and name in mi.imports:
            mod, orig = mi.imports[name]
            tmi = self.modules.get(mod)
            if tmi is not None and orig is not None:
                return self._function_in(tmi, orig, hops - 1)
        return None

    def _instance_class(self, mi: ModuleInfo, name: str,
                        hops: int = 2) -> Optional[Tuple[ModuleInfo, str]]:
        if name in mi.instances:
            return mi, mi.instances[name]
        if hops and name in mi.imports:
            mod, orig = mi.imports[name]
            tmi = self.modules.get(mod)
            if tmi is not None and orig is not None:
                return self._instance_class(tmi, orig, hops - 1)
        return None

    def _class_method(self, mi: ModuleInfo, cls: str, attr: str,
                      hops: int = 2) -> Optional[FuncInfo]:
        if cls in mi.classes:
            return mi.classes[cls].get(attr)
        if hops and cls in mi.imports:
            mod, orig = mi.imports[cls]
            tmi = self.modules.get(mod)
            if tmi is not None and orig is not None:
                return self._class_method(tmi, orig, attr, hops - 1)
        return None

    def resolve_call(self, call: ast.Call, fi: FuncInfo) -> Optional[FuncInfo]:
        """Resolve the callee of ``yield from <call>`` to an indexed
        function, or None (opaque call)."""
        mi = self.by_path[fi.unit.path]
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in fi.locals:
                return fi.locals[func.id]
            return self._function_in(mi, func.id)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base in ("self", "cls") and fi.class_name:
                return self._class_method(mi, fi.class_name, func.attr)
            inst = self._instance_class(mi, base)
            if inst is not None:
                return self._class_method(inst[0], inst[1], func.attr)
            if base in mi.imports and mi.imports[base][1] is None:
                tmi = self.modules.get(mi.imports[base][0])
                if tmi is not None:
                    return tmi.functions.get(func.attr)
        return None

    def find_function(self, path: str, name: str,
                      lineno: Optional[int] = None) -> Optional[FuncInfo]:
        """Locate a function by file + name (+ def line to disambiguate)."""
        best = None
        for fi in self.all_funcs:
            if fi.unit.path != path or fi.name != name:
                continue
            if lineno is None or fi.node.lineno == lineno:  # type: ignore[attr-defined]
                return fi
            best = best or fi
        return best

    def roots(self) -> List[FuncInfo]:
        """Generator functions nobody in the index drives with
        ``yield from`` — the rank programs handed to run_spmd."""
        called: Set[int] = set()
        for fi in self.all_funcs:
            for node in _own_walk(fi.node):
                if isinstance(node, ast.YieldFrom) \
                        and isinstance(node.value, ast.Call) \
                        and _comm_call_op(node.value) is None:
                    target = self.resolve_call(node.value, fi)
                    if target is not None:
                        called.add(id(target))
        out = []
        for fi in self.all_funcs:
            if id(fi) in called or fi.name in PATTERN_HELPERS:
                continue
            if any(isinstance(n, (ast.Yield, ast.YieldFrom))
                   for n in _own_walk(fi.node)):
                out.append(fi)
        return out


# ----------------------------------------------------------------------
# per-function environment: taint, subcomms, unordered names
# ----------------------------------------------------------------------

@dataclass
class FuncEnv:
    tainted: Set[str] = field(default_factory=set)
    subcomms: Set[str] = field(default_factory=set)
    unordered: Set[str] = field(default_factory=set)


def _assign_parts(node: ast.AST):
    if isinstance(node, ast.Assign):
        return node.targets, node.value
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return [node.target], node.value
    if isinstance(node, ast.NamedExpr):
        return [node.target], node.value
    return None, None


def _symmetric_yield(value: ast.AST) -> bool:
    """``yield from comm.allreduce(...)`` and friends: the result is
    identical on every rank, so it cleanses taint."""
    if not isinstance(value, ast.YieldFrom):
        return False
    call = value.value
    if not isinstance(call, ast.Call):
        return False
    op = _comm_call_op(call)
    return op is not None and op in SYMMETRIC_OPS


def _is_unordered_expr(expr: ast.AST, unordered: Set[str]) -> bool:
    """Does ``expr`` produce hash-ordered content (a set, or a
    list/tuple built from one)?  ``sorted(...)`` cleanses."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in unordered
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        fn = expr.func.id
        if fn in ("set", "frozenset"):
            return True
        if fn == "sorted":
            return False
        if fn in ("list", "tuple", "iter", "enumerate", "reversed") \
                and expr.args:
            return _is_unordered_expr(expr.args[0], unordered)
    if isinstance(expr, ast.BinOp):
        return (_is_unordered_expr(expr.left, unordered)
                or _is_unordered_expr(expr.right, unordered))
    return False


def _reads_unordered(expr: ast.AST, unordered: Set[str]) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "sorted":
            return False
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and node.id in unordered:
            return True
    return False


def _func_env(fn: ast.AST) -> FuncEnv:
    env = FuncEnv()
    own = [n for n in _own_walk(fn)]
    cleansed: Set[str] = set()
    for _round in range(3):  # cheap fixpoint: taint chains are short
        before = (len(env.tainted), len(env.subcomms), len(env.unordered))
        for node in own:
            targets, value = _assign_parts(node)
            if value is not None:
                names = [n for t in targets for n in _assigned_names(t)]
                if _is_split_result(value) or (
                        isinstance(value, ast.Name)
                        and value.id in env.subcomms):
                    env.subcomms.update(names)
                if _symmetric_yield(value):
                    cleansed.update(names)
                elif _reads_rank(value, env.tainted):
                    env.tainted.update(names)
                if _is_unordered_expr(value, env.unordered):
                    env.unordered.update(names)
            if isinstance(node, (ast.For, ast.AsyncFor)) \
                    and _is_unordered_expr(node.iter, env.unordered):
                env.unordered.update(_assigned_names(node.target))
        if (len(env.tainted), len(env.subcomms),
                len(env.unordered)) == before:
            break
    env.tainted -= cleansed
    # a subcomm handle is rank-dependent only in its None-ness (the
    # membership guards handle that); reads of 'sub.size' etc. are
    # identical on every member rank, so the *name* is not taint
    env.tainted -= env.subcomms
    return env


def _membership_guard(test: ast.AST,
                      subcomms: Set[str]) -> Tuple[Optional[str], bool]:
    """If ``test`` is a pure membership check on a subcommunicator name
    ('sub is not None', 'sub is None', 'sub', 'not sub'), return
    (name, guards_then_arm)."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.left, ast.Name) \
            and test.left.id in subcomms \
            and isinstance(test.comparators[0], ast.Constant) \
            and test.comparators[0].value is None:
        if isinstance(test.ops[0], ast.IsNot):
            return test.left.id, True
        if isinstance(test.ops[0], ast.Is):
            return test.left.id, False
    if isinstance(test, ast.Name) and test.id in subcomms:
        return test.id, True
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not) \
            and isinstance(test.operand, ast.Name) \
            and test.operand.id in subcomms:
        return test.operand.id, False
    return None, False


# ----------------------------------------------------------------------
# whole-program traversal
# ----------------------------------------------------------------------

@dataclass
class CommOp:
    """One op in a flattened communication summary."""

    op: str
    kind: str            # "send" | "recv" | "sendrecv" | "collective"
    tag: object
    conditional: bool
    index: int
    node: ast.AST
    path: str


class _Cond:
    """One active rank-dependent branch or loop during traversal."""

    __slots__ = ("frame", "rank_dep", "guarded", "is_loop")

    def __init__(self, frame, rank_dep: bool, guarded: Set[Tuple[int, str]],
                 is_loop: bool) -> None:
        self.frame = frame
        self.rank_dep = rank_dep
        self.guarded = guarded
        self.is_loop = is_loop


class _Frame:
    """One inlined call during traversal."""

    __slots__ = ("fi", "env", "parent", "callsite", "sub_params")

    def __init__(self, fi: FuncInfo, env: FuncEnv, parent, callsite,
                 sub_params: Set[str]) -> None:
        self.fi = fi
        self.env = env
        self.parent = parent
        self.callsite = callsite
        self.sub_params = sub_params


class _ProtoChecker:
    def __init__(self, index: ProgramIndex,
                 add: Callable[[str, int, int, str, str], None]) -> None:
        self.index = index
        self.add = add
        self._envs: Dict[int, FuncEnv] = {}

    def env_of(self, fi: FuncInfo) -> FuncEnv:
        env = self._envs.get(id(fi))
        if env is None:
            env = self._envs[id(fi)] = _func_env(fi.node)
        return env

    def check_root(self, fi: FuncInfo) -> None:
        run = _RootRun(self)
        run.extract(fi)
        run.finish()

    def summarize(self, fi: FuncInfo) -> List[CommOp]:
        run = _RootRun(self, report=False)
        run.extract(fi)
        return run.ops


class _RootRun:
    """Extraction + checks for one root rank program."""

    def __init__(self, checker: _ProtoChecker, report: bool = True) -> None:
        self.checker = checker
        self.index = checker.index
        self.report = report
        self.ops: List[CommOp] = []
        self.conds: List[_Cond] = []
        self.stack: List[int] = []       # FuncInfo ids, recursion guard
        self._sp108_seen: Set[Tuple[int, str, int]] = set()

    # -- plumbing -------------------------------------------------------
    def _add(self, node: ast.AST, path: str, code: str, message: str) -> None:
        if self.report:
            self.checker.add(path, getattr(node, "lineno", 1),
                             getattr(node, "col_offset", 0) + 1,
                             code, message)

    def extract(self, fi: FuncInfo) -> None:
        frame = _Frame(fi, self.checker.env_of(fi), None, None, set())
        self.stack.append(id(fi))
        self._walk_body(fi.node.body, frame)  # type: ignore[attr-defined]
        self.stack.pop()

    # -- statement walk (execution order) -------------------------------
    def _walk_body(self, body: Sequence[ast.stmt], frame: _Frame) -> None:
        for stmt in body:
            self._walk_stmt(stmt, frame)

    def _walk_stmt(self, stmt: ast.stmt, frame: _Frame) -> None:
        if isinstance(stmt, _SCOPE_NODES):
            return
        if isinstance(stmt, ast.If):
            self._scan_exprs(stmt.test, frame)
            guard, guards_then = _membership_guard(
                stmt.test, frame.env.subcomms | frame.sub_params)
            rank_dep = _reads_rank(stmt.test, frame.env.tainted)
            key = (id(frame), guard) if guard else None
            then_guard = {key} if key and guards_then else set()
            else_guard = {key} if key and not guards_then else set()
            self.conds.append(_Cond(frame, rank_dep or guard is not None,
                                    then_guard, False))
            self._walk_body(stmt.body, frame)
            self.conds.pop()
            if stmt.orelse:
                self.conds.append(_Cond(frame, rank_dep or guard is not None,
                                        else_guard, False))
                self._walk_body(stmt.orelse, frame)
                self.conds.pop()
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_exprs(stmt.iter, frame)
            rank_dep = _reads_rank(stmt.iter, frame.env.tainted)
            self.conds.append(_Cond(frame, rank_dep, set(), True))
            self._walk_body(stmt.body, frame)
            self.conds.pop()
            self._walk_body(stmt.orelse, frame)
        elif isinstance(stmt, ast.While):
            self._scan_exprs(stmt.test, frame)
            guard, guards_then = _membership_guard(
                stmt.test, frame.env.subcomms | frame.sub_params)
            rank_dep = _reads_rank(stmt.test, frame.env.tainted)
            guarded = {(id(frame), guard)} if guard and guards_then else set()
            self.conds.append(_Cond(frame, rank_dep or guard is not None,
                                    guarded, True))
            self._walk_body(stmt.body, frame)
            self.conds.pop()
            self._walk_body(stmt.orelse, frame)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, frame)
            for handler in stmt.handlers:
                self._walk_body(handler.body, frame)
            self._walk_body(stmt.orelse, frame)
            self._walk_body(stmt.finalbody, frame)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_exprs(item.context_expr, frame)
            self._walk_body(stmt.body, frame)
        else:
            self._scan_exprs(stmt, frame)

    def _scan_exprs(self, root: ast.AST, frame: _Frame) -> None:
        for node in _own_walk(root):
            if isinstance(node, ast.YieldFrom) \
                    and isinstance(node.value, ast.Call):
                self._handle_call(node.value, frame)

    # -- one yield-from call --------------------------------------------
    def _handle_call(self, call: ast.Call, frame: _Frame) -> None:
        op = _comm_call_op(call)
        if op is not None:
            self._record_op(call, op, frame)
            return
        callee = self.index.resolve_call(call, frame.fi)
        if callee is None or id(callee) in self.stack \
                or len(self.stack) > _MAX_INLINE_DEPTH:
            return
        sub_params: Set[str] = set()
        comm_arg: Optional[str] = None
        params = callee.params()
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Name) and i < len(params) and (
                    _is_comm_receiver(arg.id)
                    or arg.id in frame.env.subcomms
                    or arg.id in frame.sub_params):
                comm_arg = arg.id
                if arg.id in frame.env.subcomms or arg.id in frame.sub_params:
                    sub_params.add(params[i])
                # propagate membership guards across the call boundary
                new = _Frame(callee, self.checker.env_of(callee), frame,
                             call, sub_params)
                for cond in self.conds:
                    if (id(frame), comm_arg) in cond.guarded:
                        cond.guarded.add((id(new), params[i]))
                break
        else:
            new = _Frame(callee, self.checker.env_of(callee), frame,
                         call, sub_params)
        self.stack.append(id(callee))
        self._walk_body(callee.node.body, new)  # type: ignore[attr-defined]
        self.stack.pop()
        # drop guard keys that referenced the popped frame
        for cond in self.conds:
            cond.guarded = {k for k in cond.guarded if k[0] != id(new)}

    def _op_receiver(self, call: ast.Call, op: str) -> Optional[str]:
        if isinstance(call.func, ast.Attribute):
            return _receiver_name(call.func)
        # pattern helper: the communicator is the first argument
        if call.args and isinstance(call.args[0], ast.Name):
            return call.args[0].id
        return None

    def _record_op(self, call: ast.Call, op: str, frame: _Frame) -> None:
        conditional = any(not c.is_loop for c in self.conds)
        if op in COLLECTIVE_METHODS or op in PATTERN_HELPERS:
            self._check_sp108(call, op, frame)
            self.ops.append(CommOp(op, "collective", None, conditional,
                                   len(self.ops), call, frame.fi.unit.path))
            return
        self._check_sp109(call, op, frame)
        kind = "sendrecv" if op == "sendrecv" else (
            "recv" if op == "recv" else "send")
        self.ops.append(CommOp(op, kind, self._tag_of(call, op), conditional,
                               len(self.ops), call, frame.fi.unit.path))

    @staticmethod
    def _tag_of(call: ast.Call, op: str):
        expr = None
        for kw in call.keywords:
            if kw.arg == "tag":
                expr = kw.value
        if expr is None:
            pos = _TAG_POS.get(op)
            if pos is not None and len(call.args) > pos:
                expr = call.args[pos]
        if expr is None:
            return 0  # engine default
        try:
            return ast.literal_eval(expr)
        except (ValueError, SyntaxError):
            return _WILDCARD

    # -- SP108 ----------------------------------------------------------
    def _check_sp108(self, call: ast.Call, op: str, frame: _Frame) -> None:
        receiver = self._op_receiver(call, op)
        is_sub = receiver is not None and (
            receiver in frame.env.subcomms or receiver in frame.sub_params)
        for cond in self.conds:
            if not cond.rank_dep:
                continue
            if receiver is not None and (id(frame), receiver) in cond.guarded:
                continue
            if cond.frame is frame:
                if cond.is_loop:
                    site, path = call, frame.fi.unit.path
                    msg = (f"collective '{op}' inside a loop whose trip "
                           "count depends on comm.rank — ranks post "
                           "different collective counts")
                elif is_sub:
                    site, path = call, frame.fi.unit.path
                    msg = (f"collective '{op}' on subcommunicator "
                           f"'{receiver}' inside a rank-dependent branch "
                           "that is not its membership guard — member "
                           "ranks disagree on the collective count")
                else:
                    continue  # SP102's territory (same-function, parent comm)
            else:
                site, path = self._callsite_under(cond, frame)
                what = "loop" if cond.is_loop else "branch"
                msg = (f"collective '{op}' reached through this call "
                       f"inside a rank-dependent {what} — ranks will "
                       "disagree on the collective count")
            key = (id(cond), path, getattr(site, "lineno", 0))
            if key in self._sp108_seen:
                continue
            self._sp108_seen.add(key)
            self._add(site, path, "SP108", msg)

    def _callsite_under(self, cond: _Cond, frame: _Frame):
        """The call made inside cond's frame that leads to ``frame``."""
        f = frame
        while f.parent is not None and f.parent is not cond.frame:
            f = f.parent
        if f.parent is cond.frame and f.callsite is not None:
            return f.callsite, cond.frame.fi.unit.path
        return f.callsite or f.fi.node, f.fi.unit.path

    # -- SP109 ----------------------------------------------------------
    def _check_sp109(self, call: ast.Call, op: str, frame: _Frame) -> None:
        exprs: List[ast.AST] = []
        for kw in call.keywords:
            if kw.arg in _PEER_KWARGS or kw.arg == "tag":
                exprs.append(kw.value)
        for pos in _PEER_POS.get(op, ()) + (_TAG_POS.get(op, -1),):
            if 0 <= pos < len(call.args):
                exprs.append(call.args[pos])
        for expr in exprs:
            if _reads_unordered(expr, frame.env.unordered):
                self._add(call, frame.fi.unit.path, "SP109",
                          f"'{op}' peer/tag depends on unordered (set-"
                          "derived) iteration — ranks can disagree on "
                          "the matching order")
                return

    # -- SP107 / SP110 ---------------------------------------------------
    def finish(self) -> None:
        sends = [o for o in self.ops if o.kind in ("send", "sendrecv")]
        recvs = [o for o in self.ops if o.kind in ("recv", "sendrecv")]

        def compat(a: CommOp, b: CommOp) -> bool:
            return _WILDCARD in (a.tag, b.tag) or a.tag == b.tag

        for r in self.ops:
            if r.kind != "recv":
                continue
            matches = [s for s in sends if compat(r, s)]
            if not matches:
                self._add(r.node, r.path, "SP107",
                          f"'recv' (tag {r.tag!r}) has no matching send "
                          "anywhere in this rank program")
            elif not r.conditional and all(s.index > r.index for s in matches):
                self._add(r.node, r.path, "SP110",
                          "every matching send is posted after this "
                          "unconditional recv — all ranks block here "
                          "(runtime would raise DeadlockError)")
        for s in self.ops:
            if s.kind != "send" or not recvs:
                continue
            if not any(compat(s, r) for r in recvs):
                self._add(s.node, s.path, "SP107",
                          f"'{s.op}' (tag {s.tag!r}) has no matching recv "
                          "anywhere in this rank program")


# ----------------------------------------------------------------------
# SP111: alias-aware post-send mutation (per function)
# ----------------------------------------------------------------------

#: ndarray methods returning views of the receiver
_VIEW_METHODS = frozenset({"reshape", "ravel", "view", "transpose",
                           "swapaxes", "squeeze"})
#: numpy namespace functions that may return their argument (no copy)
_VIEW_FUNCS = frozenset({"asarray", "ascontiguousarray", "atleast_1d",
                         "atleast_2d", "atleast_3d"})
#: wrappers that hold a reference to their argument
_REF_WRAPPERS = frozenset({"Shared"})

_MUTATOR_METHODS_111 = frozenset({
    "fill", "sort", "put", "resize", "itemset", "partition", "setflags",
    "setfield", "byteswap",
})


def _alias_base(expr: ast.AST) -> Optional[str]:
    """Name whose memory ``expr`` can alias, or None for fresh values."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Subscript):
        if any(isinstance(n, ast.Slice) for n in ast.walk(expr.slice)) \
                or isinstance(expr.slice, ast.Slice):
            return _alias_base(expr.value)
        return None
    if isinstance(expr, ast.Attribute) and expr.attr == "T":
        return _alias_base(expr.value)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr in _VIEW_METHODS:
            return _alias_base(func.value)
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name in _VIEW_FUNCS | _REF_WRAPPERS and expr.args:
            return _alias_base(expr.args[0])
    return None


class _AliasScan:
    """Execution-order scan of one function for SP111: payloads posted
    to a send whose *aliases* are mutated before the phase boundary."""

    def __init__(self, path: str,
                 add: Callable[[str, int, int, str, str], None]) -> None:
        self.path = path
        self.add = add

    def run(self, fn: ast.AST) -> None:
        state: Dict[str, object] = {"root": {}, "posted": {}}
        self._scan(getattr(fn, "body", []), state["root"], state["posted"])

    # state: root_of maps name -> ultimate alias root name;
    #        posted maps root -> (line, op, directly_sent_name_or_None)
    def _find(self, root_of: Dict[str, str], name: str) -> str:
        seen = set()
        while name in root_of and name not in seen:
            seen.add(name)
            name = root_of[name]
        return name

    def _scan(self, body: Sequence[ast.stmt], root_of: Dict[str, str],
              posted: Dict[str, Tuple[int, str, Optional[str]]]) -> None:
        for stmt in body:
            if isinstance(stmt, _SCOPE_NODES):
                continue
            if isinstance(stmt, ast.If):
                self._exprs(stmt.test, root_of, posted)
                t_r, t_p = dict(root_of), dict(posted)
                e_r, e_p = dict(root_of), dict(posted)
                self._scan(stmt.body, t_r, t_p)
                self._scan(stmt.orelse, e_r, e_p)
                root_of.clear(); root_of.update(e_r); root_of.update(t_r)
                posted.clear(); posted.update(e_p); posted.update(t_p)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                header = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) \
                    else stmt.test
                self._exprs(header, root_of, posted)
                for _pass in range(2):
                    self._scan(stmt.body, root_of, posted)
                self._scan(stmt.orelse, root_of, posted)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._exprs(item.context_expr, root_of, posted)
                self._scan(stmt.body, root_of, posted)
            elif isinstance(stmt, ast.Try):
                self._scan(stmt.body, root_of, posted)
                for handler in stmt.handlers:
                    self._scan(handler.body, root_of, posted)
                self._scan(stmt.orelse, root_of, posted)
                self._scan(stmt.finalbody, root_of, posted)
            else:
                self._simple(stmt, root_of, posted)

    def _simple(self, stmt: ast.stmt, root_of, posted) -> None:
        self._exprs(stmt, root_of, posted)
        if isinstance(stmt, ast.Assign):
            base = _alias_base(stmt.value)
            for target in stmt.targets:
                self._target(target, stmt, base, root_of, posted)
        elif isinstance(stmt, ast.AugAssign):
            self._target(stmt.target, stmt, None, root_of, posted, aug=True)

    def _target(self, target, stmt, base, root_of, posted,
                aug: bool = False) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._target(elt, stmt, None, root_of, posted, aug)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            tb = _alias_base(target.value) if not isinstance(
                target.value, ast.Name) else target.value.id
            if tb is not None:
                self._mutation(stmt, tb, root_of, posted)
        elif isinstance(target, ast.Name):
            if aug:
                self._mutation(stmt, target.id, root_of, posted)
            elif base is not None and base != target.id:
                root_of[target.id] = self._find(root_of, base)
            else:
                root_of.pop(target.id, None)

    def _exprs(self, root: ast.AST, root_of, posted) -> None:
        for node in _own_walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "set_phase" \
                    and _is_comm_receiver(_receiver_name(func)):
                posted.clear()
            elif func.attr in _MUTATOR_METHODS_111 \
                    and isinstance(func.value, ast.Name):
                self._mutation(node, func.value.id, root_of, posted)
            elif func.attr in ("at", "copyto", "put", "place", "putmask") \
                    and node.args and isinstance(node.args[0], ast.Name):
                self._mutation(node, node.args[0].id, root_of, posted)
            elif func.attr in SEND_METHODS \
                    and _is_comm_receiver(_receiver_name(func)):
                payload = node.args[0] if node.args else None
                if payload is None:
                    for kw in node.keywords:
                        if kw.arg == "obj":
                            payload = kw.value
                if payload is None:
                    continue
                base = _alias_base(payload)
                if base is None:
                    continue
                direct = payload.id if isinstance(payload, ast.Name) else None
                posted[self._find(root_of, base)] = (
                    node.lineno, func.attr, direct)

    def _mutation(self, node: ast.AST, name: str, root_of, posted) -> None:
        root = self._find(root_of, name)
        entry = posted.get(root)
        if entry is None:
            return
        line, op, direct = entry
        if direct == name:
            return  # the directly-sent name: SP104's finding, not ours
        self.add(self.path, getattr(node, "lineno", 1),
                 getattr(node, "col_offset", 0) + 1, "SP111",
                 f"'{name}' aliases the payload posted to '{op}' on line "
                 f"{line} — mutating it before the phase boundary "
                 "corrupts the message under copy_mode='readonly'")
        del posted[root]


def _sp111_unit(unit: LintUnit, add) -> None:
    for node in ast.walk(unit.tree):
        if isinstance(node, _FUNC_NODES):
            _AliasScan(unit.path, add).run(node)


# ----------------------------------------------------------------------
# SP112: perf discipline in the committed hot kernels (per file)
# ----------------------------------------------------------------------

def _sp112_unit(unit: LintUnit, add) -> None:
    for fn in ast.walk(unit.tree):
        if not isinstance(fn, _FUNC_NODES) or fn.name not in HOT_KERNELS:
            continue
        for node in _own_walk(fn):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "at" \
                    and isinstance(node.func.value, ast.Attribute) \
                    and node.func.value.attr == "add":
                add(unit.path, node.lineno, node.col_offset + 1, "SP112",
                    f"np.add.at in hot kernel '{fn.name}' — np.bincount "
                    "is the committed bit-identical fast path "
                    "(BENCH_kernels.json)")
        _alloc_scan(fn, unit, add)


def _alloc_scan(fn: ast.AST, unit: LintUnit, add) -> None:
    def scan(node: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            loop_now = in_loop or isinstance(
                child, (ast.For, ast.AsyncFor, ast.While))
            if in_loop and isinstance(child, ast.Call) \
                    and isinstance(child.func, ast.Attribute) \
                    and child.func.attr in _ALLOC_FUNCS:
                add(unit.path, child.lineno, child.col_offset + 1, "SP112",
                    f"array allocated inside the iteration loop of hot "
                    f"kernel '{fn.name}' — hoist the workspace out of "
                    "the loop (BENCH_kernels.json locks this path in)")
            scan(child, loop_now)
    scan(fn, False)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------

def _make_adder(units: Sequence[LintUnit], findings: List[Finding]):
    by_path = {u.path: u for u in units}
    def add(path: str, line: int, col: int, code: str, message: str) -> None:
        unit = by_path.get(path)
        if unit is not None and unit.suppressions.is_suppressed(line, code):
            return
        f = Finding(path, line, col, code, message)
        if f not in findings:
            findings.append(f)
    return add


def check_units(units: Sequence[LintUnit]) -> List[Finding]:
    """Run the whole-program protocol rules over parsed units.

    Findings are already suppression-filtered (``# repro: lint-ok``)
    and unsorted — the caller merges them into per-file order.
    """
    index = ProgramIndex(units)
    findings: List[Finding] = []
    add = _make_adder(units, findings)
    checker = _ProtoChecker(index, add)
    for fi in index.roots():
        checker.check_root(fi)
    for unit in units:
        _sp111_unit(unit, add)
        _sp112_unit(unit, add)
    return findings


def check_registry() -> Tuple[List[Finding], List[str]]:
    """Model-check every registered MethodSpec's distributed entry
    point against the full ``repro`` package tree.

    Returns ``(findings, entry point names checked)``.
    """
    import inspect

    from ..core.methods import distributed_entry_points

    pkg_root = Path(__file__).resolve().parents[1]
    units = []
    for p in iter_python_files([pkg_root]):
        try:
            units.append(LintUnit.parse(p.read_text(encoding="utf-8"), str(p)))
        except SyntaxError:
            continue
    index = ProgramIndex(units)
    findings: List[Finding] = []
    add = _make_adder(units, findings)
    checker = _ProtoChecker(index, add)
    resolved = {str(Path(u.path).resolve()): u.path for u in units}
    names: List[str] = []
    for method, fn in distributed_entry_points():
        try:
            src = inspect.getsourcefile(fn)
            lineno = fn.__code__.co_firstlineno
        except (TypeError, AttributeError):
            continue
        if src is None:
            continue
        upath = resolved.get(str(Path(src).resolve()))
        fi = index.find_function(upath, fn.__name__, lineno) if upath else None
        if fi is None and upath is not None:
            fi = index.find_function(upath, fn.__name__)
        if fi is None:
            continue
        names.append(method)
        checker.check_root(fi)
    return findings, names


def program_ops(source: str, func: str,
                path: str = "<proto>") -> List[Tuple[str, str, object, bool]]:
    """Communication summary of one function in ``source`` —
    ``(op, kind, tag, conditional)`` per flattened op.  Test/debug aid."""
    unit = LintUnit.parse(source, path)
    index = ProgramIndex([unit])
    fi = index.find_function(path, func)
    if fi is None:
        raise ValueError(f"no function {func!r} in source")
    checker = _ProtoChecker(index, lambda *a: None)
    return [(o.op, o.kind, o.tag, o.conditional)
            for o in checker.summarize(fi)]
