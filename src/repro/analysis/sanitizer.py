"""Dynamic sanitizer for the SPMD engine (``run_spmd(..., sanitize=True)``).

Runtime half of the correctness analyzer (the static half is
:mod:`repro.analysis.lint`).  When enabled, the engine

* checksums every posted payload and raises
  :class:`~repro.errors.CommError` if the sender (or anyone aliasing
  its memory) mutates the buffer before delivery — the bug class the
  zero-copy ``copy_mode="readonly"`` contract makes possible;
* records a per-rank ledger of completed collectives and cross-checks
  the per-communicator op sequences on exit (and enriches the engine's
  mismatched-collective error with each rank's recent history);
* reports communication generators that were created but never driven
  with ``yield from`` when their rank program returns (the dynamic
  counterpart of lint rule SP101);
* escalates the undelivered-messages-at-exit warning to an error.

The sanitizer costs a checksum walk per payload per communication
event, so it is strictly opt-in: ``run_spmd`` only consults it behind
``is not None`` checks, keeping the default path unchanged (the kernel
micro-benchmarks guard this).  Set ``REPRO_SANITIZE=1`` to switch it on
process-wide, e.g. for a CI test shard.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Sanitizer", "payload_checksum"]


def _crc(obj: Any, crc: int, seen: set) -> int:
    if obj is None:
        return zlib.crc32(b"N", crc)
    if isinstance(obj, np.ndarray):
        head = f"A{obj.shape}{obj.dtype.str}".encode()
        return zlib.crc32(obj.tobytes(), zlib.crc32(head, crc))
    if isinstance(obj, (bool, int, float, complex, np.generic, str, bytes)):
        return zlib.crc32(repr(obj).encode(), crc)
    oid = id(obj)
    if oid in seen:
        return zlib.crc32(b"C", crc)
    seen.add(oid)
    if isinstance(obj, (list, tuple)):
        tag = "L" if isinstance(obj, list) else "T"
        crc = zlib.crc32(f"{tag}{len(obj)}".encode(), crc)
        for x in obj:
            crc = _crc(x, crc, seen)
        return crc
    if isinstance(obj, dict):
        crc = zlib.crc32(f"D{len(obj)}".encode(), crc)
        for k, v in obj.items():
            crc = _crc(v, _crc(k, crc, seen), seen)
        return crc
    if isinstance(obj, (set, frozenset)):
        # order-insensitive: XOR the per-element checksums
        acc = 0
        for x in obj:
            acc ^= _crc(x, 0, seen)
        return zlib.crc32(f"S{len(obj)}:{acc}".encode(), crc)
    d = getattr(obj, "__dict__", None)
    if d is not None:
        return _crc(d, zlib.crc32(b"O", crc), seen)
    slots = getattr(type(obj), "__slots__", None)
    if slots:
        crc = zlib.crc32(b"O", crc)
        names = (slots,) if isinstance(slots, str) else slots
        for name in names:
            if hasattr(obj, name):
                crc = _crc(getattr(obj, name), crc, seen)
        return crc
    # opaque object: nothing checksummable
    return crc


def payload_checksum(obj: Any) -> int:
    """Structural checksum of a message payload.

    Covers NumPy array bytes (shape and dtype included), scalars,
    strings, containers, and the ``__dict__``/``__slots__`` of plain
    objects — notably :class:`~repro.graph.distributed.Shared`, whose
    wrapped value senders must also leave untouched.  Cycle-safe.
    """
    return _crc(obj, 0, set())


class Sanitizer:
    """Per-run sanitizer state owned by one engine instance."""

    __slots__ = ("nranks", "ledgers", "_pending", "_next_token")

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        #: per-rank ordered (cid, kind, root) of completed collectives
        self.ledgers: List[List[Tuple[int, str, Optional[int]]]] = [
            [] for _ in range(nranks)
        ]
        self._pending: Dict[int, Tuple[int, str]] = {}
        self._next_token = 0

    # -- undriven-generator tracking ------------------------------------
    def track(self, grank: int, name: str, inner: Iterator) -> Iterator:
        """Wrap a communication generator so driving it (first ``next``)
        unregisters it; anything still registered when its rank returns
        was created but never ``yield from``-ed."""
        token = self._next_token
        self._next_token += 1
        self._pending[token] = (grank, name)
        pending = self._pending

        def _driven():
            pending.pop(token, None)
            result = yield from inner
            return result

        return _driven()

    def undriven_ops(self, grank: int) -> List[str]:
        """Names of comm ops rank ``grank`` created but never drove."""
        return [name for g, name in self._pending.values() if g == grank]

    # -- collective ledger ----------------------------------------------
    def record_collective(self, grank: int, cid: int, kind: str,
                          root: Optional[int]) -> None:
        self.ledgers[grank].append((cid, kind, root))

    def ledger_tail(self, grank: int, k: int = 5) -> str:
        """Human-readable recent collective history of one rank."""
        tail = self.ledgers[grank][-k:]
        if not tail:
            return f"rank {grank}: (no collectives completed)"
        ops = ", ".join(
            f"{kind}(comm={cid}" + (f", root={root})" if root is not None else ")")
            for cid, kind, root in tail
        )
        return f"rank {grank}: ... {ops}"

    def sequence_mismatch(
        self, groups: Dict[int, Any]
    ) -> Optional[str]:
        """Cross-check per-communicator collective sequences on exit.

        Returns a description naming the first two disagreeing ranks and
        their ops, or ``None`` when every communicator's members agree.
        """
        for cid, group in groups.items():
            members: Sequence[int] = group.members
            if len(members) < 2:
                continue
            seqs = {
                g: tuple((kind, root) for c, kind, root in self.ledgers[g]
                         if c == cid)
                for g in members
            }
            ref_rank = members[0]
            ref = seqs[ref_rank]
            for g in members[1:]:
                if seqs[g] == ref:
                    continue
                i = next(
                    (j for j, (a, b) in enumerate(zip(ref, seqs[g])) if a != b),
                    min(len(ref), len(seqs[g])),
                )
                a = ref[i] if i < len(ref) else ("<nothing>", None)
                b = seqs[g][i] if i < len(seqs[g]) else ("<nothing>", None)
                return (
                    f"collective sequences diverge on comm {cid} at "
                    f"position {i}: rank {ref_rank} posted {a[0]}, "
                    f"rank {g} posted {b[0]}"
                )
        return None
