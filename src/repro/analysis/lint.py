"""Static AST lint for SPMD rank programs (``repro lint``).

The paper's algorithms live or die on disciplined SPMD communication:
every rank must post the same collectives in the same order, senders
must not mutate buffers they have already posted (the zero-copy
``copy_mode="readonly"`` delivery contract), and all randomness must
flow through seeded per-rank streams so runs are reproducible.  The
checks below are the *static* half of the correctness analyzer — the
dynamic half is the engine's sanitizer mode
(:mod:`repro.analysis.sanitizer`).  They encode the bug classes MPI
verification tools such as MUST and ThreadSanitizer catch at runtime,
tuned to this codebase's rank-program idiom (generator rank programs
driven by :func:`repro.parallel.engine.run_spmd`).

Rules
-----
======  ================================================================
SP099   a ``# repro: lint-ok[CODE]`` suppression whose rule no longer
        fires on the suppressed line — stale suppressions hide future
        regressions, so they must be removed when the code is fixed
SP101   a ``Comm`` communication method (``send``/``recv``/
        ``allreduce``/...) or a :mod:`repro.parallel.patterns` helper
        called without ``yield from`` — the call builds a generator that
        is never driven, so the operation silently does not happen
SP102   a collective posted inside a ``comm.rank``-dependent branch —
        ranks disagree on the collective schedule (deadlock or
        mismatched-collective hazard)
SP103   global RNG state (``np.random.*`` module-level functions,
        stdlib ``random.*``) instead of seeded :mod:`repro.rng` streams
        — breaks run-to-run determinism and rank independence
SP104   a local variable mutated after being passed to ``comm.send`` /
        ``comm.sendrecv`` — under ``copy_mode="readonly"`` the receiver
        aliases the sender's memory until delivery
SP105   iteration over a ``set`` inside a communicating rank program —
        set order is hash-dependent, so payload order can differ
        between runs (sort first, e.g. ``for x in sorted(s)``)
SP106   an ``except`` clause catches :class:`~repro.errors.CommError` /
        :class:`~repro.errors.ReproError` and silently swallows it —
        the handler neither re-raises, nor raises a converted error,
        nor uses the bound exception, so a typed fault turns into a
        silent wrong answer
======  ================================================================

The whole-program protocol rules SP107–SP112 live in
:mod:`repro.analysis.protocol` and run by default from
:func:`lint_source` / :func:`lint_paths` (disable with
``protocol=False`` / ``repro lint --no-protocol``).

Dict iteration is *not* flagged: Python dicts preserve insertion order,
and the engine builds inboxes (e.g. ``comm.exchange`` results) in
deterministic rank order.

Suppression
-----------
Append ``# repro: lint-ok[SP104]`` (codes comma-separated, or a bare
``# repro: lint-ok`` for all codes) to the offending line, or put the
comment alone on the line directly above it.  A suppression whose rule
does not fire is itself reported as SP099.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "Suppressions",
    "LintUnit",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "findings_to_json",
    "findings_to_sarif",
]


# ----------------------------------------------------------------------
# rule table
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Rule:
    """One lint rule: stable code, one-line summary, fix hint."""

    code: str
    summary: str
    hint: str


RULES: Dict[str, Rule] = {
    r.code: r
    for r in (
        Rule(
            "SP000",
            "file could not be parsed",
            "fix the syntax error; the file was not analysed",
        ),
        Rule(
            "SP099",
            "suppression comment no longer matches any finding",
            "remove the stale '# repro: lint-ok[...]' comment (it hides "
            "nothing today and would hide a regression tomorrow)",
        ),
        Rule(
            "SP101",
            "communication method called without 'yield from'",
            "drive it: 'result = yield from comm.<op>(...)'",
        ),
        Rule(
            "SP102",
            "collective posted inside a rank-dependent branch",
            "post the collective unconditionally on every rank of the "
            "communicator; compute rank-dependent payloads, not "
            "rank-dependent schedules",
        ),
        Rule(
            "SP103",
            "global RNG state used instead of a seeded stream",
            "use comm.rng inside rank programs, or repro.rng "
            "(default_rng/derive_seed) elsewhere",
        ),
        Rule(
            "SP104",
            "buffer mutated after being posted to a send",
            "send a copy (obj.copy() or copy=True), or delay the "
            "mutation until after the matching receive",
        ),
        Rule(
            "SP105",
            "iteration over a set feeds communication",
            "iterate 'sorted(the_set)' so payload order is deterministic",
        ),
        Rule(
            "SP106",
            "typed fault caught and silently swallowed",
            "re-raise, raise a converted error, or bind the exception "
            "('except CommError as exc:') and record it — swallowed "
            "faults become silent wrong answers",
        ),
        Rule(
            "SP107",
            "point-to-point op has no matching counterpart",
            "pair every recv with a send posting the same tag (and vice "
            "versa) somewhere in the same rank program",
        ),
        Rule(
            "SP108",
            "collective count diverges across ranks",
            "issue the same collectives the same number of times on every "
            "rank of the communicator; guard subcommunicator collectives "
            "only with the membership test 'if sub is not None:'",
        ),
        Rule(
            "SP109",
            "message tag/peer depends on unordered iteration",
            "derive tags and peers from sorted() or indexed order, never "
            "from set iteration order",
        ),
        Rule(
            "SP110",
            "blocking recv posted before any matching send",
            "post the matching send before the unconditional recv (or use "
            "sendrecv) — every rank blocks on the recv, so nobody reaches "
            "the send",
        ),
        Rule(
            "SP111",
            "posted payload aliases a buffer mutated before delivery",
            "send a copy, or delay the mutation past the phase boundary — "
            "under copy_mode='readonly' the receiver aliases the sender's "
            "memory, views included",
        ),
        Rule(
            "SP112",
            "hot-kernel perf discipline violated",
            "use np.bincount instead of np.add.at and hoist array "
            "allocations out of the iteration loop (the bit-identical "
            "fast paths are locked in by BENCH_kernels.json)",
        ),
    )
}

#: exception names whose silent swallowing SP106 flags (the typed fault
#: taxonomy of repro.errors — the base classes plus the CommError family)
SWALLOWABLE_ERRORS = frozenset({
    "ReproError", "CommError", "DeadlockError", "RankFailure",
    "BudgetExceededError",
})

#: every Comm method that must be driven with ``yield from``
COMM_METHODS = frozenset({
    "send", "isend", "recv", "sendrecv", "barrier", "bcast", "reduce",
    "allreduce", "gather", "allgather", "scatter", "alltoall", "scan",
    "exchange", "split",
})

#: Comm methods that are collectives (every rank must participate)
COLLECTIVE_METHODS = frozenset({
    "barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "scan", "exchange", "split",
})

#: generator helpers from repro.parallel.patterns (collective inside)
PATTERN_HELPERS = frozenset({
    "allgather_concat", "share_from_root", "gather_to_root",
})

#: point-to-point sends whose payload the sender must not mutate
SEND_METHODS = frozenset({"send", "isend", "sendrecv"})

#: receiver names treated as communicator handles
_COMM_NAMES = frozenset({"comm", "active", "sub", "world"})

#: np.random attributes that are *not* global-state (seeded constructors)
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: stdlib random attributes that are seeded instances, not global state
_STDLIB_RANDOM_OK = frozenset({"Random", "SystemRandom"})

#: container methods that mutate their receiver in place
_MUTATOR_METHODS = frozenset({
    "fill", "sort", "put", "resize", "itemset", "partition", "setflags",
    "setfield", "byteswap", "append", "extend", "insert", "pop", "clear",
    "update", "remove", "reverse", "setdefault", "add", "discard",
})

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ok(?:\[([A-Za-z0-9_,\s]+)\])?"
)


# ----------------------------------------------------------------------
# findings
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at file:line with a fix hint."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def hint(self) -> str:
        return RULES[self.code].hint

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.code} "
                f"{self.message} (fix: {self.hint})")

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "hint": self.hint,
        }


def findings_to_json(findings: Sequence[Finding]) -> str:
    """Serialise findings for ``repro lint --format json`` / CI.

    The shape of this output is frozen: existing CI consumers parse it,
    so new formats (SARIF) get their own serialiser instead of new keys.
    """
    return json.dumps([f.to_dict() for f in findings], indent=2)


def findings_to_sarif(findings: Sequence[Finding]) -> str:
    """Serialise findings as SARIF 2.1.0 for GitHub code scanning."""
    rules = [
        {
            "id": rule.code,
            "shortDescription": {"text": rule.summary},
            "help": {"text": rule.hint},
            "defaultConfiguration": {
                "level": "note" if rule.code == "SP099" else "error",
            },
        }
        for rule in (RULES[c] for c in sorted(RULES))
    ]
    index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = [
        {
            "ruleId": f.code,
            "ruleIndex": index[f.code],
            "level": "note" if f.code == "SP099" else "error",
            "message": {"text": f"{f.message} (fix: {f.hint})"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": max(f.col, 1),
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = _FUNC_NODES + (ast.Lambda, ast.ClassDef)


def _attach_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]


def _parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_lint_parent", None)


def _own_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested scopes
    (functions, lambdas, classes)."""
    yield node
    stack = list(ast.iter_child_nodes(node))
    while stack:
        cur = stack.pop()
        if isinstance(cur, _SCOPE_NODES):
            continue
        yield cur
        stack.extend(ast.iter_child_nodes(cur))


def _receiver_name(func: ast.Attribute) -> Optional[str]:
    """Name of the object a method is called on (``x.op()`` -> ``x``,
    ``a.b.op()`` -> ``b``)."""
    base = func.value
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _is_comm_receiver(name: Optional[str]) -> bool:
    if name is None:
        return False
    low = name.lower()
    return low in _COMM_NAMES or "comm" in low


def _comm_call_op(call: ast.Call) -> Optional[str]:
    """If ``call`` is a Comm communication method or pattern helper,
    return the op name, else None."""
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr in COMM_METHODS and _is_comm_receiver(_receiver_name(func)):
            return func.attr
        if func.attr in PATTERN_HELPERS:
            return func.attr
    elif isinstance(func, ast.Name) and func.id in PATTERN_HELPERS:
        return func.id
    return None


def _is_collective_op(op: str) -> bool:
    return op in COLLECTIVE_METHODS or op in PATTERN_HELPERS


def _reads_rank(expr: ast.AST, tainted: Set[str]) -> bool:
    """Does ``expr`` read ``comm.rank``/``comm.world_rank`` or a
    variable derived from one?"""
    for node in ast.walk(expr):
        if (isinstance(node, ast.Attribute)
                and node.attr in ("rank", "world_rank")
                and _is_comm_receiver(_receiver_name(node))):
            return True
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and node.id in tainted:
            return True
    return False


def _is_split_result(value: ast.AST) -> bool:
    """Is ``value`` ``yield from <comm>.split(...)`` (a sub-communicator)?"""
    if isinstance(value, ast.YieldFrom):
        value = value.value
    return (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "split"
            and _is_comm_receiver(_receiver_name(value.func)))


def _assigned_names(target: ast.AST) -> Iterator[str]:
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            yield node.id


def _is_set_expr(expr: ast.AST, setish: Set[str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id in ("set", "frozenset"):
        return True
    if isinstance(expr, ast.Name) and expr.id in setish:
        return True
    return False




# ----------------------------------------------------------------------
# suppressions (shared by the per-file linter and the protocol checker)
# ----------------------------------------------------------------------

class _SuppressEntry:
    __slots__ = ("line", "col", "codes", "standalone", "used")

    def __init__(self, line: int, col: int,
                 codes: Optional[Set[str]], standalone: bool) -> None:
        self.line = line
        self.col = col
        self.codes = codes          # None means "all codes"
        self.standalone = standalone
        self.used: Set[str] = set()  # codes this entry actually silenced


class Suppressions:
    """``# repro: lint-ok[...]`` comments of one file, with usage
    tracking so stale suppressions can be reported as SP099.

    Parsed from real COMMENT tokens, so docstrings *mentioning* the
    marker (like this module's) neither suppress nor go stale."""

    def __init__(self, source: str) -> None:
        self.entries: Dict[int, _SuppressEntry] = {}
        lines = source.splitlines()
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            tokens = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            line, start_col = tok.start
            codes: Optional[Set[str]] = None
            if m.group(1):
                codes = {c.strip().upper()
                         for c in m.group(1).split(",") if c.strip()}
            text = lines[line - 1] if line <= len(lines) else ""
            standalone = text[:start_col].strip() == ""
            self.entries[line] = _SuppressEntry(
                line, start_col + m.start() + 1, codes, standalone)

    def is_suppressed(self, line: int, code: str) -> bool:
        """True when ``code`` on ``line`` is silenced (same line, or a
        standalone comment on the line above); marks the entry used."""
        entry = self.entries.get(line)
        if entry is not None and (entry.codes is None or code in entry.codes):
            entry.used.add(code)
            return True
        prev = self.entries.get(line - 1)
        if prev is not None and prev.standalone \
                and (prev.codes is None or code in prev.codes):
            prev.used.add(code)
            return True
        return False

    def unused_findings(self, path: str, checked: Set[str]) -> List[Finding]:
        """SP099 findings for entries that silenced nothing.

        ``checked`` is the set of rule codes this run actually
        evaluated: a suppression for a rule that was not checked (e.g.
        protocol rules under ``--no-protocol``) is never reported.
        """
        full_run = checked >= (set(RULES) - {"SP000", "SP099"})
        out: List[Finding] = []
        for entry in self.entries.values():
            if entry.codes is None:
                # a bare lint-ok silences everything, so staleness is
                # only decidable when every rule was on this run
                if full_run and not entry.used:
                    out.append(Finding(
                        path, entry.line, entry.col, "SP099",
                        "blanket '# repro: lint-ok' suppresses nothing — "
                        "no rule fires on this line",
                    ))
                continue
            if "SP099" in entry.codes:
                continue  # explicitly kept
            stale = sorted(c for c in entry.codes
                           if c in checked and c not in entry.used)
            if not stale:
                continue
            codes = ", ".join(stale)
            out.append(Finding(
                path, entry.line, entry.col, "SP099",
                f"suppression 'lint-ok[{codes}]' is stale — "
                f"{codes} does not fire on this line",
            ))
        return out


@dataclass
class LintUnit:
    """One parsed file, shared between the per-file linter and the
    whole-program protocol checker."""

    path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @classmethod
    def parse(cls, source: str, path: str) -> "LintUnit":
        tree = ast.parse(source, filename=path)
        return cls(path, source, tree, Suppressions(source))


# ----------------------------------------------------------------------
# per-file linter
# ----------------------------------------------------------------------

class _FileLint:
    def __init__(self, unit: LintUnit) -> None:
        self.tree = unit.tree
        self.path = unit.path
        self.lines = unit.source.splitlines()
        self.findings: List[Finding] = []
        self.numpy_random: Set[str] = set()   # names bound to numpy.random
        self.numpy_aliases: Set[str] = set()  # names bound to numpy itself
        self.random_aliases: Set[str] = set()  # names bound to stdlib random
        _attach_parents(self.tree)
        self._suppressions = unit.suppressions

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self._suppressions.is_suppressed(line, code):
            return
        f = Finding(self.path, line, getattr(node, "col_offset", 0) + 1,
                    code, message)
        if f not in self.findings:
            self.findings.append(f)

    # -- driver ---------------------------------------------------------
    def run(self) -> List[Finding]:
        self._collect_imports()
        self._sp101(self.tree)
        self._sp103(self.tree)
        self._sp106(self.tree)
        for node in ast.walk(self.tree):
            if isinstance(node, _FUNC_NODES):
                self._check_function(node)
        self.findings.sort(key=lambda f: (f.line, f.col, f.code))
        return self.findings

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name in ("numpy", "numpy.random"):
                        self.numpy_aliases.add(bound)
                    if alias.name == "numpy.random" and alias.asname:
                        self.numpy_random.add(alias.asname)
                    if alias.name == "random":
                        self.random_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.numpy_random.add(alias.asname or "random")
                elif node.module in ("numpy.random", "random"):
                    stdlib = node.module == "random"
                    allowed = _STDLIB_RANDOM_OK if stdlib else _NP_RANDOM_OK
                    for alias in node.names:
                        if alias.name not in allowed:
                            self._add(
                                node, "SP103",
                                f"'from {node.module} import {alias.name}' "
                                "pulls in shared RNG state",
                            )

    # -- SP101 ----------------------------------------------------------
    def _sp101(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            op = _comm_call_op(node)
            if op is None:
                continue
            if isinstance(_parent(node), ast.YieldFrom):
                continue
            self._add(
                node, "SP101",
                f"'{op}' called without 'yield from' — the communication "
                "generator is created but never driven",
            )

    # -- SP103 ----------------------------------------------------------
    def _sp103(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            # np.random.<fn>(...) / numpy.random.<fn>(...)
            if (isinstance(base, ast.Attribute) and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in self.numpy_aliases
                    and func.attr not in _NP_RANDOM_OK):
                self._add(
                    node, "SP103",
                    f"'np.random.{func.attr}' uses the shared global "
                    "NumPy RNG",
                )
            # nprand.<fn>(...) after 'from numpy import random as nprand'
            elif (isinstance(base, ast.Name) and base.id in self.numpy_random
                    and func.attr not in _NP_RANDOM_OK):
                self._add(
                    node, "SP103",
                    f"'{base.id}.{func.attr}' uses the shared global "
                    "NumPy RNG",
                )
            # random.<fn>(...) from the stdlib
            elif (isinstance(base, ast.Name) and base.id in self.random_aliases
                    and func.attr not in _STDLIB_RANDOM_OK):
                self._add(
                    node, "SP103",
                    f"'random.{func.attr}' uses the shared global stdlib RNG",
                )

    # -- SP106 ----------------------------------------------------------
    def _sp106(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = self._sp106_caught(node.type)
            if not caught:
                continue
            if self._sp106_handled(node):
                continue
            self._add(
                node, "SP106",
                f"'{caught}' caught and silently swallowed — the handler "
                "neither re-raises nor uses the exception",
            )

    @staticmethod
    def _sp106_caught(expr: Optional[ast.AST]) -> Optional[str]:
        """First swallowable error name this except clause catches."""
        if expr is None:
            return None
        exprs = expr.elts if isinstance(expr, ast.Tuple) else [expr]
        for e in exprs:
            name = None
            if isinstance(e, ast.Name):
                name = e.id
            elif isinstance(e, ast.Attribute):
                name = e.attr
            if name in SWALLOWABLE_ERRORS:
                return name
        return None

    @staticmethod
    def _sp106_handled(handler: ast.ExceptHandler) -> bool:
        """Does the handler re-raise, raise a conversion, or use the
        bound exception?  (Nested scopes don't count — a ``raise``
        inside a nested ``def`` runs later, if ever.)"""
        for stmt in handler.body:
            for node in _own_walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
                if (handler.name and isinstance(node, ast.Name)
                        and node.id == handler.name
                        and isinstance(node.ctx, ast.Load)):
                    return True
        return False

    # -- per-function rules ---------------------------------------------
    def _check_function(self, fn: ast.AST) -> None:
        own = list(_own_walk(fn))
        is_generator = any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in own)
        communicates = any(
            isinstance(n, ast.Call) and _comm_call_op(n) is not None
            for n in own
        )
        if is_generator:
            self._sp102(fn, own)
        if is_generator and communicates:
            self._sp105(fn, own)
        self._sp104(fn)

    # -- SP102 ----------------------------------------------------------
    def _sp102(self, fn: ast.AST, own: List[ast.AST]) -> None:
        tainted: Set[str] = set()
        subcomms: Set[str] = set()
        for node in own:
            value = None
            if isinstance(node, ast.Assign):
                value = node.value
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                value = node.value
                targets = [node.target]
            elif isinstance(node, ast.NamedExpr):
                value = node.value
                targets = [node.target]
            else:
                continue
            if value is None:
                continue
            # names bound to a split() result are sub-communicators:
            # posting a collective on one inside its own membership guard
            # ('if sub is not None:') is the canonical correct idiom
            if _is_split_result(value):
                for t in targets:
                    subcomms.update(_assigned_names(t))
            if _reads_rank(value, tainted):
                for t in targets:
                    tainted.update(_assigned_names(t))
        for node in own:
            if not isinstance(node, ast.If):
                continue
            if not _reads_rank(node.test, tainted):
                continue
            for sub in _own_walk(node):
                if sub is node.test or not isinstance(sub, ast.YieldFrom):
                    continue
                if not isinstance(sub.value, ast.Call):
                    continue
                op = _comm_call_op(sub.value)
                if op is None or not _is_collective_op(op):
                    continue
                func = sub.value.func
                if isinstance(func, ast.Attribute) \
                        and _receiver_name(func) in subcomms:
                    continue
                self._add(
                    sub, "SP102",
                    f"collective '{op}' posted inside a rank-dependent "
                    "branch — ranks will disagree on the collective "
                    "schedule",
                )

    # -- SP104 ----------------------------------------------------------
    def _sp104(self, fn: ast.AST) -> None:
        sent: Dict[str, Tuple[int, str]] = {}   # name -> (send line, op)
        self._sp104_scan(getattr(fn, "body", []), sent)

    def _sp104_scan(self, body: Sequence[ast.stmt],
                    sent: Dict[str, Tuple[int, str]]) -> None:
        """Walk statements in execution order, tracking posted buffers.

        ``If`` arms are alternatives, so each is scanned with its own
        copy of the tracking state (a send in one arm cannot be mutated
        by the other); loop bodies are scanned twice so a mutation
        textually *before* a send still follows it on iteration two.
        """
        for stmt in body:
            if isinstance(stmt, _SCOPE_NODES):
                continue
            if isinstance(stmt, ast.If):
                self._sp104_exprs(stmt.test, sent)
                then_sent, else_sent = dict(sent), dict(sent)
                self._sp104_scan(stmt.body, then_sent)
                self._sp104_scan(stmt.orelse, else_sent)
                sent.clear()
                sent.update(else_sent)
                sent.update(then_sent)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                header = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) \
                    else stmt.test
                self._sp104_exprs(header, sent)
                for _pass in range(2):
                    self._sp104_scan(stmt.body, sent)
                self._sp104_scan(stmt.orelse, sent)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._sp104_exprs(item.context_expr, sent)
                self._sp104_scan(stmt.body, sent)
            elif isinstance(stmt, ast.Try):
                self._sp104_scan(stmt.body, sent)
                for handler in stmt.handlers:
                    self._sp104_scan(handler.body, sent)
                self._sp104_scan(stmt.orelse, sent)
                self._sp104_scan(stmt.finalbody, sent)
            else:
                self._sp104_simple(stmt, sent)

    def _sp104_simple(self, stmt: ast.stmt,
                      sent: Dict[str, Tuple[int, str]]) -> None:
        """One simple statement: flag mutations, apply rebinds, then
        register any newly posted send payloads."""
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._sp104_target(target, stmt, sent)
        elif isinstance(stmt, ast.AugAssign):
            self._sp104_target(stmt.target, stmt, sent, aug=True)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in sent:
                    self._sp104_flag(stmt, target.value.id, sent)
        self._sp104_exprs(stmt, sent)

    def _sp104_exprs(self, root: ast.AST,
                     sent: Dict[str, Tuple[int, str]]) -> None:
        """Scan the expressions of one statement/header: mutating calls
        on tracked buffers fire; send calls register their payload."""
        for node in _own_walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            # x.fill(...), x.sort(...), ...
            if func.attr in _MUTATOR_METHODS \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in sent:
                self._sp104_flag(node, func.value.id, sent)
            # np.add.at(x, ...), np.copyto(x, ...), np.put(x, ...)
            elif func.attr in ("at", "copyto", "put", "place", "putmask") \
                    and node.args and isinstance(node.args[0], ast.Name) \
                    and node.args[0].id in sent:
                self._sp104_flag(node, node.args[0].id, sent)
            elif func.attr in SEND_METHODS \
                    and _is_comm_receiver(_receiver_name(func)):
                payload = node.args[0] if node.args else None
                if payload is None:
                    for kw in node.keywords:
                        if kw.arg == "obj":
                            payload = kw.value
                if isinstance(payload, ast.Name):
                    sent[payload.id] = (node.lineno, func.attr)

    def _sp104_flag(self, node: ast.AST, name: str,
                    sent: Dict[str, Tuple[int, str]]) -> None:
        line, op = sent[name]
        self._add(
            node, "SP104",
            f"'{name}' mutated after being posted to '{op}' on line "
            f"{line} — the receiver aliases this memory under "
            "copy_mode='readonly'",
        )

    def _sp104_target(self, target, stmt, sent, aug: bool = False) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._sp104_target(elt, stmt, sent, aug)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            base = target.value
            if isinstance(base, ast.Name) and base.id in sent:
                self._sp104_flag(stmt, base.id, sent)
        elif isinstance(target, ast.Name):
            if aug:
                # x += ... mutates ndarrays in place
                if target.id in sent:
                    self._sp104_flag(stmt, target.id, sent)
            else:
                # plain rebind: the name no longer aliases the sent buffer
                sent.pop(target.id, None)

    # -- SP105 ----------------------------------------------------------
    def _sp105(self, fn: ast.AST, own: List[ast.AST]) -> None:
        setish: Set[str] = set()
        for node in own:
            if isinstance(node, ast.Assign) and _is_set_expr(node.value, setish):
                for t in node.targets:
                    setish.update(_assigned_names(t))
        for node in own:
            if isinstance(node, (ast.For, ast.AsyncFor)) \
                    and _is_set_expr(node.iter, setish):
                self._add(
                    node.iter, "SP105",
                    "iteration over a set has hash-dependent order inside "
                    "a communicating rank program",
                )


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------

#: rule codes owned by the whole-program checker (repro.analysis.protocol)
PROTOCOL_CODES = frozenset({
    "SP107", "SP108", "SP109", "SP110", "SP111", "SP112",
})


def _checked_codes(protocol: bool) -> Set[str]:
    """Codes a run with/without the protocol pass actually evaluates
    (drives SP099: un-evaluated rules can't prove a suppression stale)."""
    checked = set(RULES) - {"SP000", "SP099"}
    if not protocol:
        checked -= PROTOCOL_CODES
    return checked


def _run_units(
    units: Sequence[LintUnit],
    protocol: bool,
    checked: Set[str],
) -> Dict[str, List[Finding]]:
    """Run the per-file pass, the protocol pass, and the stale-
    suppression check over parsed units; findings per path, sorted."""
    by_path: Dict[str, List[Finding]] = {
        u.path: _FileLint(u).run() for u in units
    }
    if protocol and units:
        from .protocol import check_units
        for f in check_units(units):
            by_path.setdefault(f.path, []).append(f)
    for u in units:
        fs = by_path[u.path]
        fs.extend(u.suppressions.unused_findings(u.path, checked))
        fs.sort(key=lambda f: (f.line, f.col, f.code))
    return by_path


def lint_source(source: str, path: str = "<string>", *,
                protocol: bool = True) -> List[Finding]:
    """Lint python ``source``; returns findings sorted by position.

    A file that fails to parse yields one SP000 finding instead of
    raising, so one broken file cannot abort a whole-tree lint run.
    ``protocol=False`` skips the whole-program SP107–SP112 pass.
    """
    try:
        unit = LintUnit.parse(source, path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 1, (exc.offset or 1) - 1,
                        "SP000", f"syntax error: {exc.msg}")]
    return _run_units([unit], protocol, _checked_codes(protocol))[path]


def lint_file(path: Union[str, Path], *, protocol: bool = True) -> List[Finding]:
    """Lint one file."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p),
                       protocol=protocol)


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(sorted(q for q in p.rglob("*.py")
                              if "__pycache__" not in q.parts))
        else:
            out.append(p)
    return out


def lint_paths(
    paths: Iterable[Union[str, Path]],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    *,
    protocol: bool = True,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    The protocol pass sees *all* the files at once, so cross-module
    rank programs (stage singletons, registry entry points) resolve.
    ``select``/``ignore`` restrict the reported rule codes.
    """
    selected = {c.upper() for c in select} if select else None
    ignored = {c.upper() for c in ignore} if ignore else set()
    checked = _checked_codes(protocol)
    if selected is not None:
        checked &= selected
    checked -= ignored

    ordered: List[Union[LintUnit, Finding]] = []
    for p in iter_python_files(paths):
        src = p.read_text(encoding="utf-8")
        try:
            ordered.append(LintUnit.parse(src, str(p)))
        except SyntaxError as exc:
            ordered.append(Finding(str(p), exc.lineno or 1,
                                   (exc.offset or 1) - 1,
                                   "SP000", f"syntax error: {exc.msg}"))
    units = [e for e in ordered if isinstance(e, LintUnit)]
    by_path = _run_units(units, protocol, checked)
    findings: List[Finding] = []
    for e in ordered:
        if isinstance(e, Finding):
            findings.append(e)
        else:
            findings.extend(by_path.get(e.path, ()))
    return [
        f for f in findings
        if (selected is None or f.code in selected) and f.code not in ignored
    ]
