"""SPMD correctness analyzer: static lint + dynamic sanitizer.

Three pieces, one contract (see DESIGN §8 and §13):

* :mod:`repro.analysis.lint` — the ``repro lint`` static AST pass over
  rank programs and library code (per-file rules SP101–SP106, plus the
  SP099 stale-suppression check);
* :mod:`repro.analysis.protocol` — the whole-program protocol checker
  (rules SP107–SP112): communication summaries extracted across
  modules and model-checked for unmatched point-to-point traffic,
  collective count divergence, unordered peers, static deadlocks,
  aliased payload mutation and hot-kernel perf discipline;
* :mod:`repro.analysis.sanitizer` — the runtime sanitizer behind
  ``run_spmd(..., sanitize=True)``: payload checksums, the collective
  ledger, undriven-generator and undelivered-message reporting.
"""

from .lint import (  # noqa: F401
    Finding,
    PROTOCOL_CODES,
    Rule,
    RULES,
    findings_to_json,
    findings_to_sarif,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from .protocol import HOT_KERNELS, check_registry, program_ops  # noqa: F401
from .sanitizer import Sanitizer, payload_checksum  # noqa: F401

__all__ = [
    "Finding",
    "PROTOCOL_CODES",
    "Rule",
    "RULES",
    "findings_to_json",
    "findings_to_sarif",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "HOT_KERNELS",
    "check_registry",
    "program_ops",
    "Sanitizer",
    "payload_checksum",
]
