"""SPMD correctness analyzer: static lint + dynamic sanitizer.

Two halves, one contract (see DESIGN §8):

* :mod:`repro.analysis.lint` — the ``repro lint`` static AST pass over
  rank programs and library code (rules SP101–SP106);
* :mod:`repro.analysis.sanitizer` — the runtime sanitizer behind
  ``run_spmd(..., sanitize=True)``: payload checksums, the collective
  ledger, undriven-generator and undelivered-message reporting.
"""

from .lint import (  # noqa: F401
    Finding,
    Rule,
    RULES,
    findings_to_json,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from .sanitizer import Sanitizer, payload_checksum  # noqa: F401

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "findings_to_json",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "Sanitizer",
    "payload_checksum",
]
