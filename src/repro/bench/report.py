"""Plain-text rendering helpers for tables and figure series.

The harness regenerates the paper's tables and figures as aligned
monospace text (this is a library, not a plotting package); each cell
prints next to the paper's value where the paper reports one, so the
shape comparison is immediate.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_series", "format_comm_stats", "banner"]


def banner(title: str) -> str:
    bar = "=" * max(8, len(title))
    return f"{bar}\n{title}\n{bar}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table."""
    srows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        srows.append([_fmt(c) for c in row])
    widths = [max(len(r[i]) for r in srows) for i in range(len(srows[0]))]
    lines = []
    if title:
        lines.append(banner(title))
    for j, row in enumerate(srows):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    title: str,
    xlabel: str,
    xs: Sequence[object],
    columns: Sequence[tuple],
) -> str:
    """Render (x, y…) series as a table: one row per x value.

    ``columns`` is a sequence of ``(name, values)`` pairs aligned with
    ``xs``.
    """
    headers = [xlabel] + [name for name, _ in columns]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [vals[i] for _, vals in columns])
    return format_table(headers, rows, title=title)


def format_comm_stats(stats, title: Optional[str] = None) -> str:
    """Render a :class:`~repro.parallel.trace.CommStats` ledger as an
    aligned per-phase table (run totals in the last row).

    Benchmarks use this to print the communication account next to the
    timing numbers, so volume claims (e.g. "collectives per iteration
    drop with block size") are visible, not only asserted.
    """
    def row(name, cs):
        return [
            name,
            cs.total_messages,
            float(cs.total_words),
            cs.collective_invocations(),
            cs.collective_ops.get("exchange", 0),
            cs.total_wait * 1e3,
        ]

    rows = [row(name, stats.phases[name]) for name in sorted(stats.phases)]
    rows.append(row("TOTAL", stats))
    return format_table(
        ["phase", "msgs", "words", "global_colls", "exchanges", "wait_ms"],
        rows,
        title=title,
    )


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)
