"""Benchmark harness: workloads, cached sweep runner, tables, figures."""

from .report import banner, format_series, format_table
from .runner import METHODS, RunRecord, clear_cache, run_method, sweep
from .tables import table1, table2, table3, table4
from .figures import (
    fig2_strip,
    fig3_total_times,
    fig4_partition_only,
    fig7_components,
    fig8_embed_comm,
    fig9_large4,
    fig_single_graph,
    total_times,
)
from .workloads import (
    BENCH_SCALE,
    BENCH_SEED,
    MACHINE,
    P_SWEEP,
    bench_coords,
    bench_graph,
    large4_names,
    suite_names,
)

__all__ = [
    "banner", "format_series", "format_table",
    "METHODS", "RunRecord", "clear_cache", "run_method", "sweep",
    "table1", "table2", "table3", "table4",
    "fig2_strip", "fig3_total_times", "fig4_partition_only",
    "fig7_components", "fig8_embed_comm", "fig9_large4",
    "fig_single_graph", "total_times",
    "BENCH_SCALE", "BENCH_SEED", "MACHINE", "P_SWEEP",
    "bench_coords", "bench_graph", "large4_names", "suite_names",
]
