"""Regeneration of the paper's Figures 2–9 as text series.

Each function returns the series the corresponding figure plots
(simulated seconds vs processor count, component fractions, …) rendered
as an aligned table; the benchmark files under ``benchmarks/`` print
them and assert the paper's qualitative shapes.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .report import format_series, format_table
from .runner import run_method
from .workloads import P_SWEEP, bench_coords, bench_graph, large4_names, suite_names

__all__ = [
    "fig2_strip",
    "fig3_total_times",
    "fig4_partition_only",
    "fig_single_graph",
    "fig7_components",
    "fig8_embed_comm",
    "fig9_large4",
    "total_times",
]

_TIME_METHODS = ["ScalaPart", "Pt-Scotch-like", "ParMetis-like", "RCB"]


def total_times(methods: List[str], graphs: List[str], ps: List[int]) -> Dict[str, List[float]]:
    """Sum of simulated times over ``graphs`` per method and P."""
    out: Dict[str, List[float]] = {}
    for m in methods:
        out[m] = [
            sum(run_method(m, g, p).seconds for g in graphs) for p in ps
        ]
    return out


def fig2_strip(graph_name: str = "delaunay_n20") -> str:
    """Figure 2: the refinement strip around a separator.

    The paper reports a strip holding 5.6× as many vertices as the
    separator for delaunay_n16; we report the same statistic for the
    delaunay analogue.
    """
    from ..core.scalapart import sp_pg7_nl
    from .workloads import BENCH_SEED

    gg = bench_graph(graph_name)
    res = sp_pg7_nl(gg.graph, bench_coords(graph_name), seed=BENCH_SEED)
    rows = [[
        graph_name,
        res.extras["strip_size"],
        res.bisection.boundary_vertices().shape[0],
        f"{res.extras['strip_factor']:.1f}x",
        "5.6x (delaunay_n16)",
        f"{res.extras['geometric_cut']:.0f} -> {res.cut_size}",
    ]]
    return format_table(
        ["graph", "strip size", "separator vertices", "strip factor",
         "paper factor", "cut: circle -> refined"],
        rows,
        title="Figure 2: strip used to refine the edge separator",
    )


def fig3_total_times() -> str:
    """Figure 3: total execution times over all 9 graphs."""
    series = total_times(_TIME_METHODS, suite_names(), P_SWEEP)
    cols = [(m, [f"{v * 1e3:.2f}" for v in series[m]]) for m in _TIME_METHODS]
    return format_series(
        "Figure 3: total simulated times over all 9 graphs (ms)",
        "P", P_SWEEP, cols,
    )


def fig4_partition_only() -> str:
    """Figure 4: RCB vs SP-PG7-NL (ScalaPart minus coarsening/embedding)."""
    series = total_times(["RCB", "SP-PG7-NL"], suite_names(), P_SWEEP)
    cols = [(m, [f"{v * 1e3:.3f}" for v in series[m]])
            for m in ("RCB", "SP-PG7-NL")]
    return format_series(
        "Figure 4: total times, RCB vs SP-PG7-NL (partition-only; ms)",
        "P", P_SWEEP, cols,
    )


def fig_single_graph(name: str, figure: str) -> str:
    """Figures 5/6: per-graph execution times vs P."""
    series = total_times(_TIME_METHODS, [name], P_SWEEP)
    cols = [(m, [f"{v * 1e3:.2f}" for v in series[m]]) for m in _TIME_METHODS]
    return format_series(
        f"Figure {figure}: execution time for {name} (ms)",
        "P", P_SWEEP, cols,
    )


def fig7_components() -> str:
    """Figure 7: ScalaPart component times as fractions of the total."""
    rows = []
    for p in P_SWEEP:
        stages = {"coarsen": 0.0, "embed": 0.0, "partition": 0.0}
        total = 0.0
        for g in suite_names():
            rec = run_method("ScalaPart", g, p)
            for k in stages:
                stages[k] += rec.stage_seconds.get(k, 0.0)
            total += rec.seconds
        rows.append([p] + [f"{stages[k] / total:.2f}" for k in
                           ("coarsen", "embed", "partition")])
    return format_table(
        ["P", "coarsen", "embed", "partition"],
        rows,
        title="Figure 7: ScalaPart component times (fraction of total)",
    )


def fig8_embed_comm() -> str:
    """Figure 8: computation vs communication share of embedding time."""
    rows = []
    for p in P_SWEEP:
        fracs = []
        for g in suite_names():
            rec = run_method("ScalaPart", g, p)
            if "embed" in rec.phase_comm:
                fracs.append(rec.phase_comm["embed"])
        comm = float(np.mean(fracs)) if fracs else 0.0
        rows.append([p, f"{1 - comm:.2f}", f"{comm:.2f}"])
    return format_table(
        ["P", "computation", "communication"],
        rows,
        title="Figure 8: embedding time composition (mean over graphs)",
    )


def fig9_large4(ps: List[int] = (16, 64, 256, 1024)) -> str:
    """Figure 9: times for the 4 largest graphs plus their average."""
    lines = []
    for name in large4_names() + ["(average)"]:
        rows = []
        for p in ps:
            if name == "(average)":
                vals = {
                    m: float(np.mean([run_method(m, g, p).seconds
                                      for g in large4_names()]))
                    for m in _TIME_METHODS[:3]
                }
            else:
                vals = {m: run_method(m, name, p).seconds
                        for m in _TIME_METHODS[:3]}
            rows.append([p] + [f"{vals[m] * 1e3:.2f}" for m in _TIME_METHODS[:3]])
        lines.append(format_table(
            ["P"] + _TIME_METHODS[:3],
            rows,
            title=f"Figure 9: {name} (ms)",
        ))
    return "\n\n".join(lines)
