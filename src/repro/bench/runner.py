"""Cached sweep runner for the benchmark harness.

Every table and figure of the paper draws from the same grid of runs —
``method × graph × P``.  :func:`run_method` executes one cell and
caches the (small, JSON-serialisable) outcome both in memory and on
disk under ``.bench_cache/``, so regenerating all tables and figures
costs one sweep, and re-runs are instant.  Delete the cache directory
(or change scale/seed, which key the cache) to force recomputation.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List

from ..core.methods import METHOD_REGISTRY, get_method
from ..core.parallel import run_parallel
from ..results import PartitionResult
from ..errors import ConfigError
from .workloads import BENCH_SCALE, BENCH_SEED, MACHINE, bench_coords, bench_graph

__all__ = ["RunRecord", "run_method", "sweep", "METHODS", "clear_cache"]

_CACHE_DIR = Path(os.environ.get("REPRO_BENCH_CACHE", ".bench_cache"))
_MEMO: Dict[str, "RunRecord"] = {}


@dataclass(frozen=True)
class RunRecord:
    """One cell of the evaluation grid (JSON-serialisable)."""

    method: str
    graph: str
    p: int
    cut: int
    imbalance: float
    seconds: float
    simulated: bool
    stage_seconds: Dict[str, float]
    phase_comm: Dict[str, float]
    #: executor that produced the cell ("sim" for the simulator or any
    #: sequential run; "procs" for real worker processes)
    backend: str = "sim"
    #: completed collective operations by kind (empty for sequential runs)
    collective_ops: Dict[str, int] = field(default_factory=dict)
    #: words moved (point-to-point + collective contributions)
    total_words: float = 0.0
    #: number of parts in the labelling (2 = bisection cells)
    parts: int = 2
    #: vertex cost model keying the balance constraint
    cost_model: str = "unit"

    @property
    def key(self) -> str:
        base = f"{self.method}/{self.graph}/P{self.p}"
        return base if self.parts == 2 else f"{base}/K{self.parts}"


#: method name -> needs_coords flag (a registry view kept for
#: backwards compatibility; parallel methods take a P argument).
METHODS: Dict[str, bool] = {
    name: spec.needs_coords for name, spec in METHOD_REGISTRY.items()
}


def _cache_key(method: str, graph: str, p: int, backend: str = "sim",
               parts: int = 2, cost_model: str = "unit") -> str:
    # v7: records gained parts/cost_model fields (k-way sweep cells) —
    # the bump invalidates v6 records, whose JSON lacks the new keys.
    # Default bisection cells keep a stable key shape; k-way and
    # non-unit-cost cells get their own suffixed cells.
    raw = f"{method}|{graph}|{p}|{BENCH_SCALE}|{BENCH_SEED}|v7"
    if backend != "sim":
        raw += f"|{backend}"
    if parts != 2:
        raw += f"|k{parts}"
    if cost_model != "unit":
        raw += f"|{cost_model}"
    return hashlib.sha1(raw.encode()).hexdigest()[:20]


def _execute(method: str, graph_name: str, p: int,
             backend: str = "sim", parts: int = 2,
             cost_model: str = "unit",
             checkpoint=None) -> PartitionResult:
    if method not in METHODS:
        raise ConfigError(
            f"unknown bench method {method!r}; known: {list(METHODS)}"
        )
    spec = get_method(method)
    gg = bench_graph(graph_name)
    g = gg.graph
    coords = bench_coords(graph_name) if spec.needs_coords else None
    if spec.traceable and (parts == 2 or spec.kway):
        # parallel methods: the engine seed varies with P (Tables 2–3
        # report cut ranges across P)
        return run_parallel(spec, g, p, coords=coords,
                            seed=BENCH_SEED ^ (p * 7919), machine=MACHINE,
                            backend=backend, k=parts, cost_model=cost_model,
                            checkpoint=checkpoint)
    if backend != "sim":
        raise ConfigError(
            f"method {method!r} has no distributed k-way path; "
            f"backend={backend!r} needs one"
        )
    if parts != 2:
        # bisection methods reach K parts through recursive bisection
        from ..core.kway import partition_kway

        return partition_kway(g, parts, spec, coords=coords,
                              seed=BENCH_SEED, cost_model=cost_model)
    # sequential quality references (P ignored; Table 2)
    return spec.sequential(g, coords, seed=BENCH_SEED)


def run_method(method: str, graph_name: str, p: int = 1,
               use_cache: bool = True, backend: str = "sim",
               parts: int = 2, cost_model: str = "unit",
               checkpoint=None) -> RunRecord:
    """Run (or fetch from cache) one cell of the evaluation grid.

    ``checkpoint`` (a store directory or
    :class:`~repro.parallel.checkpoint.CheckpointPolicy`) lets long
    sweeps restart cheaply after a crash: resumed cells recompute only
    the post-embedding stages.  It is deliberately NOT part of the
    cache key — a resumed run feeds the same persisted embedding the
    fresh run produced, so both land on the same partition.
    """
    key = _cache_key(method, graph_name, p, backend, parts, cost_model)
    if use_cache and key in _MEMO:
        return _MEMO[key]
    path = _CACHE_DIR / f"{key}.json"
    if use_cache and path.exists():
        rec = RunRecord(**json.loads(path.read_text()))
        _MEMO[key] = rec
        return rec
    res = _execute(method, graph_name, p, backend, parts, cost_model,
                   checkpoint=checkpoint)
    stats = res.extras.get("comm_stats")
    rec = RunRecord(
        method=method,
        graph=graph_name,
        p=p,
        cut=res.cut_size,
        imbalance=float(res.imbalance),
        seconds=float(res.seconds),
        simulated=res.simulated,
        backend=str(res.extras.get("backend", "sim")),
        stage_seconds={k: float(v) for k, v in res.stage_seconds.items()},
        phase_comm={
            k: float(v) for k, v in res.extras.get("phase_comm", {}).items()
        },
        collective_ops=(
            {k: int(v) for k, v in sorted(stats.collective_ops.items())}
            if stats is not None else {}
        ),
        total_words=float(stats.total_words) if stats is not None else 0.0,
        parts=parts,
        cost_model=cost_model,
    )
    if use_cache:
        _CACHE_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(asdict(rec)))
        _MEMO[key] = rec
    return rec


def sweep(methods: List[str], graphs: List[str], ps: List[int],
          parts: int = 2, cost_model: str = "unit") -> List[RunRecord]:
    """Run the full grid (cached) and return all records."""
    out = []
    for gname in graphs:
        for method in methods:
            for p in ps:
                out.append(run_method(method, gname, p, parts=parts,
                                      cost_model=cost_model))
    return out


def clear_cache() -> None:
    """Drop memoised and on-disk results (tests use this)."""
    _MEMO.clear()
    if _CACHE_DIR.exists():
        for f in _CACHE_DIR.glob("*.json"):
            f.unlink()
