"""Cached sweep runner for the benchmark harness.

Every table and figure of the paper draws from the same grid of runs —
``method × graph × P``.  :func:`run_method` executes one cell and
caches the (small, JSON-serialisable) outcome both in memory and on
disk under ``.bench_cache/``, so regenerating all tables and figures
costs one sweep, and re-runs are instant.  Delete the cache directory
(or change scale/seed, which key the cache) to force recomputation.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..baselines.multilevel import parmetis_like, scotch_like
from ..baselines.rcb import rcb_bisect
from ..baselines.spectral import spectral_bisect
from ..core.config import ScalaPartConfig
from ..core.parallel import (
    parmetis_parallel,
    rcb_parallel,
    scalapart_parallel,
    scotch_parallel,
    sp_pg7_nl_parallel,
)
from ..results import PartitionResult
from ..core.scalapart import scalapart, sp_pg7_nl
from ..errors import ConfigError
from ..geometric.gmt import g30, g7, g7_nl
from .workloads import BENCH_SCALE, BENCH_SEED, MACHINE, bench_coords, bench_graph

__all__ = ["RunRecord", "run_method", "sweep", "METHODS", "clear_cache"]

_CACHE_DIR = Path(os.environ.get("REPRO_BENCH_CACHE", ".bench_cache"))
_MEMO: Dict[str, "RunRecord"] = {}


@dataclass(frozen=True)
class RunRecord:
    """One cell of the evaluation grid (JSON-serialisable)."""

    method: str
    graph: str
    p: int
    cut: int
    imbalance: float
    seconds: float
    simulated: bool
    stage_seconds: Dict[str, float]
    phase_comm: Dict[str, float]
    #: completed collective operations by kind (empty for sequential runs)
    collective_ops: Dict[str, int] = field(default_factory=dict)
    #: words moved (point-to-point + collective contributions)
    total_words: float = 0.0

    @property
    def key(self) -> str:
        return f"{self.method}/{self.graph}/P{self.p}"


#: method name -> needs_coords flag; parallel methods take a P argument.
METHODS = {
    "ScalaPart": False,
    "SP-PG7-NL": True,
    "ParMetis-like": False,
    "Pt-Scotch-like": False,
    "RCB": True,
    # sequential (P ignored; quality references of Table 2)
    "G30": True,
    "G7": True,
    "G7-NL": True,
    "Spectral": False,
}


def _cache_key(method: str, graph: str, p: int) -> str:
    raw = f"{method}|{graph}|{p}|{BENCH_SCALE}|{BENCH_SEED}|v5"
    return hashlib.sha1(raw.encode()).hexdigest()[:20]


def _execute(method: str, graph_name: str, p: int) -> PartitionResult:
    gg = bench_graph(graph_name)
    g = gg.graph
    seed = BENCH_SEED ^ (p * 7919)
    cfg = ScalaPartConfig()
    if method == "ScalaPart":
        return scalapart_parallel(g, p, cfg, seed=seed, machine=MACHINE)
    if method == "SP-PG7-NL":
        return sp_pg7_nl_parallel(g, bench_coords(graph_name), p, cfg,
                                  seed=seed, machine=MACHINE)
    if method == "ParMetis-like":
        return parmetis_parallel(g, p, seed=seed, machine=MACHINE)
    if method == "Pt-Scotch-like":
        return scotch_parallel(g, p, seed=seed, machine=MACHINE)
    if method == "RCB":
        return rcb_parallel(g, bench_coords(graph_name), p, machine=MACHINE)
    if method == "G30":
        res = g30(g, bench_coords(graph_name), seed=BENCH_SEED)
        return PartitionResult(res.bisection, "G30")
    if method == "G7":
        res = g7(g, bench_coords(graph_name), seed=BENCH_SEED)
        return PartitionResult(res.bisection, "G7")
    if method == "G7-NL":
        res = g7_nl(g, bench_coords(graph_name), seed=BENCH_SEED)
        return PartitionResult(res.bisection, "G7-NL")
    if method == "Spectral":
        return spectral_bisect(g, seed=BENCH_SEED)
    raise ConfigError(f"unknown bench method {method!r}; known: {list(METHODS)}")


def run_method(method: str, graph_name: str, p: int = 1,
               use_cache: bool = True) -> RunRecord:
    """Run (or fetch from cache) one cell of the evaluation grid."""
    key = _cache_key(method, graph_name, p)
    if use_cache and key in _MEMO:
        return _MEMO[key]
    path = _CACHE_DIR / f"{key}.json"
    if use_cache and path.exists():
        rec = RunRecord(**json.loads(path.read_text()))
        _MEMO[key] = rec
        return rec
    res = _execute(method, graph_name, p)
    stats = res.extras.get("comm_stats")
    rec = RunRecord(
        method=method,
        graph=graph_name,
        p=p,
        cut=res.cut_size,
        imbalance=float(res.imbalance),
        seconds=float(res.seconds),
        simulated=res.simulated,
        stage_seconds={k: float(v) for k, v in res.stage_seconds.items()},
        phase_comm={
            k: float(v) for k, v in res.extras.get("phase_comm", {}).items()
        },
        collective_ops=(
            {k: int(v) for k, v in sorted(stats.collective_ops.items())}
            if stats is not None else {}
        ),
        total_words=float(stats.total_words) if stats is not None else 0.0,
    )
    if use_cache:
        _CACHE_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(asdict(rec)))
        _MEMO[key] = rec
    return rec


def sweep(methods: List[str], graphs: List[str], ps: List[int]) -> List[RunRecord]:
    """Run the full grid (cached) and return all records."""
    out = []
    for gname in graphs:
        for method in methods:
            for p in ps:
                out.append(run_method(method, gname, p))
    return out


def clear_cache() -> None:
    """Drop memoised and on-disk results (tests use this)."""
    _MEMO.clear()
    if _CACHE_DIR.exists():
        for f in _CACHE_DIR.glob("*.json"):
            f.unlink()
