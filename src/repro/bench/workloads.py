"""Benchmark workloads: suite graphs, coordinates, sweep parameters.

The evaluation sweeps methods over the nine Table-1 analogues and
P = 1…1,024 virtual processors.  ``BENCH_SCALE`` (environment variable
``REPRO_BENCH_SCALE``) shrinks or grows every graph together: the
default 0.35 sizes the suite at roughly 2.5k–12k vertices so the *full*
SC'13 evaluation regenerates in a few minutes on a laptop; pass 1.0 for
the larger (8k–36k) configuration recorded in EXPERIMENTS.md.

Graphs and their Hu-layout coordinates (needed by RCB and the
sequential geometric partitioners, exactly as in the paper) are built
once per process and memoised.
"""

from __future__ import annotations

import functools
import os
from typing import List

import numpy as np

from ..embed.multilevel import hu_layout
from ..graph.generators import GeneratedGraph
from ..graph import suite
from ..parallel.machine import QDR_CLUSTER, MachineModel
from ..rng import DEFAULT_SEED

__all__ = [
    "BENCH_SCALE",
    "BENCH_SEED",
    "P_SWEEP",
    "MACHINE",
    "bench_graph",
    "bench_coords",
    "suite_names",
    "large4_names",
]

BENCH_SCALE: float = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))
BENCH_SEED: int = int(os.environ.get("REPRO_BENCH_SEED", str(DEFAULT_SEED)))

#: Processor counts of the paper's sweep (Figures 3–6).
P_SWEEP: List[int] = [1, 4, 16, 64, 256, 1024]

#: Cost model of the simulated cluster.
MACHINE: MachineModel = QDR_CLUSTER


def suite_names() -> List[str]:
    return suite.suite_names()


def large4_names() -> List[str]:
    return list(suite.LARGE4)


@functools.lru_cache(maxsize=None)
def bench_graph(name: str) -> GeneratedGraph:
    """The named suite analogue at the benchmark scale (memoised)."""
    return suite.build(name, scale=BENCH_SCALE, seed=BENCH_SEED)


@functools.lru_cache(maxsize=None)
def bench_coords(name: str) -> np.ndarray:
    """Hu-layout coordinates for a suite graph (memoised).

    The paper provides coordinates to RCB/G30/G7 "using the force-based
    graph drawing code ... developed by Hu"; embedding time is *not*
    charged to those methods (Fig 3 note), so neither do we.
    """
    g = bench_graph(name)
    return hu_layout(g.graph, seed=BENCH_SEED ^ 0x41AB, smooth_iters=12)
