"""Regeneration of the paper's Tables 1–4.

Each function runs (or fetches from the cache) the required grid cells
and renders the table next to the paper's reported values, so the
*shape* comparison — who wins, by roughly what factor — is immediate.
Absolute cut numbers differ from the paper's because the suite graphs
are scaled-down analogues (see DESIGN.md §2); the tables therefore
reproduce the paper's *relative* quantities exactly as the paper
defines them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .report import format_table
from .runner import run_method
from .workloads import P_SWEEP, bench_graph, large4_names, suite_names

__all__ = ["table1", "table2", "table3", "table4"]

#: Paper Table 2 geometric-mean row (relative to G30 = 1).
PAPER_T2_GEOMEAN = {"G7": 1.06, "G7-NL": 1.10, "RCB": 1.16,
                    "AvgSP": 0.84, "BestSP": 0.68}

#: Paper Table 3 geometric-mean row (relative to best Pt-Scotch = 1).
PAPER_T3_GEOMEAN = {
    "Pt-Scotch": (1.00, 1.42), "ParMetis": (1.10, 1.67),
    "ScalaPart": (0.94, 1.47), "G30": 1.39, "RCB": 1.61,
}

#: Paper Table 4: speed-ups at P=1024 relative to Pt-Scotch.
PAPER_T4 = {
    "G3_circuit": (4.28, 34.92, 32.21, 74.52),
    "hugebubbles-00020": (1.92, 21.37, 10.75, 75.24),
    "All Graphs": (4.21, 25.69, 16.23, 57.92),
    "Large 4 graphs": (3.42, 22.64, 14.37, 77.48),
}


def table1() -> str:
    """Table 1: the test suite (paper sizes vs analogue sizes)."""
    from ..graph.suite import SUITE

    rows = []
    for name in suite_names():
        e = SUITE[name]
        gg = bench_graph(name)
        rows.append([
            name,
            f"{e.paper_n_millions:g}M", f"{e.paper_m_millions:g}M",
            gg.graph.num_vertices, gg.graph.num_edges,
            e.description,
        ])
    return format_table(
        ["graph", "paper N", "paper M", "repro N", "repro M", "character"],
        rows,
        title="Table 1: test suite of graphs",
    )


def _sp_cuts(name: str) -> List[int]:
    return [run_method("ScalaPart", name, p).cut for p in P_SWEEP]


def table2() -> str:
    """Table 2: cut quality of the geometric methods relative to G30."""
    rows = []
    rel: Dict[str, List[float]] = {k: [] for k in PAPER_T2_GEOMEAN}
    for name in suite_names():
        base = run_method("G30", name).cut or 1
        r_g7 = run_method("G7", name).cut / base
        r_g7nl = run_method("G7-NL", name).cut / base
        r_rcb = run_method("RCB", name, 1).cut / base
        sp = _sp_cuts(name)
        r_avg = float(np.mean(sp)) / base
        r_best = min(sp) / base
        for k, v in zip(rel, (r_g7, r_g7nl, r_rcb, r_avg, r_best)):
            rel[k].append(v)
        rows.append([name, f"{r_g7:.2f}", f"{r_g7nl:.2f}", f"{r_rcb:.2f}",
                     f"{r_avg:.2f}", f"{r_best:.2f}"])
    gm = {k: float(np.exp(np.mean(np.log(v)))) for k, v in rel.items()}
    rows.append(["Geom. Mean"] + [f"{gm[k]:.2f}" for k in rel])
    rows.append(["(paper)"] + [f"{PAPER_T2_GEOMEAN[k]:.2f}" for k in rel])
    return format_table(
        ["graph", "G7", "G7-NL", "RCB", "Avg SP", "Best SP"],
        rows,
        title="Table 2: relative cut-sizes of geometric methods (G30 = 1)",
    )


def table3() -> str:
    """Table 3: best–worst cut ranges for every method."""
    rows = []
    rel_rows: Dict[str, List[float]] = {
        "scot_lo": [], "scot_hi": [], "pm_lo": [], "pm_hi": [],
        "sp_lo": [], "sp_hi": [], "g30": [], "rcb": [],
    }
    for name in suite_names():
        scot = [run_method("Pt-Scotch-like", name, p).cut for p in P_SWEEP]
        pm = [run_method("ParMetis-like", name, p).cut for p in P_SWEEP]
        sp = _sp_cuts(name)
        g30c = run_method("G30", name).cut
        rcbc = run_method("RCB", name, 1).cut
        base = min(scot) or 1
        for key, val in (
            ("scot_lo", min(scot)), ("scot_hi", max(scot)),
            ("pm_lo", min(pm)), ("pm_hi", max(pm)),
            ("sp_lo", min(sp)), ("sp_hi", max(sp)),
            ("g30", g30c), ("rcb", rcbc),
        ):
            rel_rows[key].append(val / base)
        rows.append([
            name,
            f"{min(scot)} - {max(scot)}",
            f"{min(pm)} - {max(pm)}",
            f"{min(sp)} - {max(sp)}",
            g30c, rcbc,
        ])
    gm = {k: float(np.exp(np.mean(np.log(np.maximum(v, 1e-9)))))
          for k, v in rel_rows.items()}
    rows.append([
        "Geom. Mean",
        f"{gm['scot_lo']:.2f} - {gm['scot_hi']:.2f}",
        f"{gm['pm_lo']:.2f} - {gm['pm_hi']:.2f}",
        f"{gm['sp_lo']:.2f} - {gm['sp_hi']:.2f}",
        f"{gm['g30']:.2f}", f"{gm['rcb']:.2f}",
    ])
    p = PAPER_T3_GEOMEAN
    rows.append([
        "(paper)",
        f"{p['Pt-Scotch'][0]:.2f} - {p['Pt-Scotch'][1]:.2f}",
        f"{p['ParMetis'][0]:.2f} - {p['ParMetis'][1]:.2f}",
        f"{p['ScalaPart'][0]:.2f} - {p['ScalaPart'][1]:.2f}",
        f"{p['G30']:.2f}", f"{p['RCB']:.2f}",
    ])
    return format_table(
        ["graph", "Pt-Scotch", "ParMetis", "ScalaPart", "G30", "RCB"],
        rows,
        title="Table 3: best and worst cut-sizes over P = "
              f"{P_SWEEP} (last rows: geometric mean relative to best Pt-Scotch)",
    )


def _speedups_at(p: int, names: List[str]) -> Tuple[float, float, float, float]:
    """(ParMetis, RCB, ScalaPart, SP-PG7-NL) speed-ups vs Pt-Scotch,
    computed on times summed over ``names``."""
    tot = {m: 0.0 for m in
           ("Pt-Scotch-like", "ParMetis-like", "RCB", "ScalaPart", "SP-PG7-NL")}
    for n in names:
        for m in tot:
            tot[m] += run_method(m, n, p).seconds
    base = tot["Pt-Scotch-like"]
    return (base / tot["ParMetis-like"], base / tot["RCB"],
            base / tot["ScalaPart"], base / tot["SP-PG7-NL"])


def table4(p: int = 1024) -> str:
    """Table 4: speed-ups at P=1024 relative to Pt-Scotch."""
    rows = []
    for label, names in (
        ("G3_circuit", ["G3_circuit"]),
        ("hugebubbles-00020", ["hugebubbles-00020"]),
        ("All Graphs", suite_names()),
        ("Large 4 graphs", large4_names()),
    ):
        s = _speedups_at(p, names)
        paper = PAPER_T4[label]
        rows.append([label] + [f"{v:.2f}" for v in s]
                    + [f"({x:.2f})" for x in paper])
    return format_table(
        ["graphs", "ParMetis", "RCB", "ScalaPart", "SP-PG7-NL",
         "paper:PM", "paper:RCB", "paper:SP", "paper:SPPG"],
        rows,
        title=f"Table 4: speed-ups at P={p} relative to Pt-Scotch (=1)",
    )
