"""Figure 5: execution times for hugebubbles-00020 (largest graph)."""

from repro.bench import P_SWEEP, fig_single_graph, run_method

GRAPH = "hugebubbles-00020"


def test_fig5_hugebubbles(benchmark, record_output):
    text = benchmark.pedantic(
        fig_single_graph, args=(GRAPH, "5"), rounds=1, iterations=1
    )
    record_output("fig5", text)

    sp = [run_method("ScalaPart", GRAPH, p).seconds for p in P_SWEEP]
    sc = [run_method("Pt-Scotch-like", GRAPH, p).seconds for p in P_SWEEP]
    # ScalaPart overtakes Pt-Scotch on the largest graph at high P
    assert sp[0] > sc[0]
    assert sp[-1] < sc[-1]
