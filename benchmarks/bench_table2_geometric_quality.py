"""Table 2: cut quality of the geometric methods relative to G30.

Paper shape to reproduce: RCB is the worst geometric method on average
(+16% vs G30 in the paper), G7-NL trails G30 slightly, while
ScalaPart's best cuts across P beat G30 substantially (−32% in the
paper) thanks to the strip refinement.
"""


import numpy as np

from repro.bench import P_SWEEP, run_method, suite_names, table2


def test_table2_geometric_quality(benchmark, record_output):
    text = benchmark.pedantic(table2, rounds=1, iterations=1)
    record_output("table2", text)

    # recompute the geometric means the table prints
    rel = {"G7-NL": [], "RCB": [], "Best SP": []}
    for name in suite_names():
        base = run_method("G30", name).cut or 1
        rel["G7-NL"].append(run_method("G7-NL", name).cut / base)
        rel["RCB"].append(run_method("RCB", name, 1).cut / base)
        sp = [run_method("ScalaPart", name, p).cut for p in P_SWEEP]
        rel["Best SP"].append(min(sp) / base)
    gm = {k: float(np.exp(np.mean(np.log(v)))) for k, v in rel.items()}

    # paper shape: best SP beats G30 on average; RCB does not
    assert gm["Best SP"] < 1.0
    assert gm["RCB"] > gm["Best SP"]
    # G7-NL (5 circles) stays within ~35% of G30 (30 tries) on average
    assert gm["G7-NL"] < 1.35
