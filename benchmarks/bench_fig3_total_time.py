"""Figure 3: total execution times over all 9 graphs, P = 1…1024.

Paper shape: ScalaPart is substantially slower at small P (embedding
iterations dominate), becomes competitive around P≈64 and overtakes
Pt-Scotch at high P; RCB is fastest throughout; Pt-Scotch scales worst.
"""

from repro.bench import P_SWEEP, fig3_total_times, suite_names, total_times


def test_fig3_total_time(benchmark, record_output):
    text = benchmark.pedantic(fig3_total_times, rounds=1, iterations=1)
    record_output("fig3", text)

    t = total_times(
        ["ScalaPart", "Pt-Scotch-like", "ParMetis-like", "RCB"],
        suite_names(), P_SWEEP,
    )
    sp, sc, pm, rcb = (t[m] for m in
                       ("ScalaPart", "Pt-Scotch-like", "ParMetis-like", "RCB"))
    # small P: SP slowest, RCB fastest
    assert sp[0] > sc[0] > rcb[0]
    assert sp[0] > pm[0]
    # SP speeds up dramatically while Pt-Scotch stagnates
    assert sp[0] / sp[-2] > 2.0           # SP gains from parallelism
    assert sc[0] / sc[-1] < sp[0] / sp[-1]  # Scotch scales worse than SP
    # high P: SP overtakes Pt-Scotch (the paper's headline crossover)
    assert sp[-1] < sc[-1]
    # RCB fastest at every P
    assert all(rcb[i] < sp[i] for i in range(len(P_SWEEP)))
