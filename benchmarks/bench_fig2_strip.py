"""Figure 2: the coordinate strip used to refine the separator.

Paper: for delaunay_n16 the strip holds ~5.6× as many vertices as the
separator; refinement on the strip never worsens the circle's cut.
"""

from repro.bench import fig2_strip


def test_fig2_strip(benchmark, record_output):
    text = benchmark.pedantic(fig2_strip, rounds=1, iterations=1)
    record_output("fig2", text)
    # the rendered row carries the factor; parse the sanity facts instead
    from repro.bench import BENCH_SEED, bench_coords, bench_graph
    from repro.core.scalapart import sp_pg7_nl

    gg = bench_graph("delaunay_n20")
    res = sp_pg7_nl(gg.graph, bench_coords("delaunay_n20"), seed=BENCH_SEED)
    # a small multiple of the separator, far below the graph size
    assert 1.0 <= res.extras["strip_factor"] <= 20.0
    assert res.extras["strip_size"] < 0.5 * gg.graph.num_vertices
    assert res.cut_weight <= res.extras["geometric_cut"] + 1e-9
