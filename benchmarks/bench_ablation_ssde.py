"""Ablation: SSDE initialisation (the paper's §5 future-work idea).

"Embedding times may also potentially decrease if sampled spectral
distance embedding schemes can be combined with our current approach."
This bench compares embedding quality and downstream cut for (a) the
paper's multilevel force-directed embedding, (b) raw SSDE, and (c) the
hybrid: SSDE coordinates smoothed with a few fixed-lattice iterations.
"""

import time


from repro.bench import BENCH_SEED, bench_graph, format_table
from repro.core.scalapart import sp_pg7_nl
from repro.embed import (
    Box,
    force_directed_layout,
    multilevel_embedding,
    neighborhood_preservation,
    repulsive_forces_lattice,
    ssde_embedding,
)

GRAPH = "delaunay_n20"


def run_sweep():
    g = bench_graph(GRAPH).graph
    out = {}

    t0 = time.perf_counter()
    ml = multilevel_embedding(g, seed=BENCH_SEED).pos
    out["multilevel FDL"] = (time.perf_counter() - t0, ml)

    t0 = time.perf_counter()
    raw = ssde_embedding(g, seed=BENCH_SEED)
    out["SSDE"] = (time.perf_counter() - t0, raw)

    t0 = time.perf_counter()
    sm = ssde_embedding(g, seed=BENCH_SEED)
    box = Box.of_points(sm).expanded(1.1)
    from functools import partial

    kernel = partial(
        lambda pos, m, c, k, box, s: repulsive_forces_lattice(
            pos, m, c, k, box=box, s=s
        ),
        box=box,
        s=16,
    )
    sm = force_directed_layout(g, sm, max_iters=12, step0=0.5,
                               repulsion=kernel).pos
    out["SSDE + lattice smoothing"] = (time.perf_counter() - t0, sm)

    rows = []
    cuts = {}
    for name, (secs, pos) in out.items():
        cut = sp_pg7_nl(g, pos, seed=BENCH_SEED).cut_size
        npres = neighborhood_preservation(g, pos, seed=1)
        cuts[name] = cut
        rows.append([name, f"{secs * 1e3:.0f}", f"{npres:.2f}", cut])
    return rows, cuts


def test_ablation_ssde(benchmark, record_output):
    rows, cuts = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = format_table(
        ["embedding", "wall ms", "nbhd preservation", "cut after SP-PG7-NL"],
        rows,
        title=f"Ablation: SSDE vs force-directed embedding ({GRAPH})",
    )
    record_output("ablation_ssde", text)
    # the hybrid must recover most of the force-directed quality
    assert cuts["SSDE + lattice smoothing"] <= 3 * cuts["multilevel FDL"]
    # raw SSDE alone is usable but weaker or equal
    assert cuts["SSDE"] >= cuts["multilevel FDL"] * 0.5
