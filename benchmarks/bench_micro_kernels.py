"""Micro-benchmarks of the library's computational kernels.

Unlike the table/figure benches (single-shot regenerations), these use
pytest-benchmark's statistical timing — they are the numbers to watch
when optimising the kernels.
"""

import numpy as np
import pytest

from repro.coarsen import contract, heavy_edge_matching
from repro.embed import (
    Box,
    lattice_stats,
    repulsive_forces_bh,
    repulsive_forces_exact,
    repulsive_forces_lattice,
)
from repro.geometric.gmt import g7_nl
from repro.graph import Bisection, CSRGraph, cut_size
from repro.graph.generators import grid2d, random_delaunay
from repro.parallel import ZERO_COST, run_spmd
from repro.refine import fm_refine


@pytest.fixture(scope="module")
def mesh():
    return random_delaunay(5000, seed=1)


def test_csr_from_edges(benchmark):
    rng = np.random.default_rng(0)
    edges = rng.integers(0, 20000, size=(60000, 2))
    benchmark(CSRGraph.from_edges, 20000, edges)


def test_cut_size(benchmark, mesh):
    side = (np.arange(mesh.graph.num_vertices) % 2).astype(np.int8)
    benchmark(cut_size, mesh.graph, side)


def test_heavy_edge_matching(benchmark, mesh):
    benchmark(heavy_edge_matching, mesh.graph, 7)


def test_contract(benchmark, mesh):
    match = heavy_edge_matching(mesh.graph, seed=7)
    benchmark(contract, mesh.graph, match)


def test_fm_refine(benchmark, mesh):
    g, pts = mesh
    side = (pts[:, 0] > np.median(pts[:, 0])).astype(np.int8)
    rng = np.random.default_rng(3)
    flip = rng.choice(g.num_vertices, 100, replace=False)
    side[flip] = 1 - side[flip]
    bis = Bisection(g, side)
    benchmark(fm_refine, bis)


def test_repulsion_exact_500(benchmark):
    pts = np.random.default_rng(4).random((500, 2))
    benchmark(repulsive_forces_exact, pts)


def test_repulsion_bh_5000(benchmark, mesh):
    benchmark(repulsive_forces_bh, mesh.coords)


def test_repulsion_lattice_5000(benchmark, mesh):
    box = Box.of_points(mesh.coords)
    benchmark(
        repulsive_forces_lattice, mesh.coords, None, 0.2, 1.0, box=box, s=16
    )


def test_geometric_g7nl(benchmark, mesh):
    benchmark(g7_nl, mesh.graph, mesh.coords, 5)


def test_engine_allreduce_p256(benchmark):
    def prog(comm):
        total = 0.0
        for _ in range(4):
            total = yield from comm.allreduce(comm.rank)
        return total

    benchmark(run_spmd, prog, 256, machine=ZERO_COST)
