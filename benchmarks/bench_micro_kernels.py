"""Micro-benchmark + perf-regression harness for the hot-path kernels.

Times the library's four hot paths — matching, contraction, engine
payload delivery and one embed smoothing iteration — on generated
graphs, reports per-kernel medians, and persists them (plus the
old-vs-new speedup ratios the optimisation work is accountable for) to
``BENCH_kernels.json``.

Two ways to run it:

* **Record**: ``python benchmarks/bench_micro_kernels.py`` times every
  kernel on a ~100k-vertex grid graph and writes the JSON (default:
  repo-root ``BENCH_kernels.json`` — the committed baseline).
* **Check**: ``python benchmarks/bench_micro_kernels.py --check
  BENCH_kernels.json`` re-times and *fails loudly* (exit 1) when any
  kernel regressed by more than ``--threshold`` (default 1.5×) against
  the baseline medians.

``--quick`` shrinks the graphs so CI can exercise the record/check path
in seconds (its timings are noise — pair it with a huge ``--threshold``
when checking, as the CI smoke job does).

``--scale 1m`` adds a million-vertex tier (``embed/smooth-iter-1m``,
``embed/bh-build-1m``, ``io/read-metis-1m`` on grid 1024×1024) on top of
the 100k rows.  The committed baseline is recorded at the default 100k
scale, so ``--check`` ignores the 1m rows until a 1m baseline is
recorded; the ``bench-1m`` manual-dispatch CI job runs this tier.

Unlike the table/figure benches (single-shot regenerations) this is a
plain script, importable without pytest: the numbers to watch when
optimising kernels, wired to fail the build when they rot.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.coarsen import (  # noqa: E402
    contract,
    heavy_edge_matching,
    heavy_edge_matching_vec,
    validate_matching,
)
from repro.embed.box import Box  # noqa: E402
from repro.embed.fdl import force_directed_layout, random_positions  # noqa: E402
from repro.embed.lattice import (  # noqa: E402
    LatticeWorkspace,
    repulsive_forces_lattice,
)
from repro.embed.quadtree import BHWorkspace, repulsive_forces_bh  # noqa: E402
from repro.geometric.kway import kway_geometric_assign  # noqa: E402
from repro.graph.generators import grid2d  # noqa: E402
from repro.graph.io import read_metis  # noqa: E402
from repro.parallel import ZERO_COST, procs_available, run_spmd  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_kernels.json"
SCHEMA = 1

#: kernels whose medians participate in the regression check
TIMED_KERNELS = (
    "matching/hem",
    "matching/hem-vec",
    "matching/validate",
    "coarsen/contract",
    "kway/geom-assign",
    "csr/dedupe-merge",
    "engine/delivery-defensive",
    "engine/delivery-readonly",
    "engine/reduce-array",
    "engine/procs-roundtrip",
    "embed/dist-accumulate",
    "embed/smooth-iter",
    "embed/bh-build",
    "io/read-metis",
)

#: extra rows recorded only with ``--scale 1m`` (no committed baseline)
SCALE_1M_KERNELS = (
    "embed/smooth-iter-1m",
    "embed/bh-build-1m",
    "io/read-metis-1m",
)


def _median_time(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _delivery_program(payload_len: int, rounds: int):
    """Rank program: ring sendrecv of an array payload, ``rounds`` times.

    With ``copy_mode="defensive"`` every delivery deep-copies the array;
    with ``"readonly"`` the same program moves read-only views — the
    difference is pure payload-copy cost.
    """

    def prog(comm):
        arr = np.full(payload_len, float(comm.rank))
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        acc = 0.0
        for _ in range(rounds):
            got = yield from comm.sendrecv(arr, dest=right, source=left)
            acc += float(got[0])
        return acc

    return prog


def _reduce_program(payload_len: int, rounds: int):
    def prog(comm):
        arr = np.full(payload_len, float(comm.rank))
        total = 0.0
        for _ in range(rounds):
            red = yield from comm.allreduce(arr, op="sum")
            total += float(red[0])
        return total

    return prog


def write_metis_fast(g, path: Path) -> None:
    """Unweighted METIS writer vectorised enough for 1M-vertex graphs
    (``write_metis`` string-formats per edge in Python; fine at 100k,
    minutes at 1M)."""
    idx1 = (g.indices + 1).tolist()
    indptr = g.indptr
    with open(path, "w") as fh:
        fh.write(f"{g.num_vertices} {g.num_edges}\n")
        fh.writelines(
            " ".join(map(str, idx1[indptr[v]:indptr[v + 1]])) + "\n"
            for v in range(g.num_vertices)
        )


def run_benchmarks(quick: bool = False, repeats: int = 5,
                   scale: str = "100k") -> dict:
    """Time every kernel; returns the result document (JSON-ready)."""
    side = 32 if quick else 320  # 1k / 102k vertices
    mesh = grid2d(side, side)
    g = mesh.graph
    results: dict = {
        "schema": SCHEMA,
        "quick": quick,
        "repeats": repeats,
        "scale": scale,
        "graph": {"kind": f"grid2d({side}x{side})", "n": g.num_vertices,
                  "m": g.num_edges},
        "kernels": {},
    }

    def record(name: str, fn) -> float:
        med = _median_time(fn, repeats)
        results["kernels"][name] = {"median_s": med}
        print(f"  {name:<28s} {med * 1e3:10.2f} ms")
        return med

    print(f"kernel micro-benchmarks on {results['graph']['kind']} "
          f"(n={g.num_vertices}, m={g.num_edges}), median of {repeats}")

    # ---- matching -----------------------------------------------------
    t_hem = record("matching/hem", lambda: heavy_edge_matching(g, seed=7))
    t_vec = record("matching/hem-vec",
                   lambda: heavy_edge_matching_vec(g, seed=7))
    match = heavy_edge_matching_vec(g, seed=7)
    record("matching/validate", lambda: validate_matching(g, match))

    # ---- contraction --------------------------------------------------
    record("coarsen/contract", lambda: contract(g, match))

    # ---- direct k-way geometric assignment ----------------------------
    # balanced spherical K-means on the mesh coordinates (K = 8 cells);
    # the assignment half of the kway-geometric partition stage
    record("kway/geom-assign",
           lambda: kway_geometric_assign(g, mesh.coords, 8, seed=7))

    # ---- scatter micro-checks (the np.add.at -> bincount satellites) --
    # Same shapes as the two replaced call sites: csr.py's duplicate-
    # edge weight merge (1-D) and parallel.py's distributed attractive
    # accumulation (per-column 2-D).  The *-addat rows are the "before"
    # side of the micro-check; the speedup lines below report the ratio.
    rng = np.random.default_rng(5)
    n_grp = g.num_vertices
    sc_idx = np.sort(rng.integers(0, n_grp, size=4 * n_grp))
    sc_w = rng.random(sc_idx.size)
    sc_f = rng.random((sc_idx.size, 2))

    def merge_addat():
        out = np.zeros(n_grp)
        np.add.at(out, sc_idx, sc_w)
        return out

    def merge_bincount():
        return np.bincount(sc_idx, weights=sc_w, minlength=n_grp)

    t_ma = record("csr/dedupe-merge-addat", merge_addat)
    t_mb = record("csr/dedupe-merge", merge_bincount)
    assert np.array_equal(merge_addat(), merge_bincount())

    def accum_addat():
        out = np.zeros((n_grp, 2))
        np.add.at(out, sc_idx, sc_f)
        return out

    def accum_bincount():
        out = np.empty((n_grp, 2))
        out[:, 0] = np.bincount(sc_idx, weights=sc_f[:, 0], minlength=n_grp)
        out[:, 1] = np.bincount(sc_idx, weights=sc_f[:, 1], minlength=n_grp)
        return out

    t_aa = record("embed/dist-accumulate-addat", accum_addat)
    t_ab = record("embed/dist-accumulate", accum_bincount)
    assert np.array_equal(accum_addat(), accum_bincount())

    # ---- engine payload delivery -------------------------------------
    n_payload = 4_000 if quick else 1_000_000
    rounds = 4 if quick else 8
    prog = _delivery_program(n_payload, rounds)
    t_def = record(
        "engine/delivery-defensive",
        lambda: run_spmd(prog, 2, machine=ZERO_COST, copy_mode="defensive"),
    )
    t_ro = record(
        "engine/delivery-readonly",
        lambda: run_spmd(prog, 2, machine=ZERO_COST, copy_mode="readonly"),
    )
    rprog = _reduce_program(n_payload // 8, rounds)
    record("engine/reduce-array",
           lambda: run_spmd(rprog, 8, machine=ZERO_COST))
    if procs_available():
        # Same ring program on real worker processes: times fork + shm
        # delivery + teardown.  Deliberately small payload — each call
        # spawns two OS processes.
        pprog = _delivery_program(min(n_payload, 64_000), rounds)
        record(
            "engine/procs-roundtrip",
            lambda: run_spmd(pprog, 2, machine=ZERO_COST, backend="procs"),
        )
    else:
        print("  engine/procs-roundtrip       (procs backend unavailable, "
              "skipped)")

    # ---- one embed smoothing iteration --------------------------------
    # Workspace threaded exactly as multilevel_embedding does: one
    # LatticeWorkspace reused across iterations/levels.
    pos0 = random_positions(g.num_vertices, seed=3)
    box = Box.of_points(pos0).expanded(1.05)
    s = 4 if quick else 32
    lat_ws = LatticeWorkspace()

    def lattice_kernel(pos, masses, c, k):
        return repulsive_forces_lattice(pos, masses, c, k, box=box, s=s,
                                        workspace=lat_ws)

    record(
        "embed/smooth-iter",
        lambda: force_directed_layout(
            g, pos0, masses=g.vwgt, max_iters=1, step0=1.0,
            repulsion=lattice_kernel,
        ),
    )

    # ---- Barnes-Hut evaluation (build + traversal) --------------------
    bh_ws = BHWorkspace()
    record(
        "embed/bh-build",
        lambda: repulsive_forces_bh(pos0, g.vwgt, workspace=bh_ws),
    )

    # ---- streaming METIS reader ---------------------------------------
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        gpath = Path(tmp) / "bench.graph"
        write_metis_fast(g, gpath)
        record("io/read-metis", lambda: read_metis(gpath))

        if scale == "1m":
            print("-- 1m tier (grid2d 1024x1024) --")
            rep_1m = max(1, min(repeats, 3))
            g1 = grid2d(1024, 1024).graph
            pos1 = random_positions(g1.num_vertices, seed=3)
            box1 = Box.of_points(pos1).expanded(1.05)
            ws1 = LatticeWorkspace()

            def lattice_kernel_1m(pos, masses, c, k):
                return repulsive_forces_lattice(pos, masses, c, k, box=box1,
                                                s=64, workspace=ws1)

            def smooth_1m():
                return force_directed_layout(
                    g1, pos1, masses=g1.vwgt, max_iters=1, step0=1.0,
                    repulsion=lattice_kernel_1m,
                )

            results["kernels"]["embed/smooth-iter-1m"] = {
                "median_s": _median_time(smooth_1m, rep_1m)}
            print(f"  {'embed/smooth-iter-1m':<28s} "
                  f"{results['kernels']['embed/smooth-iter-1m']['median_s'] * 1e3:10.2f} ms")
            bh_ws1 = BHWorkspace()
            results["kernels"]["embed/bh-build-1m"] = {
                "median_s": _median_time(
                    lambda: repulsive_forces_bh(pos1, g1.vwgt, workspace=bh_ws1),
                    rep_1m)}
            print(f"  {'embed/bh-build-1m':<28s} "
                  f"{results['kernels']['embed/bh-build-1m']['median_s'] * 1e3:10.2f} ms")
            gpath1 = Path(tmp) / "bench-1m.graph"
            write_metis_fast(g1, gpath1)
            results["kernels"]["io/read-metis-1m"] = {
                "median_s": _median_time(lambda: read_metis(gpath1), rep_1m)}
            print(f"  {'io/read-metis-1m':<28s} "
                  f"{results['kernels']['io/read-metis-1m']['median_s'] * 1e3:10.2f} ms")

    results["speedups"] = {
        "heavy_edge_matching": t_hem / t_vec if t_vec > 0 else float("inf"),
        "payload_delivery": t_def / t_ro if t_ro > 0 else float("inf"),
        "dedupe_merge": t_ma / t_mb if t_mb > 0 else float("inf"),
        "dist_accumulate": t_aa / t_ab if t_ab > 0 else float("inf"),
    }
    for name, ratio in results["speedups"].items():
        print(f"  speedup {name:<20s} {ratio:6.2f}x")
    return results


def check_regressions(current: dict, baseline: dict, threshold: float) -> list:
    """Compare per-kernel medians; returns a list of failure strings."""
    failures = []
    base_kernels = baseline.get("kernels", {})
    for name, entry in current["kernels"].items():
        base = base_kernels.get(name)
        if base is None:
            print(f"  {name:<28s} (no baseline entry, skipped)")
            continue
        ratio = entry["median_s"] / max(base["median_s"], 1e-12)
        status = "ok" if ratio <= threshold else "REGRESSED"
        print(f"  {name:<28s} {ratio:6.2f}x vs baseline   {status}")
        if ratio > threshold:
            failures.append(
                f"{name}: {entry['median_s'] * 1e3:.2f} ms vs baseline "
                f"{base['median_s'] * 1e3:.2f} ms ({ratio:.2f}x > "
                f"{threshold:.2f}x)"
            )
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="tiny graphs (CI smoke; timings are noise)")
    ap.add_argument("--scale", choices=("100k", "1m"), default="100k",
                    help="add the million-vertex tier rows with '1m' "
                         "(default: 100k rows only)")
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT,
                    help=f"result JSON path (default {DEFAULT_OUT})")
    ap.add_argument("--check", type=Path, metavar="BASELINE",
                    help="compare against a baseline JSON; exit 1 on "
                         ">threshold regressions")
    ap.add_argument("--threshold", type=float, default=1.5,
                    help="regression factor that fails --check "
                         "(default 1.5)")
    args = ap.parse_args(argv)

    results = run_benchmarks(quick=args.quick, repeats=args.repeats,
                             scale=args.scale)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        print(f"regression check vs {args.check} "
              f"(threshold {args.threshold:.2f}x)")
        failures = check_regressions(results, baseline, args.threshold)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
