"""Ablation: the stale-data block size of the lattice embedding.

Paper §3: "For block sizes comprising 2-8 iterations, there was no
observable change in the quality of the embeddings while global
communication costs were correspondingly reduced."  This bench sweeps
block_size ∈ {1, 2, 4, 8} at P=64 and checks both halves of the claim
— in simulated seconds *and* in the measured communication ledger:
the number of global collectives per smoothing iteration must fall
monotonically as the block grows (Fig. 8's mechanism).
"""

import numpy as np

from repro.bench import BENCH_SEED, MACHINE, bench_graph, format_table
from repro.core.config import ScalaPartConfig
from repro.core.parallel import scalapart_parallel

GRAPH = "delaunay_n20"
P = 64
BLOCKS = [1, 2, 4, 8]


def run_sweep():
    g = bench_graph(GRAPH).graph
    rows = []
    for b in BLOCKS:
        cfg = ScalaPartConfig(block_size=b)
        res = scalapart_parallel(g, P, cfg, seed=BENCH_SEED, machine=MACHINE)
        stats = res.extras["comm_stats"]
        embed = stats.phase("embed")
        iters = max(1, res.extras.get("smooth_iterations", 1))
        rows.append({
            "block": b,
            "cut": res.cut_size,
            "embed_ms": res.stage_seconds["embed"] * 1e3,
            "embed_comm": res.extras["phase_comm"].get("embed", 0.0),
            "embed_colls": embed.collective_invocations(),
            "colls_per_iter": embed.collective_invocations() / iters,
        })
    return rows


def test_ablation_blocksize(benchmark, record_output):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = format_table(
        ["block size", "cut", "embed time (ms)", "embed comm fraction",
         "global colls", "colls/iter"],
        [[r["block"], r["cut"], f"{r['embed_ms']:.2f}", f"{r['embed_comm']:.2f}",
          r["embed_colls"], f"{r['colls_per_iter']:.2f}"]
         for r in rows],
        title=f"Ablation: iteration block size ({GRAPH}, P={P})",
    )
    record_output("ablation_blocksize", text)

    # communication cost falls as the block grows ...
    assert rows[-1]["embed_ms"] < rows[0]["embed_ms"]
    # ... driven by fewer global collectives per smoothing iteration
    cpi = [r["colls_per_iter"] for r in rows]
    assert all(b < a for a, b in zip(cpi, cpi[1:])), cpi
    # ... while quality stays in the same regime (within 2x of the best)
    cuts = np.array([r["cut"] for r in rows], dtype=float)
    assert cuts.max() <= 2.0 * cuts.min()
