"""Ablation: strip refinement on/off and strip-width sweep.

The paper attributes ScalaPart's quality edge over G30/G7-NL to the
Fiduccia–Mattheyses strip refinement; this bench quantifies it.
"""


from repro.bench import BENCH_SEED, bench_coords, bench_graph, format_table
from repro.core.config import ScalaPartConfig
from repro.core.scalapart import sp_pg7_nl
from repro.geometric.gmt import g7_nl

GRAPH = "delaunay_n23"
FACTORS = [2.0, 6.0, 12.0]


def run_sweep():
    g = bench_graph(GRAPH).graph
    coords = bench_coords(GRAPH)
    raw = g7_nl(g, coords, seed=BENCH_SEED).cut_size
    rows = [["(no refinement)", raw, "-"]]
    for f in FACTORS:
        cfg = ScalaPartConfig(strip_factor=f)
        res = sp_pg7_nl(g, coords, cfg, seed=BENCH_SEED)
        rows.append([f"factor {f:g}", res.cut_size,
                     res.extras["strip_size"]])
    return raw, rows


def test_ablation_strip(benchmark, record_output):
    raw, rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = format_table(
        ["strip", "cut", "strip vertices"],
        rows,
        title=f"Ablation: strip refinement ({GRAPH})",
    )
    record_output("ablation_strip", text)
    refined = [r[1] for r in rows[1:]]
    # refinement improves the raw circle cut for every width
    assert all(c <= raw for c in refined)
    assert min(refined) < raw
