"""Table 1: the evaluation suite (paper sizes vs analogue sizes)."""

from repro.bench import bench_graph, suite_names, table1


def test_table1_suite(benchmark, record_output):
    text = benchmark.pedantic(table1, rounds=1, iterations=1)
    record_output("table1", text)
    # nine graphs, each connected and non-trivial
    assert len(suite_names()) == 9
    for name in suite_names():
        g = bench_graph(name).graph
        assert g.num_vertices > 500
        assert g.is_connected()
    # relative size ordering of the suite is preserved
    sizes = {n: bench_graph(n).graph.num_vertices for n in suite_names()}
    assert sizes["hugebubbles-00020"] == max(sizes.values())
