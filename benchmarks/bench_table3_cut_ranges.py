"""Table 3: best/worst cut-sizes for all methods across P.

Paper shape: ScalaPart's best cuts are competitive with (often better
than) the best Pt-Scotch cuts; ParMetis cuts are somewhat higher;
RCB is the weakest.
"""

import numpy as np

from repro.bench import P_SWEEP, run_method, suite_names, table3


def test_table3_cut_ranges(benchmark, record_output):
    text = benchmark.pedantic(table3, rounds=1, iterations=1)
    record_output("table3", text)

    ratios_sp, ratios_pm, ratios_rcb = [], [], []
    for name in suite_names():
        scot = min(run_method("Pt-Scotch-like", name, p).cut for p in P_SWEEP)
        sp = min(run_method("ScalaPart", name, p).cut for p in P_SWEEP)
        pm = min(run_method("ParMetis-like", name, p).cut for p in P_SWEEP)
        rcb = run_method("RCB", name, 1).cut
        base = scot or 1
        ratios_sp.append(sp / base)
        ratios_pm.append(pm / base)
        ratios_rcb.append(rcb / base)
    gm = lambda v: float(np.exp(np.mean(np.log(v))))

    # best SP within ~15% of best Pt-Scotch on average (paper: 6% better)
    assert gm(ratios_sp) < 1.15
    # RCB clearly worse than the multilevel/geometric-refined methods
    assert gm(ratios_rcb) > gm(ratios_sp)
    # ParMetis trails Pt-Scotch (paper: +10% at best)
    assert gm(ratios_pm) > 0.95
