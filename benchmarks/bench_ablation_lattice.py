"""Ablation: fixed-lattice vs Barnes–Hut repulsion in the embedding.

The lattice approximation is much cruder than Barnes–Hut; the paper's
bet is that the downstream *cut* barely suffers.  This bench embeds the
same graph both ways and partitions with the same G7-NL budget.
"""

from repro.bench import BENCH_SEED, bench_graph, format_table
from repro.core.scalapart import sp_pg7_nl
from repro.embed import multilevel_embedding

GRAPH = "delaunay_n23"


def run_sweep():
    g = bench_graph(GRAPH).graph
    out = {}
    for kind in ("lattice", "bh"):
        emb = multilevel_embedding(g, seed=BENCH_SEED, repulsion=kind)
        res = sp_pg7_nl(g, emb.pos, seed=BENCH_SEED)
        out[kind] = res.cut_size
    return out


def test_ablation_lattice_vs_bh(benchmark, record_output):
    cuts = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = format_table(
        ["repulsion", "cut (after SP-PG7-NL)"],
        [[k, v] for k, v in cuts.items()],
        title=f"Ablation: lattice vs Barnes–Hut embedding ({GRAPH})",
    )
    record_output("ablation_lattice", text)
    # the fixed lattice stays within 2x of the far costlier Barnes–Hut
    assert cuts["lattice"] <= 2.0 * cuts["bh"]
