"""Table 4: speed-ups at P=1024 relative to Pt-Scotch.

Paper shape: every method beats Pt-Scotch at 1024; SP-PG7-NL (the
partition-only component) is the fastest of the partitioners and beats
RCB.
"""

from repro.bench import run_method, suite_names, table4


def total(method, p=1024):
    return sum(run_method(method, g, p).seconds for g in suite_names())


def test_table4_speedups(benchmark, record_output):
    text = benchmark.pedantic(table4, rounds=1, iterations=1)
    record_output("table4", text)

    t_scotch = total("Pt-Scotch-like")
    t_pm = total("ParMetis-like")
    t_sp = total("ScalaPart")
    t_sppg = total("SP-PG7-NL")
    t_rcb = total("RCB")

    # Pt-Scotch is the slowest partitioner at P=1024
    assert t_scotch > t_pm
    assert t_scotch > t_sp
    # the partition-only component crushes the full pipelines and RCB
    assert t_sppg < t_rcb
    assert t_sppg < 0.2 * t_sp
