"""Figure 4: RCB vs SP-PG7-NL (ScalaPart without coarsening/embedding).

Paper shape: RCB wins at small P, but from P≈128 the geometric
partitioner — three reductions total — beats RCB's iterative
median-search, "while providing significantly better cuts".
"""

from repro.bench import P_SWEEP, fig4_partition_only, suite_names, total_times


def test_fig4_partition_only(benchmark, record_output):
    text = benchmark.pedantic(fig4_partition_only, rounds=1, iterations=1)
    record_output("fig4", text)

    t = total_times(["RCB", "SP-PG7-NL"], suite_names(), P_SWEEP)
    rcb, sppg = t["RCB"], t["SP-PG7-NL"]
    # small P: RCB faster
    assert rcb[0] < sppg[0]
    # high P: SP-PG7-NL overtakes (crossover within the sweep)
    assert sppg[-1] < rcb[-1]
    crossover = [p for p, a, b in zip(P_SWEEP, sppg, rcb) if a < b]
    assert crossover and crossover[0] <= 256
