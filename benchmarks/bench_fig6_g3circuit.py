"""Figure 6: execution times for G3_circuit."""

from repro.bench import P_SWEEP, fig_single_graph, run_method

GRAPH = "G3_circuit"


def test_fig6_g3circuit(benchmark, record_output):
    text = benchmark.pedantic(
        fig_single_graph, args=(GRAPH, "6"), rounds=1, iterations=1
    )
    record_output("fig6", text)

    sp = [run_method("ScalaPart", GRAPH, p).seconds for p in P_SWEEP]
    rcb = [run_method("RCB", GRAPH, p).seconds for p in P_SWEEP]
    # ScalaPart gains a large factor from parallelism on this graph
    assert sp[0] / min(sp) > 2.0
    assert all(r < s for r, s in zip(rcb, sp))
