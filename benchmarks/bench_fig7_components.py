"""Figure 7: ScalaPart component times (coarsen / embed / partition).

Paper shape: "times for embedding are by far the largest fraction of
the time in ScalaPart" at every processor count.
"""

from repro.bench import P_SWEEP, fig7_components, run_method, suite_names


def test_fig7_components(benchmark, record_output):
    text = benchmark.pedantic(fig7_components, rounds=1, iterations=1)
    record_output("fig7", text)

    for p in P_SWEEP:
        stages = {"coarsen": 0.0, "embed": 0.0, "partition": 0.0}
        for g in suite_names():
            rec = run_method("ScalaPart", g, p)
            for k in stages:
                stages[k] += rec.stage_seconds.get(k, 0.0)
        assert stages["embed"] > stages["coarsen"]
        assert stages["embed"] > stages["partition"]
