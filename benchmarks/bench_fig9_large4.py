"""Figure 9: parallel times for the 4 largest graphs, P = 16…1024.

Paper shape: ScalaPart is slower than Pt-Scotch at 16 processors but
the situation reverses by 1024 on the large graphs.
"""

import numpy as np

from repro.bench import fig9_large4, large4_names, run_method

PS = [16, 64, 256, 1024]


def avg(method, p):
    return float(np.mean([run_method(method, g, p).seconds
                          for g in large4_names()]))


def test_fig9_large4(benchmark, record_output):
    text = benchmark.pedantic(fig9_large4, args=(PS,), rounds=1, iterations=1)
    record_output("fig9", text)

    sp16, sc16 = avg("ScalaPart", 16), avg("Pt-Scotch-like", 16)
    sp1024, sc1024 = avg("ScalaPart", 1024), avg("Pt-Scotch-like", 1024)
    assert sp16 > sc16          # SP significantly slower at 16
    assert sp1024 < sc1024      # the situation is quite the opposite at 1024
