"""Shared helpers for the benchmark suite.

Each table/figure benchmark regenerates one artifact of the paper's
evaluation, prints it, and saves it under ``benchmarks/results/``.
Grid cells (method × graph × P) are cached by the harness
(``.bench_cache/``), so the whole directory costs roughly one sweep.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_output():
    """Print a rendered table/figure and persist it for EXPERIMENTS.md."""

    def _record(name: str, text: str) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
        return text

    return _record
