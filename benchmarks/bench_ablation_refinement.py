"""Ablation: FM vs KL refinement (the classical pair the paper cites)."""


from repro.bench import BENCH_SEED, bench_coords, bench_graph, format_table
from repro.geometric.gmt import g7_nl
from repro.refine import fm_refine, kl_refine

GRAPH = "delaunay_n20"


def run_sweep():
    g = bench_graph(GRAPH).graph
    start = g7_nl(g, bench_coords(GRAPH), seed=BENCH_SEED).bisection
    fm = fm_refine(start)
    kl = kl_refine(start)
    return {
        "start": start.cut_size,
        "FM": fm.bisection.cut_size,
        "KL": kl.bisection.cut_size,
    }


def test_ablation_fm_vs_kl(benchmark, record_output):
    cuts = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = format_table(
        ["refinement", "cut"],
        [[k, v] for k, v in cuts.items()],
        title=f"Ablation: FM vs KL refinement ({GRAPH})",
    )
    record_output("ablation_refinement", text)
    assert cuts["FM"] <= cuts["start"]
    assert cuts["KL"] <= cuts["start"]
    # FM matches or beats KL within noise (and is far cheaper per pass)
    assert cuts["FM"] <= 1.1 * cuts["KL"]
