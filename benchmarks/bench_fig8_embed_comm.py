"""Figure 8: embedding time composition (computation vs communication).

Paper shape: the communication fraction of embedding time grows with
the processor count.
"""

import numpy as np

from repro.bench import P_SWEEP, fig8_embed_comm, run_method, suite_names


def comm_fraction(p):
    fr = [run_method("ScalaPart", g, p).phase_comm.get("embed", 0.0)
          for g in suite_names()]
    return float(np.mean(fr))


def test_fig8_embed_comm(benchmark, record_output):
    text = benchmark.pedantic(fig8_embed_comm, rounds=1, iterations=1)
    record_output("fig8", text)

    fr = [comm_fraction(p) for p in P_SWEEP]
    assert fr[0] < 0.2          # sequential: almost no communication
    assert fr[-1] > fr[1]       # fraction grows toward high P
    assert fr[-1] > 0.4
