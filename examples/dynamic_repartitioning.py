#!/usr/bin/env python
"""Dynamic re-partitioning of an adaptively refined mesh.

The scenario from the paper's introduction: "in a scientific simulation
with a large number of processors ... periodically, data and tasks have
to be re-distributed in order to re-balance workloads while limiting
inter-processor communication."

We simulate an adaptive solver: a mesh is partitioned, then refinement
concentrates new vertices in a 'hot' region (unbalancing the old
partition), and the mesh is re-partitioned.  Because the refined mesh
inherits coordinates, re-partitioning only needs the *partition-only*
component SP-PG7-NL — the paper's headline use case where ScalaPart
(exclusive of embedding) beats RCB at scale while cutting fewer edges.

Run:  python examples/dynamic_repartitioning.py
"""

import numpy as np

from repro.core import ScalaPartConfig
from repro.core.parallel import rcb_parallel, sp_pg7_nl_parallel
from repro.graph import Bisection
from repro.graph.generators import delaunay_mesh

P = 256
rng = np.random.default_rng(11)

# --- step 1: initial mesh and partition -------------------------------
pts = rng.random((3000, 2))
mesh = delaunay_mesh(pts, "step0")
initial = sp_pg7_nl_parallel(mesh.graph, mesh.coords, P, seed=1)
print(f"step 0: n={mesh.graph.num_vertices:6d}  cut={initial.cut_size:4d}  "
      f"imbalance={initial.imbalance:.3f}")

# --- step 2: adaptive refinement around a hot spot --------------------
hot = np.array([0.7, 0.3])
extra = hot + rng.normal(scale=0.08, size=(4000, 2))
extra = extra[(extra > 0).all(axis=1) & (extra < 1).all(axis=1)]
pts2 = np.vstack([pts, extra])
mesh2 = delaunay_mesh(pts2, "step1")

# the old labels, carried over to the refined mesh, are now unbalanced
carried = np.zeros(mesh2.graph.num_vertices, dtype=np.int8)
carried[: pts.shape[0]] = initial.bisection.side
carried[pts.shape[0]:] = initial.bisection.side[0]  # hot region joins side of old owner
stale = Bisection(mesh2.graph, carried)
print(f"step 1: n={mesh2.graph.num_vertices:6d}  carried-over partition: "
      f"cut={stale.cut_size:4d}  imbalance={stale.imbalance:.3f}  <-- unbalanced!")

# --- step 3: re-partition with SP-PG7-NL vs RCB ------------------------
cfg = ScalaPartConfig()
sp = sp_pg7_nl_parallel(mesh2.graph, mesh2.coords, P, cfg, seed=2)
rcb = rcb_parallel(mesh2.graph, mesh2.coords, P)
print(f"step 1 repartitioned (P={P}, simulated times):")
print(f"  SP-PG7-NL : cut={sp.cut_size:4d}  imbalance={sp.imbalance:.3f}  "
      f"t={sp.seconds * 1e3:.3f} ms")
print(f"  RCB       : cut={rcb.cut_size:4d}  imbalance={rcb.imbalance:.3f}  "
      f"t={rcb.seconds * 1e3:.3f} ms")

sp.validate(max_imbalance=0.06)
better = "SP-PG7-NL" if sp.cut_size <= rcb.cut_size else "RCB"
print(f"\nbetter cut from: {better}")
