#!/usr/bin/env python
"""Strong-scaling study on the virtual machine (mini Figure 3/9).

Sweeps one graph over P = 1…1024 virtual processors for ScalaPart and
the multilevel baselines, printing simulated times, speed-ups and the
communication fraction — the quantities behind the paper's Figures 3,
8 and 9 — plus the §3.1 analytic prediction for comparison.

Run:  python examples/strong_scaling_study.py [n_vertices]
"""

import sys

from repro.core import ComplexityModel, ScalaPartConfig
from repro.core.parallel import (
    parmetis_parallel,
    scalapart_parallel,
    scotch_parallel,
)
from repro.graph.generators import random_delaunay

n = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
graph = random_delaunay(n, seed=3).graph
cfg = ScalaPartConfig()
model = ComplexityModel()

print(f"strong scaling, delaunay n={n} (times are simulated cluster seconds)\n")
header = (f"{'P':>5}  {'ScalaPart':>11}  {'speedup':>7}  {'comm%':>5}  "
          f"{'ParMetis':>10}  {'Pt-Scotch':>10}  {'3.1 model comm':>14}")
print(header)
print("-" * len(header))

base = None
for p in (1, 4, 16, 64, 256, 1024):
    sp = scalapart_parallel(graph, p, cfg, seed=4)
    pm = parmetis_parallel(graph, p, seed=4)
    sc = scotch_parallel(graph, p, seed=4)
    if base is None:
        base = sp.seconds
    comm = sp.extras["comm_fraction"]
    predicted = model.total_comm(n, p)
    print(f"{p:>5}  {sp.seconds*1e3:>9.2f}ms  {base/sp.seconds:>6.1f}x  "
          f"{100*comm:>4.0f}%  {pm.seconds*1e3:>8.2f}ms  {sc.seconds*1e3:>8.2f}ms  "
          f"{predicted*1e3:>12.3f}ms")

print("\nexpected shape (paper): ScalaPart slowest at P=1, crossover vs")
print("Pt-Scotch by P~64-256; communication fraction grows with P.")
