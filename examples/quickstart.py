#!/usr/bin/env python
"""Quickstart: partition a graph with ScalaPart in five lines.

ScalaPart needs no coordinates — it invents them: the graph is
coarsened, embedded in the plane with the fixed-lattice force scheme,
cut with random great circles on the sphere, and polished with
Fiduccia–Mattheyses on a strip around the winning circle.

Run:  python examples/quickstart.py
"""

from repro.core import scalapart
from repro.graph.generators import random_delaunay

# 1. get a graph (any CSRGraph works; here: a Delaunay mesh)
graph, _coords = random_delaunay(4000, seed=42)
print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

# 2. partition it
result = scalapart(graph, seed=0)

# 3. inspect the bisection
bis = result.bisection
print(f"cut size      : {bis.cut_size} edges")
print(f"part sizes    : {bis.part_sizes}")
print(f"imbalance     : {bis.imbalance:.3%}")
print(f"wall time     : {result.seconds * 1e3:.1f} ms")
print("stage seconds :", {k: f"{v * 1e3:.1f}ms" for k, v in result.stage_seconds.items()})

# 4. the labels are a plain numpy array — use them however you like
side = bis.side
print(f"side array    : shape={side.shape}, dtype={side.dtype}")

# 5. sanity: validate balance programmatically (raises if violated)
bis.validate(max_imbalance=0.06)
print("balanced bisection validated ✓")
