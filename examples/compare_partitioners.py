#!/usr/bin/env python
"""Compare every partitioner in the library on one graph.

Reproduces a single row of the paper's evaluation: quality (cut size)
and simulated parallel execution time at a chosen processor count for
every method in the central registry — ScalaPart, the
ParMetis/Pt-Scotch analogues, RCB, the sequential geometric
partitioners (G30/G7/G7-NL) and spectral bisection.  Methods registered
later show up here automatically.

Run:  python examples/compare_partitioners.py [n_vertices] [P]
"""

import sys

from repro.core.methods import METHOD_REGISTRY
from repro.core.parallel import run_parallel
from repro.embed import hu_layout
from repro.graph.generators import random_delaunay

n = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
p = int(sys.argv[2]) if len(sys.argv) > 2 else 64

graph, _ = random_delaunay(n, seed=7)
print(f"graph: n={graph.num_vertices} m={graph.num_edges}; P={p} virtual ranks\n")

# coordinate-based methods get a Hu layout, exactly as in the paper
coords = hu_layout(graph, seed=8)

rows = []
for name, spec in METHOD_REGISTRY.items():
    c = coords if spec.needs_coords else None
    if spec.traceable:
        res = run_parallel(spec, graph, p, coords=c, seed=1)
        rows.append((name, res.cut_size, f"{res.imbalance:.3f}",
                     f"{res.seconds * 1e3:.3f} ms (simulated)"))
    else:
        res = spec.sequential(graph, c, seed=2)
        rows.append((name, res.cut_size, f"{res.imbalance:.3f}",
                     "(sequential)"))

w = max(len(r[0]) for r in rows)
print(f"{'method'.ljust(w)}  {'cut':>6}  {'imbal':>6}  time")
for name, cut, imbal, t in rows:
    print(f"{name.ljust(w)}  {cut:>6}  {imbal:>6}  {t}")
