#!/usr/bin/env python
"""Compare every partitioner in the library on one graph.

Reproduces a single row of the paper's evaluation: quality (cut size)
and simulated parallel execution time at a chosen processor count for
ScalaPart, the ParMetis/Pt-Scotch analogues, RCB, the sequential
geometric partitioners (G30/G7/G7-NL) and spectral bisection.

Run:  python examples/compare_partitioners.py [n_vertices] [P]
"""

import sys

from repro.baselines import rcb_bisect, spectral_bisect
from repro.core import ScalaPartConfig
from repro.core.parallel import (
    parmetis_parallel,
    rcb_parallel,
    scalapart_parallel,
    scotch_parallel,
)
from repro.embed import hu_layout
from repro.geometric import g30, g7, g7_nl
from repro.graph.generators import random_delaunay

n = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
p = int(sys.argv[2]) if len(sys.argv) > 2 else 64

graph, _ = random_delaunay(n, seed=7)
print(f"graph: n={graph.num_vertices} m={graph.num_edges}; P={p} virtual ranks\n")

# coordinate-based methods get a Hu layout, exactly as in the paper
coords = hu_layout(graph, seed=8)

rows = []

# --- distributed methods on the virtual machine ----------------------
for name, run in [
    ("ScalaPart", lambda: scalapart_parallel(graph, p, ScalaPartConfig(), seed=1)),
    ("ParMetis-like", lambda: parmetis_parallel(graph, p, seed=1)),
    ("Pt-Scotch-like", lambda: scotch_parallel(graph, p, seed=1)),
    ("RCB (parallel)", lambda: rcb_parallel(graph, coords, p)),
]:
    res = run()
    rows.append((name, res.cut_size, f"{res.imbalance:.3f}",
                 f"{res.seconds * 1e3:.3f} ms (simulated)"))

# --- sequential references -------------------------------------------
for name, run in [
    ("G30", lambda: g30(graph, coords, seed=2)),
    ("G7", lambda: g7(graph, coords, seed=2)),
    ("G7-NL", lambda: g7_nl(graph, coords, seed=2)),
]:
    res = run()
    rows.append((name, res.cut_size,
                 f"{res.bisection.imbalance:.3f}", "(sequential)"))

spec = spectral_bisect(graph, seed=3)
rows.append(("Spectral+FM", spec.cut_size, f"{spec.imbalance:.3f}",
             f"{spec.seconds * 1e3:.1f} ms (wall)"))

w = max(len(r[0]) for r in rows)
print(f"{'method'.ljust(w)}  {'cut':>6}  {'imbal':>6}  time")
for name, cut, imb, t in rows:
    print(f"{name.ljust(w)}  {cut:>6}  {imb:>6}  {t}")
