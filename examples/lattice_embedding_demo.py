#!/usr/bin/env python
"""The fixed-lattice embedding, step by step (paper Figure 1).

Walks through the machinery behind ScalaPart's main contribution on a
small graph with a 3×3 lattice — the exact setting of the paper's
Figure 1: lattice cells B_{i,j}, special vertices β with cell masses at
cell centres of mass, and the Eq. 1–2 repulsive forces — then runs the
full multilevel embedding and writes coordinates to a file usable by
any coordinate-based partitioner.

Run:  python examples/lattice_embedding_demo.py
"""

import numpy as np

from repro.embed import (
    Box,
    beta_force_field,
    cell_indices,
    lattice_stats,
    multilevel_embedding,
    repulsive_forces_exact,
    repulsive_forces_lattice,
)
from repro.graph.generators import random_delaunay
from repro.graph.io import write_coords

rng = np.random.default_rng(5)

# --- a small embedded graph and the 3x3 lattice of Figure 1 -----------
graph, pos = random_delaunay(60, seed=5)
box = Box.of_points(pos)
S = 3
row, col = cell_indices(pos, box, S)
stats = lattice_stats(pos, graph.vwgt, box, S)

print(f"graph: n={graph.num_vertices}, box={box.lo.round(2)}..{box.hi.round(2)}")
print(f"\n{S}x{S} lattice: special vertices beta (mass mu at centre of mass phi)")
for i in range(S):
    for j in range(S):
        cid = i * S + j
        mu = stats.mass[cid]
        phi = stats.com[cid]
        print(f"  B[{i},{j}]: mu={mu:4.0f}  phi=({phi[0]:.2f}, {phi[1]:.2f})")

# --- Eq. 1: the per-cell repulsive field -------------------------------
field = beta_force_field(stats)
print("\nEq. 1 field at each beta (per unit mass):")
print(np.array2string(field.reshape(S, S, 2), precision=2, suppress_small=True))

# --- Eq. 2: per-vertex forces, compared with the exact O(n^2) sum ------
approx = repulsive_forces_lattice(pos, graph.vwgt, box=box, s=S)
exact = repulsive_forces_exact(pos, graph.vwgt)
cos = (approx * exact).sum(axis=1) / (
    np.linalg.norm(approx, axis=1) * np.linalg.norm(exact, axis=1) + 1e-12
)
print("\nlattice vs exact repulsion: median direction agreement "
      f"cos = {np.median(cos):.3f} (1.0 = identical)")

# --- the full multilevel embedding on a coordinate-free graph ----------
big = random_delaunay(3000, seed=6).graph
emb = multilevel_embedding(big, seed=7)
print(f"\nmultilevel embedding of n={big.num_vertices}: "
      f"{emb.num_levels} levels, sizes {emb.hierarchy.sizes()}")
out = "embedding.xy"
write_coords(emb.pos, out)
print(f"coordinates written to {out} (usable by RCB/G30/meshpart-style tools)")
