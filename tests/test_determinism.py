"""Golden determinism tests for the simulated-parallel pipeline.

The SPMD engine is a deterministic simulator: the same seed must give
the *byte-identical* partition, phase breakdown and communication
ledger on every run.  Any nondeterminism (dict ordering, hidden global
RNG use, scheduling dependence) would silently invalidate cached
benchmark grids and the paper-figure comparisons, so it is asserted
here at full-pipeline granularity.
"""

import json

import pytest

from repro.core.config import ScalaPartConfig
from repro.core.parallel import scalapart_parallel
from repro.graph.generators import random_delaunay
from repro.parallel import procs_available, trace_records

from tests.conftest import ledger_fingerprint

P = 8
SEED = 1234
CFG = ScalaPartConfig(coarsest_iters=60, smooth_iters=6)

#: both executors must uphold the same golden guarantees
BACKENDS = ["sim"] + (["procs"] if procs_available() else [])


def _run(copy_mode="readonly", backend="sim"):
    g = random_delaunay(500, seed=21).graph
    return scalapart_parallel(g, P, CFG, seed=SEED, copy_mode=copy_mode,
                              backend=backend)


class TestScalaPartDeterminism:
    @pytest.mark.parametrize("copy_mode", ["readonly", "defensive"])
    def test_identical_partition_phases_and_counters(self, copy_mode):
        a = _run(copy_mode)
        b = _run(copy_mode)

        # partition vector: byte-identical
        assert a.bisection.side.tobytes() == b.bisection.side.tobytes()

        # phase breakdown: same labels, byte-identical per-rank accounts
        ta, tb = a.extras["trace"], b.extras["trace"]
        assert sorted(ta.phases) == sorted(tb.phases)
        for name, ph in ta.phases.items():
            other = tb.phases[name]
            assert ph.comp.tobytes() == other.comp.tobytes(), name
            assert ph.comm.tobytes() == other.comm.tobytes(), name
        assert ta.clocks.tobytes() == tb.clocks.tobytes()

        # communication ledger: identical counters in every phase
        sa, sb = ta.comm_stats, tb.comm_stats
        assert sorted(sa.phases) == sorted(sb.phases)
        assert json.dumps(sa.to_dict()) == json.dumps(sb.to_dict())
        for name in sa.phases:
            assert json.dumps(sa.phases[name].to_dict()) == json.dumps(
                sb.phases[name].to_dict()
            ), name

        # and therefore the serialised traces agree record-for-record
        assert list(trace_records(ta)) == list(trace_records(tb))

    def test_copy_modes_agree(self):
        """The zero-copy fast path must be observationally identical to
        defensive deep-copying: same partition, clocks and ledger."""
        a = _run("readonly")
        b = _run("defensive")
        assert a.bisection.side.tobytes() == b.bisection.side.tobytes()
        ta, tb = a.extras["trace"], b.extras["trace"]
        assert ta.clocks.tobytes() == tb.clocks.tobytes()
        assert json.dumps(ta.comm_stats.to_dict()) == json.dumps(
            tb.comm_stats.to_dict()
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_golden_partition_per_backend(self, backend):
        """Backend-parametrised golden: the partition vector and the
        communication ledger (counts/words, not timings) are identical
        across same-seed reruns on *each* backend, and identical
        *between* backends — the procs executor inherits the simulator's
        golden.  Clocks are deliberately not compared: procs clocks are
        measured wall time."""
        a = _run(backend=backend)
        b = _run(backend=backend)
        assert a.bisection.side.tobytes() == b.bisection.side.tobytes()
        assert a.cut_size == b.cut_size
        fa = ledger_fingerprint(a.extras["trace"].comm_stats)
        fb = ledger_fingerprint(b.extras["trace"].comm_stats)
        assert json.dumps(fa) == json.dumps(fb)

        # anchored to the simulator's golden partition
        sim = _run(backend="sim")
        assert a.bisection.side.tobytes() == sim.bisection.side.tobytes()
        assert json.dumps(fa) == json.dumps(
            ledger_fingerprint(sim.extras["trace"].comm_stats)
        )

    def test_different_seed_changes_trace(self):
        g = random_delaunay(500, seed=21).graph
        a = scalapart_parallel(g, P, CFG, seed=SEED)
        b = scalapart_parallel(g, P, CFG, seed=SEED + 1)
        assert a.extras["trace"].clocks.tobytes() != b.extras["trace"].clocks.tobytes()


class TestBlockSizeAblation:
    def test_collectives_per_iteration_fall_with_block_size(self):
        """Fig. 8's mechanism at test scale: growing the β-refresh block
        strictly reduces global collectives per smoothing iteration."""
        g = random_delaunay(1500, seed=7).graph
        cpi = []
        for b in (1, 2, 4, 8):
            cfg = ScalaPartConfig(block_size=b, coarsest_iters=60,
                                  smooth_iters=8)
            res = scalapart_parallel(g, 16, cfg, seed=5)
            embed = res.extras["comm_stats"].phase("embed")
            iters = res.extras["smooth_iterations"]
            assert iters > 0
            cpi.append(embed.collective_invocations() / iters)
        assert all(b < a for a, b in zip(cpi, cpi[1:])), cpi
