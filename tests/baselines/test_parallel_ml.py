"""Focused tests for distributed multilevel baselines and RCB."""

import numpy as np
import pytest

from repro.baselines.parallel_ml import (
    dist_multilevel_bisection,
    dist_rcb_bisect,
)
from repro.graph import Bisection
from repro.graph.generators import grid2d, random_delaunay
from repro.parallel import QDR_CLUSTER, ZERO_COST, run_spmd


class TestDistRCB:
    def run(self, graph, coords, p, machine=ZERO_COST):
        def prog(comm):
            return (yield from dist_rcb_bisect(comm, graph, coords))

        return run_spmd(prog, p, machine=machine, seed=0)

    @pytest.mark.parametrize("p", [1, 4, 32])
    def test_matches_median_cut(self, p):
        g, pts = grid2d(20, 10)
        side, info = self.run(g, pts, p).values[0]
        bis = Bisection(g, np.asarray(side, dtype=np.int8))
        assert info["axis"] == 0  # widest axis of a 20x10 grid is x
        assert bis.cut_size == 10
        assert bis.imbalance < 0.05

    def test_median_rounds_reported(self):
        g, pts = random_delaunay(500, seed=1)
        _, info = self.run(g, pts, 4).values[0]
        # Zoltan-style bisection search takes many rounds
        assert 5 <= info["median_rounds"] <= 40

    def test_results_p_invariant(self):
        g, pts = random_delaunay(800, seed=2)
        a, _ = self.run(g, pts, 1).values[0]
        b, _ = self.run(g, pts, 16).values[0]
        assert np.array_equal(np.asarray(a), np.asarray(b))


class TestDistMultilevelKnobs:
    def run_ml(self, graph, p, **kw):
        def prog(comm):
            return (yield from dist_multilevel_bisection(comm, graph, **kw))

        return run_spmd(prog, p, machine=QDR_CLUSTER, seed=3)

    def test_band_refine_slower_but_valid(self):
        g = random_delaunay(1500, seed=3).graph
        fast = self.run_ml(g, 16, seed=4, band_refine=False)
        slow = self.run_ml(g, 16, seed=4, band_refine=True)
        for res in (fast, slow):
            side, info = res.values[0]
            Bisection(g, np.asarray(side, dtype=np.int8)).validate(0.12)
        assert slow.elapsed > fast.elapsed

    def test_rounds_increase_refinement_cost(self):
        g = random_delaunay(1200, seed=5).graph
        r1 = self.run_ml(g, 16, seed=6, rounds_per_level=1)
        r4 = self.run_ml(g, 16, seed=6, rounds_per_level=4)
        assert r4.elapsed > r1.elapsed

    def test_phases_labelled(self):
        g = grid2d(24, 24).graph
        res = self.run_ml(g, 8, seed=7)
        for phase in ("coarsen", "initial", "uncoarsen"):
            assert res.phase_elapsed(phase) > 0

    def test_balance_constraint_enforced(self):
        g = random_delaunay(2000, seed=8).graph
        for p in (1, 8, 64):
            side, _ = self.run_ml(g, p, seed=9, max_imbalance=0.05).values[0]
            bis = Bisection(g, np.asarray(side, dtype=np.int8))
            assert bis.imbalance <= 0.12
