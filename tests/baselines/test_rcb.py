"""Tests for recursive coordinate bisection."""

import numpy as np
import pytest

from repro.baselines import rcb_bisect, rcb_grid_map, rcb_labels
from repro.errors import GeometryError
from repro.graph.generators import grid2d, random_delaunay


class TestRCBBisect:
    def test_grid_cut_along_short_axis(self):
        g, pts = grid2d(20, 10)  # wide grid: cut across x, costing ny=10
        res = rcb_bisect(g, pts)
        assert res.cut_size == 10
        assert res.bisection.imbalance <= 0.01

    def test_balanced_on_delaunay(self):
        g, pts = random_delaunay(1001, seed=0)
        res = rcb_bisect(g, pts)
        assert abs(res.bisection.part_sizes[0] - res.bisection.part_sizes[1]) <= 1

    def test_deterministic(self):
        g, pts = random_delaunay(200, seed=1)
        a = rcb_bisect(g, pts)
        b = rcb_bisect(g, pts, seed=99)  # seed ignored
        assert np.array_equal(a.bisection.side, b.bisection.side)

    def test_coords_shape_checked(self):
        g, pts = grid2d(4, 4)
        with pytest.raises(GeometryError):
            rcb_bisect(g, pts[:3])

    def test_result_metadata(self):
        g, pts = grid2d(8, 8)
        res = rcb_bisect(g, pts)
        assert res.method == "RCB"
        assert "sdist" in res.extras
        assert res.seconds >= 0


class TestRCBLabels:
    def test_power_of_two_parts_balanced(self):
        rng = np.random.default_rng(2)
        pts = rng.random((1000, 2))
        labels = rcb_labels(pts, np.ones(1000), 8)
        counts = np.bincount(labels, minlength=8)
        assert counts.min() >= 100
        assert counts.max() <= 150

    def test_odd_part_count(self):
        rng = np.random.default_rng(3)
        pts = rng.random((900, 2))
        labels = rcb_labels(pts, np.ones(900), 3)
        counts = np.bincount(labels, minlength=3)
        assert len(counts) == 3
        assert counts.min() > 200

    def test_single_part(self):
        pts = np.zeros((5, 2))
        assert (rcb_labels(pts, np.ones(5), 1) == 0).all()

    def test_weighted_split(self):
        pts = np.column_stack([np.arange(4, dtype=float), np.zeros(4)])
        w = np.array([3.0, 1.0, 1.0, 3.0])
        labels = rcb_labels(pts, w, 2)
        assert labels.tolist() == [0, 0, 1, 1]

    def test_invalid_nparts(self):
        with pytest.raises(GeometryError):
            rcb_labels(np.zeros((3, 2)), np.ones(3), 0)


class TestRCBGridMap:
    def test_grid_assignment_balanced(self):
        rng = np.random.default_rng(4)
        pts = rng.random((1600, 2))
        row, col = rcb_grid_map(pts, np.ones(1600), 4, 4)
        assert row.max() == 3 and col.max() == 3
        counts = np.bincount(row * 4 + col, minlength=16)
        assert counts.min() >= 80

    def test_rows_follow_y(self):
        pts = np.array([[0.5, 0.1], [0.5, 0.9]])
        row, col = rcb_grid_map(pts, np.ones(2), 2, 1)
        assert row.tolist() == [0, 1]
        assert col.tolist() == [0, 0]

    def test_single_cell(self):
        pts = np.random.default_rng(5).random((10, 2))
        row, col = rcb_grid_map(pts, np.ones(10), 1, 1)
        assert (row == 0).all() and (col == 0).all()

    def test_invalid_dims(self):
        with pytest.raises(GeometryError):
            rcb_grid_map(np.zeros((3, 2)), np.ones(3), 0, 2)
