"""Tests for the ParMetis-like and Pt-Scotch-like multilevel baselines."""

import numpy as np
import pytest

from repro.baselines import band_mask, greedy_graph_growing, parmetis_like, scotch_like
from repro.graph import Bisection
from repro.graph.generators import grid2d, random_delaunay


class TestGGP:
    def test_balanced_halves(self):
        g = grid2d(12, 12).graph
        b = greedy_graph_growing(g, seed=0)
        assert b.imbalance < 0.2

    def test_bfs_region_is_compact_on_grid(self):
        # a BFS-grown half of a grid cuts O(side) edges, far below random
        g = grid2d(20, 20).graph
        b = greedy_graph_growing(g, seed=1, trials=4)
        assert b.cut_size < 100  # random split would cut ~380

    def test_single_vertex(self):
        from repro.graph import CSRGraph

        g = CSRGraph.empty(1)
        b = greedy_graph_growing(g, seed=2)
        assert b.side.shape == (1,)

    def test_more_trials_never_picked_worse(self):
        g = random_delaunay(500, seed=3).graph
        c1 = greedy_graph_growing(g, seed=4, trials=1).cut_weight
        c8 = greedy_graph_growing(g, seed=4, trials=8).cut_weight
        assert c8 <= c1 + 1e-9


class TestBandMask:
    def test_contains_boundary(self):
        g = grid2d(10, 10).graph
        side = (np.arange(100) % 10 >= 5).astype(np.int8)
        b = Bisection(g, side)
        mask = band_mask(b, hops=2)
        assert mask[b.boundary_vertices()].all()

    def test_hops_grow_band(self):
        g = grid2d(16, 16).graph
        side = (np.arange(256) % 16 >= 8).astype(np.int8)
        b = Bisection(g, side)
        assert band_mask(b, 1).sum() < band_mask(b, 3).sum()

    def test_zero_hops_is_boundary_only(self):
        g = grid2d(8, 8).graph
        side = (np.arange(64) % 8 >= 4).astype(np.int8)
        b = Bisection(g, side)
        assert band_mask(b, 0).sum() == b.boundary_vertices().shape[0]


class TestMultilevelBaselines:
    @pytest.mark.parametrize("method", [parmetis_like, scotch_like])
    def test_quality_on_mesh(self, method):
        g = random_delaunay(3000, seed=5).graph
        res = method(g, seed=6)
        res.validate(max_imbalance=0.06)
        # planar mesh: expect O(sqrt(n)) cut, far below random (~m/2)
        assert res.cut_size < 5 * np.sqrt(3000)

    def test_scotch_usually_beats_parmetis(self):
        """The quality ordering the paper reports: Pt-Scotch cuts are
        generally better than ParMetis cuts."""
        wins = 0
        for seed in range(5):
            g = random_delaunay(1500, seed=100 + seed).graph
            cp = parmetis_like(g, seed=seed).cut_size
            cs = scotch_like(g, seed=seed).cut_size
            wins += cs <= cp
        assert wins >= 3

    def test_parmetis_refines_less_than_scotch(self):
        # the tuning difference lives in the uncoarsening/refinement stage
        # (total wall time also includes identical coarsening work, whose
        # timer noise would make the comparison flaky)
        g = random_delaunay(4000, seed=7).graph
        tp = parmetis_like(g, seed=8).stage_seconds["uncoarsen"]
        ts = scotch_like(g, seed=8).stage_seconds["uncoarsen"]
        assert tp < ts

    def test_stage_timings_present(self):
        g = grid2d(20, 20).graph
        res = parmetis_like(g, seed=9)
        assert set(res.stage_seconds) == {"coarsen", "initial", "uncoarsen"}
        assert res.extras["levels"] >= 2

    def test_cut_varies_with_seed(self):
        g = random_delaunay(1000, seed=10).graph
        cuts = {parmetis_like(g, seed=s).cut_size for s in range(4)}
        assert len(cuts) > 1  # the paper reports min-max ranges

    def test_grid_near_optimal(self):
        g = grid2d(24, 24).graph
        res = scotch_like(g, seed=11)
        assert res.cut_size <= 2 * 24
