"""Tests for spectral bisection."""

import numpy as np
import pytest

from repro.baselines import fiedler_vector, spectral_bisect
from repro.errors import PartitionError
from repro.graph import CSRGraph
from repro.graph.generators import grid2d, path_graph, random_delaunay


class TestFiedler:
    def test_path_fiedler_is_monotone(self):
        g = path_graph(30).graph
        f = fiedler_vector(g)
        s = np.sign(np.diff(f))
        # monotone up or down along the path
        assert (s >= 0).all() or (s <= 0).all()

    def test_orthogonal_to_constant(self):
        g = grid2d(8, 8).graph
        f = fiedler_vector(g)
        assert abs(f.sum()) < 1e-6 * np.abs(f).sum() + 1e-9

    def test_tiny_graph(self):
        g = path_graph(2).graph
        assert fiedler_vector(g).shape == (2,)

    def test_lobpcg_path_large(self):
        g = random_delaunay(800, seed=0).graph
        f = fiedler_vector(g, seed=1)
        assert np.isfinite(f).all()
        assert f.std() > 0


class TestSpectralBisect:
    def test_splits_two_cliques(self):
        # two K8 cliques joined by one edge: spectral must find the bridge
        import itertools

        edges = [(a, b) for a, b in itertools.combinations(range(8), 2)]
        edges += [(a + 8, b + 8) for a, b in itertools.combinations(range(8), 2)]
        edges.append((0, 8))
        g = CSRGraph.from_edges(16, np.array(edges))
        res = spectral_bisect(g, seed=2)
        assert res.cut_size == 1

    def test_grid_quality(self):
        g = grid2d(16, 16).graph
        res = spectral_bisect(g, seed=3)
        res.validate(max_imbalance=0.06)
        assert res.cut_size <= 24

    def test_too_small(self):
        with pytest.raises(PartitionError):
            spectral_bisect(CSRGraph.empty(1))

    def test_refine_flag(self):
        g = random_delaunay(600, seed=4).graph
        raw = spectral_bisect(g, seed=5, refine=False)
        ref = spectral_bisect(g, seed=5, refine=True)
        assert ref.cut_size <= raw.cut_size

    def test_no_convergence_warning_leaks(self):
        # lobpcg's stopped-at-maxiter UserWarning is silenced inside
        # fiedler_vector; CI runs with -W error::UserWarning, so a leak
        # here would fail the whole suite
        import warnings

        g = random_delaunay(800, seed=6).graph
        with warnings.catch_warnings():
            warnings.simplefilter("error", UserWarning)
            res = spectral_bisect(g, seed=7)
        assert res.cut_size > 0
