"""Tests for the rng utilities, error hierarchy and trace records."""

import numpy as np
import pytest

from repro import errors
from repro.parallel.trace import PhaseBreakdown, SpmdResult
from repro.rng import as_generator, derive_seed, permutation, spawn_streams


class TestRng:
    def test_as_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_as_generator_from_int(self):
        a = as_generator(42).random()
        b = as_generator(42).random()
        assert a == b

    def test_spawn_streams_independent(self):
        streams = spawn_streams(7, 4)
        vals = [s.random() for s in streams]
        assert len(set(vals)) == 4

    def test_spawn_streams_deterministic(self):
        a = [s.random() for s in spawn_streams(7, 3)]
        b = [s.random() for s in spawn_streams(7, 3)]
        assert a == b

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_streams(1, -1)

    def test_derive_seed_stable_and_salted(self):
        assert derive_seed(5, 1) == derive_seed(5, 1)
        assert derive_seed(5, 1) != derive_seed(5, 2)
        assert derive_seed(None, 1) == derive_seed(None, 1)

    def test_permutation(self):
        p = permutation(3, 10)
        assert sorted(p.tolist()) == list(range(10))


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.GraphError,
            errors.PartitionError,
            errors.EmbeddingError,
            errors.GeometryError,
            errors.CommError,
            errors.ConfigError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_deadlock_is_comm_error(self):
        assert issubclass(errors.DeadlockError, errors.CommError)


class TestTrace:
    def test_phase_breakdown_elapsed(self):
        ph = PhaseBreakdown(np.array([1.0, 2.0]), np.array([0.5, 1.0]))
        assert ph.elapsed == 3.0
        assert ph.comm_fraction == pytest.approx(1.0 / 3.0)

    def test_phase_breakdown_empty(self):
        ph = PhaseBreakdown(np.zeros(0), np.zeros(0))
        assert ph.elapsed == 0.0
        assert ph.comm_fraction == 0.0

    def test_spmd_result_accessors(self):
        res = SpmdResult(
            values=[1, 2],
            clocks=np.array([1.0, 3.0]),
            comp_time=np.array([1.0, 2.0]),
            comm_time=np.array([0.0, 1.0]),
            phases={"main": PhaseBreakdown(np.array([1.0, 2.0]), np.array([0.0, 1.0]))},
        )
        assert res.nranks == 2
        assert res.elapsed == 3.0
        # critical-path rank is rank 1 (clock 3.0): comm/clock = 1/3
        assert res.comm_fraction == pytest.approx(1.0 / 3.0)
        assert res.phase_elapsed("main") == 3.0
        assert res.phase("missing").elapsed == 0.0
        assert "P=2" in res.summary()
