"""Repo gate: the library and test tree must lint clean.

This runs the full rule set — syntactic rules *and* the whole-program
protocol checker (SP107-SP112) — over every Python tree in the repo.
Deliberate bad fixtures (e.g. the engine's mismatched-collective and
deadlock tests) carry ``# repro: lint-ok[CODE]`` suppressions; anything
else that fires here is a real finding to fix.  SP099 keeps the
suppressions honest: a stale one is itself a finding.
"""

from pathlib import Path

from repro.analysis import PROTOCOL_CODES, lint_paths

REPO = Path(__file__).resolve().parents[2]


def _fmt(findings):
    return "\n".join(f.format() for f in findings)


def test_src_lints_clean():
    findings = lint_paths([REPO / "src"], protocol=True)
    assert findings == [], _fmt(findings)


def test_tests_and_benchmarks_lint_clean():
    findings = lint_paths([REPO / "tests", REPO / "benchmarks",
                           REPO / "examples"], protocol=True)
    assert findings == [], _fmt(findings)


def test_protocol_rules_are_part_of_the_gate():
    # guard against the gate silently degrading to syntax-only: the
    # protocol codes must be selectable (i.e. wired into RULES) and the
    # clean result above must have been computed with them enabled
    assert PROTOCOL_CODES == {"SP107", "SP108", "SP109", "SP110",
                              "SP111", "SP112"}
    findings = lint_paths([REPO / "src"], select=set(PROTOCOL_CODES))
    assert findings == [], _fmt(findings)
