"""Repo gate: the library and test tree must lint clean.

Deliberate bad fixtures (e.g. the engine's mismatched-collective
tests) carry ``# repro: lint-ok[CODE]`` suppressions; anything else
that fires here is a real finding to fix.
"""

from pathlib import Path

from repro.analysis import lint_paths

REPO = Path(__file__).resolve().parents[2]


def _fmt(findings):
    return "\n".join(f.format() for f in findings)


def test_src_lints_clean():
    findings = lint_paths([REPO / "src"])
    assert findings == [], _fmt(findings)


def test_tests_and_benchmarks_lint_clean():
    findings = lint_paths([REPO / "tests", REPO / "benchmarks",
                           REPO / "examples"])
    assert findings == [], _fmt(findings)
