"""Fixture tests for the whole-program protocol checker (SP107-SP112).

Each rule gets at least one fixture it must fire on and one it must
stay silent on.  The firing fixtures are miniature versions of real
bugs the checker exists to catch: unmatched point-to-point traffic,
rank-divergent collective schedules (including the hole SP102's
guarded-split exemption leaves open), tags drawn from unordered
iteration, recv-before-send deadlock shapes, alias-mediated payload
mutation, and scatter-add / allocation slips in the hot kernels.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    HOT_KERNELS,
    check_registry,
    findings_to_sarif,
    lint_source,
    program_ops,
)
from repro.cli import main as cli_main


def lint(src, **kw):
    return lint_source(textwrap.dedent(src), "<test>", **kw)


def codes(src, **kw):
    return [f.code for f in lint(src, **kw)]


class TestSP107UnmatchedP2P:
    def test_fires_on_recv_nobody_sends(self):
        fs = lint("""
            def prog(comm):
                got = yield from comm.recv(source=1, tag=7)
                return got
        """)
        assert [f.code for f in fs] == ["SP107"]
        assert "recv" in fs[0].message

    def test_fires_on_tag_mismatch(self):
        # send and recv exist but can never pair: tags differ
        fs = lint("""
            def prog(comm):
                if comm.rank == 0:
                    yield from comm.send(1, dest=1, tag=3)
                else:
                    got = yield from comm.recv(source=0, tag=4)
                    return got
        """)
        assert "SP107" in [f.code for f in fs]

    def test_silent_on_matched_pair(self):
        assert codes("""
            def prog(comm):
                if comm.rank == 0:
                    yield from comm.send(1, dest=1, tag=3)
                else:
                    got = yield from comm.recv(source=0, tag=3)
                    return got
        """) == []

    def test_silent_on_sendrecv(self):
        assert codes("""
            def prog(comm):
                got = yield from comm.sendrecv(
                    comm.rank, dest=(comm.rank + 1) % comm.size,
                    source=(comm.rank - 1) % comm.size)
                return got
        """) == []

    def test_nonconstant_tag_is_wildcard(self):
        # a computed tag could be anything, so it matches any recv tag
        assert codes("""
            def prog(comm, t):
                if comm.rank == 0:
                    yield from comm.send(1, dest=1, tag=t)
                else:
                    got = yield from comm.recv(source=0, tag=9)
                    return got
        """) == []


class TestSP108CollectiveDivergence:
    def test_fires_on_subcomm_collective_in_rank_branch(self):
        # the hole SP102's guarded-split exemption leaves open: the
        # branch is a *rank* test, not a membership guard, so only
        # some members of sub reach the collective
        fs = lint("""
            def prog(comm):
                sub = yield from comm.split(0 if comm.rank < 2 else None)
                if comm.rank == 0:
                    yield from sub.allreduce(1)
        """)
        assert "SP108" in [f.code for f in fs]

    def test_fires_via_helper_call(self):
        # the collective hides in a helper; reported at the call site
        fs = lint("""
            def reduce_all(comm, x):
                total = yield from comm.allreduce(x)
                return total

            def prog(comm):
                if comm.rank == 0:
                    got = yield from reduce_all(comm, 1)
                    return got
        """)
        assert [f.code for f in fs] == ["SP108"]

    def test_fires_on_rank_dependent_loop_trip(self):
        fs = lint("""
            def prog(comm):
                for _ in range(comm.rank):
                    yield from comm.barrier()
        """)
        assert "SP108" in [f.code for f in fs]

    def test_no_double_fire_with_sp102(self):
        # same-frame parent-comm collective under a rank branch is
        # SP102's territory; SP108 must not pile on
        assert codes("""
            def prog(comm):
                if comm.rank == 0:
                    yield from comm.barrier()
        """) == ["SP102"]

    def test_silent_on_membership_guarded_subcomm(self):
        assert codes("""
            def prog(comm):
                sub = yield from comm.split(0 if comm.rank < 2 else None)
                if sub is not None:
                    total = yield from sub.allreduce(comm.rank)
                    return total
        """) == []

    def test_silent_on_guard_propagated_through_call(self):
        # the membership guard survives inlining when the guarded
        # subcomm is the argument
        assert codes("""
            def reduce_all(comm, x):
                total = yield from comm.allreduce(x)
                return total

            def prog(comm):
                sub = yield from comm.split(0 if comm.rank < 2 else None)
                if sub is not None:
                    got = yield from reduce_all(sub, 1)
                    return got
        """) == []

    def test_silent_on_uniform_loop(self):
        assert codes("""
            def prog(comm, rounds):
                for _ in range(rounds):
                    yield from comm.barrier()
        """) == []


class TestSP109UnorderedTagPeer:
    def test_fires_on_peer_from_set_iteration(self):
        fs = lint("""
            def prog(comm, nbrs):
                for b in set(nbrs):
                    yield from comm.send(1, dest=b, tag=0)
        """)
        assert "SP109" in [f.code for f in fs]

    def test_fires_on_tag_from_set_iteration(self):
        # dicts iterate in insertion order (deterministic), sets do not
        fs = lint("""
            def prog(comm, tags):
                for t in set(tags):
                    got = yield from comm.recv(source=0, tag=t)
        """)
        assert "SP109" in [f.code for f in fs]

    def test_silent_on_sorted_iteration(self):
        fs = lint("""
            def prog(comm, nbrs):
                for b in sorted(set(nbrs)):
                    yield from comm.send(1, dest=b, tag=0)
        """)
        assert "SP109" not in [f.code for f in fs]


class TestSP110RecvBeforeSend:
    def test_fires_on_recv_first_ring(self):
        # every rank parks in recv before anyone has sent: the static
        # twin of the runtime DeadlockError
        fs = lint("""
            def prog(comm):
                got = yield from comm.recv(
                    source=(comm.rank + 1) % comm.size, tag=3)
                yield from comm.send(got, dest=(comm.rank - 1) % comm.size,
                                     tag=3)
                return got
        """)
        assert "SP110" in [f.code for f in fs]

    def test_silent_on_send_first(self):
        assert codes("""
            def prog(comm):
                yield from comm.send(comm.rank,
                                     dest=(comm.rank - 1) % comm.size, tag=3)
                got = yield from comm.recv(
                    source=(comm.rank + 1) % comm.size, tag=3)
                return got
        """) == []

    def test_silent_when_recv_is_branch_conditional(self):
        # only some ranks recv first; the others send, so progress is
        # possible and the runtime pairing rules decide
        fs = lint("""
            def prog(comm):
                if comm.rank == 0:
                    got = yield from comm.recv(source=1, tag=3)
                    return got
                else:
                    yield from comm.send(1, dest=0, tag=3)
        """)
        assert "SP110" not in [f.code for f in fs]


class TestSP111AliasedPayloadMutation:
    def test_fires_on_base_mutation_after_view_send(self):
        fs = lint("""
            import numpy as np

            def prog(comm):
                buf = np.zeros(8)
                view = buf[2:6]
                yield from comm.send(view, dest=1)
                buf[0] = 1.0
                yield from comm.barrier()
        """)
        assert "SP111" in [f.code for f in fs]
        assert "buf" in [f for f in fs if f.code == "SP111"][0].message

    def test_fires_on_alias_mutation_after_send(self):
        fs = lint("""
            def prog(comm, buf):
                alias = buf
                yield from comm.send(buf, dest=1)
                alias.fill(0)
                yield from comm.barrier()
        """)
        assert "SP111" in [f.code for f in fs]

    def test_silent_after_phase_boundary(self):
        # set_phase closes the delivery window in the cost model and
        # the checker treats it as clearing posted payloads
        fs = lint("""
            import numpy as np

            def prog(comm):
                buf = np.zeros(8)
                view = buf[2:6]
                yield from comm.send(view, dest=1)
                comm.set_phase("next")
                buf[0] = 1.0
                yield from comm.barrier()
        """)
        assert "SP111" not in [f.code for f in fs]

    def test_direct_name_mutation_stays_sp104(self):
        # mutating the *sent* name is SP104's finding, not SP111's
        fs = lint("""
            def prog(comm, buf):
                yield from comm.send(buf, dest=1)
                buf[0] = 1.0
                yield from comm.barrier()
        """)
        got = [f.code for f in fs]
        assert "SP104" in got and "SP111" not in got

    def test_silent_on_scalar_index_copy(self):
        # buf[i] is a scalar read, not an aliasing view
        fs = lint("""
            def prog(comm, buf):
                x = buf[0]
                yield from comm.send(x, dest=1)
                buf[0] = 1.0
                yield from comm.barrier()
        """)
        assert "SP111" not in [f.code for f in fs]


class TestSP112HotKernelSlips:
    def test_fires_on_add_at_in_hot_kernel(self):
        fs = lint("""
            import numpy as np

            def attractive_forces(pos, edges, out):
                np.add.at(out, edges[:, 0], pos[edges[:, 1]])
                return out
        """)
        assert [f.code for f in fs] == ["SP112"]
        assert "bincount" in fs[0].message

    def test_fires_on_alloc_in_hot_kernel_loop(self):
        fs = lint("""
            import numpy as np

            def repulsive_forces_lattice(pos, cells):
                for c in cells:
                    tmp = np.zeros(len(c))
                return tmp
        """)
        assert "SP112" in [f.code for f in fs]

    def test_silent_in_reference_variant(self):
        # _*_reference twins are the slow oracles; they may scatter-add
        assert codes("""
            import numpy as np

            def _attractive_forces_reference(pos, edges, out):
                np.add.at(out, edges[:, 0], pos[edges[:, 1]])
                return out
        """) == []

    def test_silent_in_ordinary_function(self):
        assert codes("""
            import numpy as np

            def histogram(idx, w):
                out = np.zeros(idx.max() + 1)
                np.add.at(out, idx, w)
                return out
        """) == []

    def test_hot_kernel_registry_names_exist(self):
        # the exact-name list must track the real kernels
        assert "attractive_forces" in HOT_KERNELS
        assert "kway_geometric_assign" in HOT_KERNELS


class TestProtocolToggle:
    BAD = """
        def prog(comm):
            got = yield from comm.recv(source=1, tag=7)
            return got
    """

    def test_protocol_on_by_default(self):
        assert codes(self.BAD) == ["SP107"]

    def test_no_protocol_skips_rules(self):
        assert codes(self.BAD, protocol=False) == []

    def test_suppression_works_on_protocol_findings(self):
        assert codes("""
            def prog(comm):
                got = yield from comm.recv(source=1, tag=7)  # repro: lint-ok[SP107]
                return got
        """) == []


class TestProgramOps:
    def test_summary_is_execution_ordered(self):
        ops = program_ops(textwrap.dedent("""
            def prog(comm):
                yield from comm.send(1, dest=1, tag=2)
                got = yield from comm.recv(source=1, tag=2)
                total = yield from comm.allreduce(got)
                return total
        """), "prog")
        assert [(op, kind) for op, kind, _, _ in ops] == [
            ("send", "send"), ("recv", "recv"),
            ("allreduce", "collective")]
        assert ops[0][2] == 2  # constant-folded tag

    def test_inlined_helper_ops_appear(self):
        ops = program_ops(textwrap.dedent("""
            def helper(comm):
                yield from comm.barrier()

            def prog(comm):
                yield from helper(comm)
                yield from comm.barrier()
        """), "prog")
        assert [op for op, _, _, _ in ops] == ["barrier", "barrier"]

    def test_branch_ops_marked_conditional(self):
        ops = program_ops(textwrap.dedent("""
            def prog(comm):
                if comm.rank == 0:
                    yield from comm.send(1, dest=1)
                else:
                    got = yield from comm.recv(source=0)
        """), "prog")
        assert all(cond for _, _, _, cond in ops)

    def test_unknown_function_raises(self):
        with pytest.raises(ValueError, match="no function"):
            program_ops("def f():\n    pass\n", "g")


class TestRegistryGate:
    def test_every_distributed_entry_point_checks_clean(self):
        findings, names = check_registry()
        assert len(names) >= 6, names
        assert "ScalaPart" in names
        assert findings == [], "\n".join(f.format() for f in findings)


class TestSarif:
    def _sarif(self, src):
        return json.loads(findings_to_sarif(lint(src)))

    def test_sarif_shape_and_rule_metadata(self):
        doc = self._sarif("""
            def prog(comm):
                got = yield from comm.recv(source=1, tag=7)
                return got
        """)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "SP107" in rules and "SP099" in rules
        (res,) = run["results"]
        assert res["ruleId"] == "SP107"
        assert res["level"] == "error"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] == 3

    def test_sp099_is_note_level(self):
        doc = self._sarif("""
            def prog(comm):
                yield from comm.barrier()  # repro: lint-ok[SP101]
        """)
        (res,) = doc["runs"][0]["results"]
        assert res["ruleId"] == "SP099"
        assert res["level"] == "note"

    def test_empty_findings_still_valid_sarif(self):
        doc = json.loads(findings_to_sarif([]))
        assert doc["runs"][0]["results"] == []


class TestCliProtocol:
    def _write(self, tmp_path, body):
        f = tmp_path / "prog.py"
        f.write_text(textwrap.dedent(body))
        return f

    BAD = """
        def prog(comm):
            got = yield from comm.recv(source=1, tag=7)
            return got
    """

    def test_protocol_finding_fails_lint(self, tmp_path, capsys):
        f = self._write(tmp_path, self.BAD)
        assert cli_main(["lint", str(f)]) == 1
        assert "SP107" in capsys.readouterr().out

    def test_no_protocol_flag_passes(self, tmp_path):
        f = self._write(tmp_path, self.BAD)
        assert cli_main(["lint", str(f), "--no-protocol"]) == 0

    def test_sarif_format(self, tmp_path, capsys):
        f = self._write(tmp_path, self.BAD)
        assert cli_main(["lint", str(f), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"][0]["ruleId"] == "SP107"

    def test_json_format_is_byte_stable(self, tmp_path, capsys):
        f = self._write(tmp_path, self.BAD)
        cli_main(["lint", str(f), "--format", "json"])
        first = capsys.readouterr().out
        cli_main(["lint", str(f), "--format", "json"])
        assert capsys.readouterr().out == first

    def test_registry_flag(self, capsys):
        assert cli_main(["lint", "--registry", "--format", "json"]) == 0
        err = capsys.readouterr().err
        assert "# registry: checked" in err
        assert "# lint-timing:" in err

    def test_timing_line_on_stderr(self, tmp_path, capsys):
        f = self._write(tmp_path, "def f():\n    return 1\n")
        assert cli_main(["lint", str(f)]) == 0
        assert "# lint-timing:" in capsys.readouterr().err
