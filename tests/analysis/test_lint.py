"""Per-rule fixture tests for the SPMD static lint (SP101-SP106).

Each rule gets a bad fixture it must fire on and a good fixture it
must stay silent on, plus suppression, selection, JSON, and CLI
round-trips.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    RULES,
    Finding,
    findings_to_json,
    lint_paths,
    lint_source,
)
from repro.cli import main as cli_main


def lint(src):
    return lint_source(textwrap.dedent(src), "<test>")


def codes(src):
    return [f.code for f in lint(src)]


class TestSP101Undriven:
    def test_fires_on_missing_yield_from(self):
        fs = lint("""
            def prog(comm):
                comm.send(1, dest=0)
                yield from comm.barrier()
        """)
        assert [f.code for f in fs] == ["SP101"]
        assert fs[0].line == 3
        assert "yield from" in fs[0].message

    def test_fires_on_bare_collective(self):
        assert codes("""
            def prog(comm):
                comm.barrier()
                return (yield from comm.allreduce(1))
        """) == ["SP101"]

    def test_silent_when_driven(self):
        assert codes("""
            def prog(comm):
                yield from comm.send(1, dest=0)
                got = yield from comm.recv(source=0)
                return got
        """) == []

    def test_silent_on_non_comm_receiver(self):
        # string .split() and similar must not fire
        assert codes("""
            def prog(comm, line):
                parts = line.split()
                yield from comm.barrier()
                return parts
        """) == []


class TestSP102RankDependentCollective:
    def test_fires_on_direct_rank_branch(self):
        fs = lint("""
            def prog(comm):
                if comm.rank == 0:
                    yield from comm.barrier()
        """)
        assert [f.code for f in fs] == ["SP102"]

    def test_fires_on_tainted_variable(self):
        assert codes("""
            def prog(comm):
                me = comm.rank
                if me > 2:
                    yield from comm.allreduce(1)
        """) == ["SP102"]

    def test_silent_on_unconditional_collective(self):
        assert codes("""
            def prog(comm):
                x = 1 if comm.rank == 0 else 2
                return (yield from comm.allreduce(x))
        """) == []

    def test_silent_on_guarded_subcommunicator(self):
        # the canonical split idiom: every member of `sub` enters the
        # branch, so sub's collective schedule is consistent
        assert codes("""
            def prog(comm):
                sub = yield from comm.split(0 if comm.rank < 2 else None)
                if sub is not None:
                    total = yield from sub.allreduce(comm.rank)
                    return total
        """) == []

    def test_fires_on_world_collective_in_rank_branch(self):
        assert codes("""
            def prog(comm):
                if comm.rank % 2 == 0:
                    yield from comm.allgather(1)
        """) == ["SP102"]


class TestSP103GlobalRNG:
    def test_fires_on_np_random(self):
        fs = lint("""
            import numpy as np

            def jitter(n):
                return np.random.rand(n)
        """)
        assert [f.code for f in fs] == ["SP103"]

    def test_fires_on_stdlib_random(self):
        assert codes("""
            import random

            def pick(xs):
                return random.choice(xs)
        """) == ["SP103"]

    def test_fires_through_import_alias(self):
        assert codes("""
            import numpy

            def f():
                return numpy.random.uniform()
        """) == ["SP103"]

    def test_silent_on_seeded_generator(self):
        assert codes("""
            import numpy as np

            def f(seed):
                rng = np.random.default_rng(seed)
                return rng.random(4)
        """) == []

    def test_silent_on_unrelated_random_attr(self):
        assert codes("""
            def f(rng):
                return rng.random(4)
        """) == []


class TestSP104MutateAfterSend:
    def test_fires_on_mutation_after_send(self):
        fs = lint("""
            import numpy as np

            def prog(comm):
                buf = np.zeros(4)
                yield from comm.send(buf, dest=1)
                buf[0] = 1.0
                yield from comm.barrier()
        """)
        assert [f.code for f in fs] == ["SP104"]
        assert "buf" in fs[0].message

    def test_fires_on_mutator_method(self):
        assert codes("""
            def prog(comm, buf):
                yield from comm.isend(buf, dest=1)
                buf.fill(0)
                yield from comm.barrier()
        """) == ["SP104"]

    def test_silent_when_mutation_in_other_branch(self):
        # only one arm executes: send-then-mutate never happens
        assert codes("""
            def prog(comm, buf):
                if comm.rank == 0:
                    yield from comm.send(buf, dest=1)
                else:
                    buf[0] = 1.0
                    got = yield from comm.recv(source=0)
                    return got
        """) == []

    def test_fires_across_loop_iterations(self):
        assert codes("""
            def prog(comm, buf):
                for _ in range(3):
                    yield from comm.send(buf, dest=1)
                    buf[0] = 1.0
        """) == ["SP104"]

    def test_silent_after_rebind(self):
        # rebinding the name breaks the alias: the sent object is safe
        assert codes("""
            import numpy as np

            def prog(comm):
                buf = np.zeros(4)
                yield from comm.send(buf, dest=1)
                buf = np.ones(4)
                buf[0] = 2.0
                yield from comm.barrier()
        """) == []


class TestSP105SetOrderPayload:
    def test_fires_on_set_iteration_in_comm_function(self):
        fs = lint("""
            def prog(comm, nbrs):
                nbrs = set(nbrs)
                for b in nbrs:
                    yield from comm.send(b, dest=b)
        """)
        assert "SP105" in [f.code for f in fs]

    def test_silent_on_sorted_set(self):
        assert codes("""
            def prog(comm, nbrs):
                nbrs = set(nbrs)
                for b in sorted(nbrs):
                    yield from comm.send(b, dest=b)
        """) == []

    def test_silent_outside_comm_functions(self):
        # plain helpers may iterate sets freely
        assert codes("""
            def total(xs):
                acc = 0
                for x in {1, 2, 3}:
                    acc += x
                return acc
        """) == []


class TestSP106SwallowedFault:
    def test_fires_on_silent_pass(self):
        fs = lint("""
            from repro.errors import CommError
            def run():
                try:
                    risky()
                except CommError:
                    pass
        """)
        assert [f.code for f in fs] == ["SP106"]
        assert "CommError" in fs[0].message

    def test_fires_inside_tuple_clause(self):
        assert codes("""
            from repro.errors import ReproError
            def run():
                try:
                    risky()
                except (ValueError, ReproError):
                    fallback()
        """) == ["SP106"]

    def test_fires_when_bound_but_unused(self):
        assert codes("""
            from repro import errors
            def run():
                try:
                    risky()
                except errors.RankFailure as exc:
                    cleanup()
        """) == ["SP106"]

    def test_silent_on_reraise(self):
        assert codes("""
            from repro.errors import CommError
            def run():
                try:
                    risky()
                except CommError:
                    raise
        """) == []

    def test_silent_on_conversion(self):
        assert codes("""
            from repro.errors import DeadlockError
            def run():
                try:
                    risky()
                except DeadlockError as exc:
                    raise RuntimeError("converted") from exc
        """) == []

    def test_silent_when_exception_is_used(self):
        assert codes("""
            from repro.errors import ReproError
            def run():
                try:
                    risky()
                except ReproError as exc:
                    report.append(str(exc))
        """) == []

    def test_silent_on_unrelated_exception(self):
        assert codes("""
            def run():
                try:
                    risky()
                except ValueError:
                    pass
        """) == []

    def test_suppression_comment(self):
        assert codes("""
            from repro.errors import CommError
            def run():
                try:
                    risky()
                except CommError:  # repro: lint-ok[SP106]
                    pass
        """) == []


class TestSuppressions:
    def test_trailing_comment_suppresses(self):
        assert codes("""
            def prog(comm):
                comm.send(1, dest=0)  # repro: lint-ok[SP101]
                yield from comm.barrier()
        """) == []

    def test_standalone_previous_line_suppresses(self):
        assert codes("""
            def prog(comm):
                # repro: lint-ok[SP101]
                comm.send(1, dest=0)
                yield from comm.barrier()
        """) == []

    def test_bare_lint_ok_suppresses_all_codes(self):
        assert codes("""
            def prog(comm):
                comm.send(1, dest=0)  # repro: lint-ok
                yield from comm.barrier()
        """) == []

    def test_wrong_code_does_not_suppress(self):
        # the SP101 still fires, and the mismatched suppression is
        # itself reported stale (SP099)
        assert codes("""
            def prog(comm):
                comm.send(1, dest=0)  # repro: lint-ok[SP103]
                yield from comm.barrier()
        """) == ["SP101", "SP099"]


class TestApi:
    def test_every_rule_has_a_hint(self):
        assert set(RULES) == {
            "SP000", "SP099", "SP101", "SP102", "SP103", "SP104", "SP105",
            "SP106", "SP107", "SP108", "SP109", "SP110", "SP111", "SP112",
        }
        for rule in RULES.values():
            assert rule.hint

    def test_finding_format_and_dict(self):
        fs = lint("""
            def prog(comm):
                comm.barrier()
                yield from comm.barrier()
        """)
        (f,) = fs
        assert isinstance(f, Finding)
        text = f.format()
        assert "<test>:3" in text and "SP101" in text
        d = f.to_dict()
        assert d["code"] == "SP101" and d["line"] == 3

    def test_findings_to_json_round_trip(self):
        fs = lint("""
            def prog(comm):
                comm.barrier()
                yield from comm.barrier()
        """)
        data = json.loads(findings_to_json(fs))
        assert len(data) == 1 and data[0]["code"] == "SP101"

    def test_select_and_ignore(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(textwrap.dedent("""
            import random

            def prog(comm):
                comm.send(random.random(), dest=0)
                yield from comm.barrier()
        """))
        all_codes = {f.code for f in lint_paths([str(bad)])}
        assert all_codes == {"SP101", "SP103"}
        only101 = lint_paths([str(bad)], select={"SP101"})
        assert {f.code for f in only101} == {"SP101"}
        no103 = lint_paths([str(bad)], ignore={"SP103"})
        assert {f.code for f in no103} == {"SP101"}

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        fs = lint_paths([str(broken)])
        assert len(fs) == 1 and fs[0].code == "SP000"


class TestCli:
    def _write_bad(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(textwrap.dedent("""
            def prog(comm):
                comm.barrier()
                yield from comm.barrier()
        """))
        return bad

    def test_exit_one_on_findings(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        assert cli_main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "SP101" in out

    def test_exit_zero_on_clean(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("def f():\n    return 1\n")
        assert cli_main(["lint", str(good)]) == 0

    def test_json_format(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        assert cli_main(["lint", str(bad), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data[0]["code"] == "SP101"

    def test_ignore_flag(self, tmp_path):
        bad = self._write_bad(tmp_path)
        assert cli_main(["lint", str(bad), "--ignore", "SP101"]) == 0
