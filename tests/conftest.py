"""Shared fixtures and cross-backend helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators as gen


def ledger_fingerprint(stats):
    """Deterministic view of a :class:`CommStats` ledger, per phase.

    Drops ``wait_time`` (wall-clock derived on the procs backend, hence
    nondeterministic) so the rest of the ledger — message counts, word
    counts, collective participation and op counts — can be compared
    bit-for-bit across backends and across reruns.
    """
    if stats is None:
        return None

    def _clean(s):
        d = s.to_dict()
        d.pop("wait_time", None)
        return d

    fp = _clean(stats)
    fp["phases"] = {name: _clean(ph) for name, ph in sorted(stats.phases.items())}
    return fp


def run_both_backends(method, graph, nranks, *, seed, coords=None, **kwargs):
    """Run one registered method on both executors, same inputs.

    Returns ``(sim_result, procs_result)`` — two
    :class:`~repro.results.PartitionResult` objects produced by
    ``backend="sim"`` and ``backend="procs"`` respectively.  Callers
    compare partition vectors, cuts, and ledger fingerprints; clocks
    and phase timings are *not* comparable (modelled vs measured).
    """
    from repro.core.parallel import run_parallel

    sim = run_parallel(method, graph, nranks, coords=coords, seed=seed,
                       backend="sim", **kwargs)
    procs = run_parallel(method, graph, nranks, coords=coords, seed=seed,
                         backend="procs", **kwargs)
    return sim, procs


@pytest.fixture(name="ledger_fingerprint")
def ledger_fingerprint_fixture():
    return ledger_fingerprint


@pytest.fixture(name="run_both_backends")
def run_both_backends_fixture():
    return run_both_backends


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def grid_10x10():
    return gen.grid2d(10, 10)


@pytest.fixture
def small_delaunay():
    return gen.random_delaunay(200, seed=7)


@pytest.fixture
def medium_delaunay():
    return gen.random_delaunay(1500, seed=11)
