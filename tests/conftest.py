"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators as gen


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def grid_10x10():
    return gen.grid2d(10, 10)


@pytest.fixture
def small_delaunay():
    return gen.random_delaunay(200, seed=7)


@pytest.fixture
def medium_delaunay():
    return gen.random_delaunay(1500, seed=11)
