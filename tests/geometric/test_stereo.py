"""Tests for stereographic lifting and the conformal map."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometric import conformal_to_center, lift, project, rotation_to_south


class TestLiftProject:
    def test_lift_lands_on_sphere(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(200, 2)) * 3
        u = lift(pts)
        assert np.allclose(np.linalg.norm(u, axis=1), 1.0)

    def test_origin_maps_to_south_pole(self):
        u = lift(np.zeros((1, 2)))
        assert np.allclose(u[0], [0, 0, -1])

    def test_far_points_approach_north_pole(self):
        u = lift(np.array([[1e6, 0.0]]))
        assert u[0, 2] > 0.999999

    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(100, 2))
        assert np.allclose(project(lift(pts)), pts, atol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(GeometryError):
            lift(np.zeros((3, 3)))
        with pytest.raises(GeometryError):
            project(np.zeros((3, 2)))


class TestRotation:
    def test_takes_vector_south(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            v = rng.normal(size=3)
            v /= np.linalg.norm(v)
            r = rotation_to_south(v)
            assert np.allclose(r @ v, [0, 0, -1], atol=1e-9)
            assert np.allclose(r @ r.T, np.eye(3), atol=1e-12)

    def test_degenerate_inputs(self):
        assert np.allclose(rotation_to_south(np.zeros(3)), np.eye(3))
        r = rotation_to_south(np.array([0.0, 0.0, 1.0]))
        assert np.allclose(r @ np.array([0, 0, 1.0]), [0, 0, -1])


class TestConformal:
    def test_stays_on_sphere(self):
        rng = np.random.default_rng(3)
        u = lift(rng.normal(size=(300, 2)))
        mapped, rot, alpha = conformal_to_center(u, np.array([0.2, 0.1, -0.3]))
        assert np.allclose(np.linalg.norm(mapped, axis=1), 1.0)
        assert 0 < alpha <= 1.5

    def test_centers_biased_cloud(self):
        """A point cloud crowded near one spot should spread out: the
        mean of the mapped points moves toward the origin."""
        rng = np.random.default_rng(4)
        pts = rng.normal(size=(500, 2)) * 0.1 + np.array([2.0, 1.0])
        u = lift(pts)
        from repro.geometric import approx_centerpoint

        cp = approx_centerpoint(u, seed=5)
        mapped, _, _ = conformal_to_center(u, cp)
        assert np.linalg.norm(mapped.mean(axis=0)) < np.linalg.norm(u.mean(axis=0))

    def test_identity_when_centered(self):
        rng = np.random.default_rng(5)
        u = lift(rng.normal(size=(100, 2)))
        mapped, rot, alpha = conformal_to_center(u, np.zeros(3))
        assert np.allclose(rot, np.eye(3))
        assert alpha == pytest.approx(1.0)
        assert np.allclose(mapped, u, atol=1e-9)

    def test_exterior_centerpoint_clamped(self):
        u = lift(np.random.default_rng(6).normal(size=(50, 2)))
        mapped, _, _ = conformal_to_center(u, np.array([2.0, 0.0, 0.0]))
        assert np.isfinite(mapped).all()
