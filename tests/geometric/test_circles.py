"""Unit tests for separator candidates and their batched evaluation."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometric.circles import (
    circle_candidates,
    evaluate_cuts,
    line_candidates,
    median_split,
    random_unit_vectors,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid2d
from repro.graph.partition import Bisection


class TestRandomUnitVectors:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_unit_norm(self, dim):
        v = random_unit_vectors(np.random.default_rng(0), 50, dim)
        assert v.shape == (50, dim)
        np.testing.assert_allclose(np.linalg.norm(v, axis=1), 1.0)

    def test_deterministic_for_seeded_rng(self):
        a = random_unit_vectors(np.random.default_rng(7), 5, 3)
        b = random_unit_vectors(np.random.default_rng(7), 5, 3)
        np.testing.assert_array_equal(a, b)


class TestMedianSplit:
    def test_balanced_up_to_one_vertex(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=101)
        side, sdist = median_split(values, np.ones(101))
        assert abs(int(side.sum()) * 2 - 101) <= 1
        # side 1 is the upper half: its minimum value exceeds side 0's max
        assert values[side == 1].min() >= values[side == 0].max()
        # sdist is values minus the split value
        assert np.all(sdist[side == 1] >= 0)

    def test_ties_stay_balanced(self):
        values = np.zeros(10)
        side, _ = median_split(values, np.ones(10))
        assert int(side.sum()) == 5

    def test_weighted_median(self):
        values = np.array([0.0, 1.0, 2.0, 3.0])
        weights = np.array([10.0, 1.0, 1.0, 1.0])
        side, _ = median_split(values, weights)
        # the heavy first element alone is half the weight
        np.testing.assert_array_equal(side, [0, 1, 1, 1])

    def test_empty_input(self):
        side, sdist = median_split(np.zeros(0), np.zeros(0))
        assert side.shape == (0,) and sdist.shape == (0,)


class TestCandidates:
    def test_circle_candidates_balanced(self):
        rng = np.random.default_rng(2)
        u = random_unit_vectors(rng, 80, 3)
        cands = circle_candidates(u, np.ones(80), 6, rng)
        assert len(cands) == 6
        for c in cands:
            assert c.kind == "circle"
            assert int(c.side.sum()) == 40
            assert np.all((c.sdist > 0) == (c.side == 1)) or np.all(
                (c.sdist >= 0) == (c.side == 1)
            )

    def test_circle_candidates_need_3d(self):
        with pytest.raises(GeometryError, match="3"):
            circle_candidates(np.zeros((4, 2)), np.ones(4), 1,
                              np.random.default_rng(0))

    def test_line_candidates_balanced(self):
        rng = np.random.default_rng(3)
        pts = rng.random((60, 2))
        cands = line_candidates(pts, np.ones(60), 4, rng)
        assert len(cands) == 4
        for c in cands:
            assert c.kind == "line"
            assert int(c.side.sum()) == 30

    def test_line_candidates_need_2d(self):
        with pytest.raises(GeometryError, match="2"):
            line_candidates(np.zeros((4, 3)), np.ones(4), 1,
                            np.random.default_rng(0))


class TestEvaluateCuts:
    def test_matches_bisection_cut_weight(self):
        gg = grid2d(6, 6)
        g = gg.graph
        rng = np.random.default_rng(4)
        cands = line_candidates(gg.coords, g.vwgt, 8, rng)
        cuts = evaluate_cuts(g, cands)
        assert cuts.shape == (8,)
        for c, cut in zip(cands, cuts):
            assert cut == pytest.approx(Bisection(g, c.side).cut_weight)

    def test_empty_candidate_list(self):
        g = CSRGraph.empty(3)
        assert evaluate_cuts(g, []).shape == (0,)
