"""Tests for the balanced spherical K-means assignment (direct k-way)."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometric.kway import kway_geometric_assign, seed_centroids
from repro.geometric.stereo import lift
from repro.graph.generators import grid2d, random_delaunay
from repro.graph.partition import kway_imbalance
from repro.rng import as_generator


@pytest.fixture(scope="module")
def mesh():
    return random_delaunay(600, seed=1)


class TestSeedCentroids:
    def test_unit_norm_and_distinct(self, mesh):
        u = lift(mesh.coords - mesh.coords.mean(axis=0))
        c = seed_centroids(u, np.ones(u.shape[0]), 6, seed=2)
        assert c.shape == (6, 3)
        assert np.allclose(np.linalg.norm(c, axis=1), 1.0)
        # k-means++ spreads the seeds: no two coincide
        for i in range(6):
            for j in range(i + 1, 6):
                assert not np.allclose(c[i], c[j])

    def test_deterministic(self, mesh):
        u = lift(mesh.coords - mesh.coords.mean(axis=0))
        w = np.ones(u.shape[0])
        assert np.array_equal(seed_centroids(u, w, 4, seed=3),
                              seed_centroids(u, w, 4, seed=3))

    def test_too_few_points_rejected(self):
        u = lift(np.zeros((3, 2)))
        with pytest.raises(GeometryError):
            seed_centroids(u, np.ones(3), 5, seed=0)


class TestAssign:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_balanced_cells(self, mesh, k):
        parts, info = kway_geometric_assign(mesh.graph, mesh.coords, k,
                                            seed=4)
        assert parts.dtype == np.int64
        assert len(np.unique(parts)) == k
        assert kway_imbalance(mesh.graph, parts, k) <= 0.10
        assert info["assign_imbalance"] <= 0.10

    def test_deterministic(self, mesh):
        a, _ = kway_geometric_assign(mesh.graph, mesh.coords, 5, seed=5)
        b, _ = kway_geometric_assign(mesh.graph, mesh.coords, 5, seed=5)
        assert np.array_equal(a, b)

    def test_k1_trivial(self, mesh):
        parts, info = kway_geometric_assign(mesh.graph, mesh.coords, 1)
        assert np.array_equal(parts, np.zeros(mesh.graph.num_vertices))
        assert info["assign_imbalance"] == 0.0

    def test_cells_are_geometrically_coherent(self):
        """On a regular grid the K cells must look like compact blobs:
        the cut should be within a small factor of the ideal block
        partition, not a random scatter."""
        mesh = grid2d(20, 20)
        parts, _ = kway_geometric_assign(mesh.graph, mesh.coords, 4, seed=6)
        from repro.graph.partition import kway_cut

        # random labelling cuts ~75% of the 760 edges; compact cells a
        # tiny fraction
        assert kway_cut(mesh.graph, parts) < 200

    def test_costs_drive_balance(self, mesh):
        g = mesh.graph
        rng = as_generator(7)
        costs = 1.0 + 9.0 * rng.random(g.num_vertices)
        parts, _ = kway_geometric_assign(g, mesh.coords, 4, costs=costs,
                                         seed=8)
        assert kway_imbalance(g, parts, 4, costs=costs) <= 0.15

    def test_bad_k_rejected(self, mesh):
        with pytest.raises(GeometryError):
            kway_geometric_assign(mesh.graph, mesh.coords, 0)
        with pytest.raises(GeometryError):
            kway_geometric_assign(mesh.graph, mesh.coords,
                                  mesh.graph.num_vertices + 1)
