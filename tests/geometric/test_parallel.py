"""Focused tests for the distributed geometric partitioner."""

import numpy as np
import pytest

from repro.core.config import ScalaPartConfig
from repro.geometric.parallel import dist_sp_pg7_nl
from repro.graph import Bisection, cut_size
from repro.graph.generators import random_delaunay
from repro.parallel import QDR_CLUSTER, ZERO_COST, run_spmd


def run_pg(graph, coords, p, cfg=None, seed=5, machine=ZERO_COST):
    def prog(comm):
        return (yield from dist_sp_pg7_nl(comm, graph, coords,
                                          config=cfg, seed=seed))

    return run_spmd(prog, p, machine=machine, seed=1)


class TestDistSPPG7NL:
    @pytest.mark.parametrize("p", [1, 2, 4, 16, 64])
    def test_valid_any_p(self, p):
        g, pts = random_delaunay(1000, seed=0)
        res = run_pg(g, pts, p)
        side, info = res.values[0]
        bis = Bisection(g, np.asarray(side, dtype=np.int8))
        bis.validate(max_imbalance=0.08)
        assert bis.cut_size < 6 * np.sqrt(1000)

    def test_all_ranks_agree(self):
        g, pts = random_delaunay(600, seed=1)
        res = run_pg(g, pts, 8)
        sides = [np.asarray(v[0]) for v in res.values]
        for s in sides[1:]:
            assert np.array_equal(s, sides[0])

    def test_refinement_never_worsens(self):
        g, pts = random_delaunay(1500, seed=2)
        side, info = run_pg(g, pts, 8).values[0]
        cut = cut_size(g, np.asarray(side))
        assert cut <= info["geometric_cut"] + 1e-9

    def test_strip_info_reported(self):
        g, pts = random_delaunay(800, seed=3)
        _, info = run_pg(g, pts, 4).values[0]
        assert info["candidates"] == ScalaPartConfig().ncircles
        assert info["strip_size"] > 0

    def test_histogram_threshold_near_balanced(self):
        """The distributed median-by-histogram should land within a few
        percent of perfect balance (128 bins)."""
        g, pts = random_delaunay(2000, seed=4)
        side, _ = run_pg(g, pts, 16).values[0]
        bis = Bisection(g, np.asarray(side, dtype=np.int8))
        assert bis.imbalance < 0.06

    def test_p_matches_sequential_family(self):
        """Distributed and sequential SP-PG7-NL draw from the same
        candidate family, so quality is comparable (within 2x)."""
        from repro.core.scalapart import sp_pg7_nl

        g, pts = random_delaunay(1200, seed=5)
        seq = sp_pg7_nl(g, pts, seed=6).cut_size
        side, _ = run_pg(g, pts, 8, seed=6).values[0]
        par = cut_size(g, np.asarray(side))
        assert par <= 2 * seq + 10

    def test_communication_is_cheap(self):
        """'Total costs for partitioning are low' — a handful of
        collectives, little volume."""
        g, pts = random_delaunay(1500, seed=7)
        res = run_pg(g, pts, 64, machine=QDR_CLUSTER)
        assert res.collectives < 25
        assert res.elapsed < 5e-3
