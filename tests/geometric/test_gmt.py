"""Tests for separator candidates and the G30/G7/G7-NL drivers."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometric import (
    evaluate_cuts,
    g7,
    g7_nl,
    g30,
    geometric_partition,
    median_split,
    normalize_coords,
)
from repro.geometric.circles import circle_candidates, line_candidates
from repro.graph import cut_weight
from repro.graph.generators import grid2d, random_delaunay


class TestMedianSplit:
    def test_balances_unit_weights(self):
        rng = np.random.default_rng(0)
        v = rng.random(101)
        side, sdist = median_split(v, np.ones(101))
        assert abs(int((side == 0).sum()) - int((side == 1).sum())) <= 1

    def test_balances_under_ties(self):
        v = np.zeros(10)  # all identical projections
        side, _ = median_split(v, np.ones(10))
        assert (side == 0).sum() == (side == 1).sum() == 5

    def test_weighted(self):
        v = np.arange(4, dtype=float)
        w = np.array([3.0, 1.0, 1.0, 3.0])
        side, _ = median_split(v, w)
        assert side.tolist() == [0, 0, 1, 1]

    def test_sdist_sign_matches_side(self):
        rng = np.random.default_rng(1)
        v = rng.random(50)
        side, sdist = median_split(v, np.ones(50))
        assert (sdist[side == 1] >= 0).all()

    def test_empty(self):
        side, sdist = median_split(np.zeros(0), np.zeros(0))
        assert side.shape == (0,)


class TestCandidates:
    def test_circle_candidates_balanced(self):
        rng = np.random.default_rng(2)
        u = rng.normal(size=(200, 3))
        u /= np.linalg.norm(u, axis=1, keepdims=True)
        cands = circle_candidates(u, np.ones(200), 5, rng)
        assert len(cands) == 5
        for c in cands:
            assert abs(int(c.side.sum()) - 100) <= 1

    def test_line_candidates(self):
        rng = np.random.default_rng(3)
        pts = rng.random((100, 2))
        cands = line_candidates(pts, np.ones(100), 3, rng)
        assert all(c.kind == "line" for c in cands)

    def test_evaluate_cuts_matches_cut_weight(self):
        g, pts = random_delaunay(300, seed=4)
        rng = np.random.default_rng(5)
        cands = line_candidates(pts, g.vwgt, 4, rng)
        cuts = evaluate_cuts(g, cands)
        for c, cut in zip(cands, cuts):
            assert cut == pytest.approx(cut_weight(g, c.side))

    def test_evaluate_no_candidates(self):
        g, _ = random_delaunay(50, seed=6)
        assert evaluate_cuts(g, []).shape == (0,)


class TestNormalize:
    def test_median_radius_one(self):
        rng = np.random.default_rng(7)
        pts = rng.random((500, 2)) * 100 + 42
        norm = normalize_coords(pts)
        assert np.median(np.linalg.norm(norm, axis=1)) == pytest.approx(1.0)

    def test_degenerate_all_same(self):
        norm = normalize_coords(np.ones((10, 2)))
        assert np.isfinite(norm).all()

    def test_bad_shape(self):
        with pytest.raises(GeometryError):
            normalize_coords(np.zeros((5, 3)))


class TestGeometricPartition:
    def test_grid_with_native_coords(self):
        g, pts = grid2d(20, 20)
        res = g30(g, pts, seed=0)
        res.bisection.validate(max_imbalance=0.05)
        # an ideal straight cut costs 20; geometric should be close
        assert res.cut_size <= 40

    def test_delaunay_quality(self):
        g, pts = random_delaunay(2000, seed=1)
        res = g30(g, pts, seed=2)
        res.bisection.validate(max_imbalance=0.05)
        # O(sqrt(n)) separator expected for a planar mesh
        assert res.cut_size < 6 * np.sqrt(2000)

    def test_g30_beats_or_ties_g7nl_usually(self):
        g, pts = random_delaunay(1200, seed=3)
        wins = 0
        for s in range(5):
            c30 = g30(g, pts, seed=s).cut
            c7 = g7_nl(g, pts, seed=s).cut
            wins += c30 <= c7
        assert wins >= 3  # more tries can't be much worse

    def test_g7_includes_lines(self):
        g, pts = grid2d(15, 15)
        res = g7(g, pts, seed=4)
        assert res.candidates == 7

    def test_g7nl_candidate_count(self):
        g, pts = grid2d(10, 10)
        res = g7_nl(g, pts, seed=5)
        assert res.candidates == 5
        assert res.kind == "circle"

    def test_sdist_separates_sides(self):
        g, pts = random_delaunay(500, seed=6)
        res = g7_nl(g, pts, seed=7)
        s = res.sdist
        assert (s[res.bisection.side == 1] >= 0).all()

    def test_validation_errors(self):
        g, pts = grid2d(5, 5)
        with pytest.raises(GeometryError):
            geometric_partition(g, pts[:10], seed=0)
        with pytest.raises(GeometryError):
            geometric_partition(g, pts, ncircles=0, nlines=0)
        with pytest.raises(GeometryError):
            geometric_partition(g, pts, ncenterpoints=0)

    def test_deterministic(self):
        g, pts = random_delaunay(400, seed=8)
        a = g7_nl(g, pts, seed=9)
        b = g7_nl(g, pts, seed=9)
        assert np.array_equal(a.bisection.side, b.bisection.side)
