"""Tests for Radon points and approximate centerpoints."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometric import approx_centerpoint, centerpoint_depth, radon_point


class TestRadonPoint:
    def test_inside_convex_hull_2d(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            pts = rng.normal(size=(4, 2))
            r = radon_point(pts)
            # Radon point lies in the hull of all 4 points; check via LP-free
            # test: it is a convex combination (solve least squares on the
            # simplex is overkill — check it is within the bounding box and
            # within max distance of the centroid)
            assert (r >= pts.min(axis=0) - 1e-9).all()
            assert (r <= pts.max(axis=0) + 1e-9).all()

    def test_square_diagonal_intersection(self):
        # Radon point of a square's corners is its centre
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [1.0, 0.0], [0.0, 1.0]])
        assert np.allclose(radon_point(pts), [0.5, 0.5])

    def test_3d_shape(self):
        rng = np.random.default_rng(1)
        r = radon_point(rng.normal(size=(5, 3)))
        assert r.shape == (3,)
        assert np.isfinite(r).all()

    def test_degenerate_coincident_points(self):
        pts = np.ones((5, 3))
        assert np.allclose(radon_point(pts), 1.0)

    def test_shape_validation(self):
        with pytest.raises(GeometryError):
            radon_point(np.zeros((4, 3)))


class TestApproxCenterpoint:
    def test_depth_on_uniform_square(self):
        rng = np.random.default_rng(2)
        pts = rng.random((2000, 2))
        cp = approx_centerpoint(pts, seed=3)
        # true centerpoint depth >= 1/3 in 2D; approximation should be deep
        assert centerpoint_depth(pts, cp, seed=4) > 0.2

    def test_depth_on_sphere_points_3d(self):
        rng = np.random.default_rng(5)
        pts = rng.normal(size=(3000, 3))
        pts /= np.linalg.norm(pts, axis=1, keepdims=True)
        cp = approx_centerpoint(pts, seed=6)
        assert np.linalg.norm(cp) < 0.5  # symmetric cloud: near the origin
        assert centerpoint_depth(pts, cp, seed=7) > 0.15

    def test_tiny_input_returns_mean(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert np.allclose(approx_centerpoint(pts), [0.5, 0.0])

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            approx_centerpoint(np.zeros((0, 2)))

    def test_deterministic(self):
        rng = np.random.default_rng(8)
        pts = rng.random((500, 2))
        assert np.allclose(
            approx_centerpoint(pts, seed=9), approx_centerpoint(pts, seed=9)
        )

    def test_sampling_path(self):
        rng = np.random.default_rng(10)
        pts = rng.random((5000, 2))
        cp = approx_centerpoint(pts, seed=11, sample_size=300)
        assert centerpoint_depth(pts, cp, seed=12) > 0.15
