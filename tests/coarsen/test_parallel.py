"""Tests for distributed matching and coarsening on the virtual machine."""

import numpy as np
import pytest

from repro.coarsen import validate_matching
from repro.coarsen.parallel import dist_build_hierarchy, dist_match
from repro.graph import cut_weight
from repro.graph.generators import grid2d, random_delaunay
from repro.parallel import ZERO_COST, run_spmd


def run_match(graph, p, rounds=3):
    def prog(comm):
        return (yield from dist_match(comm, graph, rounds=rounds))

    res = run_spmd(prog, p, machine=ZERO_COST, seed=1)
    return res


class TestDistMatch:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_valid_matching_any_p(self, p):
        g = random_delaunay(400, seed=0).graph
        res = run_match(g, p)
        match = res.values[0]
        validate_matching(g, match)

    def test_all_ranks_agree(self):
        g = grid2d(12, 12).graph
        res = run_match(g, 4)
        for v in res.values[1:]:
            assert np.array_equal(res.values[0], v)

    def test_matches_most_vertices(self):
        g = grid2d(20, 20).graph
        match = run_match(g, 4).values[0]
        frac = (match != np.arange(400)).mean()
        assert frac > 0.6

    def test_more_rounds_match_more(self):
        g = random_delaunay(500, seed=1).graph
        m1 = (run_match(g, 4, rounds=1).values[0] != np.arange(500)).sum()
        m3 = (run_match(g, 4, rounds=3).values[0] != np.arange(500)).sum()
        assert m3 >= m1

    def test_deterministic(self):
        g = random_delaunay(300, seed=2).graph
        a = run_match(g, 4).values[0]
        b = run_match(g, 4).values[0]
        assert np.array_equal(a, b)


class TestDistHierarchy:
    def run_hier(self, graph, p, **kw):
        def prog(comm):
            return (yield from dist_build_hierarchy(comm, graph, **kw))

        return run_spmd(prog, p, machine=ZERO_COST, seed=3)

    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_reaches_coarsest(self, p):
        g = random_delaunay(2000, seed=3).graph
        graphs, cmaps = self.run_hier(g, p, coarsest_size=150).values[0]
        assert graphs[-1].num_vertices <= 400  # parallel matching is looser
        assert len(graphs) == len(cmaps) + 1

    def test_all_ranks_share_identical_hierarchy(self):
        g = grid2d(24, 24).graph
        vals = self.run_hier(g, 8, coarsest_size=60).values
        g0, c0 = vals[0]
        for gr, cm in vals[1:]:
            assert len(gr) == len(g0)
            # Shared reference: literally the same objects
            assert gr[-1] is g0[-1]

    def test_vertex_weight_conserved(self):
        g = random_delaunay(1000, seed=4).graph
        graphs, _ = self.run_hier(g, 4, coarsest_size=100).values[0]
        for gr in graphs:
            assert gr.total_vertex_weight == pytest.approx(1000.0)

    def test_projected_cut_invariant(self):
        g = random_delaunay(900, seed=5).graph
        graphs, cmaps = self.run_hier(g, 4, coarsest_size=100).values[0]
        rng = np.random.default_rng(0)
        side = rng.integers(0, 2, graphs[-1].num_vertices).astype(np.int8)
        fine = side
        for cmap in reversed(cmaps):
            fine = fine[cmap]
        assert cut_weight(graphs[-1], side) == pytest.approx(cut_weight(g, fine))

    def test_quarters_with_keep_every_other(self):
        g = random_delaunay(4000, seed=6).graph
        graphs, _ = self.run_hier(g, 16, coarsest_size=100).values[0]
        sizes = [gr.num_vertices for gr in graphs]
        # strong reduction on the large levels (parallel matching loosens
        # up on tiny graphs where most edges cross rank boundaries)
        for a, b in list(zip(sizes, sizes[1:]))[:3]:
            assert b < 0.5 * a
        assert sizes[-1] < 0.05 * sizes[0]

    def test_matches_costs_charged(self):
        g = random_delaunay(1000, seed=7).graph

        def prog(comm):
            return (yield from dist_build_hierarchy(comm, g, coarsest_size=100))

        from repro.parallel import QDR_CLUSTER

        res = run_spmd(prog, 4, machine=QDR_CLUSTER, seed=8)
        assert res.elapsed > 0
        assert res.comp_time.max() > 0
        assert res.comm_time.max() > 0
