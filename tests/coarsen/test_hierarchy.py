"""Unit tests for multilevel hierarchies."""

import numpy as np
import pytest

from repro.coarsen import Hierarchy, build_hierarchy, random_matching
from repro.errors import GraphError
from repro.graph import cut_weight
from repro.graph.generators import complete_graph, grid2d, random_delaunay


class TestBuildHierarchy:
    def test_reaches_coarsest_size(self):
        g = grid2d(32, 32).graph
        h = build_hierarchy(g, coarsest_size=100, seed=1)
        assert h.coarsest.num_vertices <= 100 or h.num_levels == 1
        assert h.finest is g

    def test_every_other_quarters(self):
        g = random_delaunay(4000, seed=2).graph
        h = build_hierarchy(g, coarsest_size=100, keep_every_other=True, seed=3)
        sizes = h.sizes()
        # each retained level ~quarter of the previous (two matchings);
        # the last level may shrink less because HEM stalls at tiny sizes
        for a, b in zip(sizes[:-2], sizes[1:-1]):
            assert b < 0.45 * a
        assert sizes[-1] < 0.75 * sizes[-2]

    def test_classic_halves(self):
        g = random_delaunay(4000, seed=2).graph
        h = build_hierarchy(g, coarsest_size=100, keep_every_other=False, seed=3)
        sizes = h.sizes()
        for a, b in zip(sizes, sizes[1:]):
            assert 0.3 * a < b < 0.75 * a

    def test_vertex_weight_conserved_every_level(self):
        g = grid2d(20, 20).graph
        h = build_hierarchy(g, coarsest_size=20, seed=4)
        for gr in h.graphs:
            assert gr.total_vertex_weight == pytest.approx(400.0)

    def test_small_graph_single_level(self):
        g = grid2d(3, 3).graph
        h = build_hierarchy(g, coarsest_size=100, seed=5)
        assert h.num_levels == 1
        assert h.coarsest is g

    def test_max_levels_respected(self):
        g = random_delaunay(5000, seed=6).graph
        h = build_hierarchy(g, coarsest_size=2, max_levels=2, seed=6)
        assert h.num_levels <= 3

    def test_stalls_on_complete_graph(self):
        # K_n shrinks ~2x per matching but eventually stalls at tiny sizes
        g = complete_graph(32).graph
        h = build_hierarchy(g, coarsest_size=2, seed=7)
        assert h.coarsest.num_vertices >= 1

    def test_custom_matcher(self):
        g = grid2d(10, 10).graph
        h = build_hierarchy(g, coarsest_size=30, matcher=random_matching, seed=8)
        assert h.coarsest.num_vertices < 100

    def test_invalid_coarsest_size(self):
        with pytest.raises(GraphError):
            build_hierarchy(grid2d(4, 4).graph, coarsest_size=0)


class TestProjection:
    def test_project_to_finest_preserves_cut(self):
        g = random_delaunay(1000, seed=9).graph
        h = build_hierarchy(g, coarsest_size=50, seed=10)
        rng = np.random.default_rng(0)
        cside = rng.integers(0, 2, h.coarsest.num_vertices).astype(np.int8)
        fside = h.project_to_finest(cside, h.num_levels - 1)
        assert fside.shape[0] == g.num_vertices
        assert cut_weight(h.coarsest, cside) == pytest.approx(cut_weight(g, fside))

    def test_project_one_level(self):
        g = grid2d(16, 16).graph
        h = build_hierarchy(g, coarsest_size=30, seed=11)
        if h.num_levels < 2:
            pytest.skip("graph too small to coarsen")
        lv = h.num_levels - 1
        vals = np.arange(h.graphs[lv].num_vertices)
        fine = h.project_one_level(vals, lv)
        assert fine.shape[0] == h.graphs[lv - 1].num_vertices

    def test_level_bounds_checked(self):
        g = grid2d(8, 8).graph
        h = build_hierarchy(g, coarsest_size=10, seed=12)
        with pytest.raises(GraphError):
            h.project_to_finest(np.zeros(1), h.num_levels)
        with pytest.raises(GraphError):
            h.project_one_level(np.zeros(1), 0)

    def test_mismatched_cmaps_rejected(self):
        g = grid2d(4, 4).graph
        with pytest.raises(GraphError):
            Hierarchy([g, g], [])
