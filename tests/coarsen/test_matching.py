"""Unit and property tests for matchings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coarsen import (
    get_matcher,
    heavy_edge_matching,
    heavy_edge_matching_vec,
    random_matching,
    validate_matching,
)
from repro.errors import ConfigError, GraphError
from repro.graph import CSRGraph
from repro.graph.generators import (
    complete_graph,
    grid2d,
    path_graph,
    preferential_attachment,
    random_delaunay,
    star_graph,
)


def _matching_weight(g, m):
    """Total weight of the matched edges (each edge counted once)."""
    src = g.edge_sources()
    sel = (m[src] == g.indices) & (src < g.indices)
    return float(g.ewgt[sel].sum())


class TestHeavyEdgeMatching:
    def test_valid_on_grid(self):
        g = grid2d(8, 8).graph
        m = heavy_edge_matching(g, seed=1)
        validate_matching(g, m)

    def test_matches_most_of_a_grid(self):
        g = grid2d(10, 10).graph
        m = heavy_edge_matching(g, seed=2)
        matched = (m != np.arange(g.num_vertices)).sum()
        assert matched >= 0.8 * g.num_vertices

    def test_prefers_heavy_edges(self):
        # C6 with alternating weights 10/1: regardless of visit order,
        # HEM must select exactly the three disjoint heavy edges
        edges = np.array([[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [5, 0]])
        w = np.array([10.0, 1.0, 10.0, 1.0, 10.0, 1.0])
        g = CSRGraph.from_edges(6, edges, w)
        for seed in range(5):
            m = heavy_edge_matching(g, seed=seed)
            assert m.tolist() == [1, 0, 3, 2, 5, 4]

    def test_isolated_vertices_unmatched(self):
        g = CSRGraph.empty(4)
        m = heavy_edge_matching(g, seed=0)
        assert np.array_equal(m, np.arange(4))

    def test_star_matches_single_pair(self):
        g = star_graph(6).graph
        m = heavy_edge_matching(g, seed=4)
        matched = (m != np.arange(6)).sum()
        assert matched == 2  # the hub can only pair with one leaf

    def test_deterministic_given_seed(self):
        g = random_delaunay(300, seed=5).graph
        assert np.array_equal(
            heavy_edge_matching(g, seed=7), heavy_edge_matching(g, seed=7)
        )

    def test_different_seeds_differ(self):
        g = grid2d(12, 12).graph
        a = heavy_edge_matching(g, seed=1)
        b = heavy_edge_matching(g, seed=2)
        assert not np.array_equal(a, b)


class TestVectorisedHEM:
    """Round-based vectorised heavy-edge matching (``hem-vec``)."""

    def test_valid_on_grid(self):
        g = grid2d(16, 16).graph
        m = heavy_edge_matching_vec(g, seed=1)
        validate_matching(g, m)

    def test_involution_and_no_self_edges(self):
        g = random_delaunay(400, seed=9).graph
        m = heavy_edge_matching_vec(g, seed=3)
        ids = np.arange(g.num_vertices)
        assert np.array_equal(m[m], ids)

    def test_maximal(self):
        # no edge may have both endpoints unmatched
        for gg in (grid2d(13, 11).graph,
                   random_delaunay(350, seed=2).graph,
                   preferential_attachment(300, m=3, seed=4).graph):
            m = heavy_edge_matching_vec(gg, seed=5)
            src = gg.edge_sources()
            both_free = (m[src] == src) & (m[gg.indices] == gg.indices)
            assert not both_free.any()

    def test_prefers_heavy_edges(self):
        # same C6 case the sequential kernel must solve: the three
        # disjoint weight-10 edges dominate for every seed
        edges = np.array([[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [5, 0]])
        w = np.array([10.0, 1.0, 10.0, 1.0, 10.0, 1.0])
        g = CSRGraph.from_edges(6, edges, w)
        for seed in range(5):
            m = heavy_edge_matching_vec(g, seed=seed)
            assert m.tolist() == [1, 0, 3, 2, 5, 4]

    def test_deterministic_given_seed(self):
        g = random_delaunay(300, seed=5).graph
        assert np.array_equal(
            heavy_edge_matching_vec(g, seed=7),
            heavy_edge_matching_vec(g, seed=7),
        )

    def test_isolated_vertices_unmatched(self):
        g = CSRGraph.empty(4)
        m = heavy_edge_matching_vec(g, seed=0)
        assert np.array_equal(m, np.arange(4))

    def test_quality_parity_with_sequential_hem(self):
        # the round-based rule must land in the same quality band as the
        # greedy visit-order rule: matched-edge weight within 25% on a
        # weighted mesh (both pick locally heavy edges; they differ only
        # in tie-resolution order)
        for gg in (random_delaunay(600, seed=11).graph,
                   preferential_attachment(500, m=4, seed=12).graph):
            w_seq = _matching_weight(gg, heavy_edge_matching(gg, seed=3))
            w_vec = _matching_weight(gg, heavy_edge_matching_vec(gg, seed=3))
            assert w_vec >= 0.75 * w_seq, (w_vec, w_seq)


class TestMatcherRegistry:
    def test_known_names_resolve(self):
        assert get_matcher("hem") is heavy_edge_matching
        assert get_matcher("hem-vec") is heavy_edge_matching_vec
        assert get_matcher("random") is random_matching

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            get_matcher("hem-typo")

    def test_config_validates_matching_eagerly(self):
        from repro.core.config import ScalaPartConfig

        with pytest.raises(ConfigError):
            ScalaPartConfig(matching="nope")
        assert ScalaPartConfig().matching == "hem-vec"


class TestRandomMatching:
    def test_valid_and_maximal_on_path(self):
        g = path_graph(10).graph
        m = random_matching(g, seed=1)
        validate_matching(g, m)
        # maximal: no two adjacent vertices both unmatched
        un = np.flatnonzero(m == np.arange(10))
        for v in un:
            assert all(m[u] != u for u in g.neighbors(v))

    def test_complete_graph_perfect(self):
        g = complete_graph(8).graph
        m = random_matching(g, seed=2)
        assert (m != np.arange(8)).all()


class TestValidation:
    def test_rejects_non_involution(self):
        g = path_graph(3).graph
        with pytest.raises(GraphError):
            validate_matching(g, np.array([1, 2, 0]))

    def test_rejects_non_edges(self):
        g = path_graph(4).graph
        with pytest.raises(GraphError):
            validate_matching(g, np.array([3, 1, 2, 0]))

    def test_rejects_wrong_length(self):
        g = path_graph(3).graph
        with pytest.raises(GraphError):
            validate_matching(g, np.array([0, 1]))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(4, 40),
    density=st.floats(0.05, 0.5),
    seed=st.integers(0, 2**31),
)
def test_hem_always_valid_on_random_graphs(n, density, seed):
    rng = np.random.default_rng(seed)
    m = max(1, int(density * n * (n - 1) / 2))
    edges = rng.integers(0, n, size=(m, 2))
    g = CSRGraph.from_edges(n, edges)
    match = heavy_edge_matching(g, seed=seed)
    validate_matching(g, match)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(4, 40),
    density=st.floats(0.05, 0.5),
    seed=st.integers(0, 2**31),
)
def test_hem_vec_always_valid_and_maximal(n, density, seed):
    rng = np.random.default_rng(seed)
    m = max(1, int(density * n * (n - 1) / 2))
    edges = rng.integers(0, n, size=(m, 2))
    g = CSRGraph.from_edges(n, edges)
    match = heavy_edge_matching_vec(g, seed=seed)
    validate_matching(g, match)
    src = g.edge_sources()
    both_free = (match[src] == src) & (match[g.indices] == g.indices)
    assert not both_free.any()
