"""Unit and property tests for graph contraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coarsen import coarse_map, contract, heavy_edge_matching, project_labels
from repro.errors import GraphError
from repro.graph import CSRGraph, cut_weight
from repro.graph.generators import grid2d, path_graph, random_delaunay


class TestCoarseMap:
    def test_identity_matching(self):
        cmap = coarse_map(np.arange(5))
        assert cmap.tolist() == [0, 1, 2, 3, 4]

    def test_pairs_share_id(self):
        cmap = coarse_map(np.array([1, 0, 3, 2]))
        assert cmap[0] == cmap[1]
        assert cmap[2] == cmap[3]
        assert cmap[0] != cmap[2]

    def test_ids_contiguous(self):
        cmap = coarse_map(np.array([2, 1, 0, 4, 3]))
        assert sorted(set(cmap.tolist())) == list(range(cmap.max() + 1))


class TestContract:
    def test_path_contraction(self):
        g = path_graph(4).graph
        coarse, cmap = contract(g, np.array([1, 0, 3, 2]))
        assert coarse.num_vertices == 2
        assert coarse.num_edges == 1
        # the surviving edge carries the original weight
        assert coarse.total_edge_weight == pytest.approx(1.0)
        assert coarse.vwgt.tolist() == [2.0, 2.0]

    def test_parallel_edges_accumulate(self):
        # square 0-1-2-3-0; contract (0,1) and (2,3): two parallel edges merge
        g = CSRGraph.from_edges(4, np.array([[0, 1], [1, 2], [2, 3], [3, 0]]))
        coarse, _ = contract(g, np.array([1, 0, 3, 2]))
        assert coarse.num_vertices == 2
        assert coarse.num_edges == 1
        assert coarse.total_edge_weight == pytest.approx(2.0)

    def test_vertex_weight_conserved(self):
        g = random_delaunay(200, seed=1).graph
        m = heavy_edge_matching(g, seed=2)
        coarse, _ = contract(g, m)
        assert coarse.total_vertex_weight == pytest.approx(g.total_vertex_weight)

    def test_empty_matching_is_copy(self):
        g = grid2d(4, 4).graph
        coarse, cmap = contract(g, np.arange(16))
        assert coarse == g
        assert np.array_equal(cmap, np.arange(16))

    def test_bad_match_length(self):
        g = path_graph(3).graph
        with pytest.raises(GraphError):
            contract(g, np.array([0, 1]))

    def test_project_labels_roundtrip(self):
        g = path_graph(4).graph
        coarse, cmap = contract(g, np.array([1, 0, 3, 2]))
        side = np.array([0, 1], dtype=np.int8)
        fine = project_labels(side, cmap)
        assert fine.tolist() == [0, 0, 1, 1]

    def test_project_coordinates(self):
        cmap = np.array([0, 0, 1])
        coords = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = project_labels(coords, cmap)
        assert out.shape == (3, 2)
        assert out[1].tolist() == [1.0, 2.0]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31), n=st.integers(10, 120))
def test_projected_cut_invariant(seed, n):
    """Multilevel invariant: the cut of any coarse bisection equals the
    cut of its projection to the fine graph (in edge weight)."""
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(3 * n, 2))
    g = CSRGraph.from_edges(n, edges, rng.random(3 * n) + 0.5)
    m = heavy_edge_matching(g, seed=seed)
    coarse, cmap = contract(g, m)
    cside = rng.integers(0, 2, coarse.num_vertices).astype(np.int8)
    fside = project_labels(cside, cmap)
    assert cut_weight(coarse, cside) == pytest.approx(cut_weight(g, fside))
    # part weights are preserved too
    assert coarse.vwgt[cside == 0].sum() == pytest.approx(g.vwgt[fside == 0].sum())
