"""End-to-end integration tests across the whole library.

These exercise the public API the way a downstream user would: build a
suite graph, partition it with several methods, check invariants that
must hold regardless of tuning (valid balanced bisections, determinism,
METIS round-trips of partitioned graphs).
"""


import numpy as np
import pytest

from repro.baselines import parmetis_like, scotch_like
from repro.core import ScalaPartConfig, scalapart, scalapart_parallel
from repro.embed import hu_layout
from repro.geometric import g7_nl
from repro.graph import Bisection, read_metis, suite, write_metis

FAST = ScalaPartConfig(coarsest_iters=60, smooth_iters=6)


@pytest.mark.parametrize("name", suite.suite_names())
def test_scalapart_partitions_every_suite_graph(name):
    gg = suite.build(name, scale=0.05)
    res = scalapart(gg.graph, FAST, seed=1)
    res.validate(max_imbalance=0.06)
    # never worse than a random split (~half the edges)
    assert res.cut_size < 0.3 * gg.graph.num_edges


@pytest.mark.parametrize("name", ["ecology1", "kkt_power", "delaunay_n20"])
def test_methods_agree_on_magnitude(name):
    """All serious methods should land within a factor ~4 of each other
    on cut size (they optimise the same objective)."""
    gg = suite.build(name, scale=0.08)
    coords = hu_layout(gg.graph, seed=2, smooth_iters=8)
    cuts = {
        "sp": scalapart(gg.graph, FAST, seed=3).cut_size,
        "pm": parmetis_like(gg.graph, seed=3).cut_size,
        "sc": scotch_like(gg.graph, seed=3).cut_size,
        "g7nl": g7_nl(gg.graph, coords, seed=3).cut_size,
    }
    lo, hi = min(cuts.values()), max(cuts.values())
    assert hi <= 4 * max(lo, 1), cuts


def test_partition_roundtrips_through_metis_format(tmp_path):
    gg = suite.build("delaunay_n20", scale=0.05)
    res = scalapart(gg.graph, FAST, seed=4)
    p = tmp_path / "g.graph"
    write_metis(gg.graph, p)
    g2 = read_metis(p)
    # the labels apply unchanged to the round-tripped graph
    bis = Bisection(g2, res.bisection.side)
    assert bis.cut_size == res.cut_size


def test_sequential_and_parallel_sp_same_family():
    """P=1 distributed ScalaPart and the sequential reference implement
    the same algorithm family: comparable cuts on a mesh."""
    gg = suite.build("delaunay_n20", scale=0.08)
    seq = scalapart(gg.graph, FAST, seed=5).cut_size
    par = scalapart_parallel(gg.graph, 1, FAST, seed=5).cut_size
    assert par <= 3 * seq + 20
    assert seq <= 3 * par + 20


def test_full_determinism_of_the_pipeline():
    gg = suite.build("G3_circuit", scale=0.06)
    a = scalapart_parallel(gg.graph, 16, FAST, seed=6)
    b = scalapart_parallel(gg.graph, 16, FAST, seed=6)
    assert np.array_equal(a.bisection.side, b.bisection.side)
    assert a.seconds == b.seconds
    assert a.stage_seconds == b.stage_seconds
