"""Unit tests for the block-distribution helpers and Shared references."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.distributed import (
    Shared,
    adjacency_slots,
    block_of,
    block_starts,
    owner_by_block,
)
from repro.graph.generators import grid2d, star_graph
from repro.parallel import ZERO_COST, payload_words, run_spmd


class TestBlockStarts:
    @pytest.mark.parametrize("n,p", [(10, 3), (7, 7), (5, 8), (0, 2), (100, 1)])
    def test_partition_covers_range(self, n, p):
        starts = block_starts(n, p)
        assert starts.shape == (p + 1,)
        assert starts[0] == 0 and starts[-1] == n
        sizes = np.diff(starts)
        assert sizes.min() >= 0
        assert sizes.max() - max(sizes.min(), 0) <= 1

    def test_first_ranks_get_extra(self):
        starts = block_starts(10, 3)
        np.testing.assert_array_equal(np.diff(starts), [4, 3, 3])

    def test_invalid_p(self):
        with pytest.raises(GraphError):
            block_starts(5, 0)

    def test_block_of_matches_starts(self):
        starts = block_starts(11, 4)
        spans = [block_of(starts, r) for r in range(4)]
        assert spans[0][0] == 0 and spans[-1][1] == 11
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi == lo


class TestOwnerByBlock:
    def test_inverse_of_block_of(self):
        n, p = 23, 5
        starts = block_starts(n, p)
        owners = owner_by_block(starts, np.arange(n))
        for r in range(p):
            lo, hi = block_of(starts, r)
            np.testing.assert_array_equal(owners[lo:hi], r)

    def test_scalar_like_input(self):
        starts = block_starts(10, 2)
        assert owner_by_block(starts, np.array([0]))[0] == 0
        assert owner_by_block(starts, np.array([9]))[0] == 1


class TestAdjacencySlots:
    def test_matches_per_vertex_neighbors(self):
        g = grid2d(4, 4).graph
        verts = np.array([0, 5, 10], dtype=np.int64)
        src_pos, src, dst, w = adjacency_slots(g, verts)
        assert src_pos.shape == src.shape == dst.shape == w.shape
        for i, v in enumerate(verts):
            mine = dst[src_pos == i]
            np.testing.assert_array_equal(np.sort(mine),
                                          np.sort(g.neighbors(int(v))))
            np.testing.assert_array_equal(src[src_pos == i], v)

    def test_weights_align_with_dst(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)], weights=[2.0, 5.0])
        _, _, dst, w = adjacency_slots(g, np.array([1]))
        got = dict(zip(dst.tolist(), w.tolist()))
        assert got == {0: 2.0, 2: 5.0}

    def test_empty_subset(self):
        g = grid2d(3, 3).graph
        src_pos, src, dst, w = adjacency_slots(g, np.zeros(0, dtype=np.int64))
        assert src_pos.size == src.size == dst.size == w.size == 0

    def test_isolated_vertices(self):
        g = star_graph(5).graph  # vertex 0 is the hub
        src_pos, src, dst, _ = adjacency_slots(g, np.array([1, 2]))
        np.testing.assert_array_equal(dst, [0, 0])
        np.testing.assert_array_equal(src, [1, 2])


class TestShared:
    def test_engine_passes_reference_through(self):
        big = np.arange(1000)

        def prog(comm):
            payload = Shared(big) if comm.rank == 0 else None
            out = yield from comm.bcast(payload, root=0)
            return out.value is big

        res = run_spmd(prog, 4, machine=ZERO_COST)
        assert res.values == [True] * 4

    def test_payload_words_is_constant(self):
        # the wrapper itself is metadata: costs must come from words=
        assert payload_words(Shared(np.arange(10**6))) < 10

    def test_repr(self):
        assert "ndarray" in repr(Shared(np.zeros(1)))
