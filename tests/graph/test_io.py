"""Unit tests for graph file I/O."""

import io

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph
from repro.graph.generators import grid2d, random_delaunay
from repro.graph.io import (
    read_coords,
    read_edgelist,
    read_metis,
    write_coords,
    write_edgelist,
    write_metis,
)


class TestMetis:
    def roundtrip(self, g, **kw):
        buf = io.StringIO()
        write_metis(g, buf, **kw)
        buf.seek(0)
        return read_metis(buf)

    def test_roundtrip_plain(self):
        g = grid2d(5, 4).graph
        assert self.roundtrip(g) == g

    def test_roundtrip_weights(self):
        g = CSRGraph.from_edges(
            4,
            np.array([[0, 1], [1, 2], [2, 3]]),
            np.array([2.0, 3.0, 4.0]),
            vwgt=np.array([1.0, 2.0, 3.0, 4.0]),
        )
        g2 = self.roundtrip(g, vertex_weights=True, edge_weights=True)
        assert g2 == g

    def test_read_reference_format(self):
        # the example graph from the METIS manual (7 vertices, 11 edges)
        text = """\
% comment line
7 11
5 3 2
1 3 4
5 4 2 1
2 3 6 7
1 3 6
5 4 7
6 4
"""
        g = read_metis(io.StringIO(text))
        assert g.num_vertices == 7
        assert g.num_edges == 11
        assert sorted(g.neighbors(0).tolist()) == [1, 2, 4]

    def test_read_rejects_bad_edge_count(self):
        text = "2 5\n2\n1\n"
        with pytest.raises(GraphError):
            read_metis(io.StringIO(text))

    def test_read_rejects_missing_lines(self):
        with pytest.raises(GraphError):
            read_metis(io.StringIO("3 1\n2\n1\n"))

    def test_read_empty_file(self):
        with pytest.raises(GraphError):
            read_metis(io.StringIO(""))

    def test_file_path_roundtrip(self, tmp_path):
        g = random_delaunay(80, seed=1).graph
        p = tmp_path / "g.graph"
        write_metis(g, p)
        assert read_metis(p) == g


class TestEdgeList:
    def test_roundtrip(self):
        g = grid2d(4, 4).graph
        buf = io.StringIO()
        write_edgelist(g, buf)
        buf.seek(0)
        assert read_edgelist(buf, n=16) == g

    def test_comments_and_weights(self):
        text = "# header\n0 1 2.5\n1 2 1.0\n"
        g = read_edgelist(io.StringIO(text))
        assert g.num_vertices == 3
        assert g.total_edge_weight == pytest.approx(3.5)

    def test_empty(self):
        g = read_edgelist(io.StringIO(""), n=4)
        assert g.num_vertices == 4
        assert g.num_edges == 0


class TestCoords:
    def test_roundtrip(self, tmp_path):
        coords = np.random.default_rng(0).random((10, 2))
        p = tmp_path / "c.xy"
        write_coords(coords, p)
        back = read_coords(p)
        assert np.allclose(coords, back)

    def test_empty(self):
        assert read_coords(io.StringIO("")).shape == (0, 2)
