"""Unit tests for graph file I/O."""

import io

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph
from repro.graph.generators import grid2d, random_delaunay
from repro.graph.io import (
    _read_metis_reference,
    read_coords,
    read_edgelist,
    read_metis,
    write_coords,
    write_edgelist,
    write_metis,
)


class TestMetis:
    def roundtrip(self, g, **kw):
        buf = io.StringIO()
        write_metis(g, buf, **kw)
        buf.seek(0)
        return read_metis(buf)

    def test_roundtrip_plain(self):
        g = grid2d(5, 4).graph
        assert self.roundtrip(g) == g

    def test_roundtrip_weights(self):
        g = CSRGraph.from_edges(
            4,
            np.array([[0, 1], [1, 2], [2, 3]]),
            np.array([2.0, 3.0, 4.0]),
            vwgt=np.array([1.0, 2.0, 3.0, 4.0]),
        )
        g2 = self.roundtrip(g, vertex_weights=True, edge_weights=True)
        assert g2 == g

    def test_read_reference_format(self):
        # the example graph from the METIS manual (7 vertices, 11 edges)
        text = """\
% comment line
7 11
5 3 2
1 3 4
5 4 2 1
2 3 6 7
1 3 6
5 4 7
6 4
"""
        g = read_metis(io.StringIO(text))
        assert g.num_vertices == 7
        assert g.num_edges == 11
        assert sorted(g.neighbors(0).tolist()) == [1, 2, 4]

    def test_read_rejects_bad_edge_count(self):
        text = "2 5\n2\n1\n"
        with pytest.raises(GraphError):
            read_metis(io.StringIO(text))

    def test_read_rejects_missing_lines(self):
        with pytest.raises(GraphError):
            read_metis(io.StringIO("3 1\n2\n1\n"))

    def test_read_empty_file(self):
        with pytest.raises(GraphError):
            read_metis(io.StringIO(""))

    def test_file_path_roundtrip(self, tmp_path):
        g = random_delaunay(80, seed=1).graph
        p = tmp_path / "g.graph"
        write_metis(g, p)
        assert read_metis(p) == g


class TestMetisStreaming:
    """The chunked streaming reader: parity with the pre-streaming
    reference at every chunk boundary, and the trailing-blank fix."""

    def _text(self, g, **kw):
        buf = io.StringIO()
        write_metis(g, buf, **kw)
        return buf.getvalue()

    @pytest.mark.parametrize("chunk_lines", [1, 3, 64, 65536])
    def test_chunk_boundaries_match_reference(self, chunk_lines):
        g = random_delaunay(150, seed=2).graph
        for kw in (
            {},
            {"vertex_weights": True},
            {"edge_weights": True},
            {"vertex_weights": True, "edge_weights": True},
        ):
            text = self._text(g, **kw)
            got = read_metis(io.StringIO(text), chunk_lines=chunk_lines)
            ref = _read_metis_reference(io.StringIO(text))
            assert got == ref

    def test_accepts_trailing_blanks_and_comments(self):
        # the old strict len(lines)-1 != n check only survived trailing
        # blanks because it pre-stripped them; the streaming reader must
        # accept blanks and comments anywhere after the last vertex line
        text = "3 2\n2\n1 3\n2\n\n   \n% trailing comment\n\n"
        g = read_metis(io.StringIO(text))
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_interior_comments_and_blanks(self):
        text = "% head\n3 2\n\n2\n% mid\n1 3\n\n2\n"
        g = read_metis(io.StringIO(text))
        assert sorted(g.neighbors(1).tolist()) == [0, 2]

    def test_rejects_extra_vertex_lines(self):
        with pytest.raises(GraphError):
            read_metis(io.StringIO("2 1\n2\n1\n1\n"))

    def test_rejects_out_of_range_neighbor(self):
        with pytest.raises(GraphError):
            read_metis(io.StringIO("2 1\n3\n1\n"))

    def test_rejects_non_numeric_token(self):
        with pytest.raises(GraphError):
            read_metis(io.StringIO("2 1\n2\nx\n"))

    def test_rejects_fractional_neighbor_id(self):
        with pytest.raises(GraphError):
            read_metis(io.StringIO("2 1\n2\n1.5\n"))

    def test_rejects_bad_chunk_lines(self):
        with pytest.raises(GraphError):
            read_metis(io.StringIO("1 0\n\n"), chunk_lines=0)

    def test_no_neighbors_vertex_weight_only(self):
        # fmt=10 line with just the weight: counts as a vertex line
        text = "2 0 10\n5\n7\n"
        g = read_metis(io.StringIO(text))
        assert g.num_edges == 0
        assert g.vwgt.tolist() == [5.0, 7.0]


class TestEdgeList:
    def test_roundtrip(self):
        g = grid2d(4, 4).graph
        buf = io.StringIO()
        write_edgelist(g, buf)
        buf.seek(0)
        assert read_edgelist(buf, n=16) == g

    def test_comments_and_weights(self):
        text = "# header\n0 1 2.5\n1 2 1.0\n"
        g = read_edgelist(io.StringIO(text))
        assert g.num_vertices == 3
        assert g.total_edge_weight == pytest.approx(3.5)

    def test_empty(self):
        g = read_edgelist(io.StringIO(""), n=4)
        assert g.num_vertices == 4
        assert g.num_edges == 0


class TestCoords:
    def test_roundtrip(self, tmp_path):
        coords = np.random.default_rng(0).random((10, 2))
        p = tmp_path / "c.xy"
        write_coords(coords, p)
        back = read_coords(p)
        assert np.allclose(coords, back)

    def test_empty(self):
        assert read_coords(io.StringIO("")).shape == (0, 2)
