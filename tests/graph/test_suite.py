"""Tests for the nine-graph evaluation suite."""

import pytest

from repro.errors import GraphError
from repro.graph import suite


class TestSuite:
    def test_nine_entries_in_table1_order(self):
        names = suite.suite_names()
        assert len(names) == 9
        assert names[0] == "ecology1"
        assert names[-1] == "hugebubbles-00020"

    def test_large4_are_suite_members(self):
        assert set(suite.LARGE4) <= set(suite.suite_names())
        assert len(suite.LARGE4) == 4

    def test_build_unknown_raises(self):
        with pytest.raises(GraphError):
            suite.build("nope")

    def test_build_scaled_down(self):
        g = suite.build("ecology1", scale=0.02)
        assert g.graph.num_vertices < 1000
        assert g.graph.is_connected()

    def test_builds_are_deterministic(self):
        a = suite.build("delaunay_n20", scale=0.05)
        b = suite.build("delaunay_n20", scale=0.05)
        assert a.graph == b.graph

    @pytest.mark.parametrize("name", suite.suite_names())
    def test_every_graph_builds_small(self, name):
        g = suite.build(name, scale=0.02)
        assert g.graph.num_vertices > 10
        assert g.graph.num_edges > 10
        assert g.graph.is_connected()
        assert g.name == name

    def test_scale_validated(self):
        with pytest.raises(GraphError):
            suite.build("ecology1", scale=0)

    def test_relative_size_ordering_preserved(self):
        # the largest paper graphs should stay the largest analogues
        sizes = {
            n: suite.build(n, scale=0.05).graph.num_vertices
            for n in ("ecology1", "delaunay_n24", "hugebubbles-00020")
        }
        assert sizes["hugebubbles-00020"] > sizes["ecology1"]
        assert sizes["delaunay_n24"] > sizes["ecology1"]
