"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import generators as gen


class TestClassics:
    def test_path(self):
        g, coords = gen.path_graph(5)
        assert g.num_edges == 4
        assert coords.shape == (5, 2)

    def test_cycle(self):
        g, _ = gen.cycle_graph(7)
        assert g.num_edges == 7
        assert (g.degrees() == 2).all()

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            gen.cycle_graph(2)

    def test_star(self):
        g, _ = gen.star_graph(6)
        assert g.degrees()[0] == 5
        assert (g.degrees()[1:] == 1).all()

    def test_complete(self):
        g, _ = gen.complete_graph(6)
        assert g.num_edges == 15

    def test_caterpillar(self):
        g, _ = gen.caterpillar(4, 2)
        assert g.num_vertices == 12
        assert g.num_edges == 3 + 8


class TestMeshes:
    def test_grid2d_counts(self):
        g, coords = gen.grid2d(4, 6)
        assert g.num_vertices == 24
        assert g.num_edges == 3 * 6 + 5 * 4
        assert coords.shape == (24, 2)

    def test_grid2d_periodic(self):
        g, _ = gen.grid2d(5, 5, periodic=True)
        assert (g.degrees() == 4).all()

    def test_grid2d_diagonals(self):
        g, _ = gen.grid2d(3, 3, diagonals=True)
        # center vertex sees all 8 others
        assert g.degrees().max() == 8

    def test_grid2d_invalid(self):
        with pytest.raises(GraphError):
            gen.grid2d(0, 3)

    def test_grid3d(self):
        g, _ = gen.grid3d(3, 3, 3)
        assert g.num_vertices == 27
        assert g.num_edges == 3 * (2 * 9)

    def test_delaunay_planar_edge_bound(self):
        g, pts = gen.random_delaunay(300, seed=3)
        assert g.num_vertices == 300
        # planar: m <= 3n - 6
        assert g.num_edges <= 3 * 300 - 6
        assert g.is_connected()

    def test_delaunay_requires_points(self):
        with pytest.raises(GraphError):
            gen.delaunay_mesh(np.zeros((2, 2)))

    def test_perforated_mesh(self):
        g, pts = gen.perforated_delaunay(2000, holes=5, seed=9)
        assert g.is_connected()
        assert g.num_vertices > 1000
        assert pts.shape[0] == g.num_vertices

    def test_annulus_mesh(self):
        g, pts = gen.annulus_delaunay(2000, seed=9)
        assert g.is_connected()
        # elongated domain
        assert np.ptp(pts[:, 0]) > 3 * np.ptp(pts[:, 1])


class TestIrregular:
    def test_circuit_grid_has_shorts(self):
        base = gen.grid2d(20, 20).graph
        g, _ = gen.circuit_grid(20, 20, shorts_fraction=0.05, seed=1)
        assert g.num_edges > base.num_edges

    def test_kkt_power_heavy_tail(self):
        g, _ = gen.kkt_power_like(30, seed=2)
        deg = g.degrees()
        assert deg.max() > 5 * np.median(deg)
        assert g.is_connected()

    def test_random_geometric(self):
        g, pts = gen.random_geometric(500, seed=4)
        assert g.num_vertices == 500
        assert g.num_edges > 0

    def test_random_regular_degree_bound(self):
        g, _ = gen.random_regular(100, 4, seed=5)
        assert g.degrees().max() <= 4

    def test_random_regular_parity(self):
        with pytest.raises(GraphError):
            gen.random_regular(5, 3)

    def test_preferential_attachment(self):
        g, _ = gen.preferential_attachment(200, m=3, seed=6)
        assert g.num_vertices == 200
        assert g.degrees().max() > 10

    def test_generators_deterministic(self):
        a = gen.random_delaunay(100, seed=42).graph
        b = gen.random_delaunay(100, seed=42).graph
        assert a == b
