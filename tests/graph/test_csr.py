"""Unit tests for the CSR graph kernel."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph
from repro.graph.generators import complete_graph, cycle_graph, grid2d, path_graph


def triangle():
    return CSRGraph.from_edges(3, np.array([[0, 1], [1, 2], [0, 2]]))


class TestConstruction:
    def test_from_edges_basic(self):
        g = triangle()
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert sorted(g.neighbors(1).tolist()) == [0, 2]

    def test_from_edges_drops_self_loops(self):
        g = CSRGraph.from_edges(3, np.array([[0, 0], [0, 1]]))
        assert g.num_edges == 1

    def test_from_edges_dedupes_and_accumulates_weights(self):
        g = CSRGraph.from_edges(
            2, np.array([[0, 1], [1, 0], [0, 1]]), np.array([1.0, 2.0, 4.0])
        )
        assert g.num_edges == 1
        assert g.total_edge_weight == pytest.approx(7.0)

    def test_from_edges_out_of_range(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, np.array([[0, 5]]))

    def test_from_edges_bad_shape(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, np.array([[0, 1, 2]]))

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.degrees().tolist() == [0] * 5

    def test_zero_vertex_graph(self):
        g = CSRGraph.empty(0)
        assert g.num_vertices == 0
        assert g.is_connected()

    def test_from_scipy_roundtrip(self):
        g = grid2d(4, 5).graph
        g2 = CSRGraph.from_scipy(g.to_scipy())
        assert g == g2

    def test_from_networkx(self):
        nx = pytest.importorskip("networkx")
        g = CSRGraph.from_networkx(nx.path_graph(6))
        assert g.num_edges == 5
        assert g.degrees().max() == 2

    def test_validation_rejects_asymmetric(self):
        # vertex 0 lists 1 as neighbour twice, vertex 1 lists 0 once
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 3, 4]), np.array([1, 1, 0, 0]))

    def test_validation_rejects_self_loop(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([0]))


class TestProperties:
    def test_degrees_grid(self):
        g = grid2d(3, 3).graph
        deg = np.sort(g.degrees())
        # corners 2, edges 3, center 4
        assert deg.tolist() == [2, 2, 2, 2, 3, 3, 3, 3, 4]

    def test_weighted_degrees(self):
        g = CSRGraph.from_edges(
            3, np.array([[0, 1], [1, 2]]), np.array([2.0, 5.0])
        )
        assert g.weighted_degrees().tolist() == [2.0, 7.0, 5.0]

    def test_total_weights(self):
        g = triangle()
        assert g.total_edge_weight == 3.0
        assert g.total_vertex_weight == 3.0

    def test_edge_list_unique_and_ordered(self):
        g = grid2d(5, 5).graph
        edges, w = g.edge_list()
        assert edges.shape[0] == g.num_edges
        assert (edges[:, 0] < edges[:, 1]).all()
        assert w.shape[0] == edges.shape[0]

    def test_iter_edges_matches_edge_list(self):
        g = cycle_graph(6).graph
        assert sorted(
            (u, v) for u, v, _ in g.iter_edges()
        ) == sorted(map(tuple, g.edge_list()[0].tolist()))

    def test_has_edge(self):
        g = path_graph(4).graph
        assert g.has_edge(1, 2)
        assert not g.has_edge(0, 3)

    def test_edge_sources(self):
        g = triangle()
        src = g.edge_sources()
        assert src.shape[0] == 6
        assert np.bincount(src).tolist() == [2, 2, 2]


class TestDerived:
    def test_subgraph_induced(self):
        g = grid2d(4, 4).graph
        sub, ids = g.subgraph(np.array([0, 1, 2, 3]))  # a row of the grid
        assert sub.num_vertices == 4
        assert sub.num_edges == 3
        assert ids.tolist() == [0, 1, 2, 3]

    def test_subgraph_keeps_vertex_weights(self):
        g = CSRGraph.from_edges(
            4, np.array([[0, 1], [2, 3]]), vwgt=np.array([1.0, 2.0, 3.0, 4.0])
        )
        sub, _ = g.subgraph(np.array([2, 3]))
        assert sub.vwgt.tolist() == [3.0, 4.0]

    def test_permute_preserves_structure(self):
        g = cycle_graph(8).graph
        perm = np.roll(np.arange(8), 3)
        p = g.permute(perm)
        assert p.num_edges == g.num_edges
        assert np.sort(p.degrees()).tolist() == np.sort(g.degrees()).tolist()

    def test_permute_rejects_non_permutation(self):
        g = path_graph(4).graph
        with pytest.raises(GraphError):
            g.permute(np.array([0, 0, 1, 2]))

    def test_connected_components(self):
        g = CSRGraph.from_edges(5, np.array([[0, 1], [2, 3]]))
        labels = g.connected_components()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert len({labels[0], labels[2], labels[4]}) == 3

    def test_largest_component(self):
        g = CSRGraph.from_edges(6, np.array([[0, 1], [1, 2], [3, 4]]))
        big, ids = g.largest_component()
        assert big.num_vertices == 3
        assert ids.tolist() == [0, 1, 2]

    def test_is_connected(self):
        assert grid2d(3, 7).graph.is_connected()
        assert not CSRGraph.empty(2).is_connected()

    def test_to_networkx_roundtrip(self):
        pytest.importorskip("networkx")
        g = complete_graph(5).graph
        g2 = CSRGraph.from_networkx(g.to_networkx())
        assert g == g2

    def test_equality(self):
        assert triangle() == triangle()
        assert triangle() != path_graph(3).graph
