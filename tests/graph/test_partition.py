"""Unit tests for Bisection and cut metrics."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import Bisection, CSRGraph, cut_size, cut_weight, imbalance
from repro.graph.generators import grid2d, path_graph


def half_grid_bisection(nx=8, ny=8):
    g = grid2d(nx, ny).graph
    side = (np.arange(nx * ny) % nx >= nx // 2).astype(np.int8)
    return Bisection(g, side), nx, ny


class TestBisection:
    def test_vertical_grid_cut(self):
        b, nx, ny = half_grid_bisection()
        # vertical split of an nx x ny grid cuts exactly ny edges
        assert b.cut_size == ny
        assert b.part_sizes == (nx * ny // 2, nx * ny // 2)
        assert b.imbalance == pytest.approx(0.0)

    def test_from_part0(self):
        g = path_graph(4).graph
        b = Bisection.from_part0(g, np.array([0, 1]))
        assert b.side.tolist() == [0, 0, 1, 1]
        assert b.cut_size == 1

    def test_flipped_invariant(self):
        b, _, _ = half_grid_bisection()
        f = b.flipped()
        assert f.cut_size == b.cut_size
        assert f.imbalance == pytest.approx(b.imbalance)
        assert (f.side + b.side == 1).all()

    def test_side_immutable(self):
        b, _, _ = half_grid_bisection()
        with pytest.raises(ValueError):
            b.side[0] = 1

    def test_rejects_bad_labels(self):
        g = path_graph(3).graph
        with pytest.raises(PartitionError):
            Bisection(g, np.array([0, 1, 2]))
        with pytest.raises(PartitionError):
            Bisection(g, np.array([0, 1]))

    def test_bool_labels_accepted(self):
        g = path_graph(4).graph
        b = Bisection(g, np.array([False, False, True, True]))
        assert b.cut_size == 1

    def test_separator_edges_orientation(self):
        b, _, _ = half_grid_bisection()
        sep = b.separator_edges()
        assert sep.shape[0] == b.cut_size
        assert (b.side[sep[:, 0]] == 0).all()
        assert (b.side[sep[:, 1]] == 1).all()

    def test_boundary_vertices(self):
        g = path_graph(6).graph
        b = Bisection(g, np.array([0, 0, 0, 1, 1, 1]))
        assert b.boundary_vertices().tolist() == [2, 3]

    def test_external_internal_degrees_sum_to_degree(self):
        b, _, _ = half_grid_bisection()
        total = b.external_degrees() + b.internal_degrees()
        assert np.allclose(total, b.graph.weighted_degrees())

    def test_external_degree_counts_cut(self):
        b, _, _ = half_grid_bisection()
        assert b.external_degrees().sum() == pytest.approx(2 * b.cut_size)

    def test_validate_empty_side(self):
        g = path_graph(4).graph
        b = Bisection(g, np.zeros(4, dtype=np.int8))
        with pytest.raises(PartitionError):
            b.validate()

    def test_validate_imbalance_threshold(self):
        g = path_graph(10).graph
        b = Bisection(g, (np.arange(10) >= 8).astype(np.int8))
        with pytest.raises(PartitionError):
            b.validate(max_imbalance=0.05)
        b.validate(max_imbalance=0.7)

    def test_part_weights_with_vertex_weights(self):
        g = CSRGraph.from_edges(
            3, np.array([[0, 1], [1, 2]]), vwgt=np.array([1.0, 2.0, 5.0])
        )
        b = Bisection(g, np.array([0, 0, 1]))
        assert b.part_weights == (3.0, 5.0)


class TestFreeFunctions:
    def test_cut_size_matches_bruteforce(self, rng):
        g = grid2d(6, 7).graph
        side = rng.integers(0, 2, g.num_vertices).astype(np.int8)
        brute = sum(
            1 for u, v, _ in g.iter_edges() if side[u] != side[v]
        )
        assert cut_size(g, side) == brute

    def test_cut_weight_weighted(self):
        g = CSRGraph.from_edges(
            3, np.array([[0, 1], [1, 2]]), np.array([3.0, 4.0])
        )
        assert cut_weight(g, np.array([0, 1, 1])) == pytest.approx(3.0)

    def test_imbalance_extremes(self):
        g = path_graph(4).graph
        assert imbalance(g, np.array([0, 0, 1, 1])) == pytest.approx(0.0)
        assert imbalance(g, np.array([0, 0, 0, 0])) == pytest.approx(1.0)

    def test_imbalance_empty_graph(self):
        g = CSRGraph.empty(0)
        assert imbalance(g, np.zeros(0)) == 0.0
