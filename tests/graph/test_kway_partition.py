"""Tests for the k-way partition core type and its free-function metrics.

``KWayPartition`` is the k-way sibling of ``Bisection``: an immutable
labelling in ``[0, k)`` with cut/balance/boundary metrics.  Balance is
*cost-model aware* — measured against an attached per-vertex cost array
when present, ``graph.vwgt`` otherwise — which the skewed-weight
regression tests below pin down.
"""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid2d, path_graph, random_delaunay
from repro.graph.partition import (
    Bisection,
    KWayPartition,
    kway_cut,
    kway_cut_weight,
    kway_imbalance,
    part_costs,
)


@pytest.fixture(scope="module")
def grid():
    return grid2d(8, 8).graph


def _quarters(n, k=4):
    return np.repeat(np.arange(k), n // k)


class TestConstruction:
    def test_basic_properties(self, grid):
        parts = _quarters(grid.num_vertices)
        kp = KWayPartition(grid, parts, 4)
        assert kp.k == 4
        assert kp.parts.dtype == np.int64
        assert not kp.parts.flags.writeable
        assert np.array_equal(kp.part_sizes, [16, 16, 16, 16])
        kp.validate(max_imbalance=0.0)

    def test_out_of_range_labels_rejected(self, grid):
        parts = np.zeros(grid.num_vertices, dtype=np.int64)
        parts[0] = 4
        with pytest.raises(PartitionError):
            KWayPartition(grid, parts, 4)
        parts[0] = -1
        with pytest.raises(PartitionError):
            KWayPartition(grid, parts, 4)

    def test_wrong_length_rejected(self, grid):
        with pytest.raises(PartitionError):
            KWayPartition(grid, np.zeros(3, dtype=np.int64), 2)

    def test_empty_part_fails_validate(self, grid):
        parts = np.zeros(grid.num_vertices, dtype=np.int64)
        kp = KWayPartition(grid, parts, 2)
        with pytest.raises(PartitionError):
            kp.validate()

    def test_from_to_bisection_roundtrip(self, grid):
        side = (np.arange(grid.num_vertices) % 2).astype(np.int8)
        b = Bisection(grid, side)
        kp = KWayPartition.from_bisection(b)
        assert kp.k == 2
        assert kp.cut_weight == b.cut_weight
        back = kp.to_bisection()
        assert np.array_equal(back.side, side)

    def test_to_bisection_rejects_large_k(self, grid):
        kp = KWayPartition(grid, _quarters(grid.num_vertices), 4)
        with pytest.raises(PartitionError):
            kp.to_bisection()

    def test_with_parts_preserves_costs(self, grid):
        costs = np.linspace(1, 2, grid.num_vertices)
        kp = KWayPartition(grid, _quarters(grid.num_vertices), 4, costs=costs)
        moved = kp.parts.copy()
        moved[0] = 1
        kp2 = kp.with_parts(moved)
        assert kp2.costs is not None
        assert np.array_equal(kp2.balance_costs, costs)


class TestMetrics:
    def test_cut_matches_bisection_on_two_parts(self):
        mesh = random_delaunay(150, seed=1)
        g = mesh.graph
        side = (np.arange(g.num_vertices) < g.num_vertices // 2)
        b = Bisection(g, side.astype(np.int8))
        kp = KWayPartition(g, side.astype(np.int64), 2)
        assert kp.cut_size == b.cut_size
        assert kp.cut_weight == b.cut_weight

    def test_path_cut_counts_crossings(self):
        g = path_graph(8).graph
        parts = np.array([0, 0, 1, 1, 2, 2, 3, 3], dtype=np.int64)
        kp = KWayPartition(g, parts, 4)
        assert kp.cut_size == 3
        boundary, conn = kp.boundary_connectivity()
        assert set(boundary) == {1, 2, 3, 4, 5, 6}

    def test_boundary_vertices(self, grid):
        kp = KWayPartition(grid, _quarters(grid.num_vertices), 4)
        bd = kp.boundary_vertices()
        assert 0 < bd.size < grid.num_vertices


class TestImbalanceUsesVertexWeights:
    """Regression: k-way imbalance must weight vertices by ``vwgt``
    (or the attached costs), never by raw counts."""

    def _skewed(self):
        # path of 8, one end vertex carries almost all the weight
        g0 = path_graph(8).graph
        vwgt = np.ones(8)
        vwgt[0] = 100.0
        return CSRGraph(g0.indptr, g0.indices, g0.ewgt, vwgt)

    def test_count_balanced_but_weight_skewed(self):
        g = self._skewed()
        parts = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int64)
        # 4 vertices per side, but side 0 holds 103/107 of the weight
        imb = kway_imbalance(g, parts, 2)
        assert imb == pytest.approx(103.0 / (107.0 / 2) - 1.0)
        assert imb > 0.9

    def test_weight_balanced_but_count_skewed(self):
        g = self._skewed()
        parts = np.array([0, 1, 1, 1, 1, 1, 1, 1], dtype=np.int64)
        # 1-vs-7 vertices, yet weights are 100 vs 7
        imb = kway_imbalance(g, parts, 2)
        assert imb == pytest.approx(100.0 / (107.0 / 2) - 1.0)

    def test_explicit_costs_override_vwgt(self):
        g = self._skewed()
        parts = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int64)
        # unit costs: the same split is perfectly balanced
        assert kway_imbalance(g, parts, 2, costs=np.ones(8)) == 0.0

    def test_partition_type_agrees_with_free_function(self):
        g = self._skewed()
        parts = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int64)
        kp = KWayPartition(g, parts, 2)
        assert kp.imbalance == pytest.approx(kway_imbalance(g, parts, 2))
        assert np.array_equal(kp.part_costs, part_costs(g, parts, 2))


class TestFreeFunctions:
    def test_cut_weight_consistent(self):
        mesh = random_delaunay(120, seed=4)
        g = mesh.graph
        parts = (np.arange(g.num_vertices) % 3).astype(np.int64)
        assert kway_cut(g, parts) >= 0
        assert kway_cut_weight(g, parts) >= float(kway_cut(g, parts)) * 0.0
        kp = KWayPartition(g, parts, 3)
        assert kp.cut_size == kway_cut(g, parts)
        assert kp.cut_weight == kway_cut_weight(g, parts)

    def test_single_part_zero_cut(self, grid):
        parts = np.zeros(grid.num_vertices, dtype=np.int64)
        assert kway_cut(grid, parts) == 0
        assert kway_imbalance(grid, parts, 1) == 0.0
