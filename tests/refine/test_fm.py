"""Unit and property tests for FM refinement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.graph import Bisection, CSRGraph
from repro.graph.generators import grid2d
from repro.refine import fm_refine


def noisy_grid_bisection(nx=16, ny=16, flip=20, seed=0):
    """Vertical grid split with some vertices flipped to the wrong side."""
    g = grid2d(nx, ny).graph
    side = (np.arange(nx * ny) % nx >= nx // 2).astype(np.int8)
    rng = np.random.default_rng(seed)
    idx = rng.choice(nx * ny, size=flip, replace=False)
    side[idx] = 1 - side[idx]
    return Bisection(g, side)


class TestFMRefine:
    def test_repairs_noisy_grid_cut(self):
        b = noisy_grid_bisection()
        res = fm_refine(b, max_imbalance=0.05)
        assert res.final_cut <= res.initial_cut
        # the clean vertical cut costs ny=16; FM should get close
        assert res.final_cut <= 24

    def test_never_worsens_cut(self):
        for seed in range(5):
            b = noisy_grid_bisection(seed=seed)
            res = fm_refine(b)
            assert res.final_cut <= res.initial_cut + 1e-9

    def test_respects_balance(self):
        b = noisy_grid_bisection()
        res = fm_refine(b, max_imbalance=0.05)
        assert res.bisection.imbalance <= 0.05 + 1e-9

    def test_perfect_cut_untouched(self):
        g = grid2d(8, 8).graph
        side = (np.arange(64) % 8 >= 4).astype(np.int8)
        b = Bisection(g, side)
        res = fm_refine(b)
        assert res.final_cut == res.initial_cut == 8

    def test_unbalanced_input_gets_rebalanced_toward_limit(self):
        g = grid2d(10, 10).graph
        side = np.zeros(100, dtype=np.int8)
        side[:10] = 1  # 90/10 split
        res = fm_refine(Bisection(g, side), max_imbalance=0.05, max_passes=12)
        assert res.bisection.imbalance < Bisection(g, side).imbalance

    def test_movable_mask_respected(self):
        b = noisy_grid_bisection()
        frozen = np.zeros(b.graph.num_vertices, dtype=bool)  # nothing movable
        res = fm_refine(b, movable=frozen)
        assert np.array_equal(res.bisection.side, b.side)

    def test_movable_mask_wrong_shape(self):
        b = noisy_grid_bisection()
        with pytest.raises(PartitionError):
            fm_refine(b, movable=np.zeros(3, dtype=bool))

    def test_negative_imbalance_rejected(self):
        b = noisy_grid_bisection()
        with pytest.raises(PartitionError):
            fm_refine(b, max_imbalance=-0.1)

    def test_result_fields_consistent(self):
        b = noisy_grid_bisection()
        res = fm_refine(b)
        assert res.initial_cut == b.cut_weight
        assert res.final_cut == res.bisection.cut_weight
        assert res.improvement == res.initial_cut - res.final_cut
        assert res.passes >= 1

    def test_weighted_edges(self):
        # heavy edge must not be cut when a light alternative exists
        g = CSRGraph.from_edges(
            4,
            np.array([[0, 1], [1, 2], [2, 3]]),
            np.array([1.0, 100.0, 1.0]),
        )
        b = Bisection(g, np.array([0, 1, 0, 1]))  # cuts all three edges
        res = fm_refine(b, max_imbalance=0.5)
        assert res.final_cut <= 2.0

    def test_single_vertex_graph(self):
        g = CSRGraph.empty(1)
        b = Bisection(g, np.array([0]))
        res = fm_refine(b)
        assert res.final_cut == 0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31), n=st.integers(20, 150))
def test_fm_invariants_on_random_graphs(seed, n):
    """FM never worsens the cut, keeps labels binary and preserves the
    vertex set on arbitrary random graphs and random starting sides."""
    rng = np.random.default_rng(seed)
    g = CSRGraph.from_edges(n, rng.integers(0, n, size=(3 * n, 2)))
    side = rng.integers(0, 2, n).astype(np.int8)
    if side.sum() in (0, n):
        side[0] = 1 - side[0]
    b = Bisection(g, side)
    res = fm_refine(b, max_imbalance=0.2)
    if b.imbalance <= 0.2:
        # feasible input: the cut never worsens
        assert res.final_cut <= res.initial_cut + 1e-9
    else:
        # infeasible input: FM may trade cut for balance, never worsen both
        assert (
            res.bisection.imbalance < b.imbalance - 1e-12
            or res.final_cut <= res.initial_cut + 1e-9
        )
    assert set(np.unique(res.bisection.side)) <= {0, 1}
    assert res.bisection.graph is g
