"""Tests for the greedy + pairwise-FM k-way refinement."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph.generators import grid2d, random_delaunay
from repro.graph.partition import KWayPartition, kway_imbalance
from repro.refine.kway import kway_refine
from repro.rng import as_generator


def _noisy_quarters(g, k, seed, flip=0.15):
    """A roughly balanced k-way labelling with a jagged boundary."""
    n = g.num_vertices
    parts = (np.arange(n) * k // n).astype(np.int64)
    rng = as_generator(seed)
    flips = rng.random(n) < flip
    parts[flips] = rng.integers(0, k, size=int(flips.sum()))
    return parts


class TestGreedyRefinement:
    def test_reduces_cut_and_respects_balance(self):
        g = grid2d(16, 16).graph
        parts = _noisy_quarters(g, 4, seed=1)
        kp = KWayPartition(g, parts, 4)
        res = kway_refine(kp, max_imbalance=0.05)
        assert res.final_cut <= res.initial_cut
        assert res.improvement > 0
        res.partition.validate(max_imbalance=0.05)

    def test_already_perfect_is_stable(self):
        # contiguous halves of a grid: refinement must not degrade them
        g = grid2d(10, 10).graph
        parts = (np.arange(g.num_vertices) >= 50).astype(np.int64)
        res = kway_refine(KWayPartition(g, parts, 2), max_imbalance=0.05)
        assert res.final_cut <= res.initial_cut

    def test_deterministic(self):
        mesh = random_delaunay(300, seed=3)
        parts = _noisy_quarters(mesh.graph, 6, seed=4)
        a = kway_refine(KWayPartition(mesh.graph, parts, 6))
        b = kway_refine(KWayPartition(mesh.graph, parts, 6))
        assert np.array_equal(a.partition.parts, b.partition.parts)
        assert a.moves == b.moves

    def test_rebalances_overloaded_input(self):
        g = grid2d(12, 12).graph
        # grossly unbalanced: 90% of vertices in part 0
        parts = np.zeros(g.num_vertices, dtype=np.int64)
        parts[-14:] = 1
        kp = KWayPartition(g, parts, 2)
        res = kway_refine(kp, max_imbalance=0.10)
        after = kway_imbalance(g, res.partition.parts, 2)
        assert after < kp.imbalance

    def test_zero_passes_is_identity(self):
        g = grid2d(8, 8).graph
        parts = _noisy_quarters(g, 4, seed=5)
        res = kway_refine(KWayPartition(g, parts, 4), max_passes=0,
                          pairwise_rounds=0)
        assert np.array_equal(res.partition.parts, parts)
        assert res.moves == 0

    def test_bad_args_rejected(self):
        g = grid2d(4, 4).graph
        kp = KWayPartition(g, np.zeros(16, dtype=np.int64), 1)
        with pytest.raises(PartitionError):
            kway_refine(kp, max_imbalance=-0.1)
        with pytest.raises(PartitionError):
            kway_refine(kp, max_passes=-1)
        with pytest.raises(PartitionError):
            kway_refine(kp, pairwise_rounds=-1)


class TestCostModelBalance:
    def test_costs_bound_the_result(self):
        mesh = random_delaunay(250, seed=6)
        g = mesh.graph
        rng = as_generator(7)
        costs = 1.0 + 4.0 * rng.random(g.num_vertices)
        parts = _noisy_quarters(g, 4, seed=8)
        kp = KWayPartition(g, parts, 4, costs=costs)
        res = kway_refine(kp, max_imbalance=0.10)
        assert kway_imbalance(g, res.partition.parts, 4, costs=costs) <= \
            max(0.10, kp.imbalance)


class TestPairwiseFM:
    def test_pairwise_beats_greedy_alone(self):
        """The FM phase escapes local minima the single-move greedy
        sweep stalls in (the reason it exists)."""
        g = grid2d(24, 24).graph
        parts = _noisy_quarters(g, 4, seed=9, flip=0.3)
        kp = KWayPartition(g, parts, 4)
        greedy = kway_refine(kp, pairwise_rounds=0)
        both = kway_refine(kp, pairwise_rounds=3)
        assert both.final_cut <= greedy.final_cut
        both.partition.validate(max_imbalance=0.05)

    def test_pairwise_never_raises_global_cut(self):
        mesh = random_delaunay(300, seed=10)
        parts = _noisy_quarters(mesh.graph, 5, seed=11)
        kp = KWayPartition(mesh.graph, parts, 5)
        greedy = kway_refine(kp, pairwise_rounds=0)
        both = kway_refine(kp, pairwise_rounds=2)
        assert both.final_cut <= greedy.final_cut
