"""Tests for KL refinement and strip extraction/refinement."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import Bisection
from repro.graph.generators import grid2d, random_delaunay
from repro.refine import kl_refine, strip_mask, strip_refine

from .test_fm import noisy_grid_bisection


class TestKL:
    def test_improves_noisy_cut(self):
        b = noisy_grid_bisection(flip=10)
        res = kl_refine(b)
        assert res.final_cut <= res.initial_cut

    def test_preserves_part_sizes(self):
        b = noisy_grid_bisection(flip=10)
        res = kl_refine(b)
        # swaps keep sizes identical for unit weights
        assert res.bisection.part_sizes == b.part_sizes

    def test_no_improvement_on_optimal(self):
        g = grid2d(6, 6).graph
        side = (np.arange(36) % 6 >= 3).astype(np.int8)
        res = kl_refine(Bisection(g, side))
        assert res.final_cut == 6

    def test_result_counts(self):
        b = noisy_grid_bisection(flip=16)
        res = kl_refine(b)
        assert res.passes >= 1
        assert res.swaps >= 0


class TestStrip:
    def geometric_bisection(self, n=800, seed=3):
        g, pts = random_delaunay(n, seed=seed)
        sdist = pts[:, 0] - np.median(pts[:, 0])
        side = (sdist > 0).astype(np.int8)
        return Bisection(g, side), sdist

    def test_strip_mask_size(self):
        b, sdist = self.geometric_bisection()
        mask = strip_mask(sdist, b, factor=4.0)
        sep = b.boundary_vertices().shape[0]
        assert mask.sum() >= min(4 * sep, b.graph.num_vertices)
        # strip is a small fraction of the graph
        assert mask.sum() < 0.6 * b.graph.num_vertices

    def test_strip_contains_boundary(self):
        b, sdist = self.geometric_bisection()
        mask = strip_mask(sdist, b, factor=2.0)
        assert mask[b.boundary_vertices()].all()

    def test_strip_mask_validation(self):
        b, sdist = self.geometric_bisection()
        with pytest.raises(PartitionError):
            strip_mask(sdist[:-1], b)
        with pytest.raises(PartitionError):
            strip_mask(sdist, b, factor=0)

    def test_strip_refine_improves(self):
        b, sdist = self.geometric_bisection()
        res = strip_refine(b, sdist, factor=6.0)
        assert res.final_cut <= res.initial_cut
        assert res.strip_size >= res.separator_vertices

    def test_strip_factor_reported(self):
        b, sdist = self.geometric_bisection()
        res = strip_refine(b, sdist, factor=5.0)
        assert res.strip_factor >= 1.0

    def test_only_strip_vertices_move(self):
        b, sdist = self.geometric_bisection()
        mask = strip_mask(sdist, b, factor=6.0)
        res = strip_refine(b, sdist, factor=6.0)
        changed = res.bisection.side != b.side
        assert not changed[~mask].any()
