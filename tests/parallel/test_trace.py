"""Unit tests for trace data structures and the JSONL trace format."""

import io
import json

import numpy as np
import pytest

from repro.parallel import ZERO_COST, run_spmd
from repro.parallel.trace import (
    CommStats,
    GLOBAL_COLLECTIVES,
    PhaseBreakdown,
    SpmdResult,
    read_trace_jsonl,
    trace_records,
    write_trace_jsonl,
)


class TestPhaseBreakdown:
    def test_elapsed_is_critical_path(self):
        ph = PhaseBreakdown(np.array([1.0, 3.0]), np.array([2.0, 1.0]))
        assert ph.elapsed == 4.0
        assert ph.comp_elapsed == 3.0
        assert ph.comm_elapsed == 2.0

    def test_comm_fraction_of_critical_rank(self):
        ph = PhaseBreakdown(np.array([1.0, 3.0]), np.array([2.0, 1.0]))
        # rank 1 is critical (3 + 1): fraction is its comm share
        assert ph.comm_fraction == pytest.approx(0.25)

    def test_empty_and_zero(self):
        z = PhaseBreakdown.zeros(3)
        assert z.elapsed == 0.0
        assert z.comm_fraction == 0.0

    def test_merged_sums_elementwise(self):
        a = PhaseBreakdown(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        b = PhaseBreakdown(np.array([2.0, 2.0]), np.array([1.0, 0.0]))
        m = PhaseBreakdown.merged([a, b], 2)
        np.testing.assert_array_equal(m.comp, [3.0, 2.0])
        np.testing.assert_array_equal(m.comm, [1.0, 1.0])


def _stats(nranks=2, **kw):
    s = CommStats.zeros(nranks)
    for k, v in kw.items():
        setattr(s, k, v)
    return s


class TestCommStats:
    def test_add_accumulates_all_counters(self):
        a = CommStats.zeros(2)
        a.sends[:] = [1, 0]
        a.words_sent[:] = [10, 0]
        a._coll_array("allreduce")[:] = [1, 1]
        a.collective_ops["allreduce"] = 1
        b = CommStats.zeros(2)
        b.sends[:] = [0, 2]
        b._coll_array("allreduce")[:] = [1, 1]
        b._coll_array("bcast")[:] = [1, 0]
        b.collective_ops["allreduce"] = 1
        b.collective_ops["bcast"] = 1
        a.add(b)
        np.testing.assert_array_equal(a.sends, [1, 2])
        np.testing.assert_array_equal(a.collectives["allreduce"], [2, 2])
        np.testing.assert_array_equal(a.collectives["bcast"], [1, 0])
        assert a.collective_ops == {"allreduce": 2, "bcast": 1}

    def test_aggregate_attaches_phases(self):
        pa, pb = CommStats.zeros(2), CommStats.zeros(2)
        pa.sends[:] = [1, 1]
        pb.sends[:] = [2, 0]
        run = CommStats.aggregate({"a": pa, "b": pb}, 2)
        np.testing.assert_array_equal(run.sends, [3, 1])
        assert set(run.phases) == {"a", "b"}

    def test_phase_prefix_aggregation(self):
        child1, child2, other = (CommStats.zeros(1) for _ in range(3))
        child1.collective_ops["allreduce"] = 2
        child2.collective_ops["allreduce"] = 3
        other.collective_ops["allreduce"] = 10
        run = CommStats.aggregate(
            {"embed/refresh": child1, "embed/halo": child2, "coarsen": other}, 1
        )
        assert run.phase("embed").collective_ops["allreduce"] == 5
        assert run.phase("coarsen").collective_ops["allreduce"] == 10
        assert run.phase("nothing").collective_ops == {}

    def test_collective_invocations_default_excludes_exchange(self):
        s = CommStats.zeros(1)
        s.collective_ops = {"allreduce": 3, "exchange": 7, "barrier": 2,
                            "split": 1}
        assert s.collective_invocations() == 3
        assert s.collective_invocations(["exchange", "barrier"]) == 9
        assert "exchange" not in GLOBAL_COLLECTIVES

    def test_dict_roundtrip(self):
        s = CommStats.zeros(3)
        s.sends[:] = [1, 2, 3]
        s.words_received[:] = [0.5, 0, 0]
        s._coll_array("gather")[:] = [1, 0, 1]
        s.collective_ops["gather"] = 1
        s.wait_time[:] = [0, 0.25, 0]
        back = CommStats.from_dict(json.loads(json.dumps(s.to_dict())))
        assert back.nranks == 3
        np.testing.assert_array_equal(back.sends, s.sends)
        np.testing.assert_array_equal(back.collectives["gather"],
                                      s.collectives["gather"])
        assert back.collective_ops == s.collective_ops
        np.testing.assert_array_equal(back.wait_time, s.wait_time)

    def test_summary_mentions_counts(self):
        s = CommStats.zeros(2)
        s.sends[:] = [2, 1]
        s.collective_ops["allreduce"] = 4
        text = s.summary()
        assert "msgs=3" in text
        assert "allreduce=4" in text


class TestSpmdResultHierarchy:
    def _result(self):
        phases = {
            "embed/a": PhaseBreakdown(np.array([1.0]), np.array([1.0])),
            "embed/b": PhaseBreakdown(np.array([2.0]), np.array([0.0])),
            "part": PhaseBreakdown(np.array([1.0]), np.array([3.0])),
        }
        return SpmdResult(
            values=[None],
            clocks=np.array([8.0]),
            comp_time=np.array([4.0]),
            comm_time=np.array([4.0]),
            phases=phases,
        )

    def test_phase_aggregates_children(self):
        res = self._result()
        assert res.phase("embed").elapsed == pytest.approx(4.0)
        assert res.phase_elapsed("embed/a") == pytest.approx(2.0)
        assert res.phase("missing").elapsed == 0.0

    def test_phase_roots(self):
        assert self._result().phase_roots() == ["embed", "part"]

    def test_phase_comm_stats_without_ledger_is_zero(self):
        res = self._result()
        assert res.comm_stats is None
        cs = res.phase_comm_stats("embed")
        assert cs.total_messages == 0


class TestJsonlTrace:
    def _run(self):
        def prog(comm):
            comm.set_phase("work")
            yield from comm.allreduce(comm.rank)
            comm.set_phase("finish")
            if comm.rank == 0:
                yield from comm.send(np.zeros(5), dest=1)
            elif comm.rank == 1:
                yield from comm.recv(source=0)

        return run_spmd(prog, 2, machine=ZERO_COST)

    def test_records_structure(self):
        res = self._run()
        recs = list(trace_records(res))
        assert recs[0]["record"] == "run"
        assert recs[0]["nranks"] == 2
        assert recs[0]["comm"]["collective_ops"] == {"allreduce": 1}
        names = [r["phase"] for r in recs[1:]]
        assert names == sorted(names)
        by_name = {r["phase"]: r for r in recs[1:]}
        assert by_name["finish"]["comm_stats"]["sends"] == [1, 0]
        assert by_name["finish"]["comm_stats"]["words_sent"] == [5, 0]

    def test_file_roundtrip(self, tmp_path):
        res = self._run()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(res, str(path))
        back = read_trace_jsonl(str(path))
        assert back == list(trace_records(res))
        rebuilt = CommStats.from_dict(back[0]["comm"])
        assert rebuilt.collective_ops == res.comm_stats.collective_ops

    def test_stream_roundtrip(self):
        res = self._run()
        buf = io.StringIO()
        write_trace_jsonl(res, buf)
        buf.seek(0)
        assert read_trace_jsonl(buf) == list(trace_records(res))
