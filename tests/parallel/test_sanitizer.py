"""Tests for the dynamic sanitizer (``run_spmd(..., sanitize=True)``)."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import Sanitizer, payload_checksum
from repro.errors import CommError, CommWarning
from repro.graph.distributed import Shared
from repro.parallel import ZERO_COST, run_spmd


def run0(fn, p, *args, **kw):
    return run_spmd(fn, p, *args, machine=ZERO_COST, **kw).values


# ----------------------------------------------------------------------
# payload checksums
# ----------------------------------------------------------------------

class TestPayloadChecksum:
    def test_array_bytes_and_shape_matter(self):
        a = np.arange(6, dtype=float)
        c0 = payload_checksum(a)
        assert payload_checksum(a.copy()) == c0
        assert payload_checksum(a.reshape(2, 3)) != c0
        b = a.copy()
        b[0] = -1.0
        assert payload_checksum(b) != c0

    def test_dtype_matters(self):
        a = np.zeros(4, dtype=np.float64)
        b = np.zeros(4, dtype=np.float32)
        assert payload_checksum(a) != payload_checksum(b)

    def test_containers(self):
        assert payload_checksum([1, 2]) != payload_checksum([2, 1])
        assert payload_checksum((1, 2)) != payload_checksum([1, 2])
        assert payload_checksum({"a": 1}) != payload_checksum({"a": 2})

    def test_set_checksum_is_order_insensitive(self):
        # two sets with identical elements but different construction
        # order must hash equal (set iteration order is arbitrary)
        s1 = {f"k{i}" for i in range(100)}
        s2 = {f"k{i}" for i in reversed(range(100))}
        assert payload_checksum(s1) == payload_checksum(s2)

    def test_shared_wrapper_contents_are_hashed(self):
        arr = np.arange(4, dtype=float)
        sh = Shared(arr)
        c0 = payload_checksum(sh)
        arr[0] = 99.0
        assert payload_checksum(sh) != c0

    def test_cycle_safe(self):
        d = {}
        d["self"] = d
        payload_checksum(d)  # must terminate

    def test_none_and_scalars(self):
        assert payload_checksum(None) != payload_checksum(0)
        assert payload_checksum(1) != payload_checksum(1.5)


# ----------------------------------------------------------------------
# sender-mutation detection
# ----------------------------------------------------------------------

def _mutating_sender(comm):
    """Seeded bug: rank 0 mutates its send buffer before delivery."""
    if comm.rank == 0:
        buf = np.arange(4, dtype=float)
        yield from comm.send(buf, dest=1, tag=3)
        buf[0] = -1.0  # repro: lint-ok[SP104] deliberate bug under test
        yield from comm.barrier()  # repro: lint-ok[SP102] both arms barrier
        return None
    yield from comm.barrier()
    got = yield from comm.recv(source=0, tag=3)
    return float(got[0])


class TestSendMutation:
    def test_readonly_mutation_raises_clear_commerror(self):
        with pytest.raises(CommError) as exc:
            run0(_mutating_sender, 2, sanitize=True)
        msg = str(exc.value)
        assert "rank 0" in msg and "rank 1" in msg
        assert "mutated" in msg and "copy" in msg

    def test_without_sanitize_the_bug_goes_unnoticed(self, monkeypatch):
        # under readonly the receiver aliases the mutated memory —
        # exactly the silent corruption the sanitizer exists to catch
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        vals = run0(_mutating_sender, 2)
        assert vals[1] == -1.0

    def test_defensive_mode_passes_sanitize(self):
        # defensive copies at post time: mutation after post is legal
        vals = run0(_mutating_sender, 2, copy_mode="defensive",
                    sanitize=True)
        assert vals[1] == 0.0

    def test_clean_program_unaffected(self):
        def prog(comm):
            x = np.full(3, comm.rank, dtype=float)
            total = yield from comm.allreduce(x)
            return float(total.sum())

        assert run0(prog, 4, sanitize=True) == [18.0] * 4


class TestCollectiveMutation:
    def test_aliased_collective_payload_mutation_raises(self):
        shared = np.arange(8, dtype=float)

        def prog(comm):
            if comm.rank == 0:
                # both arms allreduce exactly once: schedules agree
                total = yield from comm.allreduce(shared)  # repro: lint-ok[SP102]
            else:
                shared[0] = -1.0  # mutates rank 0's posted payload
                total = yield from comm.allreduce(np.zeros(8))  # repro: lint-ok[SP102]
            return total

        with pytest.raises(CommError, match="allreduce payload mutated"):
            run0(prog, 2, sanitize=True)


# ----------------------------------------------------------------------
# collective-schedule checking
# ----------------------------------------------------------------------

class TestCollectiveLedger:
    def test_mismatch_error_names_both_ranks_and_ops(self):
        def prog(comm):
            yield from comm.barrier()
            if comm.rank == 0:
                yield from comm.allreduce(1)  # repro: lint-ok[SP102] bug under test
            else:
                yield from comm.allgather(1)  # repro: lint-ok[SP102]

        with pytest.raises(CommError) as exc:
            run0(prog, 2, sanitize=True)
        msg = str(exc.value)
        assert "rank 0:allreduce" in msg and "rank 1:allgather" in msg
        # sanitize mode appends each rank's recent collective history
        assert "recent collectives" in msg
        assert "barrier" in msg

    def test_sequence_mismatch_names_ranks_and_ops(self):
        san = Sanitizer(2)
        san.record_collective(0, 0, "allreduce", None)
        san.record_collective(1, 0, "bcast", 0)
        groups = {0: SimpleNamespace(members=[0, 1])}
        msg = san.sequence_mismatch(groups)
        assert "rank 0" in msg and "allreduce" in msg
        assert "rank 1" in msg and "bcast" in msg

    def test_sequence_match_returns_none(self):
        san = Sanitizer(2)
        for g in (0, 1):
            san.record_collective(g, 0, "barrier", None)
            san.record_collective(g, 0, "allreduce", None)
        assert san.sequence_mismatch(
            {0: SimpleNamespace(members=[0, 1])}) is None

    def test_sequence_length_mismatch_reported(self):
        san = Sanitizer(2)
        san.record_collective(0, 0, "barrier", None)
        msg = san.sequence_mismatch({0: SimpleNamespace(members=[0, 1])})
        assert "barrier" in msg and "<nothing>" in msg


# ----------------------------------------------------------------------
# undriven generators and undelivered messages
# ----------------------------------------------------------------------

class TestUndriven:
    def test_undriven_generator_raises_under_sanitize(self):
        def prog(comm):
            yield from comm.barrier()
            comm.barrier()  # repro: lint-ok[SP101] deliberate bug under test
            return comm.rank

        with pytest.raises(CommError, match="never drove.*barrier"):
            run0(prog, 2, sanitize=True)

    def test_undriven_silent_without_sanitize(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)

        def prog(comm):
            yield from comm.barrier()
            comm.barrier()  # repro: lint-ok[SP101]
            return comm.rank

        assert run0(prog, 2) == [0, 1]


def _orphan_sender(comm):
    if comm.rank == 0:
        yield from comm.send(1.0, dest=1, tag=9)
    return comm.rank


class TestUndelivered:
    def test_warns_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        with pytest.warns(CommWarning, match="undelivered.*tag=9"):
            vals = run0(_orphan_sender, 2)
        assert vals == [0, 1]

    def test_raises_under_sanitize(self):
        with pytest.raises(CommError, match="undelivered"):
            run0(_orphan_sender, 2, sanitize=True)

    def test_no_warning_when_all_delivered(self):
        import warnings

        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(1.0, dest=1, tag=9)
                return None
            return (yield from comm.recv(source=0, tag=9))

        with warnings.catch_warnings():
            warnings.simplefilter("error", CommWarning)
            assert run0(prog, 2)[1] == 1.0


# ----------------------------------------------------------------------
# activation and parity
# ----------------------------------------------------------------------

class TestActivation:
    def test_env_var_enables_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        with pytest.raises(CommError, match="sanitizer"):
            run0(_mutating_sender, 2)

    def test_env_var_off_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        vals = run0(_mutating_sender, 2)
        assert vals[1] == -1.0

    def test_explicit_false_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        vals = run0(_mutating_sender, 2, sanitize=False)
        assert vals[1] == -1.0

    def test_sanitize_parity_on_clean_program(self):
        def prog(comm):
            rng = comm.rng
            local = rng.random(16)
            total = yield from comm.allreduce(local.sum())
            parts = yield from comm.allgather(comm.rank * 2)
            yield from comm.barrier()
            return (round(float(total), 12), parts)

        plain = run0(prog, 4, seed=7)
        sanitized = run0(prog, 4, seed=7, sanitize=True)
        assert plain == sanitized
