"""Unit tests for the Hockney cost model and simulated clocks."""


import numpy as np
import pytest

from repro.errors import ConfigError
from repro.parallel import MachineModel, QDR_CLUSTER, ZERO_COST, run_spmd


class TestMachineModel:
    def test_defaults_positive(self):
        m = QDR_CLUSTER
        assert m.alpha > 0 and m.t_s > 0 and m.t_w > 0
        assert m.t_s > m.t_w  # latency dominates per-word cost

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            MachineModel(alpha=-1)

    def test_compute_cost_linear(self):
        m = MachineModel(alpha=2.0, t_s=0, t_w=0)
        assert m.compute_cost(10) == 20.0
        with pytest.raises(ConfigError):
            m.compute_cost(-1)

    def test_message_cost(self):
        m = MachineModel(alpha=0, t_s=5.0, t_w=1.0)
        assert m.message_cost(10) == 15.0
        assert m.message_cost(0) == 5.0

    def test_collective_costs_scale_log(self):
        m = MachineModel(alpha=0, t_s=1.0, t_w=0.0)
        assert m.collective_cost("barrier", 1, 0) == 0.0
        assert m.collective_cost("barrier", 8, 0) == pytest.approx(3.0)
        assert m.collective_cost("allreduce", 16, 5) == pytest.approx(4.0)

    def test_allgather_volume_term(self):
        m = MachineModel(alpha=0, t_s=0.0, t_w=1.0)
        # recursive doubling moves (p-1)*m words
        assert m.collective_cost("allgather", 4, 10) == pytest.approx(30.0)

    def test_alltoall_pairwise(self):
        m = MachineModel(alpha=0, t_s=1.0, t_w=1.0)
        assert m.collective_cost("alltoall", 4, 2) == pytest.approx(3 * 3.0)

    def test_unknown_collective(self):
        with pytest.raises(ConfigError):
            QDR_CLUSTER.collective_cost("gossip", 4, 1)

    def test_with_params(self):
        m = QDR_CLUSTER.with_params(t_s=1.0)
        assert m.t_s == 1.0
        assert m.alpha == QDR_CLUSTER.alpha


class TestClockSemantics:
    def test_charge_advances_clock(self):
        m = MachineModel(alpha=1.0, t_s=0, t_w=0)

        def prog(comm):
            comm.charge(5)
            return comm.clock
            yield  # pragma: no cover

        res = run_spmd(prog, 2, machine=m)
        assert res.values == [5.0, 5.0]
        assert res.elapsed == 5.0
        assert np.allclose(res.comp_time, 5.0)

    def test_collective_synchronises_clocks(self):
        m = MachineModel(alpha=1.0, t_s=10.0, t_w=0.0)

        def prog(comm):
            comm.charge(comm.rank * 100)  # rank 1 is slower
            yield from comm.barrier()
            return comm.clock

        res = run_spmd(prog, 2, machine=m)
        # both exit at max(0, 100) + ts*log2(2)
        assert res.values == [110.0, 110.0]
        # rank 0 waited for rank 1: its comm time includes the skew
        assert res.comm_time[0] == pytest.approx(110.0)
        assert res.comm_time[1] == pytest.approx(10.0)

    def test_message_arrival_time(self):
        m = MachineModel(alpha=1.0, t_s=3.0, t_w=1.0)

        def prog(comm):
            if comm.rank == 0:
                comm.charge(10)
                yield from comm.send(np.zeros(4), dest=1)  # arrival 10+3+4=17
                return comm.clock
            yield from comm.recv(source=0)
            return comm.clock

        res = run_spmd(prog, 2, machine=m)
        assert res.values[1] == pytest.approx(17.0)
        # sender only pays injection overhead t_s
        assert res.values[0] == pytest.approx(13.0)

    def test_recv_after_arrival_costs_nothing_extra(self):
        m = MachineModel(alpha=1.0, t_s=1.0, t_w=0.0)

        def prog(comm):
            if comm.rank == 0:
                yield from comm.send("x", dest=1)
                return comm.clock
            comm.charge(100)  # receiver is late; message already arrived
            yield from comm.recv(source=0)
            return comm.clock

        res = run_spmd(prog, 2, machine=m)
        assert res.values[1] == pytest.approx(100.0)

    def test_elapsed_is_max_clock(self):
        m = MachineModel(alpha=1.0, t_s=0, t_w=0)

        def prog(comm):
            comm.charge(comm.rank)
            return None
            yield  # pragma: no cover

        res = run_spmd(prog, 4, machine=m)
        assert res.elapsed == 3.0

    def test_zero_cost_machine(self):
        def prog(comm):
            comm.charge(1e9)
            yield from comm.barrier()
            return comm.clock

        res = run_spmd(prog, 4, machine=ZERO_COST)
        assert res.elapsed == 0.0


class TestPhases:
    def test_phase_accounting(self):
        m = MachineModel(alpha=1.0, t_s=2.0, t_w=0.0)

        def prog(comm):
            comm.set_phase("coarsen")
            comm.charge(10)
            comm.set_phase("embed")
            comm.charge(20)
            yield from comm.barrier()
            return None

        res = run_spmd(prog, 2, machine=m)
        assert res.phase_elapsed("coarsen") == pytest.approx(10.0)
        assert res.phase("embed").comp_elapsed == pytest.approx(20.0)
        assert res.phase("embed").comm_elapsed == pytest.approx(2.0)
        assert res.phase_elapsed("missing") == 0.0

    def test_comm_fraction(self):
        m = MachineModel(alpha=1.0, t_s=100.0, t_w=0.0)

        def prog(comm):
            comm.charge(100)
            yield from comm.barrier()
            return None

        res = run_spmd(prog, 2, machine=m)
        assert res.comm_fraction == pytest.approx(0.5)

    def test_message_and_collective_counters(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(1, dest=1)
            else:
                yield from comm.recv(source=0)
            yield from comm.barrier()
            return None

        res = run_spmd(prog, 2, machine=ZERO_COST)
        assert res.messages == 1
        assert res.collectives == 1

    def test_summary_mentions_ranks(self):
        def prog(comm):
            yield from comm.barrier()

        res = run_spmd(prog, 2, machine=ZERO_COST)
        assert "P=2" in res.summary()
