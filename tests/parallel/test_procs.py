"""Unit tests for the real-parallel ``backend="procs"`` executor.

Parity with the simulator is covered by
``test_backend_parity.py``; this file tests what is *specific* to the
process backend — backend validation, the shared-memory payload codec
(round-trips and leak hygiene), worker death and deadlock conversion
into typed errors, the simulated-only feature gates, and the per-rank
budgets.
"""

from __future__ import annotations

import glob
import os
import warnings

import numpy as np
import pytest

from repro.core.parallel import RetryPolicy, run_parallel
from repro.errors import (
    BudgetExceededError,
    CommError,
    CommWarning,
    ConfigError,
    DeadlockError,
    RankFailure,
)
from repro.graph.distributed import Shared
from repro.graph.generators import random_delaunay
from repro.parallel import ZERO_COST, procs_available, run_spmd
from repro.parallel import procs as procs_mod
from repro.parallel.faults import FaultPlan, KillRank, MessageFault
from repro.parallel.procs import (
    _LAST_RUN,
    _SHM_THRESHOLD,
    _decode_payload,
    _encode_payload,
    _SegmentFactory,
)

needs_procs = pytest.mark.skipif(
    not procs_available(), reason="procs backend unavailable (no fork)"
)


def _ring(comm):
    """Minimal rank program: one big-array ring exchange."""
    arr = np.full(20_000, float(comm.rank))
    got = yield from comm.sendrecv(
        arr, dest=(comm.rank + 1) % comm.size, source=(comm.rank - 1) % comm.size
    )
    total = yield from comm.allreduce(float(got[0]), op="sum")
    return total


# ----------------------------------------------------------------------
# backend validation
# ----------------------------------------------------------------------

class TestBackendValidation:
    def test_unknown_backend_raises_listing_known(self):
        with pytest.raises(ValueError) as ei:
            run_spmd(_ring, 2, backend="threads")
        msg = str(ei.value)
        assert "threads" in msg
        assert "'sim'" in msg and "'procs'" in msg

    def test_unknown_backend_through_run_parallel(self):
        g = random_delaunay(100, seed=1).graph
        with pytest.raises(ValueError, match="known backends"):
            run_parallel("RCB", g, 2, coords=np.zeros((100, 2)),
                         backend="mpi")

    @needs_procs
    def test_bad_copy_mode(self):
        with pytest.raises(CommError, match="copy_mode"):
            run_spmd(_ring, 2, backend="procs", copy_mode="lazy")


# ----------------------------------------------------------------------
# shared-memory payload codec
# ----------------------------------------------------------------------

def _roundtrip(obj):
    seg = _SegmentFactory("rprtest%xcodec" % os.getpid(), 0)
    return _decode_payload(_encode_payload(obj, seg))


class TestShmCodec:
    @pytest.mark.parametrize("dtype", [np.float64, np.int64, np.bool_])
    def test_large_array_roundtrip(self, dtype):
        n = _SHM_THRESHOLD  # elements >= bytes threshold for every dtype
        arr = (np.arange(n) % 2).astype(dtype)
        out = _roundtrip(arr)
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_fortran_order_preserved(self):
        arr = np.asfortranarray(np.arange(40_000, dtype=np.float64)
                                .reshape(200, 200))
        assert arr.flags.f_contiguous and not arr.flags.c_contiguous
        out = _roundtrip(arr)
        assert out.flags.f_contiguous
        assert np.array_equal(out, arr)

    def test_noncontiguous_view_roundtrip(self):
        base = np.arange(200_000, dtype=np.float64)
        view = base[::2]
        assert not view.flags.c_contiguous
        out = _roundtrip(view)
        assert out.flags.c_contiguous  # materialised on encode
        assert np.array_equal(out, view)

    def test_small_readonly_view_becomes_owned(self):
        base = np.arange(100, dtype=np.int64)
        view = base[10:20]
        view.flags.writeable = False
        out = _roundtrip(view)
        assert out.flags.owndata and out.flags.writeable
        assert np.array_equal(out, view)

    def test_nested_containers_and_shared(self):
        big = np.arange(30_000, dtype=np.float64)
        obj = {"a": [big, (1, "x", big * 2)], "b": Shared(big + 1),
               "c": None}
        out = _roundtrip(obj)
        assert np.array_equal(out["a"][0], big)
        assert np.array_equal(out["a"][1][2], big * 2)
        assert isinstance(out["b"], Shared)
        assert np.array_equal(out["b"].value, big + 1)
        assert out["c"] is None

    def test_codec_unlinks_segments(self):
        prefix = "rprtest%xleak" % os.getpid()
        seg = _SegmentFactory(prefix, 0)
        enc = _encode_payload(np.zeros(50_000), seg)
        assert glob.glob(f"/dev/shm/{prefix}*")  # parked while in flight
        _decode_payload(enc)
        assert glob.glob(f"/dev/shm/{prefix}*") == []


# ----------------------------------------------------------------------
# run lifecycle: leaks, death, deadlock, budgets
# ----------------------------------------------------------------------

@needs_procs
class TestProcsLifecycle:
    def test_no_segments_leaked_on_normal_exit(self):
        res = run_spmd(_ring, 4, machine=ZERO_COST, backend="procs")
        assert len(res.values) == 4
        assert _LAST_RUN["leaked"] == []
        assert glob.glob(f"/dev/shm/{_LAST_RUN['prefix']}*") == []

    def test_no_segments_survive_an_error_exit(self):
        def prog(comm):
            arr = np.arange(40_000, dtype=np.float64)
            yield from comm.send(arr, dest=1)  # parked, never received
            if comm.rank == 0:
                raise RuntimeError("boom")
            yield from comm.recv(source=0)

        with pytest.raises(CommError):
            run_spmd(prog, 2, backend="procs", op_timeout=3.0)
        assert glob.glob(f"/dev/shm/{_LAST_RUN['prefix']}*") == []

    def test_distinct_pids_and_parent_not_among_them(self):
        res = run_spmd(_ring, 4, machine=ZERO_COST, backend="procs")
        assert len(set(res.pids)) == 4
        assert os.getpid() not in res.pids

    def test_killed_worker_raises_rank_failure_not_hang(self):
        plan = FaultPlan(kills=(KillRank(rank=1, at_op=1, attempts=None),))
        with pytest.raises(RankFailure) as ei:
            run_spmd(_ring, 4, machine=ZERO_COST, backend="procs",
                     faults=plan, op_timeout=60.0)
        assert ei.value.dead_rank == 1
        assert "injected fault" in str(ei.value)

    def test_retry_policy_recovers_from_transient_kill(self):
        mesh = random_delaunay(300, seed=5)
        plan = FaultPlan(kills=(KillRank(rank=1, at_op=5, attempts=(0,)),))
        res = run_parallel("RCB", mesh.graph, 4, coords=mesh.coords,
                           seed=7, backend="procs", faults=plan,
                           retry=RetryPolicy(retries=1))
        res.validate(0.15)
        rec = res.extras["recovery"]
        assert rec["attempts"][0]["error"]  # attempt 0 lost rank 1
        assert res.extras["pids"] and len(set(res.extras["pids"])) == 4

    def test_deadlock_carries_parked_context(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.recv(source=1, tag=7)  # nobody sends  # repro: lint-ok[SP107]
            return comm.rank

        with pytest.raises(DeadlockError) as ei:
            run_spmd(prog, 2, backend="procs", op_timeout=1.0)
        parked = ei.value.parked
        assert parked and parked[0]["rank"] == 0
        assert parked[0]["kind"] == "recv"
        assert parked[0]["peer"] == 1
        assert parked[0]["tag"] == 7

    def test_max_steps_is_budget_error(self):
        def prog(comm):
            for _ in range(100):
                yield from comm.barrier()
            return 0

        with pytest.raises(BudgetExceededError) as ei:
            run_spmd(prog, 2, backend="procs", max_steps=10)
        assert ei.value.budget == "steps"


# ----------------------------------------------------------------------
# simulated-only feature gates
# ----------------------------------------------------------------------

@needs_procs
class TestSimOnlyGates:
    def test_sanitize_true_is_config_error(self):
        with pytest.raises(ConfigError, match="simulated-only"):
            run_spmd(_ring, 2, backend="procs", sanitize=True)

    def test_env_sanitize_is_ignored_with_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setattr(procs_mod, "_ENV_SANITIZE_WARNED", False)
        with pytest.warns(CommWarning, match="REPRO_SANITIZE"):
            res = run_spmd(_ring, 2, machine=ZERO_COST, backend="procs")
        assert len(res.values) == 2

    def test_env_sanitize_warning_fires_once(self, monkeypatch, recwarn):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setattr(procs_mod, "_ENV_SANITIZE_WARNED", False)
        with pytest.warns(CommWarning):
            run_spmd(_ring, 2, machine=ZERO_COST, backend="procs")
        recwarn.clear()
        run_spmd(_ring, 2, machine=ZERO_COST, backend="procs")
        assert not [w for w in recwarn if issubclass(w.category, CommWarning)]

    def test_no_warning_without_env(self, monkeypatch, recwarn):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        monkeypatch.setattr(procs_mod, "_ENV_SANITIZE_WARNED", False)
        run_spmd(_ring, 2, machine=ZERO_COST, backend="procs")
        assert not [w for w in recwarn if issubclass(w.category, CommWarning)]

    def test_global_ordinal_message_fault_rejected(self):
        plan = FaultPlan(messages=(MessageFault("drop", 0),))
        with pytest.raises(ConfigError, match="global send"):
            run_spmd(_ring, 2, backend="procs", faults=plan)

    def test_max_sim_seconds_rejected(self):
        with pytest.raises(ConfigError, match="max_sim_seconds"):
            run_spmd(_ring, 2, backend="procs", max_sim_seconds=1.0)


# ----------------------------------------------------------------------
# message-fault injection on real processes
# ----------------------------------------------------------------------

def _chatty_ring(comm):
    """Five send/recv ring rounds — enough p2p traffic for message
    faults to land — then an allreduce over everything received."""
    vals = []
    dst = (comm.rank + 1) % comm.size
    src = (comm.rank - 1) % comm.size
    for i in range(5):
        yield from comm.send(np.full(8, comm.rank * 10 + i, dtype=np.int64),
                             dest=dst, tag=i)
        got = yield from comm.recv(source=src, tag=i)
        vals.append(int(got.sum()))  # whole payload: corruption shows
    total = yield from comm.allreduce(float(sum(vals)), op="sum")
    return total


def _event_sites(res):
    """Backend-comparable view of injected faults: ``msg_index`` is
    global on sim but sender-local on procs, so compare everything
    else."""
    return sorted((ev.kind, ev.rank, ev.dest, ev.tag) for ev in res.faults)


@needs_procs
class TestProcsMessageFaults:
    def test_scheduled_corrupt_matches_sim(self):
        """A rank-scoped corrupt fault lands on the same message on
        both backends and produces identical (corrupted) results."""
        plan = FaultPlan(seed=9, messages=(
            MessageFault("corrupt", 2, rank=1),))
        sim = run_spmd(_chatty_ring, 4, machine=ZERO_COST, faults=plan)
        prc = run_spmd(_chatty_ring, 4, machine=ZERO_COST, faults=plan,
                       backend="procs", op_timeout=60.0)
        assert sim.values == prc.values
        assert _event_sites(sim) == _event_sites(prc) != []
        clean = run_spmd(_chatty_ring, 4, machine=ZERO_COST)
        assert sim.values != clean.values  # the corruption was observed

    def test_scheduled_delay_is_harmless_and_recorded(self):
        plan = FaultPlan(seed=9, mean_delay=0.01, messages=(
            MessageFault("delay", 1, rank=2),))
        clean = run_spmd(_chatty_ring, 4, machine=ZERO_COST)
        prc = run_spmd(_chatty_ring, 4, machine=ZERO_COST, faults=plan,
                       backend="procs", op_timeout=60.0)
        assert prc.values == clean.values
        (ev,) = prc.faults
        assert ev.kind == "delay" and ev.rank == 2 and ev.msg_index == 1
        assert "delayed by" in ev.detail

    def test_random_rates_match_sim(self):
        """Rate-drawn duplicate/delay faults hash the same
        ``(sender, sender_index)`` sites on both backends."""
        plan = FaultPlan(seed=31, duplicate_rate=0.2, delay_rate=0.3,
                         mean_delay=0.005)
        with warnings.catch_warnings():
            # sim warns about undelivered duplicate copies at completion
            warnings.simplefilter("ignore", CommWarning)
            sim = run_spmd(_chatty_ring, 4, machine=ZERO_COST, faults=plan)
        prc = run_spmd(_chatty_ring, 4, machine=ZERO_COST, faults=plan,
                       backend="procs", op_timeout=60.0)
        assert sim.values == prc.values
        assert _event_sites(sim) == _event_sites(prc) != []

    def test_procs_fault_injection_is_deterministic(self):
        plan = FaultPlan(seed=5, corrupt_rate=0.25)
        runs = [run_spmd(_chatty_ring, 4, machine=ZERO_COST, faults=plan,
                         backend="procs", op_timeout=60.0)
                for _ in range(2)]
        assert runs[0].values == runs[1].values
        assert _event_sites(runs[0]) == _event_sites(runs[1])

    def test_dropped_message_trips_stall_supervision(self):
        """A dropped send parks the receiver forever; the heartbeat
        supervisor raises DeadlockError with parked context well before
        the per-op timeout."""
        plan = FaultPlan(seed=9, messages=(
            MessageFault("drop", 0, rank=0),))
        with pytest.raises(DeadlockError) as ei:
            run_spmd(_chatty_ring, 4, machine=ZERO_COST, faults=plan,
                     backend="procs", op_timeout=120.0, stall_timeout=2.0)
        parked = ei.value.parked
        assert parked  # every pending rank reports where it sits
        kinds = {p["kind"] for p in parked}
        assert kinds <= {"recv", "allreduce"} and "recv" in kinds

    def test_registered_methods_survive_message_rates(self):
        """Registered methods are collective-only (zero p2p sends), so
        message-fault rates are a no-op on them — the partition matches
        the fault-free run exactly."""
        mesh = random_delaunay(200, seed=7)
        plan = FaultPlan(seed=3, drop_rate=0.5, corrupt_rate=0.5)
        clean = run_parallel("RCB", mesh.graph, 4, coords=mesh.coords,
                             seed=7, backend="procs")
        faulty = run_parallel("RCB", mesh.graph, 4, coords=mesh.coords,
                              seed=7, backend="procs", faults=plan)
        assert np.array_equal(clean.parts, faulty.parts)


# ----------------------------------------------------------------------
# stale-segment sweep (crashed parents' leftovers)
# ----------------------------------------------------------------------

@needs_procs
class TestStaleSegmentSweep:
    def _dead_pid(self):
        pid = os.fork()
        if pid == 0:
            os._exit(0)  # pragma: no cover - child exits immediately
        os.waitpid(pid, 0)
        return pid

    def test_dead_parents_segments_swept_and_reported(self):
        name = f"rpr{self._dead_pid():x}g0r1s2"
        path = f"/dev/shm/{name}"
        with open(path, "wb") as fh:
            fh.write(b"\0" * 64)
        try:
            with pytest.warns(CommWarning, match="stale shared-memory"):
                res = run_spmd(_ring, 2, machine=ZERO_COST,
                               backend="procs")
            assert len(res.values) == 2
            assert name in _LAST_RUN["stale_swept"]
            assert not os.path.exists(path)
        finally:
            if os.path.exists(path):
                os.unlink(path)

    def test_live_parents_segments_left_alone(self):
        name = f"rpr{os.getpid():x}g7fr0s0"
        path = f"/dev/shm/{name}"
        with open(path, "wb") as fh:
            fh.write(b"\0" * 64)
        try:
            res = run_spmd(_ring, 2, machine=ZERO_COST, backend="procs")
            assert len(res.values) == 2
            assert _LAST_RUN["stale_swept"] == []
            assert os.path.exists(path)
        finally:
            os.unlink(path)

    def test_foreign_shm_names_untouched(self):
        path = "/dev/shm/repro-unrelated-segment"
        with open(path, "wb") as fh:
            fh.write(b"\0" * 8)
        try:
            run_spmd(_ring, 2, machine=ZERO_COST, backend="procs")
            assert os.path.exists(path)
        finally:
            os.unlink(path)
