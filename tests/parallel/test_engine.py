"""Unit tests for the SPMD coroutine engine and communicator API."""

import numpy as np
import pytest

from repro.errors import CommError, DeadlockError
from repro.parallel import MachineModel, ZERO_COST, payload_words, run_spmd


def run0(fn, p, *args, **kw):
    """Run with the zero-cost machine and return per-rank values."""
    return run_spmd(fn, p, *args, machine=ZERO_COST, **kw).values


class TestBasics:
    def test_single_rank_plain_function(self):
        res = run_spmd(lambda comm: comm.rank * 10 + comm.size, 1, machine=ZERO_COST)
        assert res.values == [1]

    def test_rank_and_size(self):
        def prog(comm):
            return (comm.rank, comm.size)
            yield  # pragma: no cover

        vals = run0(prog, 4)
        assert vals == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_invalid_nranks(self):
        with pytest.raises(CommError):
            run_spmd(lambda comm: None, 0)

    def test_yielding_garbage_raises(self):
        def prog(comm):
            yield 42

        with pytest.raises(CommError, match="yielded"):
            run0(prog, 2)

    def test_per_rank_rng_streams_differ(self):
        def prog(comm):
            return float(comm.rng.random())
            yield  # pragma: no cover

        vals = run0(prog, 4, seed=9)
        assert len(set(vals)) == 4

    def test_rng_deterministic_across_runs(self):
        def prog(comm):
            return float(comm.rng.random())
            yield  # pragma: no cover

        assert run0(prog, 3, seed=5) == run0(prog, 3, seed=5)


class TestCollectives:
    def test_barrier(self):
        def prog(comm):
            yield from comm.barrier()
            return comm.rank

        assert run0(prog, 5) == list(range(5))

    def test_bcast(self):
        def prog(comm):
            data = {"x": comm.rank} if comm.rank == 1 else None
            out = yield from comm.bcast(data, root=1)
            return out["x"]

        assert run0(prog, 4) == [1, 1, 1, 1]

    def test_bcast_copies_arrays_defensive(self):
        def prog(comm):
            arr = np.zeros(3) if comm.rank == 0 else None
            out = yield from comm.bcast(arr, root=0)
            out += comm.rank  # must not alias other ranks' copies
            return float(out.sum())

        res = run_spmd(prog, 3, machine=ZERO_COST, copy_mode="defensive")
        assert res.values == [0.0, 3.0, 6.0]

    def test_reduce_sum_at_root(self):
        def prog(comm):
            out = yield from comm.reduce(comm.rank + 1, op="sum", root=2)
            return out

        vals = run0(prog, 4)
        assert vals == [None, None, 10, None]

    def test_allreduce_ops(self):
        for op, expect in [("sum", 6), ("min", 0), ("max", 3), ("prod", 0)]:
            def prog(comm, op=op):
                return (yield from comm.allreduce(comm.rank, op=op))

            assert run0(prog, 4) == [expect] * 4

    def test_allreduce_arrays_elementwise(self):
        def prog(comm):
            v = np.array([comm.rank, -comm.rank], dtype=float)
            mx = yield from comm.allreduce(v, op="max")
            mn = yield from comm.allreduce(v, op="min")
            return (mx.tolist(), mn.tolist())

        vals = run0(prog, 3)
        assert vals[0] == ([2.0, 0.0], [0.0, -2.0])

    def test_allreduce_callable_op(self):
        def prog(comm):
            return (yield from comm.allreduce((comm.rank, comm.rank * 2),
                                              op=lambda a, b: (a[0] + b[0], max(a[1], b[1]))))

        assert run0(prog, 3) == [(3, 4)] * 3

    def test_unknown_reduce_op(self):
        def prog(comm):
            return (yield from comm.allreduce(1, op="median"))

        with pytest.raises(CommError, match="median"):
            run0(prog, 2)

    def test_gather(self):
        def prog(comm):
            out = yield from comm.gather(comm.rank**2, root=0)
            return out

        vals = run0(prog, 4)
        assert vals[0] == [0, 1, 4, 9]
        assert vals[1:] == [None, None, None]

    def test_allgather_order(self):
        def prog(comm):
            return (yield from comm.allgather(chr(ord("a") + comm.rank)))

        assert run0(prog, 3) == [["a", "b", "c"]] * 3

    def test_scatter(self):
        def prog(comm):
            data = [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
            return (yield from comm.scatter(data, root=0))

        assert run0(prog, 4) == [0, 10, 20, 30]

    def test_scatter_wrong_length(self):
        def prog(comm):
            data = [1, 2] if comm.rank == 0 else None
            return (yield from comm.scatter(data, root=0))

        with pytest.raises(CommError, match="scatter"):
            run0(prog, 3)

    def test_alltoall(self):
        def prog(comm):
            out = yield from comm.alltoall(
                [comm.rank * 10 + j for j in range(comm.size)]
            )
            return out

        vals = run0(prog, 3)
        # rank r receives element r of every rank's list
        assert vals[1] == [1, 11, 21]

    def test_scan_inclusive(self):
        def prog(comm):
            return (yield from comm.scan(comm.rank + 1))

        assert run0(prog, 4) == [1, 3, 6, 10]

    def test_mismatched_collectives_raise(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.barrier()  # repro: lint-ok[SP102] deliberate bug
            else:
                yield from comm.allreduce(1)  # repro: lint-ok[SP102]

        with pytest.raises(CommError, match="mismatch"):
            run0(prog, 2)

    def test_mismatched_roots_raise(self):
        def prog(comm):
            return (yield from comm.bcast(1, root=comm.rank))

        with pytest.raises(CommError, match="root"):
            run0(prog, 2)


class TestPointToPoint:
    def test_ring_pass(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            got = yield from comm.sendrecv(comm.rank, dest=right, source=left)
            return got

        assert run0(prog, 5) == [4, 0, 1, 2, 3]

    def test_fifo_between_pair(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send("first", dest=1)
                yield from comm.send("second", dest=1)
                return None
            a = yield from comm.recv(source=0)
            b = yield from comm.recv(source=0)
            return (a, b)

        vals = run0(prog, 2)
        assert vals[1] == ("first", "second")

    def test_tags_disambiguate(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send("low", dest=1, tag=1)
                yield from comm.send("high", dest=1, tag=2)
                return None
            hi = yield from comm.recv(source=0, tag=2)
            lo = yield from comm.recv(source=0, tag=1)
            return (hi, lo)

        assert run0(prog, 2)[1] == ("high", "low")

    def test_recv_copies_payload_defensive(self):
        def prog(comm):
            if comm.rank == 0:
                arr = np.ones(4)
                yield from comm.send(arr, dest=1)
                # both arms barrier exactly once: schedules agree
                yield from comm.barrier()  # repro: lint-ok[SP102]
                return arr.sum()
            got = yield from comm.recv(source=0)
            got *= 100
            yield from comm.barrier()
            return got.sum()

        vals = run_spmd(prog, 2, machine=ZERO_COST, copy_mode="defensive").values
        assert vals == [4.0, 400.0]

    def test_deadlock_detected(self):
        def prog(comm):
            # deliberate: nobody sends  # repro: lint-ok[SP107]
            got = yield from comm.recv(source=(comm.rank + 1) % comm.size)
            return got

        with pytest.raises(DeadlockError, match="rank 0"):
            run0(prog, 2)

    def test_send_out_of_range(self):
        def prog(comm):
            yield from comm.send(1, dest=99)

        with pytest.raises(CommError, match="dest"):
            run0(prog, 2)

    def test_finished_rank_leaves_collective_hanging(self):
        def prog(comm):
            if comm.rank == 0:
                return 0
            yield from comm.barrier()
            return 1

        with pytest.raises(DeadlockError):
            run0(prog, 2)


class TestSplit:
    def test_split_by_parity(self):
        def prog(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            total = yield from sub.allreduce(comm.rank)
            return (sub.size, total)

        vals = run0(prog, 6)
        assert vals[0] == (3, 0 + 2 + 4)
        assert vals[1] == (3, 1 + 3 + 5)

    def test_split_none_drops_out(self):
        def prog(comm):
            sub = yield from comm.split(color=0 if comm.rank < 2 else None)
            if sub is None:
                return "out"
            return (yield from sub.allgather(comm.rank))

        vals = run0(prog, 4)
        assert vals == [[0, 1], [0, 1], "out", "out"]

    def test_split_key_reorders(self):
        def prog(comm):
            sub = yield from comm.split(color=0, key=-comm.rank)
            return sub.rank

        vals = run0(prog, 3)
        assert vals == [2, 1, 0]

    def test_nested_split(self):
        def prog(comm):
            sub = yield from comm.split(color=comm.rank // 2)
            subsub = yield from sub.split(color=sub.rank)
            return (yield from subsub.allgather(comm.world_rank))

        vals = run0(prog, 4)
        assert vals == [[0], [1], [2], [3]]


class TestPayloadWords:
    def test_array_exact(self):
        assert payload_words(np.zeros(10, dtype=np.float64)) == 10

    def test_scalars(self):
        assert payload_words(3) == 1
        assert payload_words(2.5) == 1
        assert payload_words(None) == 0

    def test_containers_recursive(self):
        assert payload_words([1, 2, 3]) == 4
        assert payload_words({"a": 1}) == pytest.approx(3.0)  # dict + key + value

    def test_string(self):
        assert payload_words("x" * 16) == 2


class TestExchange:
    def test_ring_halo(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            got = yield from comm.exchange({right: comm.rank * 10})
            return got

        vals = run0(prog, 4)
        # rank r receives from its left neighbour
        assert vals[1] == {0: 0}
        assert vals[0] == {3: 30}

    def test_empty_participation(self):
        def prog(comm):
            msgs = {1: "x"} if comm.rank == 0 else {}
            got = yield from comm.exchange(msgs)
            return got

        vals = run0(prog, 3)
        assert vals == [{}, {0: "x"}, {}]

    def test_payload_copied(self):
        import numpy as np

        def prog(comm):
            if comm.rank == 0:
                arr = np.ones(3)
                # both arms exchange+barrier once: schedules agree
                got = yield from comm.exchange({1: arr})  # repro: lint-ok[SP102]
                yield from comm.barrier()  # repro: lint-ok[SP102]
                return float(arr.sum())
            got = yield from comm.exchange({0: None})
            got[0] if False else None
            yield from comm.barrier()
            return None

        vals = run0(prog, 2)
        assert vals[0] == 3.0

    def test_self_send_rejected(self):
        def prog(comm):
            yield from comm.exchange({comm.rank: 1})

        with pytest.raises(CommError, match="self"):
            run0(prog, 2)

    def test_out_of_range_rejected(self):
        def prog(comm):
            yield from comm.exchange({7: 1})

        with pytest.raises(CommError, match="out of range"):
            run0(prog, 2)

    def test_exchange_cost_charged(self):
        from repro.parallel import MachineModel, run_spmd

        m = MachineModel(alpha=0, t_s=1.0, t_w=1.0)

        def prog(comm):
            right = (comm.rank + 1) % comm.size
            yield from comm.exchange({right: None}, words=10)
            return comm.clock

        res = run_spmd(prog, 2, machine=m)
        # 1 neighbour * ts + tw * max(10, 10)
        assert res.values[0] == pytest.approx(11.0)


class TestCollectiveProperties:
    """Randomised payloads checked against sequential references."""

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("op,ref", [
        ("sum", lambda d: d.sum(axis=0)),
        ("min", lambda d: d.min(axis=0)),
        ("max", lambda d: d.max(axis=0)),
    ])
    def test_allreduce_matches_sequential(self, p, op, ref):
        data = np.random.default_rng(p * 100 + len(op)).normal(size=(p, 6))

        def prog(comm):
            return (yield from comm.allreduce(data[comm.rank].copy(), op=op))

        expect = ref(data)
        for got in run0(prog, p):
            np.testing.assert_allclose(got, expect)

    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    def test_scan_matches_prefix_sum(self, p):
        data = np.random.default_rng(41 + p).integers(-50, 50, size=p)

        def prog(comm):
            return (yield from comm.scan(int(data[comm.rank])))

        assert run0(prog, p) == np.cumsum(data).tolist()

    @pytest.mark.parametrize("p", [1, 2, 3, 6])
    def test_alltoall_matches_transpose(self, p):
        data = np.random.default_rng(7 * p).integers(0, 1000, size=(p, p))

        def prog(comm):
            return (yield from comm.alltoall(data[comm.rank].tolist()))

        vals = run0(prog, p)
        for r in range(p):
            assert vals[r] == data[:, r].tolist()

    @pytest.mark.parametrize("p", [2, 3, 5])
    def test_allgather_matches_concat(self, p):
        data = np.random.default_rng(13 * p).normal(size=(p, 3))

        def prog(comm):
            return (yield from comm.allgather(data[comm.rank].copy()))

        for got in run0(prog, p):
            np.testing.assert_allclose(np.stack(got), data)

    def test_mismatched_kinds_raise_commerror(self):
        def prog(comm):
            if comm.rank == 0:
                # deliberate bug: ranks disagree on the collective kind
                return (yield from comm.allgather(comm.rank))  # repro: lint-ok[SP102]
            return (yield from comm.alltoall([0] * comm.size))

        with pytest.raises(CommError, match="mismatch"):
            run0(prog, 2)

    def test_parked_recv_without_sender_names_op(self):
        def prog(comm):
            if comm.rank == 0:
                got = yield from comm.recv(source=1, tag=7)  # repro: lint-ok[SP107]
                return got
            return None

        with pytest.raises(DeadlockError, match=r"recv\(comm=.*source=1, tag=7\)"):
            run0(prog, 2)


class TestCommStats:
    """The engine's measured communication ledger."""

    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_world_allreduce_counts_once_per_rank(self, p):
        def prog(comm):
            return (yield from comm.allreduce(1.0))

        res = run_spmd(prog, p, machine=ZERO_COST)
        stats = res.comm_stats
        assert stats is not None
        np.testing.assert_array_equal(stats.collectives["allreduce"], np.ones(p))
        assert stats.collective_ops == {"allreduce": 1}
        assert stats.collective_invocations() == 1

    def test_subcomm_collective_counts_members_only(self):
        def prog(comm):
            sub = yield from comm.split(0 if comm.rank < 2 else None)
            if sub is not None:
                yield from sub.allreduce(comm.rank)

        stats = run_spmd(prog, 4, machine=ZERO_COST).comm_stats
        np.testing.assert_array_equal(
            stats.collectives["allreduce"], [1, 1, 0, 0]
        )
        assert stats.collective_ops["allreduce"] == 1

    def test_point_to_point_counters_and_words(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(np.zeros(10), dest=1)
                return None
            return (yield from comm.recv(source=0))

        stats = run_spmd(prog, 2, machine=ZERO_COST).comm_stats
        np.testing.assert_array_equal(stats.sends, [1, 0])
        np.testing.assert_array_equal(stats.recvs, [0, 1])
        np.testing.assert_array_equal(stats.words_sent, [10, 0])
        np.testing.assert_array_equal(stats.words_received, [0, 10])
        assert stats.total_messages == 1
        assert stats.total_words == 10

    def test_exchange_not_a_global_collective(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            yield from comm.exchange({right: comm.rank})
            yield from comm.allreduce(1)

        stats = run_spmd(prog, 4, machine=ZERO_COST).comm_stats
        assert stats.collective_ops["exchange"] == 1
        assert stats.collective_invocations() == 1  # the allreduce only
        assert stats.collective_invocations(["exchange"]) == 1

    def test_phase_attribution_and_aggregation(self):
        def prog(comm):
            comm.set_phase("embed/refresh")
            yield from comm.allreduce(1)
            comm.set_phase("embed/halo")
            right = (comm.rank + 1) % comm.size
            yield from comm.exchange({right: None})
            comm.set_phase("partition")
            yield from comm.allreduce(2)

        res = run_spmd(prog, 3, machine=ZERO_COST)
        stats = res.comm_stats
        assert set(stats.phases) == {"embed/refresh", "embed/halo", "partition"}
        embed = stats.phase("embed")
        assert embed.collective_ops == {"allreduce": 1, "exchange": 1}
        assert stats.phase("partition").collective_ops == {"allreduce": 1}
        # run totals are the sum of the phases
        assert stats.collective_ops["allreduce"] == 2
        assert res.phase_comm_stats("embed").collective_invocations() == 1

    def test_collective_wait_time_measures_skew(self):
        m = MachineModel(alpha=1.0, t_s=0.0, t_w=0.0)

        def prog(comm):
            if comm.rank == 0:
                comm.charge(2.0)
            yield from comm.allreduce(1)

        stats = run_spmd(prog, 2, machine=m).comm_stats
        assert stats.wait_time[0] == pytest.approx(0.0)
        assert stats.wait_time[1] == pytest.approx(2.0)
        assert stats.total_wait == pytest.approx(2.0)

    def test_recv_wait_time_beyond_transfer(self):
        m = MachineModel(alpha=1.0, t_s=0.0, t_w=0.0)

        def prog(comm):
            if comm.rank == 0:
                comm.charge(3.0)
                yield from comm.send(1, dest=1)
                return None
            return (yield from comm.recv(source=0))

        stats = run_spmd(prog, 2, machine=m).comm_stats
        assert stats.wait_time[1] == pytest.approx(3.0)

    def test_no_wait_when_ranks_in_lockstep(self):
        def prog(comm):
            comm.charge(1.0)
            yield from comm.allreduce(comm.rank)

        stats = run_spmd(prog, 4, machine=ZERO_COST).comm_stats
        assert stats.total_wait == 0.0

    def test_zero_comm_program_has_empty_ledger(self):
        def prog(comm):
            comm.charge(5.0)
            return comm.rank
            yield  # pragma: no cover

        stats = run_spmd(prog, 3, machine=ZERO_COST).comm_stats
        assert stats.total_messages == 0
        assert stats.total_words == 0.0
        assert stats.collective_invocations(stats.collective_ops) == 0


class TestCopyModes:
    """Zero-copy (``readonly``) vs deep-copy (``defensive``) delivery."""

    def test_invalid_copy_mode_rejected(self):
        def prog(comm):
            return comm.rank
            yield  # pragma: no cover

        with pytest.raises(CommError, match="copy_mode"):
            run_spmd(prog, 2, machine=ZERO_COST, copy_mode="fast")

    def test_readonly_send_delivers_readonly_view(self):
        def prog(comm):
            if comm.rank == 0:
                arr = np.arange(4.0)
                yield from comm.send(arr, dest=1)
                return arr.base is None  # sender keeps its own array
            got = yield from comm.recv(source=0)
            assert not got.flags.writeable
            with pytest.raises(ValueError):
                got[0] = 99.0
            return float(got.sum())

        vals = run0(prog, 2, copy_mode="readonly")
        assert vals == [True, 6.0]

    def test_readonly_bcast_and_allgather_arrays_are_readonly(self):
        def prog(comm):
            arr = np.full(3, float(comm.rank))
            got = yield from comm.bcast(arr, root=0)
            gathered = yield from comm.allgather(arr)
            assert not got.flags.writeable
            assert all(not g.flags.writeable for g in gathered)
            # container structure is private per rank: mutating my list
            # must not leak anywhere
            gathered.append(None)
            return float(got[0]) + sum(float(g[0]) for g in gathered[:-1])

        vals = run0(prog, 3, copy_mode="readonly")
        assert vals == [3.0, 3.0, 3.0]

    def test_readonly_exchange_arrays_are_readonly(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            got = yield from comm.exchange({right: np.ones(2) * comm.rank})
            left = (comm.rank - 1) % comm.size
            assert not got[left].flags.writeable
            return float(got[left][0])

        assert run0(prog, 3, copy_mode="readonly") == [2.0, 0.0, 1.0]

    def test_readonly_delivery_shares_sender_memory(self):
        def prog(comm):
            if comm.rank == 0:
                arr = np.arange(8.0)
                yield from comm.send(arr, dest=1)
                return None
            got = yield from comm.recv(source=0)
            return got.base is not None  # a view, not a copy

        assert run0(prog, 2, copy_mode="readonly")[1] is True

    def test_defensive_isolates_sender_memory(self):
        def prog(comm):
            if comm.rank == 0:
                arr = np.arange(4.0)
                yield from comm.send(arr, dest=1)
                # mutate after post: legal in defensive mode (copy at post)
                arr[:] = -1.0  # repro: lint-ok[SP104]
                yield from comm.barrier()  # repro: lint-ok[SP102] both arms barrier
                return None
            got = yield from comm.recv(source=0)
            yield from comm.barrier()
            got[0] = 42.0  # and the copy is writable
            return float(got.sum())

        vals = run0(prog, 2, copy_mode="defensive")
        assert vals[1] == 42.0 + 1.0 + 2.0 + 3.0

    def test_send_copy_override_wins_over_mode(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(np.ones(3), dest=1, copy=True)
                yield from comm.send(np.ones(3), dest=1, copy=False)
                return None
            a = yield from comm.recv(source=0)
            b = yield from comm.recv(source=0)
            return (a.flags.writeable, b.flags.writeable)

        # per-send override beats the engine default in both directions
        assert run0(prog, 2, copy_mode="readonly")[1] == (True, False)
        assert run0(prog, 2, copy_mode="defensive")[1] == (True, False)

    def test_nested_containers_rebuilt_arrays_shared(self):
        def prog(comm):
            if comm.rank == 0:
                payload = {"xs": [np.ones(2), np.zeros(2)], "tag": "t"}
                yield from comm.send(payload, dest=1)
                return None
            got = yield from comm.recv(source=0)
            # dict/list skeleton is mine to mutate; leaves are read-only
            got["extra"] = 1
            got["xs"].append(None)
            assert not got["xs"][0].flags.writeable
            return got["tag"]

        assert run0(prog, 2, copy_mode="readonly")[1] == "t"

    def test_results_identical_across_modes(self):
        def prog(comm):
            rng_val = float(comm.rng.random())
            arr = np.full(4, float(comm.rank + 1))
            red = yield from comm.allreduce(arr, op="sum")
            gathered = yield from comm.allgather(comm.rank * 2)
            return (rng_val, float(red.sum()), tuple(gathered))

        a = run0(prog, 4, copy_mode="readonly")
        b = run0(prog, 4, copy_mode="defensive")
        assert a == b


class TestReduceShapeValidation:
    def test_mismatched_array_shapes_raise(self):
        def prog(comm):
            arr = np.ones(comm.rank + 1)  # different length per rank
            yield from comm.allreduce(arr, op="sum")

        with pytest.raises(CommError, match="shape"):
            run0(prog, 2)

    def test_mixed_scalar_and_array_raise(self):
        def prog(comm):
            val = np.ones(3) if comm.rank == 0 else 1.0
            yield from comm.allreduce(val, op="sum")

        with pytest.raises(CommError, match="shape"):
            run0(prog, 2)

    def test_matching_shapes_still_reduce(self):
        def prog(comm):
            red = yield from comm.allreduce(np.ones(3), op="max")
            return float(red[0])

        assert run0(prog, 3) == [1.0, 1.0, 1.0]
