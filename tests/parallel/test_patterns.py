"""Tests for SPMD communication patterns and distribution helpers."""

import numpy as np
import pytest

from repro.graph.distributed import (
    Shared,
    adjacency_slots,
    block_of,
    block_starts,
    owner_by_block,
)
from repro.graph.generators import grid2d
from repro.errors import GraphError
from repro.parallel import MachineModel, ZERO_COST, run_spmd
from repro.parallel.patterns import allgather_concat, share_from_root


class TestBlockDistribution:
    def test_starts_cover_exactly(self):
        s = block_starts(10, 3)
        assert s.tolist() == [0, 4, 7, 10]

    def test_even_division(self):
        s = block_starts(8, 4)
        assert np.diff(s).tolist() == [2, 2, 2, 2]

    def test_more_ranks_than_items(self):
        s = block_starts(2, 5)
        assert s[-1] == 2
        assert (np.diff(s) >= 0).all()

    def test_owner_by_block(self):
        s = block_starts(10, 3)
        owners = owner_by_block(s, np.arange(10))
        assert owners.tolist() == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_block_of(self):
        s = block_starts(10, 3)
        assert block_of(s, 1) == (4, 7)

    def test_invalid_p(self):
        with pytest.raises(GraphError):
            block_starts(5, 0)


class TestAdjacencySlots:
    def test_slots_cover_subset(self):
        g = grid2d(4, 4).graph
        verts = np.array([0, 5, 10])
        src_pos, src, dst, w = adjacency_slots(g, verts)
        assert src_pos.shape == src.shape == dst.shape == w.shape
        assert set(np.unique(src)) <= set(verts.tolist())
        # every slot of every selected vertex appears exactly once
        expected = sum(g.degrees()[v] for v in verts)
        assert src.shape[0] == expected

    def test_empty_subset(self):
        g = grid2d(3, 3).graph
        src_pos, src, dst, w = adjacency_slots(g, np.zeros(0, dtype=np.int64))
        assert src.shape[0] == 0


class TestPatterns:
    def test_allgather_concat_order(self):
        def prog(comm):
            local = np.full(comm.rank + 1, comm.rank)
            full = yield from allgather_concat(comm, local)
            return full.tolist()

        vals = run_spmd(prog, 3, machine=ZERO_COST).values
        assert vals[0] == [0, 1, 1, 2, 2, 2]
        assert vals[0] == vals[1] == vals[2]

    def test_allgather_concat_cost_matches_allgather(self):
        m = MachineModel(alpha=0, t_s=1.0, t_w=1.0)

        def prog(comm):
            yield from allgather_concat(comm, np.zeros(4))
            return comm.clock

        res = run_spmd(prog, 8, machine=m)
        # recursive-doubling allgather: ts*log p + tw*(p-1)*m = 3 + 28
        expected = m.collective_cost("allgather", 8, 4)
        assert res.values[0] == pytest.approx(expected, rel=0.35)

    def test_share_from_root_is_reference(self):
        sentinel = {"big": np.arange(5)}

        def prog(comm):
            val = yield from share_from_root(
                comm, sentinel if comm.rank == 0 else None, words=1
            )
            return val is sentinel

        vals = run_spmd(prog, 4, machine=ZERO_COST).values
        assert all(vals)

    def test_shared_wrapper_repr(self):
        assert "ndarray" in repr(Shared(np.zeros(2)))
